//! Online variational-Bayes latent Dirichlet allocation — sparse kernel.
//!
//! Implements the algorithm of Hoffman, Blei & Bach, *Online Learning for
//! Latent Dirichlet Allocation* (NIPS 2010): stochastic variational
//! inference where each minibatch contributes a noisy natural-gradient
//! step on the topic-word variational parameter λ with step size
//! `ρ_t = (τ₀ + t)^{−κ}`.
//!
//! # Sparsity, bit-for-bit
//!
//! The kernel never materializes the dense `[topics × vocab]`
//! `exp(E[log β])` table. Instead, each batch builds a β table over only
//! the word ids that batch actually contains (the *sparse support*), the
//! E-step reads β through a slot map, and the M-step folds sparse
//! sufficient statistics back into λ. Every float operation is ordered
//! exactly as the dense sweep in [`crate::dense::DenseOnlineLda`] orders
//! it, so the results are **bit-identical** — the property tests in
//! `tests/properties.rs` assert exactly that. The invariants that make
//! this work:
//!
//! * `lambda_row_sums[k]` always equals `lambda[k].iter().sum()`
//!   (left-to-right), recomputed in full after every λ mutation, so the
//!   `ψ(Σλ)` term never sees a differently-associated sum.
//! * β cells are `exp(ψ(λ_kw) − ψ(Σλ_k))` — the identical expression the
//!   dense sweep evaluated, just only for the cells a batch reads.
//! * Absent columns decay as `(1−ρ)·λ + ρ·η`, which is IEEE-754-exactly
//!   the dense `(1−ρ)·λ + ρ·(η + scale·0.0)`.
//! * Sufficient statistics accumulate in the dense order (document-major,
//!   position-major, topic-major), even when a duplicate document's
//!   contribution is replayed from the per-batch memo.
//!
//! Scratch buffers live in [`LdaWorkspace`] and are reused across
//! documents, iterations, and batches — the hot loop performs no
//! per-iteration allocation.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use alertops_text::{BagOfWords, FxBuildHasher};

use crate::math::{dirichlet_expectation_sparse, normalize_in_place, DigammaCache};

/// Configuration for [`OnlineLda`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LdaConfig {
    /// Number of topics K.
    pub num_topics: usize,
    /// Vocabulary size W. Word ids ≥ `vocab_size` are ignored.
    pub vocab_size: usize,
    /// Dirichlet prior on per-document topic mixtures (symmetric).
    pub alpha: f64,
    /// Dirichlet prior on per-topic word distributions (symmetric).
    pub eta: f64,
    /// Learning-rate offset τ₀ (≥ 0); larger slows early updates.
    pub tau0: f64,
    /// Learning-rate decay κ ∈ (0.5, 1] for convergence guarantees.
    pub kappa: f64,
    /// Maximum E-step iterations per document.
    pub max_e_steps: usize,
    /// E-step convergence threshold on mean |Δγ|.
    pub e_step_tol: f64,
    /// Expected total corpus size D used to scale minibatch statistics.
    /// `None` uses the cumulative number of documents seen so far.
    pub corpus_size: Option<usize>,
    /// RNG seed for the λ initialization.
    pub seed: u64,
}

impl Default for LdaConfig {
    fn default() -> Self {
        Self {
            num_topics: 10,
            vocab_size: 0,
            alpha: 0.1,
            eta: 0.01,
            tau0: 1.0,
            kappa: 0.7,
            max_e_steps: 100,
            e_step_tol: 1e-3,
            corpus_size: None,
            seed: 42,
        }
    }
}

/// The converged E-step outcome for one distinct document within a
/// batch. Batches of alert text are highly redundant, so outcomes are
/// memoized per document content and their contributions *replayed* in
/// the original document order — replaying a previously computed value
/// adds the same bits the dense path would add.
#[derive(Debug, Clone)]
struct DocOutcome {
    /// In-vocabulary word ids of the document, in position order.
    invocab: Vec<usize>,
    /// `φ_kw · n_w` per in-vocab position (outer) and topic (inner).
    contribs: Vec<f64>,
    /// `doc_log_likelihood` at the converged γ.
    loglik: f64,
    /// Total token count, out-of-vocabulary positions included.
    words: u64,
    /// The converged (unnormalized) γ, harvested into the warm-start
    /// memo at the end of a [`OnlineLda::fit_window_with`] pass.
    gamma: Vec<f64>,
}

/// Cross-pass warm-start memo: converged γ per document content, valid
/// for one window fit. See [`OnlineLda::fit_window_with`], which clears
/// it at entry — warmth never leaks across windows, so the memo is
/// scratch, not model state. Keyed with the fast unkeyed hasher: the
/// memo is never iterated, so its bucket order cannot reach any output.
pub(crate) type WarmGamma = HashMap<BagOfWords, Vec<f64>, FxBuildHasher>;

/// Reusable scratch space for the sparse E/M-steps.
///
/// Holding one of these across calls is what removes per-document and
/// per-iteration allocation from the hot loop: the slot map, the sparse
/// β table, sufficient statistics, the γ/θ/φ-norm vectors, and the
/// digamma memo all keep their capacity between batches. A workspace
/// carries no model state — any workspace (including a fresh
/// `LdaWorkspace::default()`) produces bit-identical results with any
/// model; reuse only changes how often the allocator runs.
#[derive(Debug, Clone, Default)]
pub struct LdaWorkspace {
    /// `slot_of[id]` is `slot + 1` into the current batch's β table, or
    /// 0 when `id` is absent from the batch.
    slot_of: Vec<u32>,
    /// Word ids of the current batch in first-seen order; `unique_ids[s]`
    /// owns slot `s`.
    unique_ids: Vec<usize>,
    /// Sparse `exp(E[log β])`, K rows × `unique_ids.len()` slots.
    beta: Vec<f64>,
    /// Sparse sufficient statistics, same shape as `beta`.
    sstats: Vec<f64>,
    /// Per-document variational parameter γ (length K).
    gamma: Vec<f64>,
    /// γ from the previous E-step iteration, for the mean-change test.
    last_gamma: Vec<f64>,
    /// `exp(E[log θ])` (length K).
    exp_elog_theta: Vec<f64>,
    /// Per-topic dot accumulators for the γ update (length K).
    dots: Vec<f64>,
    /// Per-position φ normalizers (length = document positions).
    norms: Vec<f64>,
    /// Normalized-θ scratch for the per-document likelihood (length K).
    theta: Vec<f64>,
    /// Bit-exact ψ memo for the γ-side digammas (see [`DigammaCache`]).
    digamma: DigammaCache,
    /// Converged outcomes per distinct document within one batch. Fast
    /// unkeyed hasher: iterated only for the warm-memo write-back, whose
    /// writes land on distinct keys — bucket order cannot reach outputs.
    train_memo: HashMap<BagOfWords, DocOutcome, FxBuildHasher>,
    /// Normalized mixtures per distinct document within one inference
    /// batch. Read back per document in batch order, never iterated.
    infer_memo: HashMap<BagOfWords, Vec<f64>, FxBuildHasher>,
    /// Warm-start memo for [`OnlineLda::fit_window_with`]: converged γ
    /// per document content, cleared at the start of every window fit
    /// (cross-pass warmth only — so the workspace invariant holds: a
    /// fresh workspace produces bit-identical results).
    warm: WarmGamma,
}

impl LdaWorkspace {
    /// Creates an empty workspace. Equivalent to `Default::default()`.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// `(hits, misses)` of the workspace's ψ memo since construction —
    /// perf introspection only; the memo is bit-exact either way (see
    /// [`DigammaCache`]).
    #[must_use]
    pub fn digamma_stats(&self) -> (u64, u64) {
        self.digamma.stats()
    }

    /// Resets the per-batch registration state, keeping capacity.
    fn begin_batch(&mut self, vocab_size: usize) {
        for &id in &self.unique_ids {
            self.slot_of[id] = 0;
        }
        self.unique_ids.clear();
        if self.slot_of.len() < vocab_size {
            self.slot_of.resize(vocab_size, 0);
        }
        self.beta.clear();
        self.sstats.clear();
        self.train_memo.clear();
        self.infer_memo.clear();
    }

    /// Adds `id` (< vocab size) to the batch support if new.
    fn register(&mut self, id: usize) {
        if self.slot_of[id] == 0 {
            self.unique_ids.push(id);
            self.slot_of[id] = self.unique_ids.len() as u32;
        }
    }

    /// Slot of a registered in-vocab id in the β/sstats tables.
    #[inline]
    fn slot(&self, id: usize) -> usize {
        (self.slot_of[id] - 1) as usize
    }
}

/// Online variational-Bayes LDA.
///
/// See the [crate-level example](crate) for typical usage: create with a
/// config, feed minibatches via [`update_batch`](Self::update_batch),
/// query topic mixtures with [`infer`](Self::infer) and topic-word
/// distributions with [`topics`](Self::topics).
///
/// The convenience entry points (`update_batch`, `infer`, `score`)
/// allocate a fresh [`LdaWorkspace`] per call; hot paths should hold a
/// workspace and use the `_with` variants. Results are bit-identical
/// either way.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OnlineLda {
    config: LdaConfig,
    /// Variational parameter λ, K×W.
    lambda: Vec<Vec<f64>>,
    /// Cached `lambda[k].iter().sum()` per row, maintained after every
    /// λ mutation. Always the full left-to-right sum so ψ(Σλ) is
    /// bit-identical to a freshly computed one.
    lambda_row_sums: Vec<f64>,
    /// Number of minibatch updates applied so far.
    updates: u64,
    /// Number of documents seen so far.
    docs_seen: usize,
}

impl OnlineLda {
    /// Creates a model with λ initialized from a seeded gamma-like
    /// distribution (uniform in `[0.5, 1.5)` scaled by 100/W, matching
    /// the spirit of Hoffman's `gamma(100, 1/100)` init).
    ///
    /// # Panics
    ///
    /// Panics if `num_topics` or `vocab_size` is zero, or if `kappa` is
    /// outside `(0.5, 1.0]`.
    #[must_use]
    pub fn new(config: LdaConfig) -> Self {
        assert!(config.num_topics > 0, "num_topics must be positive");
        assert!(config.vocab_size > 0, "vocab_size must be positive");
        assert!(
            config.kappa > 0.5 && config.kappa <= 1.0,
            "kappa must lie in (0.5, 1] for convergence, got {}",
            config.kappa
        );
        let mut rng = StdRng::seed_from_u64(config.seed);
        let lambda: Vec<Vec<f64>> = (0..config.num_topics)
            .map(|_| {
                (0..config.vocab_size)
                    .map(|_| 100.0 / config.vocab_size as f64 * rng.gen_range(0.5..1.5))
                    .collect()
            })
            .collect();
        let lambda_row_sums = lambda.iter().map(|row| row.iter().sum()).collect();
        Self {
            config,
            lambda,
            lambda_row_sums,
            updates: 0,
            docs_seen: 0,
        }
    }

    /// The configuration this model was built with.
    #[must_use]
    pub fn config(&self) -> &LdaConfig {
        &self.config
    }

    /// The number of minibatch updates applied.
    #[must_use]
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// The current learning rate ρ_t = (τ₀ + t)^{−κ}.
    #[must_use]
    pub fn learning_rate(&self) -> f64 {
        (self.config.tau0 + self.updates as f64).powf(-self.config.kappa)
    }

    /// Applies one online update from a minibatch of documents and
    /// returns the batch's variational bound per word (higher is better),
    /// computed *before* the update — useful for convergence monitoring.
    ///
    /// Empty documents are skipped; an entirely empty batch is a no-op
    /// returning 0. Allocates a throwaway workspace; hot paths should
    /// call [`update_batch_with`](Self::update_batch_with).
    pub fn update_batch(&mut self, batch: &[BagOfWords]) -> f64 {
        self.update_batch_with(batch, &mut LdaWorkspace::new())
    }

    /// [`update_batch`](Self::update_batch) with caller-owned scratch.
    /// Bit-identical to the dense sweep for any workspace state.
    pub fn update_batch_with(&mut self, batch: &[BagOfWords], ws: &mut LdaWorkspace) -> f64 {
        self.update_pass(batch, None, ws)
    }

    /// One online update, optionally warm-started from `warm`.
    ///
    /// With `warm`, each distinct document's γ is initialized from the
    /// memo (falling back to the cold `α+1` init) and the converged γ is
    /// written back *after* the document loop — the memo is read-only
    /// while the batch runs, so every occurrence of a document sees the
    /// same init and duplicate replay stays bit-identical to solving
    /// each occurrence independently.
    fn update_pass(
        &mut self,
        batch: &[BagOfWords],
        mut warm: Option<&mut WarmGamma>,
        ws: &mut LdaWorkspace,
    ) -> f64 {
        let k = self.config.num_topics;
        let nonempty_count = batch.iter().filter(|d| !d.is_empty()).count();
        if nonempty_count == 0 {
            return 0.0;
        }

        self.prepare_beta(batch, ws);
        let u = ws.unique_ids.len();
        ws.sstats.resize(k * u, 0.0);

        let mut bound = 0.0;
        let mut word_total = 0u64;
        for doc in batch.iter().filter(|d| !d.is_empty()) {
            if !ws.train_memo.contains_key(doc.as_slice()) {
                let init = warm
                    .as_deref()
                    .and_then(|m| m.get(doc.as_slice()))
                    .map(Vec::as_slice);
                let outcome = self.e_step_train(doc, init, ws);
                ws.train_memo.insert(doc.clone(), outcome);
            }
            // Replay the (possibly memoized) contribution in this
            // document's position, preserving the dense accumulation
            // order: document-major, position-major, topic-major.
            let outcome = &ws.train_memo[doc.as_slice()];
            let mut contrib = outcome.contribs.iter();
            for &id in &outcome.invocab {
                let slot = ws.slot(id);
                for topic in 0..k {
                    ws.sstats[topic * u + slot] += *contrib.next().expect("contribs shape");
                }
            }
            bound += outcome.loglik;
            word_total += outcome.words;
        }

        // End-of-pass write-back: the next pass (or window) warm-starts
        // from this pass's converged γ. Map iteration order is
        // irrelevant — writes go to distinct keys.
        if let Some(m) = warm.as_mut() {
            for (doc, outcome) in &ws.train_memo {
                match m.get_mut(doc.as_slice()) {
                    Some(slot) => slot.clone_from(&outcome.gamma),
                    None => {
                        m.insert(doc.clone(), outcome.gamma.clone());
                    }
                }
            }
        }

        // M-step: blend λ toward the batch estimate with step ρ. Absent
        // columns see `ρ·η`, which equals the dense `ρ·(η + scale·0.0)`
        // exactly (scale·0.0 == 0.0 and η + 0.0 == η in IEEE 754).
        let rho = self.learning_rate();
        self.docs_seen += nonempty_count;
        let d = self.config.corpus_size.unwrap_or(self.docs_seen) as f64;
        let scale = d / nonempty_count as f64;
        let absent = rho * self.config.eta;
        for (topic, lam_row) in self.lambda.iter_mut().enumerate() {
            for (word, lam) in lam_row.iter_mut().enumerate() {
                let slot = ws.slot_of[word];
                *lam = if slot == 0 {
                    (1.0 - rho) * *lam + absent
                } else {
                    (1.0 - rho) * *lam
                        + rho
                            * (self.config.eta + scale * ws.sstats[topic * u + (slot - 1) as usize])
                };
            }
        }
        for (sum, row) in self.lambda_row_sums.iter_mut().zip(&self.lambda) {
            *sum = row.iter().sum();
        }
        self.updates += 1;
        if word_total == 0 {
            0.0
        } else {
            bound / word_total as f64
        }
    }

    /// Infers the topic mixture θ of a document against the current
    /// topics (frozen; does not update the model). Returns a length-K
    /// probability vector; uniform for an empty document.
    ///
    /// Allocates a throwaway workspace; hot paths should call
    /// [`infer_with`](Self::infer_with) or
    /// [`infer_batch_with`](Self::infer_batch_with).
    #[must_use]
    pub fn infer(&self, doc: &BagOfWords) -> Vec<f64> {
        self.infer_with(doc, &mut LdaWorkspace::new())
    }

    /// [`infer`](Self::infer) with caller-owned scratch.
    pub fn infer_with(&self, doc: &BagOfWords, ws: &mut LdaWorkspace) -> Vec<f64> {
        let k = self.config.num_topics;
        if doc.is_empty() {
            return vec![1.0 / k as f64; k];
        }
        self.prepare_beta(std::slice::from_ref(doc), ws);
        self.e_step_gamma(doc, None, ws);
        let mut gamma = ws.gamma.clone();
        normalize_in_place(&mut gamma);
        gamma
    }

    /// Infers the mixtures of every document in `batch`, sharing one
    /// sparse β table across the batch and memoizing duplicate documents.
    /// Each result is bit-identical to [`infer`](Self::infer) on that
    /// document alone — documents do not influence one another.
    pub fn infer_batch_with(&self, batch: &[BagOfWords], ws: &mut LdaWorkspace) -> Vec<Vec<f64>> {
        let k = self.config.num_topics;
        self.prepare_beta(batch, ws);
        let mut out = Vec::with_capacity(batch.len());
        for doc in batch {
            if doc.is_empty() {
                out.push(vec![1.0 / k as f64; k]);
                continue;
            }
            if !ws.infer_memo.contains_key(doc.as_slice()) {
                self.e_step_gamma(doc, None, ws);
                let mut mixture = ws.gamma.clone();
                normalize_in_place(&mut mixture);
                ws.infer_memo.insert(doc.clone(), mixture);
            }
            out.push(ws.infer_memo[doc.as_slice()].clone());
        }
        out
    }

    /// Fits one window: up to `passes` online updates over `docs` with
    /// cross-pass warm-started γ and a cheap early exit once the
    /// variational bound stops moving, returning each document's
    /// normalized topic mixture from the final pass.
    ///
    /// The warm-start memo (converged γ per document content, owned by
    /// the workspace) is cleared at entry, read during each pass, and
    /// refreshed after it: pass `p`'s E-steps start from pass `p−1`'s
    /// converged γ instead of the cold `α+1` init, so after the first
    /// pass each document's E-step typically converges in one or two
    /// iterations instead of re-walking the whole trajectory — this is
    /// where most of the speedup over naive repeated
    /// [`update_batch_with`](Self::update_batch_with) calls comes from.
    /// Warmth is strictly per-window (the entry clear): fitting a
    /// window is a pure function of `(model, docs, passes, pass_tol)`,
    /// never of earlier windows' scratch, so the workspace invariant
    /// — any workspace produces bit-identical results — still holds.
    ///
    /// `pass_tol` is the relative bound tolerance: after pass `p ≥ 2`,
    /// the loop stops when `|b_p − b_{p−1}| ≤ pass_tol · |b_{p−1}|`.
    /// Pass `0.0` (or negative) to always run all `passes`.
    ///
    /// The returned mixtures are the final pass's converged γ,
    /// normalized (uniform for empty documents) — inference is folded
    /// into the fit instead of paying one more full E-step sweep
    /// against the post-update topics, which a converged window would
    /// only use to re-derive (within `e_step_tol`) the γ it already
    /// has.
    ///
    /// Every float is ordered exactly as
    /// [`crate::dense::DenseOnlineLda::fit_window`] orders it, so the
    /// results are bit-identical to the dense sweep — asserted in
    /// `tests/properties.rs`.
    pub fn fit_window_with(
        &mut self,
        docs: &[BagOfWords],
        passes: usize,
        pass_tol: f64,
        ws: &mut LdaWorkspace,
    ) -> Vec<Vec<f64>> {
        // Detach the memo so the passes can borrow it alongside the rest
        // of the workspace; reattached below to keep its capacity.
        let mut warm = std::mem::take(&mut ws.warm);
        warm.clear();
        let mut prev: Option<f64> = None;
        for _ in 0..passes.max(1) {
            let bound = self.update_pass(docs, Some(&mut warm), ws);
            if let Some(p) = prev {
                if pass_tol > 0.0 && (bound - p).abs() <= pass_tol * p.abs() {
                    break;
                }
            }
            prev = Some(bound);
        }
        // After the last pass's write-back the memo holds every
        // non-empty document's final converged γ.
        let k = self.config.num_topics;
        let out = docs
            .iter()
            .map(|doc| {
                if doc.is_empty() {
                    vec![1.0 / k as f64; k]
                } else {
                    let mut mixture = warm[doc.as_slice()].clone();
                    normalize_in_place(&mut mixture);
                    mixture
                }
            })
            .collect();
        ws.warm = warm;
        out
    }

    /// The current topic-word distributions: K rows, each a length-W
    /// probability vector (the normalized λ rows).
    #[must_use]
    pub fn topics(&self) -> Vec<Vec<f64>> {
        self.lambda
            .iter()
            .map(|row| {
                let mut r = row.clone();
                normalize_in_place(&mut r);
                r
            })
            .collect()
    }

    /// The `n` highest-probability word ids of topic `topic`.
    ///
    /// # Panics
    ///
    /// Panics if `topic >= num_topics`.
    #[must_use]
    pub fn top_words(&self, topic: usize, n: usize) -> Vec<usize> {
        let row = &self.lambda[topic];
        let mut ids: Vec<usize> = (0..row.len()).collect();
        ids.sort_unstable_by(|&a, &b| row[b].partial_cmp(&row[a]).unwrap());
        ids.truncate(n);
        ids
    }

    /// Per-word log likelihood of `corpus` under the current model
    /// (higher is better). Returns 0 for an empty corpus.
    #[must_use]
    pub fn score(&self, corpus: &[BagOfWords]) -> f64 {
        self.score_with(corpus, &mut LdaWorkspace::new())
    }

    /// [`score`](Self::score) with caller-owned scratch.
    pub fn score_with(&self, corpus: &[BagOfWords], ws: &mut LdaWorkspace) -> f64 {
        self.prepare_beta(corpus, ws);
        let mut total = 0.0;
        let mut words = 0u64;
        for doc in corpus.iter().filter(|d| !d.is_empty()) {
            self.e_step_gamma(doc, None, ws);
            total += self.doc_log_likelihood(doc, &ws.gamma, &mut ws.theta);
            words += doc.iter().map(|&(_, c)| u64::from(c)).sum::<u64>();
        }
        if words == 0 {
            0.0
        } else {
            total / words as f64
        }
    }

    /// Builds the sparse β table for the union of word ids in `batch`:
    /// registers every in-vocab id (first-seen order) and fills
    /// `ws.beta[topic·U + slot] = exp(ψ(λ_kw) − ψ(Σλ_k))` — the exact
    /// cells the dense K×W sweep would have produced for those columns.
    fn prepare_beta(&self, batch: &[BagOfWords], ws: &mut LdaWorkspace) {
        let w = self.config.vocab_size;
        ws.begin_batch(w);
        for doc in batch {
            for &(id, _) in doc.iter() {
                if id < w {
                    ws.register(id);
                }
            }
        }
        for topic in 0..self.config.num_topics {
            dirichlet_expectation_sparse(
                &self.lambda[topic],
                self.lambda_row_sums[topic],
                &ws.unique_ids,
                &mut ws.beta,
            );
        }
    }

    /// Variational E-step for one document, training flavor: converges γ
    /// and captures the φ·n contributions plus the per-doc likelihood.
    ///
    /// The iteration order — γ init at `α+1` (or the warm-start `init`
    /// when given), θ refresh, φ-norm refresh, then the mean-change
    /// test — mirrors the dense implementation statement for statement
    /// so the γ trajectory and the break decision are identical.
    fn e_step_train(
        &self,
        doc: &BagOfWords,
        init: Option<&[f64]>,
        ws: &mut LdaWorkspace,
    ) -> DocOutcome {
        let k = self.config.num_topics;
        let w = self.config.vocab_size;
        let u = ws.unique_ids.len();

        ws.gamma.clear();
        match init {
            Some(g) => ws.gamma.extend_from_slice(g),
            None => ws.gamma.resize(k, self.config.alpha + 1.0),
        }
        debug_assert_eq!(ws.gamma.len(), k, "warm-start γ has the wrong arity");
        exp_dirichlet_into(&ws.gamma, &mut ws.digamma, &mut ws.exp_elog_theta);
        phinorm_into(
            doc,
            w,
            u,
            &ws.slot_of,
            &ws.beta,
            &ws.exp_elog_theta,
            &mut ws.norms,
        );

        for _ in 0..self.config.max_e_steps {
            ws.last_gamma.clone_from(&ws.gamma);
            gamma_update(self.config.alpha, doc, w, u, ws);
            exp_dirichlet_into(&ws.gamma, &mut ws.digamma, &mut ws.exp_elog_theta);
            phinorm_into(
                doc,
                w,
                u,
                &ws.slot_of,
                &ws.beta,
                &ws.exp_elog_theta,
                &mut ws.norms,
            );
            if mean_change(&ws.gamma, &ws.last_gamma) < self.config.e_step_tol {
                break;
            }
        }

        // Final responsibilities φ·n for sufficient statistics, in
        // position order over the in-vocab positions. Capacity up front:
        // these vectors are built once per distinct document per pass,
        // so letting them grow geometrically would dominate the
        // allocator traffic of the whole window fit.
        let mut invocab = Vec::with_capacity(doc.len());
        let mut contribs = Vec::with_capacity(doc.len() * k);
        let mut words = 0u64;
        for (&(id, count), &norm) in doc.iter().zip(&ws.norms) {
            words += u64::from(count);
            if id >= w {
                continue;
            }
            let slot = ws.slot(id);
            invocab.push(id);
            let count = f64::from(count);
            for topic in 0..k {
                let p = ws.exp_elog_theta[topic] * ws.beta[topic * u + slot] / norm;
                contribs.push(p * count);
            }
        }
        let loglik = self.doc_log_likelihood(doc, &ws.gamma, &mut ws.theta);
        DocOutcome {
            invocab,
            contribs,
            loglik,
            words,
            gamma: ws.gamma.clone(),
        }
    }

    /// Variational E-step, inference flavor: converges γ only.
    ///
    /// Identical γ trajectory to the training flavor — the convergence
    /// test runs on the same values — but once the mean-change test
    /// passes it skips the final θ/φ-norm refresh the training path
    /// needs for sufficient statistics. This is the
    /// "gamma-only" split: inference no longer pays for φ it discards.
    fn e_step_gamma(&self, doc: &BagOfWords, init: Option<&[f64]>, ws: &mut LdaWorkspace) {
        let w = self.config.vocab_size;
        let k = self.config.num_topics;
        let u = ws.unique_ids.len();

        ws.gamma.clear();
        match init {
            Some(g) => ws.gamma.extend_from_slice(g),
            None => ws.gamma.resize(k, self.config.alpha + 1.0),
        }
        debug_assert_eq!(ws.gamma.len(), k, "warm-start γ has the wrong arity");
        exp_dirichlet_into(&ws.gamma, &mut ws.digamma, &mut ws.exp_elog_theta);
        phinorm_into(
            doc,
            w,
            u,
            &ws.slot_of,
            &ws.beta,
            &ws.exp_elog_theta,
            &mut ws.norms,
        );

        for _ in 0..self.config.max_e_steps {
            ws.last_gamma.clone_from(&ws.gamma);
            gamma_update(self.config.alpha, doc, w, u, ws);
            if mean_change(&ws.gamma, &ws.last_gamma) < self.config.e_step_tol {
                break;
            }
            exp_dirichlet_into(&ws.gamma, &mut ws.digamma, &mut ws.exp_elog_theta);
            phinorm_into(
                doc,
                w,
                u,
                &ws.slot_of,
                &ws.beta,
                &ws.exp_elog_theta,
                &mut ws.norms,
            );
        }
    }

    /// log p(doc | θ̂, β̂) with θ̂ the normalized γ and β̂ the normalized λ —
    /// a cheap likelihood proxy adequate for monitoring and tests. Uses
    /// the cached λ row sums instead of recomputing K×W sums per call;
    /// `theta` is caller-owned scratch (the workspace's) so the
    /// normalization never allocates.
    fn doc_log_likelihood(&self, doc: &BagOfWords, gamma: &[f64], theta: &mut Vec<f64>) -> f64 {
        theta.clear();
        theta.extend_from_slice(gamma);
        normalize_in_place(theta);
        doc.iter()
            .filter(|&&(id, _)| id < self.config.vocab_size)
            .map(|&(id, count)| {
                let p_word: f64 = theta
                    .iter()
                    .enumerate()
                    .map(|(topic, &t)| t * self.lambda[topic][id] / self.lambda_row_sums[topic])
                    .sum();
                f64::from(count) * p_word.max(1e-300).ln()
            })
            .sum()
    }

    /// Direct access to the unnormalized variational parameter λ
    /// (K rows × W columns). Exposed for AOLDA's adaptive priors.
    #[must_use]
    pub fn lambda(&self) -> &[Vec<f64>] {
        &self.lambda
    }

    /// Replaces λ wholesale (dimensions must match) and refreshes the
    /// cached row sums. Used by AOLDA to seed a window's model from
    /// adapted priors.
    ///
    /// # Panics
    ///
    /// Panics if the shape of `lambda` is not K×W or any entry is not
    /// strictly positive.
    pub fn set_lambda(&mut self, lambda: Vec<Vec<f64>>) {
        assert_eq!(lambda.len(), self.config.num_topics, "lambda row count");
        for row in &lambda {
            assert_eq!(row.len(), self.config.vocab_size, "lambda column count");
            assert!(
                row.iter().all(|&x| x > 0.0),
                "lambda entries must be positive"
            );
        }
        self.lambda_row_sums = lambda.iter().map(|row| row.iter().sum()).collect();
        self.lambda = lambda;
    }
}

/// One γ update: `γ_t = α + θ_t · Σ_w (n_w / norm_w) · β_tw`.
///
/// The per-topic dot products accumulate positions in document order —
/// the same per-topic addition sequence as the dense loop — with the
/// `n_w / norm_w` quotient hoisted out of the topic loop (it is the same
/// bits whether computed once or K times).
fn gamma_update(alpha: f64, doc: &BagOfWords, w: usize, u: usize, ws: &mut LdaWorkspace) {
    let k = ws.gamma.len();
    ws.dots.clear();
    ws.dots.resize(k, 0.0);
    for (&(id, count), &norm) in doc.iter().zip(&ws.norms) {
        if id >= w {
            continue;
        }
        let slot = (ws.slot_of[id] - 1) as usize;
        let q = f64::from(count) / norm;
        for (topic, dot) in ws.dots.iter_mut().enumerate() {
            *dot += q * ws.beta[topic * u + slot];
        }
    }
    for (topic, g) in ws.gamma.iter_mut().enumerate() {
        *g = alpha + ws.exp_elog_theta[topic] * ws.dots[topic];
    }
}

/// `exp(E[log θ])` into `out`, digammas served through the bit-exact
/// memo.
fn exp_dirichlet_into(gamma: &[f64], cache: &mut DigammaCache, out: &mut Vec<f64>) {
    let total: f64 = gamma.iter().sum();
    let psi_total = cache.eval(total);
    out.clear();
    out.reserve(gamma.len());
    for &g in gamma {
        out.push((cache.eval(g) - psi_total).exp());
    }
}

/// Per-position φ normalizers: `1e-100 + Σ_t θ_t · β_tw`, with
/// out-of-vocabulary positions pinned at the dense path's `1e-100`
/// sentinel.
fn phinorm_into(
    doc: &BagOfWords,
    w: usize,
    u: usize,
    slot_of: &[u32],
    beta: &[f64],
    theta: &[f64],
    norms: &mut Vec<f64>,
) {
    norms.clear();
    norms.reserve(doc.len());
    for &(id, _) in doc.iter() {
        let mut s = 1e-100;
        if id < w {
            let slot = (slot_of[id] - 1) as usize;
            for (topic, &t) in theta.iter().enumerate() {
                s += t * beta[topic * u + slot];
            }
        }
        norms.push(s);
    }
}

/// Mean absolute γ change between iterations.
fn mean_change(gamma: &[f64], last_gamma: &[f64]) -> f64 {
    gamma
        .iter()
        .zip(last_gamma)
        .map(|(a, b)| (a - b).abs())
        .sum::<f64>()
        / gamma.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two disjoint word clusters: ids 0..3 ("storage" words) and
    /// 4..7 ("memory" words).
    fn synthetic_corpus() -> Vec<BagOfWords> {
        let mut docs = Vec::new();
        for i in 0..20 {
            if i % 2 == 0 {
                docs.push(vec![(0, 2), (1, 1), (2, 1), (3, 2)]);
            } else {
                docs.push(vec![(4, 2), (5, 1), (6, 2), (7, 1)]);
            }
        }
        docs
    }

    fn config(k: usize) -> LdaConfig {
        LdaConfig {
            num_topics: k,
            vocab_size: 8,
            corpus_size: Some(20),
            ..LdaConfig::default()
        }
    }

    #[test]
    fn topics_are_probability_distributions() {
        let mut lda = OnlineLda::new(config(2));
        for _ in 0..5 {
            lda.update_batch(&synthetic_corpus());
        }
        for row in lda.topics() {
            let sum: f64 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(row.iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn separates_disjoint_clusters() {
        let mut lda = OnlineLda::new(config(2));
        for _ in 0..30 {
            lda.update_batch(&synthetic_corpus());
        }
        // The top-4 words of the two topics should be the two clusters.
        let mut t0: Vec<usize> = lda.top_words(0, 4);
        let mut t1: Vec<usize> = lda.top_words(1, 4);
        t0.sort_unstable();
        t1.sort_unstable();
        let clusters = [vec![0, 1, 2, 3], vec![4, 5, 6, 7]];
        assert!(
            (t0 == clusters[0] && t1 == clusters[1]) || (t0 == clusters[1] && t1 == clusters[0]),
            "topics did not separate clusters: {t0:?} vs {t1:?}"
        );
    }

    #[test]
    fn inference_assigns_doc_to_its_cluster_topic() {
        let mut lda = OnlineLda::new(config(2));
        for _ in 0..30 {
            lda.update_batch(&synthetic_corpus());
        }
        let storage_doc = vec![(0, 3), (2, 2)];
        let memory_doc = vec![(5, 3), (7, 2)];
        let ts = lda.infer(&storage_doc);
        let tm = lda.infer(&memory_doc);
        let dominant = |v: &[f64]| {
            v.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0
        };
        assert_ne!(dominant(&ts), dominant(&tm));
        assert!(ts.iter().cloned().fold(f64::MIN, f64::max) > 0.8);
    }

    #[test]
    fn training_improves_score() {
        let corpus = synthetic_corpus();
        let mut lda = OnlineLda::new(config(2));
        let before = lda.score(&corpus);
        for _ in 0..30 {
            lda.update_batch(&corpus);
        }
        let after = lda.score(&corpus);
        assert!(after > before, "score did not improve: {before} -> {after}");
    }

    #[test]
    fn infer_returns_normalized_mixture() {
        let lda = OnlineLda::new(config(3));
        let doc = vec![(1, 2), (6, 1)];
        let theta = lda.infer(&doc);
        assert_eq!(theta.len(), 3);
        assert!((theta.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Empty doc → uniform.
        let theta = lda.infer(&Vec::new());
        assert!(theta.iter().all(|&p| (p - 1.0 / 3.0).abs() < 1e-12));
    }

    #[test]
    fn fit_window_is_deterministic_and_normalized() {
        let corpus = synthetic_corpus();
        let run = || {
            let mut lda = OnlineLda::new(config(2));
            let mut ws = LdaWorkspace::new();
            let mix = lda.fit_window_with(&corpus, 10, 1e-2, &mut ws);
            (mix, lda.lambda().to_vec())
        };
        let (ma, la) = run();
        let (mb, lb) = run();
        assert_eq!(ma, mb, "same input, same workspace age → same mixtures");
        assert_eq!(la, lb);
        for theta in &ma {
            assert!((theta.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(theta.iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn fit_window_pass_tol_zero_runs_every_pass() {
        let mut lda = OnlineLda::new(config(2));
        let mut ws = LdaWorkspace::new();
        lda.fit_window_with(&synthetic_corpus(), 7, 0.0, &mut ws);
        assert_eq!(lda.updates(), 7, "disabled early exit must run all passes");
    }

    #[test]
    fn fit_window_early_exit_is_observable_via_updates() {
        // A huge tolerance accepts the first bound comparison, so the
        // loop stops right after pass 2 — the earliest the exit rule
        // (`p ≥ 2`) allows.
        let mut lda = OnlineLda::new(config(2));
        let mut ws = LdaWorkspace::new();
        lda.fit_window_with(&synthetic_corpus(), 9, 1e9, &mut ws);
        assert_eq!(lda.updates(), 2, "maximal tolerance must exit after pass 2");
    }

    #[test]
    fn fit_window_empty_docs_get_uniform_mixtures() {
        let mut docs = synthetic_corpus();
        docs.insert(1, Vec::new());
        let mut lda = OnlineLda::new(config(3));
        let mut ws = LdaWorkspace::new();
        let mix = lda.fit_window_with(&docs, 5, 1e-2, &mut ws);
        assert_eq!(mix.len(), docs.len());
        assert!(mix[1].iter().all(|&p| (p - 1.0 / 3.0).abs() < 1e-12));
    }

    #[test]
    fn fit_window_duplicate_docs_get_identical_mixtures() {
        let mut docs = synthetic_corpus();
        docs.push(docs[0].clone());
        let mut lda = OnlineLda::new(config(2));
        let mut ws = LdaWorkspace::new();
        let mix = lda.fit_window_with(&docs, 5, 1e-2, &mut ws);
        let last = mix.len() - 1;
        assert_eq!(
            mix[0], mix[last],
            "same content must yield the same mixture"
        );
    }

    #[test]
    fn empty_batch_is_noop() {
        let mut lda = OnlineLda::new(config(2));
        let lambda_before = lda.lambda().to_vec();
        let bound = lda.update_batch(&[]);
        assert_eq!(bound, 0.0);
        assert_eq!(lda.updates(), 0);
        assert_eq!(lda.lambda(), &lambda_before[..]);
    }

    #[test]
    fn learning_rate_decays() {
        let mut lda = OnlineLda::new(config(2));
        let r0 = lda.learning_rate();
        lda.update_batch(&synthetic_corpus());
        let r1 = lda.learning_rate();
        assert!(r1 < r0);
        assert!(r0 <= 1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = OnlineLda::new(config(2));
        let mut b = OnlineLda::new(config(2));
        a.update_batch(&synthetic_corpus());
        b.update_batch(&synthetic_corpus());
        assert_eq!(a.lambda(), b.lambda());
        let mut c = OnlineLda::new(LdaConfig {
            seed: 7,
            ..config(2)
        });
        c.update_batch(&synthetic_corpus());
        assert_ne!(a.lambda(), c.lambda());
    }

    #[test]
    fn out_of_vocab_ids_are_ignored() {
        let mut lda = OnlineLda::new(config(2));
        let weird = vec![vec![(0, 1), (999, 5)]];
        lda.update_batch(&weird); // must not panic
        let theta = lda.infer(&vec![(999, 3)]);
        assert!((theta.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "kappa")]
    fn rejects_bad_kappa() {
        let _ = OnlineLda::new(LdaConfig {
            kappa: 0.3,
            ..config(2)
        });
    }

    #[test]
    fn set_lambda_roundtrip() {
        let mut lda = OnlineLda::new(config(2));
        let mut lam = lda.lambda().to_vec();
        lam[0][0] = 5.0;
        lda.set_lambda(lam.clone());
        assert_eq!(lda.lambda(), &lam[..]);
    }

    #[test]
    #[should_panic(expected = "lambda row count")]
    fn set_lambda_rejects_bad_shape() {
        let mut lda = OnlineLda::new(config(2));
        lda.set_lambda(vec![vec![1.0; 8]]);
    }

    #[test]
    fn workspace_reuse_is_bit_identical_to_fresh_workspaces() {
        let corpus = synthetic_corpus();
        let mut reused = OnlineLda::new(config(2));
        let mut fresh = OnlineLda::new(config(2));
        let mut ws = LdaWorkspace::new();
        for _ in 0..10 {
            reused.update_batch_with(&corpus, &mut ws);
            fresh.update_batch(&corpus);
        }
        assert_eq!(reused.lambda(), fresh.lambda());
        let doc = vec![(0, 3), (5, 1)];
        assert_eq!(reused.infer_with(&doc, &mut ws), fresh.infer(&doc));
    }

    #[test]
    fn infer_batch_matches_per_doc_infer() {
        let mut lda = OnlineLda::new(config(2));
        for _ in 0..5 {
            lda.update_batch(&synthetic_corpus());
        }
        // Duplicates exercise the memo; the empty doc the uniform branch.
        let batch: Vec<BagOfWords> = vec![
            vec![(0, 2), (3, 1)],
            Vec::new(),
            vec![(5, 4)],
            vec![(0, 2), (3, 1)],
        ];
        let mut ws = LdaWorkspace::new();
        let got = lda.infer_batch_with(&batch, &mut ws);
        for (doc, mix) in batch.iter().zip(&got) {
            assert_eq!(mix, &lda.infer(doc));
        }
    }

    #[test]
    fn duplicate_docs_memoized_batch_matches_unmemoized_order() {
        // A batch full of duplicates must produce the same λ as the same
        // batch handed to a model that never hits the memo (fresh
        // workspaces can't dodge it — the memo is per-batch — so compare
        // against a batch with bitwise-equal but separately-allocated
        // docs, which still hits the memo by content; the real oracle
        // comparison lives in tests/properties.rs against the dense
        // implementation).
        let doc = vec![(1, 2), (6, 3)];
        let batch = vec![doc.clone(), doc.clone(), doc.clone()];
        let mut a = OnlineLda::new(config(2));
        let mut b = OnlineLda::new(config(2));
        a.update_batch(&batch);
        b.update_batch_with(&batch, &mut LdaWorkspace::new());
        assert_eq!(a.lambda(), b.lambda());
    }
}
