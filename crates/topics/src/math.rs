//! Special functions and distribution utilities for variational LDA.

use std::collections::HashMap;

use alertops_text::FxBuildHasher;

/// The digamma function ψ(x) = d/dx ln Γ(x), for x > 0.
///
/// Uses the standard recurrence to push the argument to at least 7, then
/// the asymptotic (Bernoulli) series through the B₁₂ term. Accurate to
/// ~1e-12 for x > 0, which is far tighter than variational inference
/// needs.
///
/// # Example
///
/// ```
/// // ψ(1) = −γ (Euler–Mascheroni).
/// let euler_gamma = 0.5772156649015329;
/// assert!((alertops_topics::math::digamma(1.0) + euler_gamma).abs() < 1e-12);
/// ```
#[must_use]
pub fn digamma(mut x: f64) -> f64 {
    assert!(x > 0.0, "digamma requires a positive argument, got {x}");
    let mut result = 0.0;
    // Push the argument to ≥ 7 — with the B₁₂ term below the series'
    // truncation error at 7 is ≈ 1/(12·7¹⁴) ≈ 1e-13, and every
    // recurrence step avoided is a serial division on the E-step's
    // hottest path (γ parameters live in [α, ~10], so the old
    // threshold of 10 cost three extra divisions per evaluation).
    while x < 7.0 {
        result -= 1.0 / x;
        x += 1.0;
    }
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    // ψ(x) ≈ ln x − 1/(2x) − Σ B_{2n} / (2n x^{2n})
    result + x.ln()
        - 0.5 * inv
        - inv2
            * (1.0 / 12.0
                - inv2
                    * (1.0 / 120.0
                        - inv2
                            * (1.0 / 252.0
                                - inv2
                                    * (1.0 / 240.0
                                        - inv2 * (1.0 / 132.0 - inv2 * (691.0 / 32760.0))))))
}

/// The natural log of the gamma function, ln Γ(x), for x > 0.
///
/// Lanczos approximation (g = 7, n = 9); relative error below 1e-13 on
/// the positive axis.
#[must_use]
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires a positive argument, got {x}");
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_81,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_312e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps precision near zero.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Computes `E[log θ]` under a Dirichlet with parameter vector `gamma`:
/// `ψ(γ_k) − ψ(Σ γ)` for each component.
///
/// # Panics
///
/// Panics if `gamma` is empty or any component is non-positive.
#[must_use]
pub fn dirichlet_expectation(gamma: &[f64]) -> Vec<f64> {
    assert!(!gamma.is_empty(), "dirichlet_expectation of empty vector");
    let total: f64 = gamma.iter().sum();
    let psi_total = digamma(total);
    gamma.iter().map(|&g| digamma(g) - psi_total).collect()
}

/// Normalizes `v` in place to sum to 1. No-op for an all-zero vector.
pub fn normalize_in_place(v: &mut [f64]) {
    let sum: f64 = v.iter().sum();
    if sum > 0.0 {
        for x in v.iter_mut() {
            *x /= sum;
        }
    }
}

/// The Kullback–Leibler divergence `KL(p ‖ q)` between two discrete
/// distributions, in nats. Components where `p = 0` contribute zero;
/// components where `p > 0` but `q = 0` contribute `+∞` avoided by
/// flooring q at 1e-12.
#[must_use]
pub fn kl_divergence(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution lengths differ");
    p.iter()
        .zip(q)
        .filter(|(&pi, _)| pi > 0.0)
        .map(|(&pi, &qi)| pi * (pi / qi.max(1e-12)).ln())
        .sum()
}

/// The Jensen–Shannon divergence between two discrete distributions, in
/// nats; symmetric, bounded by ln 2.
///
/// Used by AOLDA to decide whether a window's topic is *emerging*: a
/// topic far (in JS divergence) from every topic of the previous windows
/// has no historical counterpart.
#[must_use]
pub fn js_divergence(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution lengths differ");
    let m: Vec<f64> = p.iter().zip(q).map(|(&a, &b)| 0.5 * (a + b)).collect();
    0.5 * kl_divergence(p, &m) + 0.5 * kl_divergence(q, &m)
}

/// Σ p·ln p over the strictly positive entries of `p` — the negated
/// Shannon entropy, in nats.
///
/// Precompute this once per distribution and hand it to
/// [`js_divergence_prepared`]: the emergence scan compares every window
/// topic against every baseline topic, and the Σp·ln p term of each
/// distribution is pair-independent, so hoisting it halves the `ln`
/// volume of the scan.
#[must_use]
pub fn neg_entropy(p: &[f64]) -> f64 {
    p.iter().filter(|&&x| x > 0.0).map(|&x| x * x.ln()).sum()
}

/// [`js_divergence`] with both distributions' Σp·ln p terms precomputed
/// (via [`neg_entropy`]).
///
/// Uses the identity `JS(p,q) = ½(Σp·ln p + Σq·ln q) − Σ m·ln m` with
/// `m = (p+q)/2`, flooring `m` at 1e-12 inside the logarithm exactly
/// where [`kl_divergence`] floors its denominator. Columns where both
/// inputs are zero (e.g. vocabulary padding after
/// [`crate::AdaptiveOnlineLda::grow_vocab`]) contribute nothing, as in
/// the plain form. Agrees with [`js_divergence`] to floating-point
/// round-off (the summation is grouped differently, so bit-equality is
/// not promised — callers that need run-to-run determinism get it
/// because both runs take the same code path).
#[must_use]
pub fn js_divergence_prepared(p: &[f64], p_plogp: f64, q: &[f64], q_plogp: f64) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution lengths differ");
    let mut cross = 0.0;
    for (&a, &b) in p.iter().zip(q) {
        let m = 0.5 * (a + b);
        if m > 0.0 {
            cross += m * m.max(1e-12).ln();
        }
    }
    0.5 * (p_plogp + q_plogp) - cross
}

/// A memoization layer over [`digamma`], keyed on the exact bit pattern
/// of the argument.
///
/// # Accuracy bound
///
/// The cache is **exact — 0 ULP**: `eval(x)` returns the bit-identical
/// `f64` that [`digamma`] returns for the same `x`, because a hit simply
/// replays the previously computed value for an argument with the same
/// bit pattern and a miss calls [`digamma`] itself. `digamma` is a pure
/// function of its argument's bits, so memoization cannot change any
/// result — only how often the recurrence + Bernoulli series actually
/// runs. This is what lets the sparse AO-LDA kernel use the cache inside
/// differential tests that compare serialized output byte-for-byte.
///
/// The map is bounded: once it holds [`DigammaCache::MAX_ENTRIES`]
/// distinct arguments it is cleared before the next insert. Clearing
/// affects hit rate, never values, so eviction policy is irrelevant to
/// determinism. The map hashes its `u64` keys with
/// [`FxBuildHasher`] — at thousands of probes per window the keyed
/// default hasher would cost more than many of the ψ evaluations it
/// saves, and a lookup table is exactly the place where hash choice
/// cannot leak into results.
#[derive(Debug, Clone, Default)]
pub struct DigammaCache {
    map: HashMap<u64, f64, FxBuildHasher>,
    hits: u64,
    misses: u64,
}

impl DigammaCache {
    /// Entry bound after which the map is cleared (≈1 MiB of table).
    pub const MAX_ENTRIES: usize = 65_536;

    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// ψ(x), memoized. Bit-identical to [`digamma`] (see the type-level
    /// accuracy bound).
    pub fn eval(&mut self, x: f64) -> f64 {
        let key = x.to_bits();
        if let Some(&v) = self.map.get(&key) {
            self.hits += 1;
            return v;
        }
        self.misses += 1;
        if self.map.len() >= Self::MAX_ENTRIES {
            self.map.clear();
        }
        let v = digamma(x);
        self.map.insert(key, v);
        v
    }

    /// `(hits, misses)` since construction; perf introspection only.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Drops all memoized entries (keeps the hit/miss counters).
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

/// Appends `exp(ψ(row[id]) − ψ(row_sum))` for each `id` in `ids` to
/// `out` — the sparse counterpart of exponentiating
/// [`dirichlet_expectation`] over one λ row, touching only the columns a
/// batch actually reads.
///
/// `row_sum` must equal `row.iter().sum()` computed left to right; the
/// caller maintains that invariant so the ψ(Σλ) term is bit-identical
/// to what a dense sweep with a freshly computed sum would use.
///
/// # Panics
///
/// Panics if any `id` is out of bounds for `row`.
pub fn dirichlet_expectation_sparse(row: &[f64], row_sum: f64, ids: &[usize], out: &mut Vec<f64>) {
    let psi_total = digamma(row_sum);
    out.reserve(ids.len());
    for &id in ids {
        out.push((digamma(row[id]) - psi_total).exp());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;

    #[test]
    fn digamma_known_values() {
        // ψ(1) = −γ, ψ(2) = 1 − γ, ψ(1/2) = −γ − 2 ln 2.
        assert!((digamma(1.0) + EULER_GAMMA).abs() < 1e-12);
        assert!((digamma(2.0) - (1.0 - EULER_GAMMA)).abs() < 1e-12);
        assert!((digamma(0.5) + EULER_GAMMA + 2.0 * 2.0_f64.ln()).abs() < 1e-10);
    }

    #[test]
    fn digamma_recurrence_holds() {
        // ψ(x+1) = ψ(x) + 1/x.
        for x in [0.1, 0.7, 1.3, 5.5, 42.0] {
            assert!(
                (digamma(x + 1.0) - digamma(x) - 1.0 / x).abs() < 1e-10,
                "recurrence failed at {x}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "positive argument")]
    fn digamma_rejects_nonpositive() {
        let _ = digamma(0.0);
    }

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = Γ(2) = 1; Γ(5) = 24; Γ(1/2) = √π.
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!(ln_gamma(2.0).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24.0_f64.ln()).abs() < 1e-11);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-11);
    }

    #[test]
    fn ln_gamma_recurrence_holds() {
        // ln Γ(x+1) = ln Γ(x) + ln x.
        for x in [0.3, 1.5, 7.2, 100.0] {
            assert!((ln_gamma(x + 1.0) - ln_gamma(x) - x.ln()).abs() < 1e-9);
        }
    }

    #[test]
    fn dirichlet_expectation_is_negative_and_ordered() {
        let e = dirichlet_expectation(&[1.0, 2.0, 3.0]);
        // E[log θ] components are always negative (θ < 1 a.s. componentwise
        // in expectation) and monotone in the parameter.
        assert!(e.iter().all(|&x| x < 0.0));
        assert!(e[0] < e[1] && e[1] < e[2]);
    }

    #[test]
    fn normalize_in_place_sums_to_one() {
        let mut v = vec![2.0, 6.0, 2.0];
        normalize_in_place(&mut v);
        assert!((v.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((v[1] - 0.6).abs() < 1e-12);
        let mut zeros = vec![0.0, 0.0];
        normalize_in_place(&mut zeros);
        assert_eq!(zeros, vec![0.0, 0.0]);
    }

    #[test]
    fn kl_divergence_properties() {
        let p = [0.5, 0.5];
        let q = [0.9, 0.1];
        assert_eq!(kl_divergence(&p, &p), 0.0);
        assert!(kl_divergence(&p, &q) > 0.0);
        // Not symmetric in general.
        assert!((kl_divergence(&p, &q) - kl_divergence(&q, &p)).abs() > 1e-6);
    }

    #[test]
    fn digamma_cache_is_bit_identical_and_counts() {
        let mut cache = DigammaCache::new();
        let args = [0.11, 1.0, 2.5, 16.75, 1.0, 0.11, 1024.0];
        for &x in &args {
            let cached = cache.eval(x);
            assert_eq!(
                cached.to_bits(),
                digamma(x).to_bits(),
                "cache diverged from digamma at {x}"
            );
        }
        let (hits, misses) = cache.stats();
        assert_eq!(hits, 2, "1.0 and 0.11 repeat once each");
        assert_eq!(misses, 5);
    }

    #[test]
    fn digamma_cache_clear_does_not_change_values() {
        let mut cache = DigammaCache::new();
        let before = cache.eval(3.25);
        cache.clear();
        let after = cache.eval(3.25);
        assert_eq!(before.to_bits(), after.to_bits());
    }

    #[test]
    fn dirichlet_expectation_sparse_matches_dense() {
        let row = [0.3, 1.7, 0.05, 9.0, 2.2];
        let row_sum: f64 = row.iter().sum();
        let dense: Vec<f64> = dirichlet_expectation(&row)
            .iter()
            .map(|e| e.exp())
            .collect();
        let ids = [4usize, 0, 2];
        let mut out = Vec::new();
        dirichlet_expectation_sparse(&row, row_sum, &ids, &mut out);
        assert_eq!(out.len(), ids.len());
        for (slot, &id) in ids.iter().enumerate() {
            assert_eq!(
                out[slot].to_bits(),
                dense[id].to_bits(),
                "sparse cell {id} diverged from dense"
            );
        }
    }

    #[test]
    fn js_prepared_matches_plain_form() {
        // Overlapping, disjoint, identical, and zero-padded pairs — the
        // shapes the emergence scan actually sees.
        let pairs: &[(&[f64], &[f64])] = &[
            (&[0.5, 0.3, 0.2], &[0.1, 0.2, 0.7]),
            (&[1.0, 0.0, 0.0], &[0.0, 0.0, 1.0]),
            (&[0.25, 0.25, 0.5], &[0.25, 0.25, 0.5]),
            (&[0.6, 0.4, 0.0, 0.0], &[0.3, 0.7, 0.0, 0.0]),
        ];
        for (p, q) in pairs {
            let plain = js_divergence(p, q);
            let prepared = js_divergence_prepared(p, neg_entropy(p), q, neg_entropy(q));
            assert!(
                (plain - prepared).abs() < 1e-12,
                "prepared {prepared} vs plain {plain} for {p:?} / {q:?}"
            );
        }
    }

    #[test]
    fn js_divergence_properties() {
        let p = [1.0, 0.0];
        let q = [0.0, 1.0];
        // Maximal for disjoint supports: ln 2.
        assert!((js_divergence(&p, &q) - 2.0_f64.ln()).abs() < 1e-9);
        assert_eq!(js_divergence(&p, &p), 0.0);
        // Symmetric.
        let r = [0.3, 0.7];
        assert!((js_divergence(&p, &r) - js_divergence(&r, &p)).abs() < 1e-12);
        // Bounded.
        assert!(js_divergence(&q, &r) <= 2.0_f64.ln() + 1e-12);
    }
}
