//! Topic models for emerging-alert detection.
//!
//! The paper's reaction **R4 — emerging alert detection** employs "the
//! adaptive online Latent Dirichlet Allocation" (its references 30 and 31) to
//! capture implicit dependencies between alerts that the manually
//! configured strategy-dependency rules miss, so that the few early
//! alerts of a gray failure can be flagged before they cascade.
//!
//! This crate implements that machinery from scratch:
//!
//! * [`math`] — the special functions (digamma, log-gamma) and
//!   distribution utilities variational LDA needs;
//! * [`OnlineLda`] — online variational-Bayes LDA (Hoffman, Blei & Bach,
//!   NIPS 2010): minibatch updates with decaying learning rate, so the
//!   model ingests an alert stream without re-touching history;
//! * [`AdaptiveOnlineLda`] — the AOLDA variant (Gao et al., ICSE 2018):
//!   one topic snapshot per time window, each window's prior adapted from
//!   the previous windows' topics, plus per-window *emerging topic*
//!   scoring by divergence from historical topics.
//!
//! # Example
//!
//! ```
//! use alertops_text::{Tokenizer, Vocabulary};
//! use alertops_topics::{LdaConfig, OnlineLda};
//!
//! let tokenizer = Tokenizer::new();
//! let mut vocab = Vocabulary::new();
//! let docs: Vec<_> = [
//!     "disk full block allocation failed",
//!     "disk usage high block storage",
//!     "memory leak process restarting",
//!     "memory usage high oom killed",
//! ]
//! .iter()
//! .map(|s| vocab.encode_and_update(&tokenizer.tokenize(s)))
//! .collect();
//!
//! let mut lda = OnlineLda::new(LdaConfig {
//!     num_topics: 2,
//!     vocab_size: vocab.len(),
//!     ..LdaConfig::default()
//! });
//! for _ in 0..20 {
//!     lda.update_batch(&docs);
//! }
//! let mixture = lda.infer(&docs[0]);
//! assert_eq!(mixture.len(), 2);
//! let sum: f64 = mixture.iter().sum();
//! assert!((sum - 1.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod dense;
pub mod math;

mod aolda;
mod lda;

pub use aolda::{AdaptiveOnlineLda, AoldaConfig, TopicWindow, WindowTopic};
pub use lda::{LdaConfig, LdaWorkspace, OnlineLda};
