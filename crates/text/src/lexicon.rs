//! Vague-word lexicon and title informativeness scoring.
//!
//! The paper's first anti-pattern, **A1 — unclear name or description**,
//! names typical unclear titles: *"Elastic Computing Service is
//! abnormal"*, *"Instance x is abnormal"*, *"Component y encounters
//! exceptions"*, *"Computing cluster has risks"*. They "describe the
//! system state in a very general way with vague words". A clear title,
//! by contrast, should contain the affected (micro)service and the
//! manifestation of the failure (§II-B2).
//!
//! [`TitleScorer`] operationalizes exactly that: it combines a vague-word
//! density with the presence of a failure manifestation and a concrete
//! subject, producing an informativeness score in `[0, 1]` that the A1
//! detector thresholds.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::Tokenizer;

/// Words that describe system state "in a very general way" without
/// naming a concrete manifestation.
const DEFAULT_VAGUE_WORDS: &[&str] = &[
    "abnormal",
    "abnormality",
    "anomalous",
    "anomaly",
    "bad",
    "broken",
    "degraded",
    "error",
    "errors",
    "exception",
    "exceptions",
    "fault",
    "faulty",
    "issue",
    "issues",
    "problem",
    "problems",
    "risk",
    "risks",
    "strange",
    "unavailable",
    "unhealthy",
    "unknown",
    "unstable",
    "weird",
    "wrong",
];

/// Words that name a concrete failure manifestation (what happened).
const DEFAULT_MANIFESTATION_WORDS: &[&str] = &[
    "full",
    "leak",
    "timeout",
    "timed",
    "refused",
    "rejected",
    "failed",
    "fail",
    "crash",
    "crashed",
    "oom",
    "killed",
    "dropped",
    "lost",
    "corrupt",
    "corrupted",
    "exceeded",
    "over",
    "above",
    "below",
    "under",
    "high",
    "higher",
    "low",
    "lower",
    "slow",
    "down",
    "exhausted",
    "overflow",
    "unreachable",
    "denied",
    "expired",
    "missing",
    "stuck",
    "restarting",
    "evicted",
    "throttled",
];

/// Generic placeholder subjects that do *not* count as naming the
/// affected component ("Instance x", "Component y", "cluster").
const DEFAULT_GENERIC_SUBJECTS: &[&str] = &[
    "instance",
    "component",
    "cluster",
    "node",
    "service",
    "system",
    "module",
    "process",
    "resource",
    "object",
    "entity",
    "x",
    "y",
    "z",
];

/// A configurable lexicon of vague words, manifestation words, and
/// generic subjects.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VagueLexicon {
    vague: BTreeSet<String>,
    manifestation: BTreeSet<String>,
    generic_subjects: BTreeSet<String>,
}

impl VagueLexicon {
    /// The built-in lexicon distilled from the paper's A1 examples.
    #[must_use]
    pub fn standard() -> Self {
        fn set(words: &[&str]) -> BTreeSet<String> {
            words.iter().map(|w| (*w).to_owned()).collect()
        }
        Self {
            vague: set(DEFAULT_VAGUE_WORDS),
            manifestation: set(DEFAULT_MANIFESTATION_WORDS),
            generic_subjects: set(DEFAULT_GENERIC_SUBJECTS),
        }
    }

    /// Adds a vague word (lowercased).
    pub fn add_vague(&mut self, word: impl Into<String>) {
        self.vague.insert(word.into().to_ascii_lowercase());
    }

    /// Adds a manifestation word (lowercased).
    pub fn add_manifestation(&mut self, word: impl Into<String>) {
        self.manifestation.insert(word.into().to_ascii_lowercase());
    }

    /// Whether `token` (already lowercased) is a vague word.
    #[must_use]
    pub fn is_vague(&self, token: &str) -> bool {
        self.vague.contains(token)
    }

    /// Whether `token` names a concrete manifestation.
    #[must_use]
    pub fn is_manifestation(&self, token: &str) -> bool {
        self.manifestation.contains(token)
    }

    /// Whether `token` is a generic placeholder subject.
    #[must_use]
    pub fn is_generic_subject(&self, token: &str) -> bool {
        self.generic_subjects.contains(token)
    }
}

impl Default for VagueLexicon {
    fn default() -> Self {
        Self::standard()
    }
}

/// The per-title breakdown produced by [`TitleScorer::report`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InformativenessReport {
    /// Total (non-stopword) tokens in the title.
    pub token_count: usize,
    /// Tokens flagged as vague.
    pub vague_count: usize,
    /// Whether the title names a concrete failure manifestation.
    pub has_manifestation: bool,
    /// Whether the title names a concrete subject (a token that is
    /// neither vague, generic, nor a number).
    pub has_concrete_subject: bool,
    /// Whether the title contains a quantitative element (number or
    /// percent), e.g. a threshold.
    pub has_quantity: bool,
    /// The final informativeness score in `[0, 1]`.
    pub score: f64,
}

/// Scores alert titles for informativeness.
///
/// The score starts from the non-vague token fraction and is then gated
/// by the two attributes the paper requires of a good title — naming the
/// affected component and the manifestation of the failure:
///
/// ```text
/// base  = 1 - vague_count / token_count     (1.0 for empty titles → then zeroed)
/// score = base * (0.2 + 0.4·has_manifestation + 0.3·has_subject + 0.1·has_quantity)
/// ```
///
/// An empty or whitespace title scores 0. Scores near 1 require a
/// concrete subject *and* manifestation with no vague filler.
///
/// # Example
///
/// ```
/// use alertops_text::TitleScorer;
///
/// let scorer = TitleScorer::new();
/// let clear = scorer.score("Failed to allocate new blocks, disk full");
/// let vague = scorer.score("Instance x is abnormal");
/// assert!(clear > 0.6);
/// assert!(vague < 0.3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TitleScorer {
    lexicon: VagueLexicon,
    tokenizer: Tokenizer,
}

impl TitleScorer {
    /// Creates a scorer with the standard lexicon and tokenizer.
    #[must_use]
    pub fn new() -> Self {
        Self {
            lexicon: VagueLexicon::standard(),
            tokenizer: Tokenizer::new(),
        }
    }

    /// Creates a scorer with a custom lexicon.
    #[must_use]
    pub fn with_lexicon(lexicon: VagueLexicon) -> Self {
        Self {
            lexicon,
            tokenizer: Tokenizer::new(),
        }
    }

    /// The informativeness score of `title`, in `[0, 1]`.
    #[must_use]
    pub fn score(&self, title: &str) -> f64 {
        self.report(title).score
    }

    /// The full per-title breakdown.
    #[must_use]
    pub fn report(&self, title: &str) -> InformativenessReport {
        let tokens = self.tokenizer.tokenize(title);
        if tokens.is_empty() {
            return InformativenessReport {
                token_count: 0,
                vague_count: 0,
                has_manifestation: false,
                has_concrete_subject: false,
                has_quantity: false,
                score: 0.0,
            };
        }
        let mut vague_count = 0;
        let mut has_manifestation = false;
        let mut has_concrete_subject = false;
        let mut has_quantity = false;
        for token in &tokens {
            let is_number = token.bytes().all(|b| b.is_ascii_digit());
            if is_number {
                has_quantity = true;
                continue;
            }
            if self.lexicon.is_vague(token) {
                vague_count += 1;
            } else if self.lexicon.is_manifestation(token) {
                has_manifestation = true;
            } else if !self.lexicon.is_generic_subject(token) {
                has_concrete_subject = true;
            }
        }
        if title.contains('%') {
            has_quantity = true;
        }
        let base = 1.0 - vague_count as f64 / tokens.len() as f64;
        let gate = 0.2
            + 0.4 * f64::from(has_manifestation)
            + 0.3 * f64::from(has_concrete_subject)
            + 0.1 * f64::from(has_quantity);
        InformativenessReport {
            token_count: tokens.len(),
            vague_count,
            has_manifestation,
            has_concrete_subject,
            has_quantity,
            score: (base * gate).min(1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scorer() -> TitleScorer {
        TitleScorer::new()
    }

    #[test]
    fn paper_unclear_examples_score_low() {
        // The four unclear titles quoted by the paper for A1.
        let examples = [
            "Elastic Computing Service is abnormal",
            "Instance x is abnormal",
            "Component y encounters exceptions",
            "Computing cluster has risks",
        ];
        for title in examples {
            let score = scorer().score(title);
            assert!(score < 0.45, "{title:?} scored {score}");
        }
    }

    #[test]
    fn paper_clear_examples_score_high() {
        let examples = [
            "Failed to allocate new blocks, disk full",
            "CPU usage of nginx instance is higher than 80%",
            "haproxy process number warning",
            "Failed to commit changes",
        ];
        for title in examples {
            let score = scorer().score(title);
            assert!(score >= 0.5, "{title:?} scored {score}");
        }
    }

    #[test]
    fn clear_titles_beat_vague_titles() {
        let clear = scorer().score("Failed to allocate new blocks, disk full");
        let vague = scorer().score("Instance x is abnormal");
        assert!(clear > 2.0 * vague);
    }

    #[test]
    fn empty_title_scores_zero() {
        assert_eq!(scorer().score(""), 0.0);
        assert_eq!(scorer().score("   "), 0.0);
    }

    #[test]
    fn report_fields_for_clear_title() {
        let r = scorer().report("CPU usage of nginx instance is higher than 80%");
        assert!(r.has_manifestation); // "higher"
        assert!(r.has_concrete_subject); // "nginx", "cpu", "usage"
        assert!(r.has_quantity); // "80" and '%'
        assert_eq!(r.vague_count, 0);
    }

    #[test]
    fn report_fields_for_vague_title() {
        let r = scorer().report("Instance x is abnormal");
        assert_eq!(r.vague_count, 1);
        assert!(!r.has_manifestation);
        assert!(!r.has_concrete_subject);
        assert!(!r.has_quantity);
    }

    #[test]
    fn quantity_detection_via_percent_sign() {
        let r = scorer().report("disk usage over threshold %");
        assert!(r.has_quantity);
    }

    #[test]
    fn score_is_bounded() {
        for title in [
            "",
            "abnormal",
            "abnormal abnormal abnormal",
            "disk full on vm-42 at 80%",
            "a very long title with many concrete words like disk full timeout leak",
        ] {
            let s = scorer().score(title);
            assert!((0.0..=1.0).contains(&s), "{title:?} scored {s}");
        }
    }

    #[test]
    fn custom_lexicon_changes_verdict() {
        let mut lex = VagueLexicon::standard();
        lex.add_vague("warning");
        let custom = TitleScorer::with_lexicon(lex);
        let std_score = scorer().score("haproxy process number warning");
        let custom_score = custom.score("haproxy process number warning");
        assert!(custom_score < std_score);
    }

    #[test]
    fn lexicon_membership() {
        let lex = VagueLexicon::standard();
        assert!(lex.is_vague("abnormal"));
        assert!(lex.is_manifestation("full"));
        assert!(lex.is_generic_subject("instance"));
        assert!(!lex.is_vague("disk"));
    }
}
