//! Text-analysis substrate for alert governance.
//!
//! Alert titles and descriptions are short, semi-structured strings
//! ("`Failed to allocate new blocks, disk full`",
//! "`nginx_cpu_usage_over_80`"). Several parts of the DSN'22 reproduction
//! need light-weight NLP over them:
//!
//! * the **A1 (unclear name or description)** detector scores how vague a
//!   title is ([`lexicon`]);
//! * **alert aggregation (R2)** and **repeating-alert detection (A5)**
//!   group alerts by title template ([`template`]);
//! * **emerging alert detection (R4)** feeds bag-of-words documents into
//!   an online LDA ([`Tokenizer`], [`Vocabulary`]);
//! * the **QoA** feature extractor uses TF-IDF weights and similarity
//!   measures ([`TfIdf`], [`similarity`]).
//!
//! Everything is implemented from scratch — no external NLP dependencies —
//! which is both a supply-chain decision and a consequence of the thin
//! Rust NLP ecosystem the reproduction plan calls out.
//!
//! # Example
//!
//! ```
//! use alertops_text::{Tokenizer, Vocabulary};
//!
//! let tokenizer = Tokenizer::new();
//! let tokens = tokenizer.tokenize("nginx_cpu_usage_over_80: CPU usage > 80%");
//! assert!(tokens.iter().any(|t| t == "nginx"));
//! assert!(tokens.iter().any(|t| t == "cpu"));
//!
//! let mut vocab = Vocabulary::new();
//! let doc = vocab.encode_and_update(&tokens);
//! assert!(!doc.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod hash;
pub mod lexicon;
pub mod similarity;
pub mod template;

mod tfidf;
mod token;
mod vocab;

pub use hash::{FxBuildHasher, FxHasher};
pub use lexicon::{InformativenessReport, TitleScorer, VagueLexicon};
pub use template::extract_template;
pub use tfidf::TfIdf;
pub use token::Tokenizer;
pub use vocab::{doc_len, BagOfWords, OovPolicy, Vocabulary};
