//! String and vector similarity measures.
//!
//! Used by alert aggregation (R2) to group near-duplicate titles, and by
//! the QoA feature extractor.

use std::collections::BTreeSet;

/// Jaccard similarity of two token sets, in `[0, 1]`.
///
/// Two empty sets are defined to have similarity 1 (they are identical).
///
/// # Example
///
/// ```
/// let a = ["disk", "full"];
/// let b = ["disk", "slow"];
/// let sim = alertops_text::similarity::jaccard(&a, &b);
/// assert!((sim - 1.0 / 3.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn jaccard<S: AsRef<str>>(a: &[S], b: &[S]) -> f64 {
    let sa: BTreeSet<&str> = a.iter().map(AsRef::as_ref).collect();
    let sb: BTreeSet<&str> = b.iter().map(AsRef::as_ref).collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.intersection(&sb).count();
    let union = sa.union(&sb).count();
    inter as f64 / union as f64
}

/// Cosine similarity of two sparse vectors (id-sorted `(id, weight)`
/// pairs), in `[-1, 1]` (for non-negative weights, `[0, 1]`).
///
/// Returns 0 if either vector has zero norm.
#[must_use]
pub fn cosine_sparse(a: &[(usize, f64)], b: &[(usize, f64)]) -> f64 {
    let mut dot = 0.0;
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                dot += a[i].1 * b[j].1;
                i += 1;
                j += 1;
            }
        }
    }
    let na: f64 = a.iter().map(|(_, w)| w * w).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|(_, w)| w * w).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// Levenshtein edit distance between two strings, by characters.
///
/// Classic two-row dynamic program; `O(|a|·|b|)` time, `O(min)` memory.
#[must_use]
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let (short, long) = if a.len() <= b.len() {
        (&a, &b)
    } else {
        (&b, &a)
    };
    if short.is_empty() {
        return long.len();
    }
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut cur = vec![0usize; short.len() + 1];
    for (i, &lc) in long.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &sc) in short.iter().enumerate() {
            let cost = usize::from(lc != sc);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[short.len()]
}

/// Normalized Levenshtein similarity: `1 - distance / max_len`, in
/// `[0, 1]`. Two empty strings have similarity 1.
#[must_use]
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max_len as f64
}

/// Overlap coefficient (Szymkiewicz–Simpson) of two token sets:
/// `|A ∩ B| / min(|A|, |B|)`. More forgiving than Jaccard when one title
/// is a strict subset of another ("disk full" vs "disk full on vm-3").
#[must_use]
pub fn overlap_coefficient<S: AsRef<str>>(a: &[S], b: &[S]) -> f64 {
    let sa: BTreeSet<&str> = a.iter().map(AsRef::as_ref).collect();
    let sb: BTreeSet<&str> = b.iter().map(AsRef::as_ref).collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    if sa.is_empty() || sb.is_empty() {
        return 0.0;
    }
    let inter = sa.intersection(&sb).count();
    inter as f64 / sa.len().min(sb.len()) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jaccard_bounds_and_identity() {
        let a = ["x", "y", "z"];
        assert!((jaccard(&a, &a) - 1.0).abs() < 1e-12);
        let b = ["p", "q"];
        assert_eq!(jaccard(&a, &b), 0.0);
        let empty: [&str; 0] = [];
        assert_eq!(jaccard(&empty, &empty), 1.0);
        assert_eq!(jaccard(&a, &empty), 0.0);
    }

    #[test]
    fn jaccard_ignores_duplicates() {
        assert!((jaccard(&["a", "a", "b"], &["a", "b", "b"]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_sparse_orthogonal_and_parallel() {
        let a = vec![(0, 1.0), (2, 1.0)];
        let b = vec![(1, 5.0), (3, 2.0)];
        assert_eq!(cosine_sparse(&a, &b), 0.0);
        let c = vec![(0, 2.0), (2, 2.0)];
        assert!((cosine_sparse(&a, &c) - 1.0).abs() < 1e-12);
        assert_eq!(cosine_sparse(&a, &[]), 0.0);
    }

    #[test]
    fn cosine_sparse_partial_overlap() {
        let a = vec![(0, 1.0), (1, 1.0)];
        let b = vec![(1, 1.0), (2, 1.0)];
        assert!((cosine_sparse(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn levenshtein_classics() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("same", "same"), 0);
        assert_eq!(levenshtein("ab", "ba"), 2);
    }

    #[test]
    fn levenshtein_is_symmetric() {
        for (a, b) in [("disk full", "disk fill"), ("x", "xyz"), ("", "a")] {
            assert_eq!(levenshtein(a, b), levenshtein(b, a));
        }
    }

    #[test]
    fn levenshtein_unicode_counts_chars_not_bytes() {
        assert_eq!(levenshtein("héllo", "hello"), 1);
        assert_eq!(levenshtein("磁盘", "磁盘满"), 1);
    }

    #[test]
    fn levenshtein_similarity_bounds() {
        assert_eq!(levenshtein_similarity("", ""), 1.0);
        assert_eq!(levenshtein_similarity("abc", "abc"), 1.0);
        assert_eq!(levenshtein_similarity("abc", "xyz"), 0.0);
        let s = levenshtein_similarity("disk full", "disk fill");
        assert!(s > 0.8 && s < 1.0);
    }

    #[test]
    fn overlap_coefficient_subset_is_one() {
        let small = ["disk", "full"];
        let big = ["disk", "full", "on", "vm"];
        assert!((overlap_coefficient(&small, &big) - 1.0).abs() < 1e-12);
        let other = ["memory", "leak"];
        assert_eq!(overlap_coefficient(&small, &other), 0.0);
        let empty: [&str; 0] = [];
        assert_eq!(overlap_coefficient(&empty, &empty), 1.0);
        assert_eq!(overlap_coefficient(&small, &empty), 0.0);
    }
}
