//! TF-IDF weighting over bag-of-words corpora.

use serde::{Deserialize, Serialize};

use crate::vocab::BagOfWords;

/// A TF-IDF model fit over a corpus of bag-of-words documents.
///
/// Uses smoothed inverse document frequency
/// `idf(w) = ln((1 + N) / (1 + df(w))) + 1` (the scikit-learn
/// formulation), so unseen words still get a finite weight and no word
/// gets zero weight. Term frequency is raw count; vectors can be
/// L2-normalized on demand.
///
/// # Example
///
/// ```
/// use alertops_text::{TfIdf, Tokenizer, Vocabulary};
///
/// let tokenizer = Tokenizer::new();
/// let mut vocab = Vocabulary::new();
/// let corpus: Vec<_> = [
///     "disk full on instance a",
///     "disk latency high",
///     "memory leak detected",
/// ]
/// .iter()
/// .map(|s| vocab.encode_and_update(&tokenizer.tokenize(s)))
/// .collect();
///
/// let model = TfIdf::fit(vocab.len(), &corpus);
/// let weights = model.transform(&corpus[0]);
/// // "disk" appears in 2 of 3 docs, so it is down-weighted vs "full".
/// let disk = vocab.id("disk").unwrap();
/// let full = vocab.id("full").unwrap();
/// let w = |id| weights.iter().find(|(i, _)| *i == id).unwrap().1;
/// assert!(w(disk) < w(full));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TfIdf {
    idf: Vec<f64>,
    n_docs: usize,
}

impl TfIdf {
    /// Fits IDF weights over `corpus`, for a vocabulary of `vocab_size`
    /// words. Word ids in the corpus that exceed `vocab_size` are
    /// ignored.
    #[must_use]
    pub fn fit(vocab_size: usize, corpus: &[BagOfWords]) -> Self {
        let mut df = vec![0usize; vocab_size];
        for doc in corpus {
            for &(id, _) in doc {
                if let Some(slot) = df.get_mut(id) {
                    *slot += 1;
                }
            }
        }
        let n = corpus.len();
        let idf = df
            .into_iter()
            .map(|d| ((1 + n) as f64 / (1 + d) as f64).ln() + 1.0)
            .collect();
        Self { idf, n_docs: n }
    }

    /// The number of documents the model was fit on.
    #[must_use]
    pub fn n_docs(&self) -> usize {
        self.n_docs
    }

    /// The IDF weight of word `id` (the smoothed out-of-vocabulary weight
    /// if `id` is out of range).
    #[must_use]
    pub fn idf(&self, id: usize) -> f64 {
        self.idf
            .get(id)
            .copied()
            .unwrap_or_else(|| ((1 + self.n_docs) as f64).ln() + 1.0)
    }

    /// Transforms a document into sparse TF-IDF weights (unnormalized).
    #[must_use]
    pub fn transform(&self, doc: &BagOfWords) -> Vec<(usize, f64)> {
        doc.iter()
            .map(|&(id, count)| (id, count as f64 * self.idf(id)))
            .collect()
    }

    /// Transforms and L2-normalizes a document. Returns an empty vector
    /// for an empty document.
    #[must_use]
    pub fn transform_normalized(&self, doc: &BagOfWords) -> Vec<(usize, f64)> {
        let mut weights = self.transform(doc);
        let norm: f64 = weights.iter().map(|(_, w)| w * w).sum::<f64>().sqrt();
        if norm > 0.0 {
            for (_, w) in &mut weights {
                *w /= norm;
            }
        }
        weights
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<BagOfWords> {
        // word 0 in every doc, word 1 in one doc, word 2 in two docs.
        vec![
            vec![(0, 1), (1, 2)],
            vec![(0, 3), (2, 1)],
            vec![(0, 1), (2, 2)],
        ]
    }

    #[test]
    fn rarer_words_weigh_more() {
        let model = TfIdf::fit(3, &corpus());
        assert!(model.idf(1) > model.idf(2));
        assert!(model.idf(2) > model.idf(0));
    }

    #[test]
    fn ubiquitous_word_has_idf_one() {
        // df == n ⇒ ln(1) + 1 == 1.
        let model = TfIdf::fit(3, &corpus());
        assert!((model.idf(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_id_gets_max_weight() {
        let model = TfIdf::fit(3, &corpus());
        let oov = model.idf(99);
        assert!(oov >= model.idf(1));
    }

    #[test]
    fn transform_scales_by_count() {
        let model = TfIdf::fit(3, &corpus());
        let weights = model.transform(&vec![(1, 2)]);
        assert_eq!(weights.len(), 1);
        assert!((weights[0].1 - 2.0 * model.idf(1)).abs() < 1e-12);
    }

    #[test]
    fn normalized_has_unit_norm() {
        let model = TfIdf::fit(3, &corpus());
        let weights = model.transform_normalized(&corpus()[0]);
        let norm: f64 = weights.iter().map(|(_, w)| w * w).sum::<f64>();
        assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_doc_normalizes_to_empty() {
        let model = TfIdf::fit(3, &corpus());
        assert!(model.transform_normalized(&Vec::new()).is_empty());
    }

    #[test]
    fn empty_corpus_is_fine() {
        let model = TfIdf::fit(4, &[]);
        assert_eq!(model.n_docs(), 0);
        assert!((model.idf(0) - 1.0).abs() < 1e-12);
    }
}
