//! A fast, non-cryptographic hasher for hot-path lookup tables.
//!
//! The standard library's default hasher (SipHash-1-3) is keyed and
//! HashDoS-resistant, but costs ~1 ns/byte — painful when the emerging
//! channel hashes the same short bag-of-words keys hundreds of times per
//! window. [`FxHasher`] is the rustc-style multiply-xor hash: a couple of
//! cycles per written word, which is what the per-window document memos
//! and the vocabulary's interning table actually need. None of those
//! tables is fed attacker-chosen keys across a trust boundary (alert
//! text is already length- and charset-bounded upstream), so DoS
//! resistance buys nothing here.
//!
//! Determinism note: the hasher is unkeyed, so map *iteration order* is
//! stable for a given key set — but no pipeline output may depend on
//! iteration order anyway (the differential test wall enforces this);
//! callers sort or index before anything observable.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap`/`HashSet` state for [`FxHasher`]-backed tables.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// The rustc `FxHash` function: rotate, xor, multiply by a constant with
/// good bit dispersion. Not cryptographic, not HashDoS-resistant — use
/// only for internal tables whose keys are not adversarial.
#[derive(Debug, Clone, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Consume 8 bytes per multiply; the ragged tail is padded by
        // copying into a zeroed word, so equal byte strings always hash
        // equally regardless of how the caller chunks its writes within
        // one `Hash` impl (the std slice/str impls write once).
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(word));
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            let mut word = [0u8; 8];
            word[..tail.len()].copy_from_slice(tail);
            self.add_to_hash(u64::from_le_bytes(word) ^ (tail.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::hash::{BuildHasher, Hash};

    fn hash_one<T: Hash>(value: &T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn equal_keys_hash_equal() {
        let a: Vec<(usize, u32)> = vec![(3, 2), (17, 1)];
        let b = a.clone();
        assert_eq!(hash_one(&a), hash_one(&b));
    }

    #[test]
    fn hashes_disperse_across_small_keys() {
        let mut seen = std::collections::HashSet::new();
        for id in 0..1000usize {
            seen.insert(hash_one(&vec![(id, 1u32)]));
        }
        assert_eq!(seen.len(), 1000, "collisions across tiny keys");
    }

    #[test]
    fn string_keys_work_in_a_map() {
        let mut map: HashMap<String, usize, FxBuildHasher> = HashMap::default();
        map.insert("disk".into(), 0);
        map.insert("disko".into(), 1);
        assert_eq!(map.get("disk"), Some(&0));
        assert_eq!(map.get("disko"), Some(&1));
        assert_eq!(map.get("dis"), None);
    }

    #[test]
    fn ragged_tail_is_length_disambiguated() {
        // "a" vs "a\0" would collide if the tail padding ignored length.
        let a = hash_one(&"a");
        let b = hash_one(&"a\0");
        assert_ne!(a, b);
    }
}
