//! Vocabulary and bag-of-words encoding.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::hash::FxBuildHasher;

/// A sparse bag-of-words document: `(word_id, count)` pairs sorted by
/// word id, with strictly positive counts and no duplicate ids.
pub type BagOfWords = Vec<(usize, u32)>;

/// What to do with a token the vocabulary has never seen.
///
/// Offline pipelines freeze the vocabulary after a corpus-wide fit and
/// [`Drop`](OovPolicy::Drop) anything outside it; streaming pipelines
/// have no corpus to fit on, so they [`Intern`](OovPolicy::Intern)
/// unseen words as they arrive. Interning only ever *appends* ids
/// (first-seen order, dense), so every id handed out earlier stays
/// valid — the stable-id growth path online topic models rely on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum OovPolicy {
    /// Silently drop out-of-vocabulary tokens (frozen vocabulary).
    #[default]
    Drop,
    /// Intern out-of-vocabulary tokens, growing the vocabulary in
    /// place with stable ids (online vocabulary).
    Intern,
}

/// A bidirectional word ↔ id mapping shared by TF-IDF and LDA.
///
/// Ids are assigned densely in first-seen order, so a vocabulary built
/// from the same token stream is always identical — a requirement for
/// reproducible topic models.
///
/// # Example
///
/// ```
/// use alertops_text::Vocabulary;
///
/// let mut vocab = Vocabulary::new();
/// let doc = vocab.encode_and_update(&["disk", "full", "disk"]);
/// assert_eq!(vocab.len(), 2);
/// assert_eq!(doc, vec![(0, 2), (1, 1)]);
/// assert_eq!(vocab.word(0), Some("disk"));
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Vocabulary {
    /// Fx-hashed: every token of every alert probes this map once when
    /// interning. Lookup results feed ids, never iteration order — and
    /// the unkeyed hasher makes serialized map order reproducible
    /// across processes, which the keyed default never was.
    word_to_id: HashMap<String, usize, FxBuildHasher>,
    id_to_word: Vec<String>,
}

impl Vocabulary {
    /// Creates an empty vocabulary.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The number of distinct words.
    #[must_use]
    pub fn len(&self) -> usize {
        self.id_to_word.len()
    }

    /// Whether the vocabulary is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.id_to_word.is_empty()
    }

    /// The id of `word`, if known.
    #[must_use]
    pub fn id(&self, word: &str) -> Option<usize> {
        self.word_to_id.get(word).copied()
    }

    /// The word with id `id`, if in range.
    #[must_use]
    pub fn word(&self, id: usize) -> Option<&str> {
        self.id_to_word.get(id).map(String::as_str)
    }

    /// Interns `word`, returning its (possibly new) id.
    pub fn intern(&mut self, word: &str) -> usize {
        if let Some(&id) = self.word_to_id.get(word) {
            return id;
        }
        let id = self.id_to_word.len();
        self.id_to_word.push(word.to_owned());
        self.word_to_id.insert(word.to_owned(), id);
        id
    }

    /// Encodes `tokens` into a sorted sparse bag-of-words, adding unseen
    /// words to the vocabulary.
    pub fn encode_and_update<S: AsRef<str>>(&mut self, tokens: &[S]) -> BagOfWords {
        let mut counts: HashMap<usize, u32> = HashMap::new();
        for token in tokens {
            let id = self.intern(token.as_ref());
            *counts.entry(id).or_insert(0) += 1;
        }
        let mut doc: BagOfWords = counts.into_iter().collect();
        doc.sort_unstable_by_key(|&(id, _)| id);
        doc
    }

    /// Encodes `tokens` against the *frozen* vocabulary: unseen words are
    /// silently dropped. Use for inference against a trained model.
    #[must_use]
    pub fn encode_frozen<S: AsRef<str>>(&self, tokens: &[S]) -> BagOfWords {
        let mut counts: HashMap<usize, u32> = HashMap::new();
        for token in tokens {
            if let Some(id) = self.id(token.as_ref()) {
                *counts.entry(id).or_insert(0) += 1;
            }
        }
        let mut doc: BagOfWords = counts.into_iter().collect();
        doc.sort_unstable_by_key(|&(id, _)| id);
        doc
    }

    /// Encodes `tokens` under an explicit out-of-vocabulary policy:
    /// [`OovPolicy::Drop`] behaves like [`encode_frozen`](Self::encode_frozen),
    /// [`OovPolicy::Intern`] like [`encode_and_update`](Self::encode_and_update).
    pub fn encode(&mut self, tokens: &[impl AsRef<str>], oov: OovPolicy) -> BagOfWords {
        match oov {
            OovPolicy::Drop => self.encode_frozen(tokens),
            OovPolicy::Intern => self.encode_and_update(tokens),
        }
    }

    /// Counts one token into an under-construction document, the
    /// streaming counterpart of [`encode`](Self::encode): calling this
    /// for each token of a document and then sorting `doc` by id (e.g.
    /// `doc.sort_unstable_by_key(|&(id, _)| id)`) produces a bag of
    /// words byte-identical to the batch encoders — same interning
    /// order, same counts — without materializing a `Vec<String>` of
    /// tokens or a per-document counting map. Documents here are alert
    /// titles (a handful of distinct words), so the linear scan beats a
    /// hash map on both allocation and lookup cost.
    pub fn count_token(&mut self, token: &str, oov: OovPolicy, doc: &mut BagOfWords) {
        let id = match oov {
            OovPolicy::Intern => self.intern(token),
            OovPolicy::Drop => match self.id(token) {
                Some(id) => id,
                None => return,
            },
        };
        match doc.iter_mut().find(|entry| entry.0 == id) {
            Some(entry) => entry.1 += 1,
            None => doc.push((id, 1)),
        }
    }

    /// Clears every word, returning the vocabulary to its freshly
    /// constructed state. Previously issued ids become meaningless.
    pub fn clear(&mut self) {
        self.word_to_id.clear();
        self.id_to_word.clear();
    }

    /// Iterates over `(id, word)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &str)> {
        self.id_to_word
            .iter()
            .enumerate()
            .map(|(id, w)| (id, w.as_str()))
    }
}

impl<S: AsRef<str>> FromIterator<S> for Vocabulary {
    fn from_iter<I: IntoIterator<Item = S>>(iter: I) -> Self {
        let mut vocab = Vocabulary::new();
        for word in iter {
            vocab.intern(word.as_ref());
        }
        vocab
    }
}

/// Returns the total token count of a bag-of-words document.
#[must_use]
pub fn doc_len(doc: &BagOfWords) -> u32 {
    doc.iter().map(|&(_, c)| c).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocabulary::new();
        let a = v.intern("disk");
        let b = v.intern("disk");
        assert_eq!(a, b);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn ids_are_dense_first_seen_order() {
        let v: Vocabulary = ["c", "a", "b", "a"].into_iter().collect();
        assert_eq!(v.id("c"), Some(0));
        assert_eq!(v.id("a"), Some(1));
        assert_eq!(v.id("b"), Some(2));
        assert_eq!(v.len(), 3);
        assert_eq!(v.word(1), Some("a"));
        assert_eq!(v.word(9), None);
    }

    #[test]
    fn encode_counts_and_sorts() {
        let mut v = Vocabulary::new();
        let doc = v.encode_and_update(&["b", "a", "b", "b"]);
        // "b" interned first (id 0), then "a" (id 1); output sorted by id.
        assert_eq!(doc, vec![(0, 3), (1, 1)]);
        assert_eq!(doc_len(&doc), 4);
    }

    #[test]
    fn encode_frozen_drops_unknown() {
        let mut v = Vocabulary::new();
        v.encode_and_update(&["disk", "full"]);
        let doc = v.encode_frozen(&["disk", "new_word", "disk"]);
        assert_eq!(doc, vec![(v.id("disk").unwrap(), 2)]);
    }

    #[test]
    fn empty_inputs() {
        let mut v = Vocabulary::new();
        let doc = v.encode_and_update::<&str>(&[]);
        assert!(doc.is_empty());
        assert!(v.is_empty());
        assert_eq!(doc_len(&doc), 0);
    }

    #[test]
    fn iter_yields_in_id_order() {
        let v: Vocabulary = ["x", "y"].into_iter().collect();
        let pairs: Vec<_> = v.iter().collect();
        assert_eq!(pairs, vec![(0, "x"), (1, "y")]);
    }

    #[test]
    fn encode_policy_dispatches() {
        let mut v: Vocabulary = ["disk"].into_iter().collect();
        let dropped = v.encode(&["disk", "quota"], OovPolicy::Drop);
        assert_eq!(dropped, vec![(0, 1)]);
        assert_eq!(v.len(), 1, "Drop must not grow the vocabulary");
        let interned = v.encode(&["disk", "quota"], OovPolicy::Intern);
        assert_eq!(interned, vec![(0, 1), (1, 1)]);
        assert_eq!(v.id("quota"), Some(1));
    }

    #[test]
    fn interning_only_appends_ids() {
        let mut v: Vocabulary = ["a", "b"].into_iter().collect();
        let before: Vec<usize> = ["a", "b"].iter().filter_map(|w| v.id(w)).collect();
        v.encode(&["c", "a", "d"], OovPolicy::Intern);
        let after: Vec<usize> = ["a", "b"].iter().filter_map(|w| v.id(w)).collect();
        assert_eq!(before, after, "existing ids must survive growth");
        assert_eq!(v.id("c"), Some(2));
        assert_eq!(v.id("d"), Some(3));
    }

    #[test]
    fn count_token_matches_batch_encoders() {
        let docs: &[&[&str]] = &[
            &["b", "a", "b", "b"],
            &["disk", "full", "disk"],
            &[],
            &["quota", "disk", "quota", "new"],
        ];
        for oov in [OovPolicy::Intern, OovPolicy::Drop] {
            let mut batch_vocab: Vocabulary = ["disk", "full"].into_iter().collect();
            let mut stream_vocab = batch_vocab.clone();
            for tokens in docs {
                let expected = batch_vocab.encode(tokens, oov);
                let mut doc = BagOfWords::new();
                for token in *tokens {
                    stream_vocab.count_token(token, oov, &mut doc);
                }
                doc.sort_unstable_by_key(|&(id, _)| id);
                assert_eq!(doc, expected, "oov {oov:?}, tokens {tokens:?}");
            }
            assert_eq!(stream_vocab.len(), batch_vocab.len());
        }
    }

    #[test]
    fn clear_resets_to_empty() {
        let mut v: Vocabulary = ["a", "b"].into_iter().collect();
        v.clear();
        assert!(v.is_empty());
        assert_eq!(v.id("a"), None);
        // Ids restart from zero after a clear.
        assert_eq!(v.intern("z"), 0);
    }
}
