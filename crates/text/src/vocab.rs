//! Vocabulary and bag-of-words encoding.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// A sparse bag-of-words document: `(word_id, count)` pairs sorted by
/// word id, with strictly positive counts and no duplicate ids.
pub type BagOfWords = Vec<(usize, u32)>;

/// A bidirectional word ↔ id mapping shared by TF-IDF and LDA.
///
/// Ids are assigned densely in first-seen order, so a vocabulary built
/// from the same token stream is always identical — a requirement for
/// reproducible topic models.
///
/// # Example
///
/// ```
/// use alertops_text::Vocabulary;
///
/// let mut vocab = Vocabulary::new();
/// let doc = vocab.encode_and_update(&["disk", "full", "disk"]);
/// assert_eq!(vocab.len(), 2);
/// assert_eq!(doc, vec![(0, 2), (1, 1)]);
/// assert_eq!(vocab.word(0), Some("disk"));
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Vocabulary {
    word_to_id: HashMap<String, usize>,
    id_to_word: Vec<String>,
}

impl Vocabulary {
    /// Creates an empty vocabulary.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The number of distinct words.
    #[must_use]
    pub fn len(&self) -> usize {
        self.id_to_word.len()
    }

    /// Whether the vocabulary is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.id_to_word.is_empty()
    }

    /// The id of `word`, if known.
    #[must_use]
    pub fn id(&self, word: &str) -> Option<usize> {
        self.word_to_id.get(word).copied()
    }

    /// The word with id `id`, if in range.
    #[must_use]
    pub fn word(&self, id: usize) -> Option<&str> {
        self.id_to_word.get(id).map(String::as_str)
    }

    /// Interns `word`, returning its (possibly new) id.
    pub fn intern(&mut self, word: &str) -> usize {
        if let Some(&id) = self.word_to_id.get(word) {
            return id;
        }
        let id = self.id_to_word.len();
        self.id_to_word.push(word.to_owned());
        self.word_to_id.insert(word.to_owned(), id);
        id
    }

    /// Encodes `tokens` into a sorted sparse bag-of-words, adding unseen
    /// words to the vocabulary.
    pub fn encode_and_update<S: AsRef<str>>(&mut self, tokens: &[S]) -> BagOfWords {
        let mut counts: HashMap<usize, u32> = HashMap::new();
        for token in tokens {
            let id = self.intern(token.as_ref());
            *counts.entry(id).or_insert(0) += 1;
        }
        let mut doc: BagOfWords = counts.into_iter().collect();
        doc.sort_unstable_by_key(|&(id, _)| id);
        doc
    }

    /// Encodes `tokens` against the *frozen* vocabulary: unseen words are
    /// silently dropped. Use for inference against a trained model.
    #[must_use]
    pub fn encode_frozen<S: AsRef<str>>(&self, tokens: &[S]) -> BagOfWords {
        let mut counts: HashMap<usize, u32> = HashMap::new();
        for token in tokens {
            if let Some(id) = self.id(token.as_ref()) {
                *counts.entry(id).or_insert(0) += 1;
            }
        }
        let mut doc: BagOfWords = counts.into_iter().collect();
        doc.sort_unstable_by_key(|&(id, _)| id);
        doc
    }

    /// Iterates over `(id, word)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &str)> {
        self.id_to_word
            .iter()
            .enumerate()
            .map(|(id, w)| (id, w.as_str()))
    }
}

impl<S: AsRef<str>> FromIterator<S> for Vocabulary {
    fn from_iter<I: IntoIterator<Item = S>>(iter: I) -> Self {
        let mut vocab = Vocabulary::new();
        for word in iter {
            vocab.intern(word.as_ref());
        }
        vocab
    }
}

/// Returns the total token count of a bag-of-words document.
#[must_use]
pub fn doc_len(doc: &BagOfWords) -> u32 {
    doc.iter().map(|&(_, c)| c).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocabulary::new();
        let a = v.intern("disk");
        let b = v.intern("disk");
        assert_eq!(a, b);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn ids_are_dense_first_seen_order() {
        let v: Vocabulary = ["c", "a", "b", "a"].into_iter().collect();
        assert_eq!(v.id("c"), Some(0));
        assert_eq!(v.id("a"), Some(1));
        assert_eq!(v.id("b"), Some(2));
        assert_eq!(v.len(), 3);
        assert_eq!(v.word(1), Some("a"));
        assert_eq!(v.word(9), None);
    }

    #[test]
    fn encode_counts_and_sorts() {
        let mut v = Vocabulary::new();
        let doc = v.encode_and_update(&["b", "a", "b", "b"]);
        // "b" interned first (id 0), then "a" (id 1); output sorted by id.
        assert_eq!(doc, vec![(0, 3), (1, 1)]);
        assert_eq!(doc_len(&doc), 4);
    }

    #[test]
    fn encode_frozen_drops_unknown() {
        let mut v = Vocabulary::new();
        v.encode_and_update(&["disk", "full"]);
        let doc = v.encode_frozen(&["disk", "new_word", "disk"]);
        assert_eq!(doc, vec![(v.id("disk").unwrap(), 2)]);
    }

    #[test]
    fn empty_inputs() {
        let mut v = Vocabulary::new();
        let doc = v.encode_and_update::<&str>(&[]);
        assert!(doc.is_empty());
        assert!(v.is_empty());
        assert_eq!(doc_len(&doc), 0);
    }

    #[test]
    fn iter_yields_in_id_order() {
        let v: Vocabulary = ["x", "y"].into_iter().collect();
        let pairs: Vec<_> = v.iter().collect();
        assert_eq!(pairs, vec![(0, "x"), (1, "y")]);
    }
}
