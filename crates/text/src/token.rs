//! Tokenization of alert titles, descriptions, and log lines.

use std::collections::{BTreeSet, HashSet};

use crate::hash::FxBuildHasher;

/// Default English + operations stopwords stripped during tokenization.
///
/// The list is intentionally small: alert titles are short and most words
/// carry signal. Vague words like "abnormal" are *not* stopwords — the A1
/// detector needs to see them.
const DEFAULT_STOPWORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "by", "for", "from", "has", "have", "in", "is",
    "it", "its", "of", "on", "or", "than", "that", "the", "then", "this", "to", "was", "were",
    "will", "with",
];

/// A deterministic, allocation-light tokenizer for alert text.
///
/// Pipeline:
/// 1. split on any non-alphanumeric byte (so `nginx_cpu_usage_over_80`
///    yields `nginx cpu usage over 80`);
/// 2. split camelCase boundaries (`HaProxyDown` → `ha proxy down`);
/// 3. lowercase;
/// 4. drop stopwords and empty fragments;
/// 5. optionally drop pure numbers (kept by default — thresholds like
///    `80` are informative in titles).
///
/// # Example
///
/// ```
/// use alertops_text::Tokenizer;
///
/// let t = Tokenizer::new();
/// assert_eq!(
///     t.tokenize("HaproxyProcessNumber warning"),
///     vec!["haproxy", "process", "number", "warning"],
/// );
/// ```
#[derive(Debug, Clone)]
pub struct Tokenizer {
    /// Fx-hashed: probed once per token on the emerging channel's hot
    /// path, and membership is the only operation — iteration order
    /// never matters.
    stopwords: HashSet<String, FxBuildHasher>,
    keep_numbers: bool,
    min_len: usize,
}

impl Tokenizer {
    /// Creates a tokenizer with the default stopword list, keeping
    /// numeric tokens, with a minimum token length of 1.
    #[must_use]
    pub fn new() -> Self {
        Self {
            stopwords: DEFAULT_STOPWORDS.iter().map(|s| (*s).to_owned()).collect(),
            keep_numbers: true,
            min_len: 1,
        }
    }

    /// Creates a tokenizer with no stopword filtering at all.
    #[must_use]
    pub fn without_stopwords() -> Self {
        Self {
            stopwords: HashSet::default(),
            keep_numbers: true,
            min_len: 1,
        }
    }

    /// Drops purely numeric tokens (useful for topic modelling, where
    /// instance numbers are noise).
    #[must_use]
    pub fn drop_numbers(mut self) -> Self {
        self.keep_numbers = false;
        self
    }

    /// Sets the minimum kept token length.
    #[must_use]
    pub fn min_token_len(mut self, len: usize) -> Self {
        self.min_len = len.max(1);
        self
    }

    /// Adds an extra stopword.
    #[must_use]
    pub fn with_stopword(mut self, word: impl Into<String>) -> Self {
        self.stopwords.insert(word.into().to_ascii_lowercase());
        self
    }

    /// Tokenizes `text` into lowercase tokens.
    ///
    /// The output never contains empty strings, and is deterministic for
    /// a given tokenizer configuration.
    #[must_use]
    pub fn tokenize(&self, text: &str) -> Vec<String> {
        let mut tokens = Vec::new();
        let mut scratch = String::new();
        self.for_each_token(text, &mut scratch, |tok| tokens.push(tok.to_owned()));
        tokens
    }

    /// Streams the tokens of `text` into `f` without allocating per
    /// token: each token is lowercased into `scratch` (a caller-owned
    /// buffer, reused across calls) and handed to `f` as a borrowed
    /// `&str` valid only for that invocation.
    ///
    /// This visits exactly the tokens [`tokenize`](Self::tokenize) would
    /// return, in the same order — `tokenize` is implemented on top of
    /// this — so a consumer that interns the borrowed tokens observes a
    /// byte-identical stream to one that materializes the `Vec<String>`.
    /// Hot paths (the emerging-alert channel encodes every alert title
    /// every window) use this to skip the two allocations per token that
    /// `tokenize` pays (the lowercased `String` plus the `Vec` slot).
    pub fn for_each_token(&self, text: &str, scratch: &mut String, mut f: impl FnMut(&str)) {
        for raw in text.split(|c: char| !c.is_alphanumeric()) {
            if raw.is_empty() {
                continue;
            }
            for_each_camel_piece(raw, |piece| {
                scratch.clear();
                for ch in piece.chars() {
                    scratch.push(ch.to_ascii_lowercase());
                }
                if scratch.len() < self.min_len {
                    return;
                }
                if self.stopwords.contains(scratch.as_str()) {
                    return;
                }
                if !self.keep_numbers && scratch.bytes().all(|b| b.is_ascii_digit()) {
                    return;
                }
                f(scratch);
            });
        }
    }

    /// Tokenizes and deduplicates, preserving first-seen order. Useful
    /// for set-based similarity.
    #[must_use]
    pub fn tokenize_unique(&self, text: &str) -> Vec<String> {
        let mut seen = BTreeSet::new();
        self.tokenize(text)
            .into_iter()
            .filter(|t| seen.insert(t.clone()))
            .collect()
    }
}

impl Default for Tokenizer {
    fn default() -> Self {
        Self::new()
    }
}

/// Splits a single alphanumeric run on camelCase boundaries and
/// letter/digit boundaries: `"HAProxy2Down"` → `["HA", "Proxy", "2", "Down"]`
/// (approximately; consecutive uppercase letters stay together until a
/// lowercase letter follows).
#[cfg(test)]
fn split_camel_and_digits(s: &str) -> Vec<&str> {
    let mut pieces = Vec::new();
    for_each_camel_piece(s, |p| pieces.push(p));
    pieces
}

/// Internal-iterator form of [`split_camel_and_digits`]: visits each
/// non-empty piece without building a `Vec`. The boundary rules are the
/// tokenizer's contract; the `Vec` wrapper above exists only for tests
/// and callers that genuinely need the collection.
fn for_each_camel_piece<'a>(s: &'a str, mut f: impl FnMut(&'a str)) {
    let bytes = s.as_bytes();
    let mut start = 0;
    for i in 1..bytes.len() {
        let prev = bytes[i - 1] as char;
        let cur = bytes[i] as char;
        let boundary =
            // lower/digit → upper: fooBar, foo2Bar handled by digit rule
            (prev.is_ascii_lowercase() && cur.is_ascii_uppercase())
            // letter → digit or digit → letter
            || (prev.is_ascii_alphabetic() && cur.is_ascii_digit())
            || (prev.is_ascii_digit() && cur.is_ascii_alphabetic())
            // acronym end: "HTTPServer" → "HTTP" | "Server"
            || (prev.is_ascii_uppercase()
                && cur.is_ascii_uppercase()
                && bytes.get(i + 1).is_some_and(|b| (*b as char).is_ascii_lowercase()));
        if boundary {
            if start < i {
                f(&s[start..i]);
            }
            start = i;
        }
    }
    // Non-ASCII input skips boundary logic gracefully: the slice indices
    // above only fire on ASCII classes, and a trailing multi-byte char
    // simply stays inside its piece.
    if start < s.len() {
        f(&s[start..]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_snake_case() {
        let t = Tokenizer::new();
        assert_eq!(
            t.tokenize("nginx_cpu_usage_over_80"),
            vec!["nginx", "cpu", "usage", "over", "80"]
        );
    }

    #[test]
    fn splits_camel_case_and_acronyms() {
        assert_eq!(split_camel_and_digits("fooBar"), vec!["foo", "Bar"]);
        assert_eq!(split_camel_and_digits("HTTPServer"), vec!["HTTP", "Server"]);
        assert_eq!(
            split_camel_and_digits("proxy2down"),
            vec!["proxy", "2", "down"]
        );
        assert_eq!(split_camel_and_digits("x"), vec!["x"]);
    }

    #[test]
    fn lowercases_and_strips_stopwords() {
        let t = Tokenizer::new();
        assert_eq!(
            t.tokenize("Failed to commit THE changes"),
            vec!["failed", "commit", "changes"]
        );
    }

    #[test]
    fn without_stopwords_keeps_everything() {
        let t = Tokenizer::without_stopwords();
        assert_eq!(
            t.tokenize("Failed to commit"),
            vec!["failed", "to", "commit"]
        );
    }

    #[test]
    fn drop_numbers_removes_pure_numerics_only() {
        let t = Tokenizer::new().drop_numbers();
        assert_eq!(t.tokenize("disk 80 vm42"), vec!["disk", "vm"]);
    }

    #[test]
    fn min_len_filters_short_tokens() {
        let t = Tokenizer::without_stopwords().min_token_len(3);
        assert!(t.tokenize("io is up").is_empty());
        assert_eq!(t.tokenize("disk full ok"), vec!["disk", "full"]);
    }

    #[test]
    fn custom_stopword() {
        let t = Tokenizer::new().with_stopword("Alert");
        assert_eq!(t.tokenize("alert disk ALERT"), vec!["disk"]);
    }

    #[test]
    fn no_empty_tokens_ever() {
        let t = Tokenizer::new();
        for text in ["", "   ", "___", "a__b", "!!!", "--x--"] {
            assert!(t.tokenize(text).iter().all(|tok| !tok.is_empty()));
        }
    }

    #[test]
    fn unique_preserves_first_seen_order() {
        let t = Tokenizer::new();
        assert_eq!(
            t.tokenize_unique("disk full disk error full"),
            vec!["disk", "full", "error"]
        );
    }

    #[test]
    fn handles_non_ascii_without_panicking() {
        let t = Tokenizer::new();
        let tokens = t.tokenize("磁盘 full déjà vu");
        assert!(tokens.iter().any(|x| x == "full"));
    }

    #[test]
    fn for_each_token_matches_tokenize() {
        let configs = [
            Tokenizer::new(),
            Tokenizer::without_stopwords(),
            Tokenizer::new().drop_numbers(),
            Tokenizer::without_stopwords().min_token_len(3),
            Tokenizer::new().with_stopword("alert"),
        ];
        let texts = [
            "nginx_cpu_usage_over_80: CPU usage > 80%",
            "HaproxyProcessNumber warning",
            "Failed to commit THE changes",
            "磁盘 full déjà vu",
            "",
            "--x-- !!! a__b vm42 HTTPServer2Down",
        ];
        for t in &configs {
            for text in &texts {
                let mut streamed = Vec::new();
                let mut scratch = String::new();
                t.for_each_token(text, &mut scratch, |tok| streamed.push(tok.to_owned()));
                assert_eq!(streamed, t.tokenize(text), "mismatch on {text:?}");
            }
        }
    }

    #[test]
    fn deterministic() {
        let t = Tokenizer::new();
        let a = t.tokenize("Instance x is abnormal");
        let b = t.tokenize("Instance x is abnormal");
        assert_eq!(a, b);
    }
}
