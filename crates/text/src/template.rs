//! Alert title template extraction.
//!
//! Alerts produced by the same strategy share a title *template* with
//! variable fragments (instance names, numbers, IPs) substituted in.
//! Normalizing titles back to their template lets the aggregation
//! reaction (R2) and the repeating-alert detector (A5) group alerts even
//! when the raw strings differ:
//!
//! ```text
//! "disk usage of vm-1842 over 90%"  ─┐
//! "disk usage of vm-0007 over 91%"  ─┴→ "disk usage of <id> over <num>%"
//! ```

/// Normalizes an alert title into its template by masking variable
/// fragments:
///
/// * pure numbers → `<num>` (also inside percentages);
/// * hex-looking runs of length ≥ 6 (commit ids, uuid chunks) → `<hex>`;
/// * word-digit compounds like `vm-1842`, `node07` → `<id>`;
/// * IPv4 dotted quads → `<ip>`;
/// * whitespace collapsed, text lowercased.
///
/// The mapping is deterministic and idempotent.
///
/// # Example
///
/// ```
/// use alertops_text::extract_template;
///
/// assert_eq!(
///     extract_template("Disk usage of vm-1842 over 90%"),
///     "disk usage of <id> over <num>%",
/// );
/// assert_eq!(
///     extract_template("request to 10.0.3.7 timed out"),
///     "request to <ip> timed out",
/// );
/// ```
#[must_use]
pub fn extract_template(title: &str) -> String {
    let mut out = Vec::new();
    for word in title.split_whitespace() {
        out.push(mask_word(word));
    }
    out.join(" ")
}

fn mask_word(word: &str) -> String {
    // Separate leading/trailing punctuation so "vm-1842," masks cleanly.
    let start = word.find(|c: char| c.is_alphanumeric());
    let Some(start) = start else {
        return word.to_ascii_lowercase();
    };
    let end = word
        .rfind(|c: char| c.is_alphanumeric())
        .map_or(word.len(), |i| {
            i + word[i..].chars().next().map_or(1, char::len_utf8)
        });
    let (prefix, rest) = word.split_at(start);
    let (core, suffix) = rest.split_at(end - start);
    format!(
        "{}{}{}",
        prefix.to_ascii_lowercase(),
        mask_core(core),
        suffix.to_ascii_lowercase()
    )
}

fn mask_core(core: &str) -> String {
    if is_ipv4(core) {
        return "<ip>".to_owned();
    }
    let has_digit = core.bytes().any(|b| b.is_ascii_digit());
    let all_hex = core.bytes().all(|b| b.is_ascii_hexdigit());
    // Hex ids: long enough that a real English word is unlikely. With a
    // digit present 6 chars suffice; all-letter hex ("deadbeef") needs 8.
    if all_hex && ((has_digit && core.len() >= 6) || core.len() >= 8) {
        if core.bytes().all(|b| b.is_ascii_digit()) {
            return "<num>".to_owned();
        }
        return "<hex>".to_owned();
    }
    if !has_digit {
        return core.to_ascii_lowercase();
    }
    if core.bytes().all(|b| b.is_ascii_digit() || b == b'.') {
        return "<num>".to_owned();
    }
    // Mixed word/digit compound: an identifier.
    "<id>".to_owned()
}

fn is_ipv4(s: &str) -> bool {
    let parts: Vec<&str> = s.split('.').collect();
    parts.len() == 4
        && parts.iter().all(|p| {
            !p.is_empty()
                && p.len() <= 3
                && p.bytes().all(|b| b.is_ascii_digit())
                && p.parse::<u16>().is_ok_and(|v| v <= 255)
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_numbers() {
        assert_eq!(
            extract_template("queue depth is 15000"),
            "queue depth is <num>"
        );
        assert_eq!(extract_template("90% used"), "<num>% used");
    }

    #[test]
    fn masks_identifiers() {
        assert_eq!(extract_template("vm-1842 down"), "<id> down");
        assert_eq!(extract_template("node07 unreachable"), "<id> unreachable");
    }

    #[test]
    fn masks_ipv4_but_not_lookalikes() {
        assert_eq!(extract_template("ping 10.0.3.7 failed"), "ping <ip> failed");
        // 999 is not a valid octet → treated as a number-with-dots.
        assert_eq!(extract_template("v 1.2.3.999"), "v <num>");
        // Version strings (3 parts) are numbers, not IPs.
        assert_eq!(extract_template("agent 1.2.3 died"), "agent <num> died");
    }

    #[test]
    fn masks_hex_ids() {
        assert_eq!(
            extract_template("commit deadbeef rejected"),
            "commit <hex> rejected"
        );
        // Short hex-looking words that are real words ("bed") stay.
        assert_eq!(extract_template("bed fed"), "bed fed");
    }

    #[test]
    fn preserves_punctuation_and_lowercases() {
        assert_eq!(extract_template("Disk FULL on vm-3!"), "disk full on <id>!");
        assert_eq!(extract_template("(vm-3)"), "(<id>)");
    }

    #[test]
    fn idempotent() {
        for title in [
            "Disk usage of vm-1842 over 90%",
            "request to 10.0.3.7 timed out",
            "plain words only",
        ] {
            let once = extract_template(title);
            assert_eq!(extract_template(&once), once);
        }
    }

    #[test]
    fn same_strategy_titles_collapse() {
        let a = extract_template("disk usage of vm-0007 over 91%");
        let b = extract_template("disk usage of vm-1842 over 90%");
        assert_eq!(a, b);
    }

    #[test]
    fn different_templates_stay_distinct() {
        let a = extract_template("disk usage of vm-1 over 90%");
        let b = extract_template("memory usage of vm-1 over 90%");
        assert_ne!(a, b);
    }

    #[test]
    fn whitespace_collapsed() {
        assert_eq!(extract_template("  a   b  "), "a b");
        assert_eq!(extract_template(""), "");
    }

    #[test]
    fn pure_punctuation_word() {
        assert_eq!(extract_template("-- !!"), "-- !!");
    }
}
