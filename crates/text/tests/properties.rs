//! Property-based tests over the text substrate.

use proptest::prelude::*;

use alertops_text::similarity::{
    cosine_sparse, jaccard, levenshtein, levenshtein_similarity, overlap_coefficient,
};
use alertops_text::{extract_template, TitleScorer, Tokenizer, Vocabulary};

proptest! {
    #[test]
    fn tokenizer_never_emits_empty_or_uppercase(s in ".{0,120}") {
        let tokens = Tokenizer::new().tokenize(&s);
        for token in &tokens {
            prop_assert!(!token.is_empty());
            prop_assert_eq!(token.to_ascii_lowercase(), token.clone());
        }
    }

    #[test]
    fn tokenizer_is_deterministic(s in ".{0,120}") {
        let t = Tokenizer::new();
        prop_assert_eq!(t.tokenize(&s), t.tokenize(&s));
    }

    #[test]
    fn template_extraction_is_idempotent(s in "[a-zA-Z0-9 .:%\\-]{0,80}") {
        let once = extract_template(&s);
        prop_assert_eq!(extract_template(&once), once.clone());
    }

    #[test]
    fn title_scores_are_bounded(s in ".{0,160}") {
        let score = TitleScorer::new().score(&s);
        prop_assert!((0.0..=1.0).contains(&score), "score {}", score);
    }

    #[test]
    fn jaccard_bounds_and_symmetry(
        a in prop::collection::vec("[a-z]{1,6}", 0..12),
        b in prop::collection::vec("[a-z]{1,6}", 0..12),
    ) {
        let ab = jaccard(&a, &b);
        let ba = jaccard(&b, &a);
        prop_assert!((0.0..=1.0).contains(&ab));
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert!((jaccard(&a, &a) - 1.0).abs() < 1e-12 || a.is_empty());
    }

    #[test]
    fn overlap_at_least_jaccard(
        a in prop::collection::vec("[a-z]{1,6}", 1..12),
        b in prop::collection::vec("[a-z]{1,6}", 1..12),
    ) {
        prop_assert!(overlap_coefficient(&a, &b) + 1e-12 >= jaccard(&a, &b));
    }

    #[test]
    fn levenshtein_metric_properties(
        a in "[a-z]{0,24}",
        b in "[a-z]{0,24}",
        c in "[a-z]{0,24}",
    ) {
        // Symmetry, identity, triangle inequality.
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        prop_assert_eq!(levenshtein(&a, &a), 0);
        prop_assert!(
            levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c)
        );
        let sim = levenshtein_similarity(&a, &b);
        prop_assert!((0.0..=1.0).contains(&sim));
    }

    #[test]
    fn cosine_bounds(
        a in prop::collection::vec((0usize..50, 0.0f64..10.0), 0..12),
        b in prop::collection::vec((0usize..50, 0.0f64..10.0), 0..12),
    ) {
        // Deduplicate and sort ids as the contract requires.
        let normalize = |v: Vec<(usize, f64)>| {
            let mut m = std::collections::BTreeMap::new();
            for (id, w) in v {
                m.insert(id, w);
            }
            m.into_iter().collect::<Vec<_>>()
        };
        let a = normalize(a);
        let b = normalize(b);
        let cos = cosine_sparse(&a, &b);
        prop_assert!((-1e-12..=1.0 + 1e-12).contains(&cos), "cos {}", cos);
    }

    #[test]
    fn vocabulary_encode_preserves_token_count(
        tokens in prop::collection::vec("[a-z]{1,5}", 0..40),
    ) {
        let mut vocab = Vocabulary::new();
        let doc = vocab.encode_and_update(&tokens);
        let total: u32 = doc.iter().map(|&(_, c)| c).sum();
        prop_assert_eq!(total as usize, tokens.len());
        // Ids are sorted and unique.
        for w in doc.windows(2) {
            prop_assert!(w[0].0 < w[1].0);
        }
        // Frozen re-encoding of the same tokens matches.
        prop_assert_eq!(vocab.encode_frozen(&tokens), doc);
    }
}
