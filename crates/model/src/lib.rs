//! Core data model for cloud alert governance.
//!
//! This crate defines the shared vocabulary used across the `alertops`
//! workspace, mirroring the terminology of *"Characterizing and Mitigating
//! Anti-patterns of Alerts in Industrial Cloud Systems"* (DSN 2022,
//! Table I):
//!
//! * [`Alert`] — a notification sent to on-call engineers (OCEs), of the
//!   form defined by an [`AlertStrategy`], about a specific anomaly.
//! * [`AlertStrategy`] — the policy of alert generation: when to generate
//!   an alert, what attributes and descriptions it has, and to whom it is
//!   sent.
//! * [`Sop`] — the standard operating procedure an OCE follows upon
//!   receiving an alert.
//! * [`Incident`] — an unplanned interruption or performance degradation
//!   that a severe enough alert (or group of alerts) can escalate to.
//! * [`Oce`] — an on-call engineer, with an experience band matching the
//!   demographics reported in the paper's survey.
//!
//! Everything here is plain data: `Clone`/`Debug`/`serde`-friendly types
//! with no behaviour beyond validation, formatting, and cheap accessors.
//! The simulator ([`alertops-sim`]), the anti-pattern detectors
//! ([`alertops-detect`]) and the reactions ([`alertops-react`]) all speak
//! this vocabulary.
//!
//! # Example
//!
//! ```
//! use alertops_model::{
//!     Alert, AlertId, Location, Severity, SimTime, StrategyId,
//! };
//!
//! let alert = Alert::builder(AlertId(1), StrategyId(7))
//!     .title("Failed to allocate new blocks, disk full")
//!     .severity(Severity::Critical)
//!     .service("Block Storage")
//!     .microservice(alertops_model::MicroserviceId(12))
//!     .location(Location::new("region-x", "dc-1"))
//!     .raised_at(SimTime::from_secs(3600))
//!     .build();
//!
//! assert_eq!(alert.severity(), Severity::Critical);
//! assert!(alert.is_active());
//! ```
//!
//! [`alertops-sim`]: https://docs.rs/alertops-sim
//! [`alertops-detect`]: https://docs.rs/alertops-detect
//! [`alertops-react`]: https://docs.rs/alertops-react

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod alert;
mod error;
mod feedback;
mod graph;
mod ids;
mod incident;
mod intern;
mod location;
mod oce;
mod severity;
mod sop;
mod strategy;
mod time;

pub use alert::{Alert, AlertBuilder, AlertState, Clearance};
pub use error::ModelError;
pub use feedback::{QoaLabel, QOA_CRITERIA};
pub use graph::DependencyGraph;
pub use ids::{AlertId, IncidentId, MicroserviceId, OceId, RegionId, ServiceId, StrategyId};
pub use incident::{Incident, IncidentStatus};
pub use intern::{intern, IStr, StrTable, DEFAULT_TABLE_CAP};
pub use location::Location;
pub use oce::{ExperienceBand, Oce};
pub use severity::Severity;
pub use sop::{Sop, SopBuilder};
pub use strategy::{
    AlertStrategy, AlertStrategyBuilder, LogRule, MetricKind, MetricRule, ProbeRule, StrategyKind,
    ThresholdOp,
};
pub use time::{SimDuration, SimTime, TimeRange, SECS_PER_DAY, SECS_PER_HOUR};
