//! Alert strategies: the policies of alert generation.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{IStr, MicroserviceId, ModelError, ServiceId, Severity, SimDuration, StrategyId};

/// The kind of performance metric a metric rule watches.
///
/// Lower-level infrastructure indicators (CPU, disk, memory) versus
/// higher-level service indicators (latency, request rate, error rate) —
/// the distinction matters for the *improper and outdated generation
/// rule* anti-pattern (A3): due to fault tolerance, infrastructure-level
/// indicators often have no definite effect on user-perceived quality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum MetricKind {
    /// CPU utilization of an instance, in percent (0..=100).
    CpuUtilization,
    /// Memory utilization of an instance, in percent.
    MemoryUtilization,
    /// Disk usage of an instance, in percent.
    DiskUsage,
    /// Network throughput, in MB/s.
    NetworkThroughput,
    /// Number of open connections.
    ConnectionCount,
    /// Request latency, in milliseconds (service level).
    Latency,
    /// Requests per second (service level).
    RequestRate,
    /// Fraction of failed requests, in percent (service level).
    ErrorRate,
}

impl MetricKind {
    /// All metric kinds.
    pub const ALL: [MetricKind; 8] = [
        MetricKind::CpuUtilization,
        MetricKind::MemoryUtilization,
        MetricKind::DiskUsage,
        MetricKind::NetworkThroughput,
        MetricKind::ConnectionCount,
        MetricKind::Latency,
        MetricKind::RequestRate,
        MetricKind::ErrorRate,
    ];

    /// Whether this metric reflects low-level infrastructure state rather
    /// than user-perceived service quality.
    #[must_use]
    pub const fn is_infrastructure(self) -> bool {
        matches!(
            self,
            MetricKind::CpuUtilization
                | MetricKind::MemoryUtilization
                | MetricKind::DiskUsage
                | MetricKind::NetworkThroughput
                | MetricKind::ConnectionCount
        )
    }

    /// A short snake_case name for titles and template mining.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            MetricKind::CpuUtilization => "cpu_usage",
            MetricKind::MemoryUtilization => "memory_usage",
            MetricKind::DiskUsage => "disk_usage",
            MetricKind::NetworkThroughput => "network_throughput",
            MetricKind::ConnectionCount => "connection_count",
            MetricKind::Latency => "latency",
            MetricKind::RequestRate => "request_rate",
            MetricKind::ErrorRate => "error_rate",
        }
    }
}

impl fmt::Display for MetricKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The comparison direction of a metric threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ThresholdOp {
    /// Fire when the observed value rises above the threshold.
    Above,
    /// Fire when the observed value drops below the threshold.
    Below,
}

impl ThresholdOp {
    /// Evaluates `value` against `threshold` under this operator.
    #[must_use]
    pub fn triggers(self, value: f64, threshold: f64) -> bool {
        match self {
            ThresholdOp::Above => value > threshold,
            ThresholdOp::Below => value < threshold,
        }
    }
}

impl fmt::Display for ThresholdOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ThresholdOp::Above => ">",
            ThresholdOp::Below => "<",
        })
    }
}

/// A probe rule: "if a target service does not respond to probing
/// requests for longer than `no_response_timeout`, generate an alert".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ProbeRule {
    /// The fixed no-response timeout.
    pub no_response_timeout: SimDuration,
}

/// A log rule: keyword matching over a sliding window, e.g. "IF the logs
/// contain 5 ERRORs in the past 2 minutes, THEN generate an alert".
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LogRule {
    /// The keyword matched in log lines (case-insensitive).
    pub keyword: String,
    /// The minimum number of matches within the window to fire.
    pub min_count: u32,
    /// The sliding-window length.
    pub window: SimDuration,
}

/// A metric rule: a threshold over a performance metric time series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricRule {
    /// Which metric is monitored.
    pub metric: MetricKind,
    /// Comparison direction.
    pub op: ThresholdOp,
    /// Threshold value, in the metric's unit.
    pub threshold: f64,
    /// How many consecutive over-threshold samples are required before the
    /// alert fires (a *debounce*; 1 means fire on the first sample).
    ///
    /// Over-sensitive strategies (debounce of 1 on a noisy metric) are the
    /// main cause of the *transient and toggling* anti-pattern (A4).
    pub consecutive_samples: u32,
}

/// The three categories of system-reliability alert strategies: probes,
/// logs, and metrics (paper §II-B3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum StrategyKind {
    /// Heartbeat probing with a fixed no-response threshold.
    Probe(ProbeRule),
    /// Keyword matching over service logs.
    Log(LogRule),
    /// Static threshold over a performance metric.
    Metric(MetricRule),
}

impl StrategyKind {
    /// A short label for the category ("probe", "log", "metric").
    #[must_use]
    pub const fn category(&self) -> &'static str {
        match self {
            StrategyKind::Probe(_) => "probe",
            StrategyKind::Log(_) => "log",
            StrategyKind::Metric(_) => "metric",
        }
    }

    /// Whether alerts from this strategy can be *automatically cleared*.
    ///
    /// Per the paper (§II-B4), the monitoring system keeps watching probe
    /// and metric strategies and clears their alerts when the service
    /// returns to a normal state; log alerts must be cleared manually.
    #[must_use]
    pub const fn supports_auto_clear(&self) -> bool {
        matches!(self, StrategyKind::Probe(_) | StrategyKind::Metric(_))
    }
}

/// An alert strategy: when to generate an alert, what attributes and
/// description it has, and to whom it is sent.
///
/// Construct with [`AlertStrategy::builder`].
///
/// # Example
///
/// ```
/// use alertops_model::{
///     AlertStrategy, MetricKind, MetricRule, MicroserviceId, ServiceId,
///     Severity, SimDuration, StrategyId, StrategyKind, ThresholdOp,
/// };
///
/// # fn main() -> Result<(), alertops_model::ModelError> {
/// let strategy = AlertStrategy::builder(StrategyId(1))
///     .title_template("CPU usage of nginx instance is higher than 80%")
///     .severity(Severity::Major)
///     .service(ServiceId(0))
///     .microservice(MicroserviceId(4))
///     .kind(StrategyKind::Metric(MetricRule {
///         metric: MetricKind::CpuUtilization,
///         op: ThresholdOp::Above,
///         threshold: 80.0,
///         consecutive_samples: 3,
///     }))
///     .cooldown(SimDuration::from_mins(5))
///     .build()?;
/// assert_eq!(strategy.kind().category(), "metric");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlertStrategy {
    id: StrategyId,
    title_template: IStr,
    severity: Severity,
    service: ServiceId,
    microservice: MicroserviceId,
    kind: StrategyKind,
    cooldown: SimDuration,
    notify: Vec<String>,
}

impl AlertStrategy {
    /// Starts building a strategy with the given id.
    #[must_use]
    pub fn builder(id: StrategyId) -> AlertStrategyBuilder {
        AlertStrategyBuilder {
            id,
            title_template: None,
            severity: Severity::Warning,
            service: ServiceId(0),
            microservice: MicroserviceId(0),
            kind: None,
            cooldown: SimDuration::ZERO,
            notify: Vec::new(),
        }
    }

    /// The strategy id.
    #[must_use]
    pub fn id(&self) -> StrategyId {
        self.id
    }

    /// The free-text title template used for alerts of this strategy.
    #[must_use]
    pub fn title_template(&self) -> &str {
        &self.title_template
    }

    /// The title template as its interned handle. Alert producers
    /// clone this straight into [`crate::AlertBuilder::title`] — a
    /// refcount bump per alert instead of a fresh `String`.
    #[must_use]
    pub fn title_template_interned(&self) -> &IStr {
        &self.title_template
    }

    /// The configured severity of alerts from this strategy.
    #[must_use]
    pub fn severity(&self) -> Severity {
        self.severity
    }

    /// The owning cloud service.
    #[must_use]
    pub fn service(&self) -> ServiceId {
        self.service
    }

    /// The owning microservice.
    #[must_use]
    pub fn microservice(&self) -> MicroserviceId {
        self.microservice
    }

    /// The generation rule.
    #[must_use]
    pub fn kind(&self) -> &StrategyKind {
        &self.kind
    }

    /// The minimum spacing between two alerts of this strategy.
    ///
    /// A zero or tiny cooldown on a frequently-triggering rule produces
    /// the *repeating alerts* anti-pattern (A5).
    #[must_use]
    pub fn cooldown(&self) -> SimDuration {
        self.cooldown
    }

    /// Notification targets (e-mail addresses, pager groups, ...).
    #[must_use]
    pub fn notify(&self) -> &[String] {
        &self.notify
    }

    /// Replaces the configured severity, returning the updated strategy.
    ///
    /// Used by governance when a severity review (A2 mitigation) concludes
    /// the severity is misleading.
    #[must_use]
    pub fn with_severity(mut self, severity: Severity) -> Self {
        self.severity = severity;
        self
    }

    /// Replaces the title template, returning the updated strategy.
    ///
    /// Used by governance when a title lint (A1 mitigation) rewrites an
    /// unclear title.
    #[must_use]
    pub fn with_title_template(mut self, template: impl Into<IStr>) -> Self {
        self.title_template = template.into();
        self
    }

    /// Replaces the cooldown, returning the updated strategy.
    #[must_use]
    pub fn with_cooldown(mut self, cooldown: SimDuration) -> Self {
        self.cooldown = cooldown;
        self
    }

    /// Replaces the generation rule, returning the updated strategy.
    ///
    /// Used by governance remediation when a rule review (A4 mitigation)
    /// re-tunes debounce or thresholds.
    #[must_use]
    pub fn with_kind(mut self, kind: StrategyKind) -> Self {
        self.kind = kind;
        self
    }
}

/// Builder for [`AlertStrategy`]; see [`AlertStrategy::builder`].
#[derive(Debug, Clone)]
pub struct AlertStrategyBuilder {
    id: StrategyId,
    title_template: Option<IStr>,
    severity: Severity,
    service: ServiceId,
    microservice: MicroserviceId,
    kind: Option<StrategyKind>,
    cooldown: SimDuration,
    notify: Vec<String>,
}

impl AlertStrategyBuilder {
    /// Sets the title template (required, must be non-empty).
    #[must_use]
    pub fn title_template(mut self, template: impl Into<IStr>) -> Self {
        self.title_template = Some(template.into());
        self
    }

    /// Sets the configured severity (defaults to `Warning`).
    #[must_use]
    pub fn severity(mut self, severity: Severity) -> Self {
        self.severity = severity;
        self
    }

    /// Sets the owning service (defaults to `ServiceId(0)`).
    #[must_use]
    pub fn service(mut self, service: ServiceId) -> Self {
        self.service = service;
        self
    }

    /// Sets the owning microservice (defaults to `MicroserviceId(0)`).
    #[must_use]
    pub fn microservice(mut self, microservice: MicroserviceId) -> Self {
        self.microservice = microservice;
        self
    }

    /// Sets the generation rule (required).
    #[must_use]
    pub fn kind(mut self, kind: StrategyKind) -> Self {
        self.kind = Some(kind);
        self
    }

    /// Sets the per-strategy cooldown (defaults to zero).
    #[must_use]
    pub fn cooldown(mut self, cooldown: SimDuration) -> Self {
        self.cooldown = cooldown;
        self
    }

    /// Adds a notification target.
    #[must_use]
    pub fn notify(mut self, target: impl Into<String>) -> Self {
        self.notify.push(target.into());
        self
    }

    /// Builds the strategy.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::MissingField`] if the title template or rule
    /// kind was not provided, and [`ModelError::EmptyTitle`] if the title
    /// template is empty or whitespace-only.
    pub fn build(self) -> Result<AlertStrategy, ModelError> {
        let title_template = self
            .title_template
            .ok_or(ModelError::MissingField("title_template"))?;
        if title_template.trim().is_empty() {
            return Err(ModelError::EmptyTitle);
        }
        let kind = self.kind.ok_or(ModelError::MissingField("kind"))?;
        Ok(AlertStrategy {
            id: self.id,
            title_template,
            severity: self.severity,
            service: self.service,
            microservice: self.microservice,
            kind,
            cooldown: self.cooldown,
            notify: self.notify,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metric_kind() -> StrategyKind {
        StrategyKind::Metric(MetricRule {
            metric: MetricKind::CpuUtilization,
            op: ThresholdOp::Above,
            threshold: 80.0,
            consecutive_samples: 1,
        })
    }

    #[test]
    fn builder_requires_title_and_kind() {
        let err = AlertStrategy::builder(StrategyId(1))
            .kind(metric_kind())
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::MissingField("title_template")));

        let err = AlertStrategy::builder(StrategyId(1))
            .title_template("x")
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::MissingField("kind")));
    }

    #[test]
    fn builder_rejects_blank_title() {
        let err = AlertStrategy::builder(StrategyId(1))
            .title_template("   ")
            .kind(metric_kind())
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::EmptyTitle));
    }

    #[test]
    fn builder_sets_all_fields() {
        let s = AlertStrategy::builder(StrategyId(3))
            .title_template("nginx_cpu_usage_over_80")
            .severity(Severity::Major)
            .service(ServiceId(1))
            .microservice(MicroserviceId(2))
            .kind(metric_kind())
            .cooldown(SimDuration::from_mins(5))
            .notify("oce-team@example.com")
            .build()
            .unwrap();
        assert_eq!(s.id(), StrategyId(3));
        assert_eq!(s.severity(), Severity::Major);
        assert_eq!(s.service(), ServiceId(1));
        assert_eq!(s.microservice(), MicroserviceId(2));
        assert_eq!(s.cooldown(), SimDuration::from_mins(5));
        assert_eq!(s.notify(), ["oce-team@example.com"]);
        assert_eq!(s.kind().category(), "metric");
    }

    #[test]
    fn with_mutators_replace_fields() {
        let s = AlertStrategy::builder(StrategyId(1))
            .title_template("old title")
            .kind(metric_kind())
            .build()
            .unwrap();
        let s = s
            .with_severity(Severity::Critical)
            .with_title_template("new title")
            .with_cooldown(SimDuration::from_mins(10))
            .with_kind(StrategyKind::Probe(ProbeRule {
                no_response_timeout: SimDuration::from_secs(45),
            }));
        assert_eq!(s.severity(), Severity::Critical);
        assert_eq!(s.title_template(), "new title");
        assert_eq!(s.cooldown(), SimDuration::from_mins(10));
        assert_eq!(s.kind().category(), "probe");
    }

    #[test]
    fn auto_clear_support_per_category() {
        assert!(StrategyKind::Probe(ProbeRule {
            no_response_timeout: SimDuration::from_secs(30),
        })
        .supports_auto_clear());
        assert!(metric_kind().supports_auto_clear());
        assert!(!StrategyKind::Log(LogRule {
            keyword: "ERROR".into(),
            min_count: 5,
            window: SimDuration::from_mins(2),
        })
        .supports_auto_clear());
    }

    #[test]
    fn threshold_op_semantics() {
        assert!(ThresholdOp::Above.triggers(81.0, 80.0));
        assert!(!ThresholdOp::Above.triggers(80.0, 80.0));
        assert!(ThresholdOp::Below.triggers(1.0, 2.0));
        assert!(!ThresholdOp::Below.triggers(2.0, 2.0));
    }

    #[test]
    fn infrastructure_metric_partition() {
        assert!(MetricKind::CpuUtilization.is_infrastructure());
        assert!(MetricKind::DiskUsage.is_infrastructure());
        assert!(!MetricKind::Latency.is_infrastructure());
        assert!(!MetricKind::ErrorRate.is_infrastructure());
        // Exactly 5 of the 8 metric kinds are infrastructure-level.
        let infra = MetricKind::ALL
            .iter()
            .filter(|m| m.is_infrastructure())
            .count();
        assert_eq!(infra, 5);
    }

    #[test]
    fn category_labels() {
        assert_eq!(
            StrategyKind::Probe(ProbeRule {
                no_response_timeout: SimDuration::from_secs(10)
            })
            .category(),
            "probe"
        );
        assert_eq!(
            StrategyKind::Log(LogRule {
                keyword: "E".into(),
                min_count: 1,
                window: SimDuration::from_mins(1),
            })
            .category(),
            "log"
        );
    }
}
