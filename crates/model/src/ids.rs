//! Newtype identifiers for the entities of the alert-governance domain.
//!
//! Using distinct id types (rather than bare `u64`/`String`) statically
//! prevents mixing, e.g., a strategy id with an alert id (C-NEWTYPE).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::IStr;

macro_rules! numeric_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub u64);

        impl $name {
            /// Returns the raw numeric value of this id.
            #[must_use]
            pub const fn value(self) -> u64 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "-{}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(value: u64) -> Self {
                Self(value)
            }
        }

        impl From<$name> for u64 {
            fn from(id: $name) -> Self {
                id.0
            }
        }
    };
}

numeric_id!(
    /// Identifier of a single [`Alert`](crate::Alert) instance.
    AlertId,
    "alert"
);
numeric_id!(
    /// Identifier of an [`AlertStrategy`](crate::AlertStrategy).
    ///
    /// An alert always corresponds to exactly one alert strategy; the
    /// paper does not discriminate "anti-pattern of alerts" and
    /// "anti-pattern of alert strategies" for this reason.
    StrategyId,
    "strategy"
);
numeric_id!(
    /// Identifier of a cloud *service* (the paper's system has 11).
    ServiceId,
    "service"
);
numeric_id!(
    /// Identifier of a cloud *microservice* (the paper's system has 192).
    MicroserviceId,
    "microservice"
);
numeric_id!(
    /// Identifier of an [`Incident`](crate::Incident).
    IncidentId,
    "incident"
);
numeric_id!(
    /// Identifier of an on-call engineer ([`Oce`](crate::Oce)).
    OceId,
    "oce"
);

/// Identifier of a cloud region, e.g. `"region-x"`.
///
/// Regions are the grouping key for collective anti-pattern mining: the
/// paper counts alerts *per hour per region* when selecting candidates of
/// collective anti-patterns and when detecting alert storms.
///
/// The name is interned ([`IStr`]): a region id appears on every alert
/// and in every region-hour histogram key, so cloning one is a refcount
/// bump, not a heap allocation. Serde stays transparent — the JSON form
/// is still a plain string.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct RegionId(pub IStr);

impl RegionId {
    /// Creates a region id from anything string-like.
    pub fn new(name: impl Into<IStr>) -> Self {
        Self(name.into())
    }

    /// Returns the region name as a string slice.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for RegionId {
    fn from(value: &str) -> Self {
        Self(value.into())
    }
}

impl From<String> for RegionId {
    fn from(value: String) -> Self {
        Self(value.into())
    }
}

impl From<IStr> for RegionId {
    fn from(value: IStr) -> Self {
        Self(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_ids_display_with_prefix() {
        assert_eq!(AlertId(42).to_string(), "alert-42");
        assert_eq!(StrategyId(7).to_string(), "strategy-7");
        assert_eq!(ServiceId(0).to_string(), "service-0");
        assert_eq!(MicroserviceId(3).to_string(), "microservice-3");
        assert_eq!(IncidentId(9).to_string(), "incident-9");
        assert_eq!(OceId(1).to_string(), "oce-1");
    }

    #[test]
    fn numeric_ids_roundtrip_u64() {
        let id = AlertId::from(99u64);
        assert_eq!(u64::from(id), 99);
        assert_eq!(id.value(), 99);
    }

    #[test]
    fn numeric_ids_order_by_value() {
        assert!(AlertId(1) < AlertId(2));
        assert!(StrategyId(10) > StrategyId(2));
    }

    #[test]
    fn region_id_from_str_and_display() {
        let region = RegionId::new("region-x");
        assert_eq!(region.as_str(), "region-x");
        assert_eq!(region.to_string(), "region-x");
        assert_eq!(RegionId::from("region-x"), region);
        assert_eq!(RegionId::from(String::from("region-x")), region);
    }

    #[test]
    fn ids_serde_roundtrip_as_transparent() {
        let json = serde_json::to_string(&AlertId(5)).unwrap();
        assert_eq!(json, "5");
        let back: AlertId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, AlertId(5));

        let json = serde_json::to_string(&RegionId::new("r1")).unwrap();
        assert_eq!(json, "\"r1\"");
    }
}
