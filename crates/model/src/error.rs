//! Error type for model construction and state transitions.

use std::error::Error;
use std::fmt;

use crate::AlertId;

/// Errors produced when constructing or mutating model values.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// A required builder field was not provided.
    MissingField(&'static str),
    /// A title or name was empty or whitespace-only.
    EmptyTitle,
    /// A severity string could not be parsed.
    UnknownSeverity(String),
    /// Attempted to clear an alert that was already cleared.
    AlreadyCleared(AlertId),
    /// Attempted to clear an alert before its raise time.
    ClearanceBeforeRaise(AlertId),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::MissingField(field) => write!(f, "required field `{field}` was not set"),
            ModelError::EmptyTitle => write!(f, "title must not be empty"),
            ModelError::UnknownSeverity(s) => write!(f, "unknown severity `{s}`"),
            ModelError::AlreadyCleared(id) => write!(f, "{id} was already cleared"),
            ModelError::ClearanceBeforeRaise(id) => {
                write!(f, "{id} cannot be cleared before it was raised")
            }
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelError>();
    }

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        assert_eq!(
            ModelError::MissingField("kind").to_string(),
            "required field `kind` was not set"
        );
        assert_eq!(
            ModelError::UnknownSeverity("fatal".into()).to_string(),
            "unknown severity `fatal`"
        );
        assert!(ModelError::AlreadyCleared(AlertId(3))
            .to_string()
            .contains("alert-3"));
    }
}
