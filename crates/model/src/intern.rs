//! String interning: one allocation per *distinct* string, refcounted
//! sharing everywhere else.
//!
//! An alert stream is massively repetitive — a catalog of a few
//! thousand strategies produces millions of alerts whose titles,
//! service names, and location strings are drawn from that small fixed
//! set. Representing each occurrence as its own `String` makes every
//! clone of an [`Alert`](crate::Alert) (shard hand-over, checkpoint,
//! WAL replay, `WindowDelta` merge) a fresh round of heap traffic.
//! [`IStr`] replaces those fields with an `Arc<str>`: cloning is a
//! refcount bump, equality starts with a pointer compare, and a
//! [`StrTable`] deduplicates so the steady state allocates nothing.
//!
//! Two interning scopes exist:
//!
//! * The **thread-local default table** behind [`intern`] (bounded at
//!   [`DEFAULT_TABLE_CAP`] distinct strings, so adversarial ingress
//!   cannot grow it without bound — over-cap strings still intern,
//!   they just are not cached). `From<&str>` / serde deserialization
//!   go through it, which is what makes JSON decode of a repeated
//!   title allocate once per *distinct* title per thread, not once
//!   per alert.
//! * **Explicit [`StrTable`]s** with dense `u32` ids, owned by the
//!   binary wire codec: first occurrence travels as a literal and
//!   assigns the next id, later occurrences travel as a back-reference
//!   to that id. See `alertops-wire`.
//!
//! `IStr` is serde-transparent: it serializes as a plain JSON string,
//! so external JSON (NDJSON ingress, status snapshots, checkpoints) is
//! byte-identical to the pre-interning representation.

use std::borrow::Borrow;
use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

use serde::{DeError, Deserialize, Serialize, Value};

/// Distinct strings the thread-local default table caches before it
/// stops growing. Interning stays correct beyond the cap — lookups
/// that miss simply allocate like a plain `String` would.
pub const DEFAULT_TABLE_CAP: usize = 1 << 16;

thread_local! {
    static DEFAULT_TABLE: RefCell<StrTable> =
        RefCell::new(StrTable::with_capacity(DEFAULT_TABLE_CAP));
}

/// Interns `s` through the thread-local default table.
#[must_use]
pub fn intern(s: &str) -> IStr {
    DEFAULT_TABLE.with(|table| table.borrow_mut().intern(s))
}

/// An immutable, interned, cheaply clonable string.
///
/// Dereferences to `&str`; equality, ordering, and hashing are all
/// content-based (equality takes a pointer-identity fast path first,
/// which interned strings hit almost always).
#[derive(Clone)]
pub struct IStr(Arc<str>);

impl IStr {
    /// The empty interned string.
    #[must_use]
    pub fn empty() -> Self {
        intern("")
    }

    /// The string contents.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Whether `self` and `other` share one allocation. Two equal
    /// strings interned through different tables may compare unequal
    /// here — this is an optimization probe, not equality.
    #[must_use]
    pub fn ptr_eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl Default for IStr {
    fn default() -> Self {
        Self::empty()
    }
}

impl Deref for IStr {
    type Target = str;

    fn deref(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for IStr {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl Borrow<str> for IStr {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl PartialEq for IStr {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}

impl Eq for IStr {}

impl PartialEq<str> for IStr {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for IStr {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl Hash for IStr {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0.hash(state);
    }
}

impl PartialOrd for IStr {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for IStr {
    fn cmp(&self, other: &Self) -> Ordering {
        if Arc::ptr_eq(&self.0, &other.0) {
            Ordering::Equal
        } else {
            self.0.cmp(&other.0)
        }
    }
}

impl fmt::Debug for IStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_str(), f)
    }
}

impl fmt::Display for IStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for IStr {
    fn from(value: &str) -> Self {
        intern(value)
    }
}

impl From<&String> for IStr {
    fn from(value: &String) -> Self {
        intern(value)
    }
}

impl From<String> for IStr {
    fn from(value: String) -> Self {
        intern(&value)
    }
}

impl From<&IStr> for IStr {
    fn from(value: &IStr) -> Self {
        value.clone()
    }
}

impl From<IStr> for String {
    fn from(value: IStr) -> Self {
        value.as_str().to_owned()
    }
}

impl Serialize for IStr {
    fn to_value(&self) -> Value {
        Value::String(self.as_str().to_owned())
    }
}

impl Deserialize for IStr {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::String(s) => Ok(intern(s)),
            other => Err(DeError::custom(format!("expected string, got {other:?}"))),
        }
    }
}

/// A deduplicating table of [`IStr`]s with dense `u32` ids in
/// first-insertion order.
///
/// The ids are what the binary wire codec's string back-references
/// index into: encoder and decoder each run one table per stream (or
/// per WAL segment) and assign ids in the same order by construction,
/// so an id on the wire is meaningful without ever shipping the table.
#[derive(Debug, Clone, Default)]
pub struct StrTable {
    by_id: Vec<IStr>,
    ids: HashMap<IStr, u32>,
    cap: usize,
}

impl StrTable {
    /// An unbounded table (grows with every distinct string).
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(usize::MAX)
    }

    /// A table that stops caching after `cap` distinct strings.
    /// Interning past the cap still works — misses allocate without
    /// being remembered, and [`insert`](Self::insert) reports the
    /// string as unassigned.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            by_id: Vec::new(),
            ids: HashMap::new(),
            cap,
        }
    }

    /// Distinct strings currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// Whether the table holds nothing yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Drops every entry (ids restart from 0).
    pub fn clear(&mut self) {
        self.by_id.clear();
        self.ids.clear();
    }

    /// Returns the shared copy of `s`, allocating only on first sight
    /// (or when the table is at capacity).
    pub fn intern(&mut self, s: &str) -> IStr {
        if let Some(id) = self.ids.get(s) {
            return self.by_id[*id as usize].clone();
        }
        let interned = IStr(Arc::from(s));
        self.remember(interned.clone());
        interned
    }

    /// Interns `s` and reports its id assignment: `(id, true)` when
    /// this call inserted it (the wire codec emits a literal), the
    /// existing `(id, false)` when it was already present (the codec
    /// emits a back-reference), or `None` when the table is full and
    /// `s` is unknown (the codec emits an unregistered literal).
    pub fn insert(&mut self, s: &str) -> Option<(u32, bool)> {
        if let Some(id) = self.ids.get(s) {
            return Some((*id, false));
        }
        if self.by_id.len() >= self.cap {
            return None;
        }
        let id = u32::try_from(self.by_id.len()).ok()?;
        let interned = IStr(Arc::from(s));
        self.by_id.push(interned.clone());
        self.ids.insert(interned, id);
        Some((id, true))
    }

    /// The string assigned `id`, if any.
    #[must_use]
    pub fn resolve(&self, id: u32) -> Option<&IStr> {
        self.by_id.get(id as usize)
    }

    fn remember(&mut self, interned: IStr) {
        if self.by_id.len() >= self.cap {
            return;
        }
        if let Ok(id) = u32::try_from(self.by_id.len()) {
            self.by_id.push(interned.clone());
            self.ids.insert(interned, id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedups_to_one_allocation() {
        let a = intern("haproxy process number warning");
        let b = intern("haproxy process number warning");
        assert!(a.ptr_eq(&b), "same thread, same table, same Arc");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "haproxy process number warning");
    }

    #[test]
    fn content_semantics_hold_across_tables() {
        let mut t1 = StrTable::new();
        let mut t2 = StrTable::new();
        let a = t1.intern("dc-1");
        let b = t2.intern("dc-1");
        assert!(!a.ptr_eq(&b), "different tables, different Arcs");
        assert_eq!(a, b, "but equal by content");
        assert_eq!(a.cmp(&b), Ordering::Equal);
        use std::collections::hash_map::DefaultHasher;
        let hash = |s: &IStr| {
            let mut h = DefaultHasher::new();
            s.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&b));
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a = intern("alpha");
        let b = intern("beta");
        assert!(a < b);
        assert_eq!(a.clone().max(b.clone()), b);
    }

    #[test]
    fn table_ids_are_dense_and_first_use_ordered() {
        let mut table = StrTable::new();
        assert_eq!(table.insert("region-x"), Some((0, true)));
        assert_eq!(table.insert("dc-1"), Some((1, true)));
        assert_eq!(table.insert("region-x"), Some((0, false)));
        assert_eq!(table.resolve(0).unwrap().as_str(), "region-x");
        assert_eq!(table.resolve(1).unwrap().as_str(), "dc-1");
        assert_eq!(table.resolve(2), None);
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn capped_table_stops_caching_but_keeps_interning() {
        let mut table = StrTable::with_capacity(1);
        let a = table.intern("only");
        assert_eq!(table.insert("overflow"), None);
        let b = table.intern("overflow");
        let c = table.intern("overflow");
        assert_eq!(b, c);
        assert!(!b.ptr_eq(&c), "over-cap strings are not cached");
        assert!(a.ptr_eq(&table.intern("only")));
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn clear_resets_ids() {
        let mut table = StrTable::new();
        table.insert("a");
        table.clear();
        assert!(table.is_empty());
        assert_eq!(table.insert("b"), Some((0, true)));
    }

    #[test]
    fn serde_is_transparent() {
        let s = intern("Block Storage");
        let json = serde_json::to_string(&s).unwrap();
        assert_eq!(json, "\"Block Storage\"");
        let back: IStr = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        assert!(back.ptr_eq(&s), "deserialization reuses the cached Arc");
    }

    #[test]
    fn conversions_cover_builder_call_sites() {
        let from_str: IStr = "x".into();
        let from_string: IStr = String::from("x").into();
        let from_ref: IStr = (&from_str).into();
        assert_eq!(from_str, from_string);
        assert_eq!(from_str, from_ref);
        assert_eq!(String::from(from_str), "x");
        assert_eq!(IStr::default(), IStr::empty());
        assert_eq!(IStr::default().as_str(), "");
    }
}
