//! A plain dependency graph between microservices.
//!
//! Anti-pattern detection (cascading alerts, A6) and alert correlation
//! (R3) both need to ask "does microservice *a* depend on *b*?" without
//! caring where that knowledge came from — a simulator topology, a
//! service-mesh export, or hand-written rules. [`DependencyGraph`] is the
//! neutral data type they share: a set of directed `caller → callee`
//! edges with closure queries.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use serde::{Deserialize, Serialize};

use crate::MicroserviceId;

/// A directed dependency graph: an edge `a → b` means "`a` calls `b`"
/// (so a failure of `b` can cascade *up* to `a`).
///
/// # Example
///
/// ```
/// use alertops_model::{DependencyGraph, MicroserviceId};
///
/// let graph: DependencyGraph = [
///     (MicroserviceId(2), MicroserviceId(1)), // db-api calls storage
///     (MicroserviceId(3), MicroserviceId(1)), // db-sync calls storage
/// ]
/// .into_iter()
/// .collect();
///
/// assert!(graph.depends_on(MicroserviceId(2), MicroserviceId(1)));
/// assert_eq!(graph.dependents_of(MicroserviceId(1)).len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DependencyGraph {
    /// callee → callers.
    dependents: BTreeMap<MicroserviceId, BTreeSet<MicroserviceId>>,
    /// caller → callees.
    dependencies: BTreeMap<MicroserviceId, BTreeSet<MicroserviceId>>,
}

impl DependencyGraph {
    /// Creates an empty graph.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds the edge `caller → callee`. Duplicate edges are ignored;
    /// self-edges are rejected (returns `false`).
    pub fn add_edge(&mut self, caller: MicroserviceId, callee: MicroserviceId) -> bool {
        if caller == callee {
            return false;
        }
        self.dependencies.entry(caller).or_default().insert(callee);
        self.dependents.entry(callee).or_default().insert(caller)
    }

    /// Whether the direct edge `caller → callee` exists.
    #[must_use]
    pub fn depends_on(&self, caller: MicroserviceId, callee: MicroserviceId) -> bool {
        self.dependencies
            .get(&caller)
            .is_some_and(|set| set.contains(&callee))
    }

    /// Direct callers of `callee` (who is affected if `callee` fails).
    #[must_use]
    pub fn dependents_of(&self, callee: MicroserviceId) -> Vec<MicroserviceId> {
        self.dependents
            .get(&callee)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Direct callees of `caller`.
    #[must_use]
    pub fn dependencies_of(&self, caller: MicroserviceId) -> Vec<MicroserviceId> {
        self.dependencies
            .get(&caller)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Whether `caller` transitively depends on `callee`.
    #[must_use]
    pub fn depends_transitively(&self, caller: MicroserviceId, callee: MicroserviceId) -> bool {
        if caller == callee {
            return false;
        }
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::from([caller]);
        while let Some(cur) = queue.pop_front() {
            if let Some(next) = self.dependencies.get(&cur) {
                for &n in next {
                    if n == callee {
                        return true;
                    }
                    if seen.insert(n) {
                        queue.push_back(n);
                    }
                }
            }
        }
        false
    }

    /// Everything `caller` transitively depends on (downstream closure),
    /// excluding `caller` itself. Detectors precompute this per
    /// microservice to answer bulk `depends_transitively` queries in
    /// O(log n) instead of a BFS per pair.
    #[must_use]
    pub fn dependency_closure(&self, caller: MicroserviceId) -> BTreeSet<MicroserviceId> {
        let mut out = BTreeSet::new();
        let mut queue = VecDeque::from([caller]);
        while let Some(cur) = queue.pop_front() {
            if let Some(callees) = self.dependencies.get(&cur) {
                for &c in callees {
                    if c != caller && out.insert(c) {
                        queue.push_back(c);
                    }
                }
            }
        }
        out
    }

    /// Everything transitively affected by a failure of `callee`
    /// (upstream closure), excluding `callee` itself.
    #[must_use]
    pub fn affected_by(&self, callee: MicroserviceId) -> BTreeSet<MicroserviceId> {
        let mut out = BTreeSet::new();
        let mut queue = VecDeque::from([callee]);
        while let Some(cur) = queue.pop_front() {
            if let Some(callers) = self.dependents.get(&cur) {
                for &c in callers {
                    if c != callee && out.insert(c) {
                        queue.push_back(c);
                    }
                }
            }
        }
        out
    }

    /// Whether two microservices are dependency-related in either
    /// direction (one transitively calls the other).
    #[must_use]
    pub fn related(&self, a: MicroserviceId, b: MicroserviceId) -> bool {
        self.depends_transitively(a, b) || self.depends_transitively(b, a)
    }

    /// Total number of edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.dependencies.values().map(BTreeSet::len).sum()
    }

    /// Whether the graph has no edges.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.edge_count() == 0
    }

    /// Iterates over all `(caller, callee)` edges in sorted order.
    pub fn edges(&self) -> impl Iterator<Item = (MicroserviceId, MicroserviceId)> + '_ {
        self.dependencies
            .iter()
            .flat_map(|(&caller, callees)| callees.iter().map(move |&callee| (caller, callee)))
    }
}

impl FromIterator<(MicroserviceId, MicroserviceId)> for DependencyGraph {
    fn from_iter<I: IntoIterator<Item = (MicroserviceId, MicroserviceId)>>(iter: I) -> Self {
        let mut graph = DependencyGraph::new();
        for (caller, callee) in iter {
            graph.add_edge(caller, callee);
        }
        graph
    }
}

impl Extend<(MicroserviceId, MicroserviceId)> for DependencyGraph {
    fn extend<I: IntoIterator<Item = (MicroserviceId, MicroserviceId)>>(&mut self, iter: I) {
        for (caller, callee) in iter {
            self.add_edge(caller, callee);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> MicroserviceId {
        MicroserviceId(n)
    }

    /// 3 → 2 → 1, plus 4 → 1.
    fn chain() -> DependencyGraph {
        [(ms(3), ms(2)), (ms(2), ms(1)), (ms(4), ms(1))]
            .into_iter()
            .collect()
    }

    #[test]
    fn add_edge_dedups_and_rejects_self_loops() {
        let mut g = DependencyGraph::new();
        assert!(g.add_edge(ms(1), ms(2)));
        assert!(!g.add_edge(ms(1), ms(2)));
        assert!(!g.add_edge(ms(1), ms(1)));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn direct_queries() {
        let g = chain();
        assert!(g.depends_on(ms(3), ms(2)));
        assert!(!g.depends_on(ms(2), ms(3)));
        assert_eq!(g.dependents_of(ms(1)), vec![ms(2), ms(4)]);
        assert_eq!(g.dependencies_of(ms(3)), vec![ms(2)]);
        assert!(g.dependencies_of(ms(1)).is_empty());
    }

    #[test]
    fn transitive_queries() {
        let g = chain();
        assert!(g.depends_transitively(ms(3), ms(1)));
        assert!(!g.depends_transitively(ms(1), ms(3)));
        assert!(!g.depends_transitively(ms(4), ms(2)));
        assert!(!g.depends_transitively(ms(1), ms(1)));
    }

    #[test]
    fn dependency_closure_is_downstream() {
        let g = chain();
        assert_eq!(
            g.dependency_closure(ms(3)),
            [ms(2), ms(1)].into_iter().collect()
        );
        assert_eq!(g.dependency_closure(ms(4)), [ms(1)].into_iter().collect());
        assert!(g.dependency_closure(ms(1)).is_empty());
        // Consistent with the pairwise query.
        for a in [ms(1), ms(2), ms(3), ms(4)] {
            for b in [ms(1), ms(2), ms(3), ms(4)] {
                assert_eq!(
                    g.dependency_closure(a).contains(&b),
                    g.depends_transitively(a, b)
                );
            }
        }
    }

    #[test]
    fn affected_by_is_upstream_closure() {
        let g = chain();
        let affected = g.affected_by(ms(1));
        assert_eq!(affected, [ms(2), ms(3), ms(4)].into_iter().collect());
        assert!(g.affected_by(ms(3)).is_empty());
    }

    #[test]
    fn related_is_symmetric() {
        let g = chain();
        assert!(g.related(ms(3), ms(1)));
        assert!(g.related(ms(1), ms(3)));
        assert!(!g.related(ms(3), ms(4)));
    }

    #[test]
    fn edges_iterates_everything() {
        let g = chain();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 3);
        assert!(edges.contains(&(ms(2), ms(1))));
    }

    #[test]
    fn empty_graph() {
        let g = DependencyGraph::new();
        assert!(g.is_empty());
        assert!(!g.depends_on(ms(1), ms(2)));
        assert!(g.affected_by(ms(1)).is_empty());
    }

    #[test]
    fn handles_cycles_without_hanging() {
        // Data from external sources may contain cycles; closure queries
        // must terminate.
        let g: DependencyGraph = [(ms(1), ms(2)), (ms(2), ms(3)), (ms(3), ms(1))]
            .into_iter()
            .collect();
        assert!(g.depends_transitively(ms(1), ms(3)));
        assert!(g.depends_transitively(ms(3), ms(2)));
        assert_eq!(g.affected_by(ms(1)).len(), 2);
    }
}
