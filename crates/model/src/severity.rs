//! Alert severity levels.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::ModelError;

/// The severity level of an alert.
///
/// Severity helps OCEs prioritize which alert to diagnose first. The
/// ordering is `Warning < Minor < Major < Critical`, matching the levels
/// observed in the paper's alert samples ("WARNING level alert, i.e., the
/// lowest level"; Table II uses Major and Critical).
///
/// # Example
///
/// ```
/// use alertops_model::Severity;
///
/// assert!(Severity::Critical > Severity::Warning);
/// assert_eq!("major".parse::<Severity>().unwrap(), Severity::Major);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(rename_all = "snake_case")]
pub enum Severity {
    /// The lowest level; informational deviations.
    #[default]
    Warning,
    /// A minor degradation; not expected to affect end users on its own.
    Minor,
    /// A major degradation; likely user-visible if not mitigated.
    Major,
    /// The highest level; imminent or ongoing user-visible failure.
    Critical,
}

impl Severity {
    /// All severities, in ascending order.
    pub const ALL: [Severity; 4] = [
        Severity::Warning,
        Severity::Minor,
        Severity::Major,
        Severity::Critical,
    ];

    /// A numeric rank (0 = `Warning` .. 3 = `Critical`), useful as a
    /// model feature and for distance computations between the configured
    /// severity and the measured impact of a strategy.
    #[must_use]
    pub const fn rank(self) -> u8 {
        match self {
            Severity::Warning => 0,
            Severity::Minor => 1,
            Severity::Major => 2,
            Severity::Critical => 3,
        }
    }

    /// Inverse of [`rank`](Self::rank); returns `None` for ranks above 3.
    #[must_use]
    pub const fn from_rank(rank: u8) -> Option<Self> {
        match rank {
            0 => Some(Severity::Warning),
            1 => Some(Severity::Minor),
            2 => Some(Severity::Major),
            3 => Some(Severity::Critical),
            _ => None,
        }
    }

    /// The absolute rank distance between two severities.
    ///
    /// This is the core measurement behind the *misleading severity*
    /// anti-pattern (A2): a large distance between configured severity and
    /// impact-implied severity marks the strategy as misleading.
    #[must_use]
    pub const fn distance(self, other: Severity) -> u8 {
        self.rank().abs_diff(other.rank())
    }

    /// Whether this severity is `Major` or `Critical`.
    #[must_use]
    pub const fn is_high(self) -> bool {
        matches!(self, Severity::Major | Severity::Critical)
    }

    /// The canonical uppercase label, e.g. `"CRITICAL"`.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            Severity::Warning => "WARNING",
            Severity::Minor => "MINOR",
            Severity::Major => "MAJOR",
            Severity::Critical => "CRITICAL",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "Warning",
            Severity::Minor => "Minor",
            Severity::Major => "Major",
            Severity::Critical => "Critical",
        })
    }
}

impl FromStr for Severity {
    type Err = ModelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "warning" => Ok(Severity::Warning),
            "minor" => Ok(Severity::Minor),
            "major" => Ok(Severity::Major),
            "critical" => Ok(Severity::Critical),
            _ => Err(ModelError::UnknownSeverity(s.to_owned())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_rank() {
        for window in Severity::ALL.windows(2) {
            assert!(window[0] < window[1]);
            assert!(window[0].rank() < window[1].rank());
        }
    }

    #[test]
    fn rank_roundtrips() {
        for sev in Severity::ALL {
            assert_eq!(Severity::from_rank(sev.rank()), Some(sev));
        }
        assert_eq!(Severity::from_rank(4), None);
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_diagonal() {
        for a in Severity::ALL {
            for b in Severity::ALL {
                assert_eq!(a.distance(b), b.distance(a));
            }
            assert_eq!(a.distance(a), 0);
        }
        assert_eq!(Severity::Warning.distance(Severity::Critical), 3);
    }

    #[test]
    fn parse_is_case_insensitive() {
        assert_eq!("CRITICAL".parse::<Severity>().unwrap(), Severity::Critical);
        assert_eq!("Minor".parse::<Severity>().unwrap(), Severity::Minor);
        assert!("fatal".parse::<Severity>().is_err());
    }

    #[test]
    fn high_severity_partition() {
        assert!(!Severity::Warning.is_high());
        assert!(!Severity::Minor.is_high());
        assert!(Severity::Major.is_high());
        assert!(Severity::Critical.is_high());
    }

    #[test]
    fn labels_and_display() {
        assert_eq!(Severity::Warning.label(), "WARNING");
        assert_eq!(Severity::Critical.to_string(), "Critical");
    }
}
