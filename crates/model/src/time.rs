//! Simulation time.
//!
//! The whole workspace runs on a discrete simulated clock measured in
//! seconds from an arbitrary epoch. Wall-clock types (`std::time`,
//! `chrono`) are deliberately avoided so that every experiment is
//! deterministic and replayable.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// Seconds in one hour.
pub const SECS_PER_HOUR: u64 = 3_600;
/// Seconds in one day.
pub const SECS_PER_DAY: u64 = 24 * SECS_PER_HOUR;

/// An instant on the simulated clock, in seconds since the simulation epoch.
///
/// # Example
///
/// ```
/// use alertops_model::{SimTime, SECS_PER_HOUR};
///
/// let t = SimTime::from_hours(7) + alertops_model::SimDuration::from_secs(90);
/// assert_eq!(t.as_secs(), 7 * SECS_PER_HOUR + 90);
/// assert_eq!(t.hour_bucket(), 7);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch (time zero).
    pub const EPOCH: SimTime = SimTime(0);

    /// Creates a time `secs` seconds after the epoch.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        Self(secs)
    }

    /// Creates a time `mins` minutes after the epoch.
    #[must_use]
    pub const fn from_mins(mins: u64) -> Self {
        Self(mins * 60)
    }

    /// Creates a time `hours` hours after the epoch.
    #[must_use]
    pub const fn from_hours(hours: u64) -> Self {
        Self(hours * SECS_PER_HOUR)
    }

    /// Creates a time `days` days after the epoch.
    #[must_use]
    pub const fn from_days(days: u64) -> Self {
        Self(days * SECS_PER_DAY)
    }

    /// Seconds since the epoch.
    #[must_use]
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// The hour-of-simulation this instant falls into (floor division).
    ///
    /// The paper groups alerts "by the hour they occur and the region they
    /// belong to" when mining collective anti-patterns; this is that hour
    /// key.
    #[must_use]
    pub const fn hour_bucket(self) -> u64 {
        self.0 / SECS_PER_HOUR
    }

    /// The day-of-simulation this instant falls into.
    #[must_use]
    pub const fn day_bucket(self) -> u64 {
        self.0 / SECS_PER_DAY
    }

    /// The hour of day (0..24) of this instant, for display purposes.
    #[must_use]
    pub const fn hour_of_day(self) -> u64 {
        self.hour_bucket() % 24
    }

    /// Duration elapsed since `earlier`.
    ///
    /// Returns [`SimDuration::ZERO`] when `earlier` is later than `self`
    /// (saturating), so callers never deal with negative durations.
    #[must_use]
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    #[must_use]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// Checked subtraction of a duration.
    #[must_use]
    pub fn checked_sub(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_sub(d.0).map(SimTime)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "d{} {:02}:{:02}:{:02}",
            self.day_bucket(),
            self.hour_of_day(),
            (self.0 % SECS_PER_HOUR) / 60,
            self.0 % 60
        )
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

/// A span of simulated time, in seconds.
///
/// # Example
///
/// ```
/// use alertops_model::SimDuration;
///
/// let d = SimDuration::from_mins(10);
/// assert_eq!(d.as_secs(), 600);
/// assert_eq!(d.to_string(), "10m00s");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration of `secs` seconds.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        Self(secs)
    }

    /// Creates a duration of `mins` minutes.
    #[must_use]
    pub const fn from_mins(mins: u64) -> Self {
        Self(mins * 60)
    }

    /// Creates a duration of `hours` hours.
    #[must_use]
    pub const fn from_hours(hours: u64) -> Self {
        Self(hours * SECS_PER_HOUR)
    }

    /// The length of this duration in seconds.
    #[must_use]
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// The length of this duration in fractional minutes.
    #[must_use]
    pub fn as_mins_f64(self) -> f64 {
        self.0 as f64 / 60.0
    }

    /// Whether this duration is zero.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= SECS_PER_HOUR {
            write!(
                f,
                "{}h{:02}m{:02}s",
                self.0 / SECS_PER_HOUR,
                (self.0 % SECS_PER_HOUR) / 60,
                self.0 % 60
            )
        } else {
            write!(f, "{}m{:02}s", self.0 / 60, self.0 % 60)
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

/// A half-open interval `[start, end)` of simulated time.
///
/// # Example
///
/// ```
/// use alertops_model::{SimTime, TimeRange};
///
/// let window = TimeRange::new(SimTime::from_hours(7), SimTime::from_hours(12));
/// assert!(window.contains(SimTime::from_hours(11)));
/// assert!(!window.contains(SimTime::from_hours(12)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TimeRange {
    start: SimTime,
    end: SimTime,
}

impl TimeRange {
    /// Creates the interval `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    #[must_use]
    pub fn new(start: SimTime, end: SimTime) -> Self {
        assert!(end >= start, "TimeRange end must not precede start");
        Self { start, end }
    }

    /// Creates the interval covering exactly simulation hour `hour`.
    #[must_use]
    pub fn hour(hour: u64) -> Self {
        Self::new(SimTime::from_hours(hour), SimTime::from_hours(hour + 1))
    }

    /// The inclusive start of the interval.
    #[must_use]
    pub const fn start(&self) -> SimTime {
        self.start
    }

    /// The exclusive end of the interval.
    #[must_use]
    pub const fn end(&self) -> SimTime {
        self.end
    }

    /// The length of the interval.
    #[must_use]
    pub fn duration(&self) -> SimDuration {
        self.end.duration_since(self.start)
    }

    /// Whether `t` lies in `[start, end)`.
    #[must_use]
    pub fn contains(&self, t: SimTime) -> bool {
        t >= self.start && t < self.end
    }

    /// Whether two ranges overlap (share at least one instant).
    #[must_use]
    pub fn overlaps(&self, other: &TimeRange) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// The smallest range covering both ranges.
    #[must_use]
    pub fn merge(&self, other: &TimeRange) -> TimeRange {
        TimeRange {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

impl fmt::Display for TimeRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} .. {})", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_constructors_agree() {
        assert_eq!(SimTime::from_mins(2), SimTime::from_secs(120));
        assert_eq!(SimTime::from_hours(2), SimTime::from_secs(7200));
        assert_eq!(SimTime::from_days(1), SimTime::from_hours(24));
    }

    #[test]
    fn hour_bucket_floors() {
        assert_eq!(SimTime::from_secs(0).hour_bucket(), 0);
        assert_eq!(SimTime::from_secs(3599).hour_bucket(), 0);
        assert_eq!(SimTime::from_secs(3600).hour_bucket(), 1);
        assert_eq!(SimTime::from_days(2).day_bucket(), 2);
        assert_eq!(SimTime::from_hours(25).hour_of_day(), 1);
    }

    #[test]
    fn duration_since_saturates() {
        let early = SimTime::from_secs(10);
        let late = SimTime::from_secs(25);
        assert_eq!(late.duration_since(early), SimDuration::from_secs(15));
        assert_eq!(early.duration_since(late), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_secs(100);
        let d = SimDuration::from_secs(40);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d).checked_sub(d), Some(t));
        assert_eq!(SimTime::EPOCH.checked_sub(d), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_secs(0).to_string(), "d0 00:00:00");
        assert_eq!(
            (SimTime::from_days(3) + SimDuration::from_secs(3725)).to_string(),
            "d3 01:02:05"
        );
        assert_eq!(SimDuration::from_secs(90).to_string(), "1m30s");
        assert_eq!(SimDuration::from_secs(3725).to_string(), "1h02m05s");
    }

    #[test]
    fn range_contains_is_half_open() {
        let r = TimeRange::hour(3);
        assert!(r.contains(SimTime::from_hours(3)));
        assert!(r.contains(SimTime::from_secs(3 * 3600 + 3599)));
        assert!(!r.contains(SimTime::from_hours(4)));
        assert_eq!(r.duration(), SimDuration::from_hours(1));
    }

    #[test]
    fn range_overlap_and_merge() {
        let a = TimeRange::hour(1);
        let b = TimeRange::hour(2);
        let c = TimeRange::new(SimTime::from_secs(5000), SimTime::from_secs(8000));
        assert!(!a.overlaps(&b));
        assert!(a.overlaps(&c));
        let merged = a.merge(&b);
        assert_eq!(merged.start(), SimTime::from_hours(1));
        assert_eq!(merged.end(), SimTime::from_hours(3));
    }

    #[test]
    #[should_panic(expected = "TimeRange end must not precede start")]
    fn range_rejects_inverted_bounds() {
        let _ = TimeRange::new(SimTime::from_secs(10), SimTime::from_secs(5));
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = [10u64, 20, 30]
            .into_iter()
            .map(SimDuration::from_secs)
            .sum();
        assert_eq!(total, SimDuration::from_secs(60));
    }
}
