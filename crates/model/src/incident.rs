//! Incidents: what alerts escalate to when not mitigated in time.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{AlertId, IncidentId, ServiceId, Severity, SimTime};

/// The lifecycle status of an incident.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum IncidentStatus {
    /// Ongoing interruption or degradation.
    Open,
    /// Mitigated; service restored.
    Mitigated {
        /// When mitigation completed.
        at: SimTime,
    },
}

/// Any unplanned interruption or performance degradation of a service or
/// product, which can lead to service shortages at all service levels.
///
/// A severe enough alert (or a group of related alerts) can escalate to an
/// incident. Incidents are the ground truth for the QoA *indicativeness*
/// criterion: an alert is indicative when the anomaly it reports does end
/// up affecting end users, i.e. co-occurs with an incident on its service.
///
/// # Example
///
/// ```
/// use alertops_model::{AlertId, Incident, IncidentId, ServiceId, Severity, SimTime};
///
/// let mut incident = Incident::new(
///     IncidentId(1),
///     ServiceId(3),
///     Severity::Critical,
///     SimTime::from_hours(7),
/// );
/// incident.link_alert(AlertId(10));
/// incident.mitigate(SimTime::from_hours(9));
/// assert!(!incident.is_open());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Incident {
    id: IncidentId,
    service: ServiceId,
    severity: Severity,
    started_at: SimTime,
    status: IncidentStatus,
    alerts: Vec<AlertId>,
}

impl Incident {
    /// Creates a new open incident.
    #[must_use]
    pub fn new(
        id: IncidentId,
        service: ServiceId,
        severity: Severity,
        started_at: SimTime,
    ) -> Self {
        Self {
            id,
            service,
            severity,
            started_at,
            status: IncidentStatus::Open,
            alerts: Vec::new(),
        }
    }

    /// The incident id.
    #[must_use]
    pub fn id(&self) -> IncidentId {
        self.id
    }

    /// The affected service.
    #[must_use]
    pub fn service(&self) -> ServiceId {
        self.service
    }

    /// The incident severity.
    #[must_use]
    pub fn severity(&self) -> Severity {
        self.severity
    }

    /// When the interruption started.
    #[must_use]
    pub fn started_at(&self) -> SimTime {
        self.started_at
    }

    /// The current status.
    #[must_use]
    pub fn status(&self) -> IncidentStatus {
        self.status
    }

    /// Whether the incident is still open.
    #[must_use]
    pub fn is_open(&self) -> bool {
        matches!(self.status, IncidentStatus::Open)
    }

    /// Alerts that escalated to / are associated with this incident.
    #[must_use]
    pub fn alerts(&self) -> &[AlertId] {
        &self.alerts
    }

    /// Associates an alert with this incident. Duplicates are ignored.
    pub fn link_alert(&mut self, alert: AlertId) {
        if !self.alerts.contains(&alert) {
            self.alerts.push(alert);
        }
    }

    /// Marks the incident mitigated at `at` (idempotent: a later call on a
    /// mitigated incident keeps the earlier mitigation time).
    pub fn mitigate(&mut self, at: SimTime) {
        if self.is_open() {
            self.status = IncidentStatus::Mitigated {
                at: at.max(self.started_at),
            };
        }
    }

    /// Whether the incident was ongoing at `t`, or began within
    /// `lookahead` after `t` — the test for an alert at `t` being an
    /// *early warning* of this incident. Alerts legitimately precede the
    /// user-visible impact they indicate (that is their whole purpose),
    /// so indicativeness checks use this rather than [`covers`](Self::covers).
    #[must_use]
    pub fn covers_or_follows(&self, t: SimTime, lookahead: crate::SimDuration) -> bool {
        if self.covers(t) {
            return true;
        }
        self.started_at >= t && self.started_at.duration_since(t) <= lookahead
    }

    /// Whether the incident was ongoing at `t`.
    #[must_use]
    pub fn covers(&self, t: SimTime) -> bool {
        if t < self.started_at {
            return false;
        }
        match self.status {
            IncidentStatus::Open => true,
            IncidentStatus::Mitigated { at } => t < at,
        }
    }
}

impl fmt::Display for Incident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {} started {} ({} linked alerts, {})",
            self.id,
            self.severity.label(),
            self.service,
            self.started_at,
            self.alerts.len(),
            if self.is_open() { "open" } else { "mitigated" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn incident() -> Incident {
        Incident::new(
            IncidentId(1),
            ServiceId(2),
            Severity::Major,
            SimTime::from_hours(1),
        )
    }

    #[test]
    fn new_incident_is_open() {
        let inc = incident();
        assert!(inc.is_open());
        assert_eq!(inc.status(), IncidentStatus::Open);
        assert!(inc.alerts().is_empty());
    }

    #[test]
    fn link_alert_dedups() {
        let mut inc = incident();
        inc.link_alert(AlertId(5));
        inc.link_alert(AlertId(5));
        inc.link_alert(AlertId(6));
        assert_eq!(inc.alerts(), &[AlertId(5), AlertId(6)]);
    }

    #[test]
    fn mitigate_is_idempotent() {
        let mut inc = incident();
        inc.mitigate(SimTime::from_hours(2));
        inc.mitigate(SimTime::from_hours(5));
        assert_eq!(
            inc.status(),
            IncidentStatus::Mitigated {
                at: SimTime::from_hours(2)
            }
        );
    }

    #[test]
    fn mitigate_clamps_to_start() {
        let mut inc = incident();
        inc.mitigate(SimTime::from_secs(0));
        assert_eq!(
            inc.status(),
            IncidentStatus::Mitigated {
                at: SimTime::from_hours(1)
            }
        );
    }

    #[test]
    fn covers_or_follows_adds_lookahead() {
        use crate::SimDuration;
        let inc = incident(); // starts at hour 1
        let lookahead = SimDuration::from_mins(30);
        // 20 minutes before the incident: early warning.
        let early = SimTime::from_secs(3_600 - 20 * 60);
        assert!(!inc.covers(early));
        assert!(inc.covers_or_follows(early, lookahead));
        // 2 hours before: too early to be a warning.
        assert!(!inc.covers_or_follows(SimTime::from_secs(0), lookahead));
        // During the incident: still covered.
        assert!(inc.covers_or_follows(SimTime::from_hours(2), lookahead));
    }

    #[test]
    fn covers_window() {
        let mut inc = incident();
        assert!(!inc.covers(SimTime::from_secs(0)));
        assert!(inc.covers(SimTime::from_hours(3)));
        inc.mitigate(SimTime::from_hours(2));
        assert!(inc.covers(SimTime::from_hours(1)));
        assert!(!inc.covers(SimTime::from_hours(2)));
    }

    #[test]
    fn display_mentions_status() {
        let mut inc = incident();
        assert!(inc.to_string().contains("open"));
        inc.mitigate(SimTime::from_hours(2));
        assert!(inc.to_string().contains("mitigated"));
    }
}
