//! On-call engineers.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::OceId;

/// Working-experience bands, matching the demographics of the paper's
/// survey (18 OCEs: 10 with >3 years, 3 with 2–3, 2 with 1–2, 3 with <1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ExperienceBand {
    /// Less than one year of working experience.
    UnderOneYear,
    /// One to two years.
    OneToTwoYears,
    /// Two to three years.
    TwoToThreeYears,
    /// More than three years.
    OverThreeYears,
}

impl ExperienceBand {
    /// All bands, ascending.
    pub const ALL: [ExperienceBand; 4] = [
        ExperienceBand::UnderOneYear,
        ExperienceBand::OneToTwoYears,
        ExperienceBand::TwoToThreeYears,
        ExperienceBand::OverThreeYears,
    ];

    /// A diagnosis-speed multiplier: experienced OCEs process alerts
    /// faster. Used by the simulator's processing-time model.
    #[must_use]
    pub const fn speed_factor(self) -> f64 {
        match self {
            ExperienceBand::UnderOneYear => 1.8,
            ExperienceBand::OneToTwoYears => 1.4,
            ExperienceBand::TwoToThreeYears => 1.15,
            ExperienceBand::OverThreeYears => 1.0,
        }
    }
}

impl fmt::Display for ExperienceBand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ExperienceBand::UnderOneYear => "<1 year",
            ExperienceBand::OneToTwoYears => "1-2 years",
            ExperienceBand::TwoToThreeYears => "2-3 years",
            ExperienceBand::OverThreeYears => ">3 years",
        })
    }
}

/// An on-call engineer.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Oce {
    id: OceId,
    name: String,
    experience: ExperienceBand,
}

impl Oce {
    /// Creates an OCE.
    pub fn new(id: OceId, name: impl Into<String>, experience: ExperienceBand) -> Self {
        Self {
            id,
            name: name.into(),
            experience,
        }
    }

    /// The OCE id.
    #[must_use]
    pub fn id(&self) -> OceId {
        self.id
    }

    /// The OCE's display name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The OCE's experience band.
    #[must_use]
    pub fn experience(&self) -> ExperienceBand {
        self.experience
    }
}

impl fmt::Display for Oce {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}, {})", self.name, self.id, self.experience)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bands_order_by_experience() {
        for w in ExperienceBand::ALL.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn speed_factor_decreases_with_experience() {
        let factors: Vec<f64> = ExperienceBand::ALL
            .iter()
            .map(|b| b.speed_factor())
            .collect();
        for w in factors.windows(2) {
            assert!(w[0] > w[1]);
        }
        assert_eq!(ExperienceBand::OverThreeYears.speed_factor(), 1.0);
    }

    #[test]
    fn oce_accessors_and_display() {
        let oce = Oce::new(OceId(3), "dana", ExperienceBand::OverThreeYears);
        assert_eq!(oce.id(), OceId(3));
        assert_eq!(oce.name(), "dana");
        assert_eq!(oce.experience(), ExperienceBand::OverThreeYears);
        assert_eq!(oce.to_string(), "dana (oce-3, >3 years)");
    }
}
