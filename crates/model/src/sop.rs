//! Standard Operating Procedures (SOPs).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{ModelError, StrategyId};

/// A predefined Standard Operating Procedure: what an OCE does upon
/// receiving an alert.
///
/// Structure follows the paper's Fig. 5 example
/// (`nginx_cpu_usage_over_80`): alert name, description, generation rule,
/// potential impact, possible causes, and steps to diagnose.
///
/// # Example
///
/// ```
/// use alertops_model::{Sop, StrategyId};
///
/// # fn main() -> Result<(), alertops_model::ModelError> {
/// let sop = Sop::builder("nginx_cpu_usage_over_80", StrategyId(12))
///     .description("CPU usage of nginx instance is higher than 80%")
///     .generation_rule(
///         "Continuously check the CPU usage of nginx instance, generate \
///          the alert when usage is higher than 80%.",
///     )
///     .potential_impact("Affects the forwarding of all requests.")
///     .possible_cause("The workload is too high.")
///     .step("execute command `top -bn1` in the instance")
///     .step("identify the busiest process and compare with the deploy manifest")
///     .build()?;
/// assert_eq!(sop.steps().len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Sop {
    alert_name: String,
    strategy: StrategyId,
    description: String,
    generation_rule: String,
    potential_impact: String,
    possible_causes: Vec<String>,
    steps: Vec<String>,
}

impl Sop {
    /// Starts building a SOP for the alert named `alert_name`, produced by
    /// `strategy`.
    #[must_use]
    pub fn builder(alert_name: impl Into<String>, strategy: StrategyId) -> SopBuilder {
        SopBuilder {
            sop: Sop {
                alert_name: alert_name.into(),
                strategy,
                description: String::new(),
                generation_rule: String::new(),
                potential_impact: String::new(),
                possible_causes: Vec::new(),
                steps: Vec::new(),
            },
        }
    }

    /// The alert name the OCE looks up to find this SOP.
    #[must_use]
    pub fn alert_name(&self) -> &str {
        &self.alert_name
    }

    /// The strategy this SOP belongs to.
    #[must_use]
    pub fn strategy(&self) -> StrategyId {
        self.strategy
    }

    /// Human-readable description of the alert condition.
    #[must_use]
    pub fn description(&self) -> &str {
        &self.description
    }

    /// Description of the generation rule (the alert strategy).
    #[must_use]
    pub fn generation_rule(&self) -> &str {
        &self.generation_rule
    }

    /// The potential impact on the cloud system.
    #[must_use]
    pub fn potential_impact(&self) -> &str {
        &self.potential_impact
    }

    /// Possible root causes, most likely first.
    #[must_use]
    pub fn possible_causes(&self) -> &[String] {
        &self.possible_causes
    }

    /// The diagnosis steps, in order.
    #[must_use]
    pub fn steps(&self) -> &[String] {
        &self.steps
    }

    /// A crude completeness score in `[0, 1]`: fraction of the six SOP
    /// sections that are non-empty.
    ///
    /// The paper's survey found 77.8% of OCEs consider current SOPs of
    /// limited help; incomplete SOPs lower the QoA *handleability*
    /// criterion, and this score is the feature that captures it.
    #[must_use]
    pub fn completeness(&self) -> f64 {
        let sections = [
            !self.alert_name.trim().is_empty(),
            !self.description.trim().is_empty(),
            !self.generation_rule.trim().is_empty(),
            !self.potential_impact.trim().is_empty(),
            !self.possible_causes.is_empty(),
            !self.steps.is_empty(),
        ];
        sections.iter().filter(|&&s| s).count() as f64 / sections.len() as f64
    }
}

impl fmt::Display for Sop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "SOP for alert {}", self.alert_name)?;
        writeln!(f, "  Description:       {}", self.description)?;
        writeln!(f, "  Generation Rule:   {}", self.generation_rule)?;
        writeln!(f, "  Potential Impact:  {}", self.potential_impact)?;
        writeln!(f, "  Possible Causes:")?;
        for (i, cause) in self.possible_causes.iter().enumerate() {
            writeln!(f, "    {}) {cause}", (b'a' + i as u8) as char)?;
        }
        writeln!(f, "  Steps to Diagnose:")?;
        for (i, step) in self.steps.iter().enumerate() {
            writeln!(f, "    Step {}: {step}", i + 1)?;
        }
        Ok(())
    }
}

/// Builder for [`Sop`]; see [`Sop::builder`].
#[derive(Debug, Clone)]
pub struct SopBuilder {
    sop: Sop,
}

impl SopBuilder {
    /// Sets the description section.
    #[must_use]
    pub fn description(mut self, text: impl Into<String>) -> Self {
        self.sop.description = text.into();
        self
    }

    /// Sets the generation-rule section.
    #[must_use]
    pub fn generation_rule(mut self, text: impl Into<String>) -> Self {
        self.sop.generation_rule = text.into();
        self
    }

    /// Sets the potential-impact section.
    #[must_use]
    pub fn potential_impact(mut self, text: impl Into<String>) -> Self {
        self.sop.potential_impact = text.into();
        self
    }

    /// Appends a possible cause.
    #[must_use]
    pub fn possible_cause(mut self, text: impl Into<String>) -> Self {
        self.sop.possible_causes.push(text.into());
        self
    }

    /// Appends a diagnosis step.
    #[must_use]
    pub fn step(mut self, text: impl Into<String>) -> Self {
        self.sop.steps.push(text.into());
        self
    }

    /// Builds the SOP.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptyTitle`] if the alert name is blank. All
    /// other sections may legitimately be empty — that is exactly the
    /// low-quality SOP the handleability criterion penalizes.
    pub fn build(self) -> Result<Sop, ModelError> {
        if self.sop.alert_name.trim().is_empty() {
            return Err(ModelError::EmptyTitle);
        }
        Ok(self.sop)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_sop() -> Sop {
        Sop::builder("nginx_cpu_usage_over_80", StrategyId(1))
            .description("CPU usage of nginx instance is higher than 80%")
            .generation_rule("Check CPU usage; alert when > 80%.")
            .potential_impact("Affects the forwarding of all requests.")
            .possible_cause("The workload is too high.")
            .possible_cause("A runaway worker process.")
            .step("execute command top -bn1 in the instance")
            .step("check nginx worker count")
            .build()
            .unwrap()
    }

    #[test]
    fn builder_rejects_blank_name() {
        assert!(Sop::builder("  ", StrategyId(1)).build().is_err());
    }

    #[test]
    fn completeness_full() {
        assert!((full_sop().completeness() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn completeness_partial() {
        let sop = Sop::builder("x", StrategyId(1)).build().unwrap();
        // Only the name section is filled: 1/6.
        assert!((sop.completeness() - 1.0 / 6.0).abs() < 1e-12);
        let sop = Sop::builder("x", StrategyId(1))
            .description("d")
            .step("s")
            .build()
            .unwrap();
        assert!((sop.completeness() - 3.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn display_mirrors_fig5_layout() {
        let text = full_sop().to_string();
        assert!(text.starts_with("SOP for alert nginx_cpu_usage_over_80"));
        assert!(text.contains("a) The workload is too high."));
        assert!(text.contains("b) A runaway worker process."));
        assert!(text.contains("Step 1: execute command top -bn1 in the instance"));
        assert!(text.contains("Step 2: check nginx worker count"));
    }

    #[test]
    fn accessors() {
        let sop = full_sop();
        assert_eq!(sop.alert_name(), "nginx_cpu_usage_over_80");
        assert_eq!(sop.strategy(), StrategyId(1));
        assert_eq!(sop.possible_causes().len(), 2);
        assert_eq!(sop.steps().len(), 2);
        assert!(sop.potential_impact().contains("forwarding"));
    }
}
