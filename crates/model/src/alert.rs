//! Alerts: notifications of anomalies sent to on-call engineers.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{AlertId, IStr, Location, MicroserviceId, Severity, SimDuration, SimTime, StrategyId};

/// How an alert was cleared.
///
/// Per the paper (§II-B4) alerts are cleared either *manually* (the OCE
/// confirms mitigation) or *automatically* (the monitoring system observes
/// the service returning to a normal state — only probe and metric
/// strategies support this).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Clearance {
    /// Manually marked as cleared by an OCE after mitigation.
    Manual,
    /// Automatically cleared by the monitoring system.
    Auto,
}

impl fmt::Display for Clearance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Clearance::Manual => "manual",
            Clearance::Auto => "auto",
        })
    }
}

/// The lifecycle state of an alert.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum AlertState {
    /// Raised and not yet cleared.
    Active,
    /// Cleared at the given time, by the given mechanism.
    Cleared {
        /// When the alert was cleared.
        at: SimTime,
        /// Whether clearance was manual or automatic.
        by: Clearance,
    },
}

/// A notification sent to OCEs, of the form defined by its alert strategy,
/// about a specific anomaly of the cloud system.
///
/// An alert carries the attributes the paper lists (§II-B2): title,
/// severity level, time of occurrence, service name, duration (once
/// cleared), and location information. It additionally records the
/// per-alert OCE *processing time*, which drives the paper's candidate
/// mining for individual anti-patterns (strategies in the top 30% of
/// average processing time).
///
/// Construct with [`Alert::builder`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Alert {
    id: AlertId,
    strategy: StrategyId,
    title: IStr,
    severity: Severity,
    service_name: IStr,
    microservice: MicroserviceId,
    location: Location,
    raised_at: SimTime,
    state: AlertState,
    processing_time: Option<SimDuration>,
}

impl Alert {
    /// Starts building an alert raised by `strategy`.
    #[must_use]
    pub fn builder(id: AlertId, strategy: StrategyId) -> AlertBuilder {
        AlertBuilder {
            alert: Alert {
                id,
                strategy,
                title: IStr::default(),
                severity: Severity::Warning,
                service_name: IStr::default(),
                microservice: MicroserviceId(0),
                location: Location::default(),
                raised_at: SimTime::EPOCH,
                state: AlertState::Active,
                processing_time: None,
            },
        }
    }

    /// The alert id.
    #[must_use]
    pub fn id(&self) -> AlertId {
        self.id
    }

    /// The strategy that generated this alert.
    #[must_use]
    pub fn strategy(&self) -> StrategyId {
        self.strategy
    }

    /// The free-text title describing the alert.
    #[must_use]
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The title as its interned handle — clone this instead of the
    /// text when the destination stores an [`IStr`] (refcount bump, no
    /// allocation).
    #[must_use]
    pub fn title_interned(&self) -> &IStr {
        &self.title
    }

    /// The severity level.
    #[must_use]
    pub fn severity(&self) -> Severity {
        self.severity
    }

    /// The affected cloud service, by name (as shown to the OCE).
    #[must_use]
    pub fn service_name(&self) -> &str {
        &self.service_name
    }

    /// The service name as its interned handle.
    #[must_use]
    pub fn service_name_interned(&self) -> &IStr {
        &self.service_name
    }

    /// The affected microservice.
    #[must_use]
    pub fn microservice(&self) -> MicroserviceId {
        self.microservice
    }

    /// The location information.
    #[must_use]
    pub fn location(&self) -> &Location {
        &self.location
    }

    /// The time of occurrence.
    #[must_use]
    pub fn raised_at(&self) -> SimTime {
        self.raised_at
    }

    /// The lifecycle state.
    #[must_use]
    pub fn state(&self) -> AlertState {
        self.state
    }

    /// Whether the alert is still active.
    #[must_use]
    pub fn is_active(&self) -> bool {
        matches!(self.state, AlertState::Active)
    }

    /// When the alert was cleared, if it has been.
    #[must_use]
    pub fn cleared_at(&self) -> Option<SimTime> {
        match self.state {
            AlertState::Active => None,
            AlertState::Cleared { at, .. } => Some(at),
        }
    }

    /// How the alert was cleared, if it has been.
    #[must_use]
    pub fn clearance(&self) -> Option<Clearance> {
        match self.state {
            AlertState::Active => None,
            AlertState::Cleared { by, .. } => Some(by),
        }
    }

    /// The duration between occurrence and clearance, if cleared.
    #[must_use]
    pub fn duration(&self) -> Option<SimDuration> {
        self.cleared_at()
            .map(|at| at.duration_since(self.raised_at))
    }

    /// The OCE processing time recorded for this alert, if any.
    ///
    /// `None` means no OCE ever worked on the alert (e.g. it auto-cleared
    /// before anyone picked it up).
    #[must_use]
    pub fn processing_time(&self) -> Option<SimDuration> {
        self.processing_time
    }

    /// The simulation hour this alert occurred in; together with the
    /// region this is the grouping key for collective anti-pattern mining.
    #[must_use]
    pub fn hour_bucket(&self) -> u64 {
        self.raised_at.hour_bucket()
    }

    /// Marks the alert cleared at `at` by mechanism `by`.
    ///
    /// # Errors
    ///
    /// Returns the alert unchanged inside `Err` if it was already cleared
    /// or if `at` precedes the raise time, so callers can't corrupt the
    /// lifecycle invariant `cleared_at >= raised_at`.
    pub fn clear(&mut self, at: SimTime, by: Clearance) -> Result<(), crate::ModelError> {
        if !self.is_active() {
            return Err(crate::ModelError::AlreadyCleared(self.id));
        }
        if at < self.raised_at {
            return Err(crate::ModelError::ClearanceBeforeRaise(self.id));
        }
        self.state = AlertState::Cleared { at, by };
        Ok(())
    }

    /// Records the OCE processing time for this alert.
    pub fn record_processing_time(&mut self, time: SimDuration) {
        self.processing_time = Some(time);
    }

    /// Returns the same alert under a new id.
    ///
    /// Alert producers (the monitoring system, the statistical engine)
    /// assign dense ids only after sorting the full stream by raise
    /// time; this is the re-labelling step.
    #[must_use]
    pub fn with_id(mut self, id: AlertId) -> Self {
        self.id = id;
        self
    }
}

impl fmt::Display for Alert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} | {} | {} | {}",
            self.severity.label(),
            self.raised_at,
            self.service_name,
            self.title,
            self.location
        )
    }
}

/// Builder for [`Alert`]; see [`Alert::builder`].
///
/// Unlike [`AlertStrategyBuilder`](crate::AlertStrategyBuilder) this
/// builder is infallible: alerts are produced in bulk by the monitoring
/// system from already-validated strategies, so empty titles are allowed
/// here (and are precisely what the A1 detector exists to flag).
#[derive(Debug, Clone)]
pub struct AlertBuilder {
    alert: Alert,
}

impl AlertBuilder {
    /// Sets the title. Interned: pass an existing [`IStr`] (e.g. a
    /// strategy's cached template) to skip the intern lookup entirely.
    #[must_use]
    pub fn title(mut self, title: impl Into<IStr>) -> Self {
        self.alert.title = title.into();
        self
    }

    /// Sets the severity.
    #[must_use]
    pub fn severity(mut self, severity: Severity) -> Self {
        self.alert.severity = severity;
        self
    }

    /// Sets the affected service name.
    #[must_use]
    pub fn service(mut self, name: impl Into<IStr>) -> Self {
        self.alert.service_name = name.into();
        self
    }

    /// Sets the affected microservice id.
    #[must_use]
    pub fn microservice(mut self, id: impl Into<MicroserviceId>) -> Self {
        self.alert.microservice = id.into();
        self
    }

    /// Sets the location.
    #[must_use]
    pub fn location(mut self, location: Location) -> Self {
        self.alert.location = location;
        self
    }

    /// Sets the raise time.
    #[must_use]
    pub fn raised_at(mut self, at: SimTime) -> Self {
        self.alert.raised_at = at;
        self
    }

    /// Sets the processing time (normally recorded later via
    /// [`Alert::record_processing_time`]).
    #[must_use]
    pub fn processing_time(mut self, time: SimDuration) -> Self {
        self.alert.processing_time = Some(time);
        self
    }

    /// Finishes building the alert (active, uncleared).
    #[must_use]
    pub fn build(self) -> Alert {
        self.alert
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelError;

    fn sample() -> Alert {
        Alert::builder(AlertId(1), StrategyId(2))
            .title("Failed to commit changes")
            .severity(Severity::Critical)
            .service("Database")
            .microservice(MicroserviceId(7))
            .location(Location::new("X", "1"))
            .raised_at(SimTime::from_secs(100))
            .build()
    }

    #[test]
    fn builder_produces_active_alert() {
        let a = sample();
        assert!(a.is_active());
        assert_eq!(a.cleared_at(), None);
        assert_eq!(a.clearance(), None);
        assert_eq!(a.duration(), None);
        assert_eq!(a.processing_time(), None);
        assert_eq!(a.strategy(), StrategyId(2));
        assert_eq!(a.service_name(), "Database");
        assert_eq!(a.microservice(), MicroserviceId(7));
    }

    #[test]
    fn clear_records_duration() {
        let mut a = sample();
        a.clear(SimTime::from_secs(400), Clearance::Auto).unwrap();
        assert!(!a.is_active());
        assert_eq!(a.cleared_at(), Some(SimTime::from_secs(400)));
        assert_eq!(a.clearance(), Some(Clearance::Auto));
        assert_eq!(a.duration(), Some(SimDuration::from_secs(300)));
    }

    #[test]
    fn clear_twice_fails() {
        let mut a = sample();
        a.clear(SimTime::from_secs(200), Clearance::Manual).unwrap();
        let err = a.clear(SimTime::from_secs(300), Clearance::Manual);
        assert!(matches!(err, Err(ModelError::AlreadyCleared(AlertId(1)))));
        // State unchanged.
        assert_eq!(a.cleared_at(), Some(SimTime::from_secs(200)));
    }

    #[test]
    fn clear_before_raise_fails() {
        let mut a = sample();
        let err = a.clear(SimTime::from_secs(50), Clearance::Auto);
        assert!(matches!(
            err,
            Err(ModelError::ClearanceBeforeRaise(AlertId(1)))
        ));
        assert!(a.is_active());
    }

    #[test]
    fn hour_bucket_derives_from_raise_time() {
        let a = Alert::builder(AlertId(1), StrategyId(1))
            .raised_at(SimTime::from_hours(7))
            .build();
        assert_eq!(a.hour_bucket(), 7);
    }

    #[test]
    fn processing_time_recording() {
        let mut a = sample();
        a.record_processing_time(SimDuration::from_mins(12));
        assert_eq!(a.processing_time(), Some(SimDuration::from_mins(12)));
    }

    #[test]
    fn display_contains_key_attributes() {
        let s = sample().to_string();
        assert!(s.contains("CRITICAL"));
        assert!(s.contains("Database"));
        assert!(s.contains("Failed to commit changes"));
        assert!(s.contains("Region=X;DC=1;"));
    }

    #[test]
    fn with_id_relabels_without_touching_state() {
        let mut a = sample();
        a.clear(SimTime::from_secs(150), Clearance::Auto).unwrap();
        let b = a.clone().with_id(AlertId(99));
        assert_eq!(b.id(), AlertId(99));
        assert_eq!(b.title(), a.title());
        assert_eq!(b.cleared_at(), a.cleared_at());
        assert_eq!(b.clearance(), a.clearance());
    }

    #[test]
    fn serde_roundtrip() {
        let mut a = sample();
        a.clear(SimTime::from_secs(160), Clearance::Manual).unwrap();
        let json = serde_json::to_string(&a).unwrap();
        let back: Alert = serde_json::from_str(&json).unwrap();
        assert_eq!(back, a);
    }
}
