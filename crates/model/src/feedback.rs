//! OCE feedback labels for the Quality-of-Alerts loop.
//!
//! The paper (§IV) proposes that on-call engineers label alerts
//! high/low against three quality criteria so a model can be
//! "continuously updated so that it can automatically absorb the
//! human knowledge". [`QoaLabel`] is that unit of feedback: one
//! per-strategy verdict per window, carrying one boolean per
//! criterion.
//!
//! The criteria order is fixed by `alertops-qoa`'s `Criterion::ALL`
//! (indicativeness, precision, handleability); this crate only
//! defines the carrier so the simulator can produce labels without
//! depending on the scoring crate.

use serde::{Deserialize, Serialize};

use crate::ids::StrategyId;

/// Number of QoA criteria a label covers (indicativeness, precision,
/// handleability — in that order).
pub const QOA_CRITERIA: usize = 3;

/// One window of OCE feedback about one alert strategy: a high/low
/// verdict per QoA criterion.
///
/// Label streams are always sorted by [`QoaLabel::strategy`] within a
/// window and carry at most one entry per strategy; consumers rely on
/// that ordering for deterministic `partial_fit` updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QoaLabel {
    /// The strategy the feedback is about.
    pub strategy: StrategyId,
    /// High (`true`) / low (`false`) per criterion, in the fixed
    /// criteria order (indicativeness, precision, handleability).
    pub labels: [bool; QOA_CRITERIA],
}

impl QoaLabel {
    /// Builds a label for `strategy` from per-criterion verdicts.
    #[must_use]
    pub fn new(strategy: StrategyId, labels: [bool; QOA_CRITERIA]) -> Self {
        QoaLabel { strategy, labels }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_roundtrips_through_json() {
        let label = QoaLabel::new(StrategyId(7), [true, false, true]);
        let json = serde_json::to_string(&label).expect("serializes");
        let back: QoaLabel = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(label, back);
    }
}
