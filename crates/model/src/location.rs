//! Location information attached to alerts.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{IStr, RegionId};

/// The location information of an alert: the information necessary to
/// locate the anomalous service or microservice.
///
/// Mirrors the `Region=X;DC=1;` location strings of the paper's Table II,
/// optionally extended with an instance name.
///
/// # Example
///
/// ```
/// use alertops_model::Location;
///
/// let loc = Location::new("region-x", "dc-1").with_instance("nginx-42");
/// assert_eq!(loc.to_string(), "Region=region-x;DC=dc-1;Instance=nginx-42;");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Location {
    region: RegionId,
    dc: IStr,
    instance: Option<IStr>,
}

impl Location {
    /// Creates a location from a region and a data-center name.
    pub fn new(region: impl Into<RegionId>, dc: impl Into<IStr>) -> Self {
        Self {
            region: region.into(),
            dc: dc.into(),
            instance: None,
        }
    }

    /// Attaches an instance name (e.g. the VM or container the alert
    /// fired on). Consuming builder-style setter.
    #[must_use]
    pub fn with_instance(mut self, instance: impl Into<IStr>) -> Self {
        self.instance = Some(instance.into());
        self
    }

    /// The region this alert belongs to.
    #[must_use]
    pub fn region(&self) -> &RegionId {
        &self.region
    }

    /// The data center within the region.
    #[must_use]
    pub fn dc(&self) -> &str {
        &self.dc
    }

    /// The instance, if one was recorded.
    #[must_use]
    pub fn instance(&self) -> Option<&str> {
        self.instance.as_deref()
    }

    /// Whether this location pins down an instance.
    ///
    /// Locations without an instance are less *handleable*: the OCE must
    /// find the faulty instance manually. The QoA handleability criterion
    /// uses this.
    #[must_use]
    pub fn is_instance_level(&self) -> bool {
        self.instance.is_some()
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Region={};DC={};", self.region, self.dc)?;
        if let Some(instance) = &self.instance {
            write!(f, "Instance={instance};")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_format() {
        let loc = Location::new("X", "1");
        assert_eq!(loc.to_string(), "Region=X;DC=1;");
    }

    #[test]
    fn instance_level_detection() {
        let coarse = Location::new("r", "d");
        assert!(!coarse.is_instance_level());
        let fine = coarse.clone().with_instance("vm-7");
        assert!(fine.is_instance_level());
        assert_eq!(fine.instance(), Some("vm-7"));
        assert_eq!(fine.region().as_str(), "r");
        assert_eq!(fine.dc(), "d");
    }
}
