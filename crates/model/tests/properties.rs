//! Property-based tests over the core data model.

use proptest::prelude::*;

use alertops_model::{
    Alert, AlertId, Clearance, DependencyGraph, MicroserviceId, Severity, SimDuration, SimTime,
    StrategyId, TimeRange,
};

proptest! {
    #[test]
    fn time_addition_is_associative_with_durations(
        base in 0u64..1_000_000,
        d1 in 0u64..100_000,
        d2 in 0u64..100_000,
    ) {
        let t = SimTime::from_secs(base);
        let a = (t + SimDuration::from_secs(d1)) + SimDuration::from_secs(d2);
        let b = t + SimDuration::from_secs(d1 + d2);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn duration_since_saturates_and_inverts(
        a in 0u64..1_000_000,
        b in 0u64..1_000_000,
    ) {
        let ta = SimTime::from_secs(a);
        let tb = SimTime::from_secs(b);
        let d = tb.duration_since(ta);
        if b >= a {
            prop_assert_eq!(ta + d, tb);
        } else {
            prop_assert_eq!(d, SimDuration::ZERO);
        }
    }

    #[test]
    fn hour_bucket_consistent_with_range(t in 0u64..10_000_000) {
        let time = SimTime::from_secs(t);
        let range = TimeRange::hour(time.hour_bucket());
        prop_assert!(range.contains(time));
    }

    #[test]
    fn range_merge_covers_both(
        s1 in 0u64..100_000, l1 in 0u64..100_000,
        s2 in 0u64..100_000, l2 in 0u64..100_000,
    ) {
        let a = TimeRange::new(SimTime::from_secs(s1), SimTime::from_secs(s1 + l1));
        let b = TimeRange::new(SimTime::from_secs(s2), SimTime::from_secs(s2 + l2));
        let merged = a.merge(&b);
        prop_assert!(merged.start() <= a.start());
        prop_assert!(merged.start() <= b.start());
        prop_assert!(merged.end() >= a.end());
        prop_assert!(merged.end() >= b.end());
    }

    #[test]
    fn severity_rank_roundtrip(rank in 0u8..4) {
        let sev = Severity::from_rank(rank).expect("rank < 4");
        prop_assert_eq!(sev.rank(), rank);
    }

    #[test]
    fn severity_distance_triangle(
        a in 0u8..4, b in 0u8..4, c in 0u8..4,
    ) {
        let sa = Severity::from_rank(a).unwrap();
        let sb = Severity::from_rank(b).unwrap();
        let sc = Severity::from_rank(c).unwrap();
        prop_assert!(sa.distance(sc) <= sa.distance(sb) + sb.distance(sc));
    }

    #[test]
    fn alert_lifecycle_invariant(
        raised in 0u64..1_000_000,
        clear_offset in prop::option::of(0u64..1_000_000),
        manual in any::<bool>(),
    ) {
        let mut alert = Alert::builder(AlertId(1), StrategyId(2))
            .raised_at(SimTime::from_secs(raised))
            .build();
        prop_assert!(alert.is_active());
        if let Some(offset) = clear_offset {
            let by = if manual { Clearance::Manual } else { Clearance::Auto };
            alert
                .clear(SimTime::from_secs(raised + offset), by)
                .expect("clearance after raise succeeds");
            // The invariant the whole duration analysis rests on.
            prop_assert!(alert.cleared_at().unwrap() >= alert.raised_at());
            prop_assert_eq!(
                alert.duration().unwrap(),
                SimDuration::from_secs(offset)
            );
            // Double clear always fails and preserves state.
            let before = alert.clone();
            prop_assert!(alert.clear(SimTime::from_secs(raised + offset + 1), by).is_err());
            prop_assert_eq!(alert, before);
        }
    }

    #[test]
    fn graph_closure_consistent_with_pairwise(
        edges in prop::collection::vec((0u64..12, 0u64..12), 0..40),
    ) {
        let graph: DependencyGraph = edges
            .into_iter()
            .map(|(a, b)| (MicroserviceId(a), MicroserviceId(b)))
            .collect();
        for a in 0..12u64 {
            let closure = graph.dependency_closure(MicroserviceId(a));
            for b in 0..12u64 {
                prop_assert_eq!(
                    closure.contains(&MicroserviceId(b)),
                    graph.depends_transitively(MicroserviceId(a), MicroserviceId(b)),
                    "closure/pairwise mismatch for {} -> {}", a, b
                );
            }
        }
    }

    #[test]
    fn graph_affected_by_is_inverse_of_dependency_closure(
        edges in prop::collection::vec((0u64..10, 0u64..10), 0..30),
    ) {
        let graph: DependencyGraph = edges
            .into_iter()
            .map(|(a, b)| (MicroserviceId(a), MicroserviceId(b)))
            .collect();
        for a in 0..10u64 {
            for b in 0..10u64 {
                let forward = graph
                    .dependency_closure(MicroserviceId(a))
                    .contains(&MicroserviceId(b));
                let backward = graph
                    .affected_by(MicroserviceId(b))
                    .contains(&MicroserviceId(a));
                // a depends on b ⟺ a is affected by b's failure,
                // except the self-loop corner both sides exclude.
                if a != b {
                    prop_assert_eq!(forward, backward);
                }
            }
        }
    }
}
