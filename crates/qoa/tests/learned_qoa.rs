//! End-to-end QoA learning on simulated data: derive oracle labels from
//! injected ground truth, add label noise (imperfect OCEs), train on
//! half the strategies, and verify the model generalizes to the other
//! half — the §IV proposal made measurable.

use std::collections::HashMap;

use alertops_model::{Alert, AlertStrategy, StrategyId};
use alertops_qoa::{auc, flip_labels, Criterion, QoaModel, QoaScorer, TrainConfig};
use alertops_sim::scenarios;

struct Prepared {
    features: Vec<(StrategyId, Vec<f64>)>,
    /// Oracle "handleability is high" labels (clean strategies with full
    /// SOPs handle fast).
    handleable: Vec<bool>,
}

fn prepare(out: &alertops_sim::SimOutput) -> Prepared {
    let mut by_strategy: HashMap<StrategyId, Vec<&Alert>> = HashMap::new();
    for alert in &out.alerts {
        by_strategy.entry(alert.strategy()).or_default().push(alert);
    }
    let model = QoaModel::new();
    let mut features = Vec::new();
    let mut handleable = Vec::new();
    for strategy in out.catalog.strategies() {
        let alerts = by_strategy
            .get(&strategy.id())
            .map(Vec::as_slice)
            .unwrap_or(&[]);
        let sop = out.catalog.sop(strategy.id());
        features.push((
            strategy.id(),
            model.features(strategy, sop, alerts, &out.incidents),
        ));
        let profile = out.catalog.profile(strategy.id());
        let sop_ok = sop.is_some_and(|s| s.completeness() > 0.8);
        handleable.push(!profile.vague_title && sop_ok);
    }
    Prepared {
        features,
        handleable,
    }
}

#[test]
fn learned_handleability_generalizes() {
    let out = scenarios::mini_study(31).run();
    let prepared = prepare(&out);
    let n = prepared.features.len();
    let split = n / 2;

    // Noisy OCE labels on the training half.
    let noisy = flip_labels(&prepared.handleable[..split], 0.1, 99);
    let train_x: Vec<Vec<f64>> = prepared.features[..split]
        .iter()
        .map(|(_, x)| x.clone())
        .collect();

    let mut model = QoaModel::new();
    model.fit(
        Criterion::Handleability,
        &train_x,
        &noisy,
        &TrainConfig::default(),
    );

    // Evaluate on the held-out half against the *clean* oracle.
    let scores: Vec<f64> = prepared.features[split..]
        .iter()
        .map(|(_, x)| model.predict_proba(Criterion::Handleability, x))
        .collect();
    let truth = &prepared.handleable[split..];
    let a = auc(&scores, truth).expect("both classes present");
    assert!(a > 0.8, "held-out AUC {a:.3}");
}

#[test]
fn evidence_scorer_separates_injected_quality() {
    let out = scenarios::mini_study(31).run();
    let mut by_strategy: HashMap<StrategyId, Vec<&Alert>> = HashMap::new();
    for alert in &out.alerts {
        by_strategy.entry(alert.strategy()).or_default().push(alert);
    }
    let scorer = QoaScorer::new();
    let mut clean_overall = Vec::new();
    let mut dirty_overall = Vec::new();
    for strategy in out.catalog.strategies() {
        let alerts = by_strategy
            .get(&strategy.id())
            .map(Vec::as_slice)
            .unwrap_or(&[]);
        let report = scorer.score(
            strategy,
            out.catalog.sop(strategy.id()),
            alerts,
            &out.incidents,
        );
        let profile = out.catalog.profile(strategy.id());
        if profile.is_clean() {
            clean_overall.push(report.scores.overall());
        } else if profile.vague_title || profile.misleading_severity {
            dirty_overall.push(report.scores.overall());
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    assert!(
        mean(&clean_overall) > mean(&dirty_overall),
        "clean {:.3} vs dirty {:.3}",
        mean(&clean_overall),
        mean(&dirty_overall)
    );
}

#[test]
fn continual_absorption_tracks_new_labels() {
    let out = scenarios::mini_study(31).run();
    let prepared = prepare(&out);
    let x: Vec<Vec<f64>> = prepared.features.iter().map(|(_, v)| v.clone()).collect();
    let mut model = QoaModel::new();
    // Feed labels in 4 streaming batches, as OCEs would produce them.
    let batch = x.len() / 4;
    for epoch in 0..30 {
        let _ = epoch;
        for b in 0..4 {
            let lo = b * batch;
            let hi = if b == 3 { x.len() } else { (b + 1) * batch };
            model.absorb(
                Criterion::Handleability,
                &x[lo..hi],
                &prepared.handleable[lo..hi],
                0.05,
            );
        }
    }
    let scores: Vec<f64> = x
        .iter()
        .map(|v| model.predict_proba(Criterion::Handleability, v))
        .collect();
    let a = auc(&scores, &prepared.handleable).expect("both classes present");
    assert!(a > 0.8, "absorbed AUC {a:.3}");
}

#[allow(dead_code)]
fn silence_unused(strategy: &AlertStrategy) -> StrategyId {
    strategy.id()
}
