//! Property-based tests over the QoA learning stack.

use proptest::prelude::*;

use alertops_qoa::{auc, BinaryMetrics, LogisticRegression, TrainConfig};

/// Deep sweep under `ALERTOPS_TEST_FULL=1`; a faster default keeps the
/// tier-1 wall clock flat.
fn cases(full: u32, quick: u32) -> u32 {
    if std::env::var("ALERTOPS_TEST_FULL").as_deref() == Ok("1") {
        full
    } else {
        quick
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(64, 24)))]

    #[test]
    fn logistic_outputs_are_probabilities(
        weights_seed in prop::collection::vec(-5.0f64..5.0, 1..8),
        x in prop::collection::vec(-10.0f64..10.0, 1..8),
    ) {
        // Train a model briefly on arbitrary data to move the weights,
        // then check outputs stay in (0, 1).
        let dim = weights_seed.len().min(x.len());
        let mut model = LogisticRegression::new(dim);
        let data = vec![weights_seed[..dim].to_vec(), x[..dim].to_vec()];
        let labels = vec![true, false];
        model.fit(&data, &labels, &TrainConfig { epochs: 10, ..TrainConfig::default() });
        let p = model.predict_proba(&x[..dim]);
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!(p.is_finite());
    }

    #[test]
    fn training_never_increases_loss_dramatically(
        points in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0, any::<bool>()), 8..40),
    ) {
        let x: Vec<Vec<f64>> = points.iter().map(|&(a, b, _)| vec![a, b]).collect();
        let y: Vec<bool> = points.iter().map(|&(_, _, l)| l).collect();
        let mut model = LogisticRegression::new(2);
        let before = model.log_loss(&x, &y);
        model.fit(&x, &y, &TrainConfig::default());
        let after = model.log_loss(&x, &y);
        // On arbitrary (possibly unlearnable) data, training must at
        // least not blow the loss up beyond the trivial classifier's.
        prop_assert!(after <= before + 0.1, "loss exploded: {} -> {}", before, after);
    }

    #[test]
    fn auc_bounded_and_invariant_to_monotone_transform(
        scored in prop::collection::vec((0.0f64..1.0, any::<bool>()), 2..50),
    ) {
        let scores: Vec<f64> = scored.iter().map(|&(s, _)| s).collect();
        let truth: Vec<bool> = scored.iter().map(|&(_, t)| t).collect();
        if let Some(a) = auc(&scores, &truth) {
            prop_assert!((0.0..=1.0).contains(&a));
            // Strictly monotone transform preserves ranking, hence AUC.
            let transformed: Vec<f64> = scores.iter().map(|s| (3.0 * s).exp()).collect();
            let b = auc(&transformed, &truth).unwrap();
            prop_assert!((a - b).abs() < 1e-9, "{} vs {}", a, b);
        }
    }

    #[test]
    fn auc_of_inverted_scores_is_complement(
        scored in prop::collection::vec((0.0f64..1.0, any::<bool>()), 2..50),
    ) {
        let scores: Vec<f64> = scored.iter().map(|&(s, _)| s).collect();
        let truth: Vec<bool> = scored.iter().map(|&(_, t)| t).collect();
        if let Some(a) = auc(&scores, &truth) {
            let inverted: Vec<f64> = scores.iter().map(|s| 1.0 - s).collect();
            let b = auc(&inverted, &truth).unwrap();
            prop_assert!((a + b - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn binary_metrics_are_bounded_and_consistent(
        pairs in prop::collection::vec((any::<bool>(), any::<bool>()), 1..60),
    ) {
        let predicted: Vec<bool> = pairs.iter().map(|&(p, _)| p).collect();
        let truth: Vec<bool> = pairs.iter().map(|&(_, t)| t).collect();
        let m = BinaryMetrics::compute(&predicted, &truth);
        for v in [m.accuracy, m.precision, m.recall, m.f1] {
            prop_assert!((0.0..=1.0).contains(&v));
        }
        // F1 is the harmonic mean: bounded by its components.
        let lo = m.precision.min(m.recall);
        let hi = m.precision.max(m.recall);
        prop_assert!(m.f1 + 1e-12 >= lo || (m.precision + m.recall == 0.0));
        prop_assert!(m.f1 <= hi + 1e-12);
    }
}
