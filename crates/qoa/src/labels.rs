//! Label utilities for QoA learning experiments.
//!
//! Production QoA labels come from OCEs "creating labels like high/low
//! precision/handleability/indicativeness for each alert during alert
//! processing" (§IV). Experiments on the simulator derive the labels
//! from ground truth instead, and use [`flip_labels`] to model imperfect
//! human labelling.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Returns a copy of `labels` with each entry independently flipped with
/// probability `noise`. Deterministic in the seed.
///
/// # Panics
///
/// Panics if `noise` is outside `[0, 1]`.
#[must_use]
pub fn flip_labels(labels: &[bool], noise: f64, seed: u64) -> Vec<bool> {
    assert!(
        (0.0..=1.0).contains(&noise),
        "noise must lie in [0, 1], got {noise}"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    labels
        .iter()
        .map(|&label| if rng.gen_bool(noise) { !label } else { label })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_noise_is_identity() {
        let labels = vec![true, false, true, true];
        assert_eq!(flip_labels(&labels, 0.0, 1), labels);
    }

    #[test]
    fn full_noise_inverts_everything() {
        let labels = vec![true, false, true];
        assert_eq!(flip_labels(&labels, 1.0, 1), vec![false, true, false]);
    }

    #[test]
    fn noise_rate_is_approximately_respected() {
        let labels = vec![true; 10_000];
        let noisy = flip_labels(&labels, 0.2, 7);
        let flipped = noisy.iter().filter(|&&v| !v).count();
        assert!((1_500..2_500).contains(&flipped), "flipped {flipped}");
    }

    #[test]
    fn deterministic_in_seed() {
        let labels = vec![true; 100];
        assert_eq!(flip_labels(&labels, 0.3, 5), flip_labels(&labels, 0.3, 5));
        assert_ne!(flip_labels(&labels, 0.3, 5), flip_labels(&labels, 0.3, 6));
    }

    #[test]
    #[should_panic(expected = "noise must lie in")]
    fn rejects_bad_noise() {
        let _ = flip_labels(&[true], 1.5, 1);
    }
}
