//! The learned QoA model: one classifier per criterion.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use alertops_model::{Alert, AlertStrategy, Incident, Sop, StrategyId};

use crate::features::FeatureExtractor;
use crate::logreg::{LogisticRegression, TrainConfig};

/// The three QoA criteria as a selectable axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Criterion {
    /// Indicates user-visible failures.
    Indicativeness,
    /// Severity reflects the anomaly.
    Precision,
    /// Quickly handleable.
    Handleability,
}

impl Criterion {
    /// All criteria.
    pub const ALL: [Criterion; 3] = [
        Criterion::Indicativeness,
        Criterion::Precision,
        Criterion::Handleability,
    ];
}

/// A trainable QoA model: extracts features per strategy and maintains
/// one logistic classifier per criterion, each predicting P(high
/// quality on that criterion).
#[derive(Debug)]
pub struct QoaModel {
    extractor: FeatureExtractor,
    classifiers: HashMap<Criterion, LogisticRegression>,
}

impl Default for QoaModel {
    fn default() -> Self {
        Self::new()
    }
}

impl QoaModel {
    /// Creates an untrained model.
    #[must_use]
    pub fn new() -> Self {
        let extractor = FeatureExtractor::new();
        let classifiers = Criterion::ALL
            .into_iter()
            .map(|c| (c, LogisticRegression::new(extractor.dim())))
            .collect();
        Self {
            extractor,
            classifiers,
        }
    }

    /// Extracts the model's feature vector for one strategy.
    #[must_use]
    pub fn features(
        &self,
        strategy: &AlertStrategy,
        sop: Option<&Sop>,
        alerts: &[&Alert],
        incidents: &[Incident],
    ) -> Vec<f64> {
        self.extractor.extract(strategy, sop, alerts, incidents)
    }

    /// Trains the classifier of one criterion from feature vectors and
    /// OCE labels (`true` = high quality).
    pub fn fit(
        &mut self,
        criterion: Criterion,
        x: &[Vec<f64>],
        labels: &[bool],
        config: &TrainConfig,
    ) {
        self.classifiers
            .get_mut(&criterion)
            .expect("all criteria are initialized")
            .fit(x, labels, config);
    }

    /// Continual update from a fresh batch of labels (Fig. 6 loop).
    pub fn absorb(
        &mut self,
        criterion: Criterion,
        x: &[Vec<f64>],
        labels: &[bool],
        learning_rate: f64,
    ) {
        self.classifiers
            .get_mut(&criterion)
            .expect("all criteria are initialized")
            .partial_fit(x, labels, learning_rate, 1e-4);
    }

    /// P(high quality) on one criterion for a feature vector.
    #[must_use]
    pub fn predict_proba(&self, criterion: Criterion, x: &[f64]) -> f64 {
        self.classifiers
            .get(&criterion)
            .expect("all criteria are initialized")
            .predict_proba(x)
    }

    /// Scores P(high) on all three criteria at once, keyed for reports.
    #[must_use]
    pub fn predict_all(&self, x: &[f64]) -> HashMap<Criterion, f64> {
        Criterion::ALL
            .into_iter()
            .map(|c| (c, self.predict_proba(c, x)))
            .collect()
    }

    /// Ranks strategies by predicted quality on a criterion, worst
    /// first — the automatic anti-pattern shortlist of Fig. 6.
    #[must_use]
    pub fn rank_worst_first(
        &self,
        criterion: Criterion,
        features_by_strategy: &[(StrategyId, Vec<f64>)],
    ) -> Vec<(StrategyId, f64)> {
        let mut scored: Vec<(StrategyId, f64)> = features_by_strategy
            .iter()
            .map(|(id, x)| (*id, self.predict_proba(criterion, x)))
            .collect();
        scored.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite probabilities"));
        scored
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic features where quality correlates with feature 0.
    fn dataset() -> (Vec<Vec<f64>>, Vec<bool>) {
        let dim = crate::features::FEATURE_NAMES.len();
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..60 {
            let good = i % 2 == 0;
            let mut v = vec![0.5; dim];
            v[0] = if good { 0.9 } else { 0.1 };
            x.push(v);
            y.push(good);
        }
        (x, y)
    }

    #[test]
    fn fit_and_predict_per_criterion() {
        let (x, y) = dataset();
        let mut model = QoaModel::new();
        model.fit(Criterion::Handleability, &x, &y, &TrainConfig::default());
        let mut good = vec![0.5; x[0].len()];
        good[0] = 0.95;
        let mut bad = good.clone();
        bad[0] = 0.05;
        assert!(model.predict_proba(Criterion::Handleability, &good) > 0.7);
        assert!(model.predict_proba(Criterion::Handleability, &bad) < 0.3);
        // Untrained criterion stays at 0.5.
        assert!((model.predict_proba(Criterion::Precision, &good) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn predict_all_covers_every_criterion() {
        let model = QoaModel::new();
        let x = vec![0.5; crate::features::FEATURE_NAMES.len()];
        let all = model.predict_all(&x);
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn absorb_moves_the_model() {
        let (x, y) = dataset();
        let mut model = QoaModel::new();
        let probe = {
            let mut v = vec![0.5; x[0].len()];
            v[0] = 0.95;
            v
        };
        let before = model.predict_proba(Criterion::Indicativeness, &probe);
        for _ in 0..50 {
            model.absorb(Criterion::Indicativeness, &x, &y, 0.1);
        }
        let after = model.predict_proba(Criterion::Indicativeness, &probe);
        assert!(after > before);
    }

    #[test]
    fn ranking_puts_worst_first() {
        let (x, y) = dataset();
        let mut model = QoaModel::new();
        model.fit(Criterion::Precision, &x, &y, &TrainConfig::default());
        let items: Vec<(StrategyId, Vec<f64>)> = x
            .iter()
            .enumerate()
            .map(|(i, v)| (StrategyId(i as u64), v.clone()))
            .collect();
        let ranked = model.rank_worst_first(Criterion::Precision, &items);
        assert_eq!(ranked.len(), x.len());
        for w in ranked.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        // The worst-ranked strategy should be a genuinely bad one (odd id).
        assert_eq!(ranked[0].0 .0 % 2, 1);
    }
}
