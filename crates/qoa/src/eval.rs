//! Evaluation metrics for learned QoA models.

use serde::{Deserialize, Serialize};

/// Standard binary-classification metrics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BinaryMetrics {
    /// Fraction correct.
    pub accuracy: f64,
    /// TP / (TP + FP); 1 when nothing was predicted positive.
    pub precision: f64,
    /// TP / (TP + FN); 1 when nothing is actually positive.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
}

impl BinaryMetrics {
    /// Computes metrics from parallel prediction / truth slices.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch or empty input.
    #[must_use]
    pub fn compute(predicted: &[bool], truth: &[bool]) -> Self {
        assert_eq!(predicted.len(), truth.len(), "length mismatch");
        assert!(!predicted.is_empty(), "cannot evaluate an empty set");
        let mut tp = 0usize;
        let mut fp = 0usize;
        let mut fn_ = 0usize;
        let mut correct = 0usize;
        for (&p, &t) in predicted.iter().zip(truth) {
            if p == t {
                correct += 1;
            }
            match (p, t) {
                (true, true) => tp += 1,
                (true, false) => fp += 1,
                (false, true) => fn_ += 1,
                (false, false) => {}
            }
        }
        let precision = if tp + fp == 0 {
            1.0
        } else {
            tp as f64 / (tp + fp) as f64
        };
        let recall = if tp + fn_ == 0 {
            1.0
        } else {
            tp as f64 / (tp + fn_) as f64
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        Self {
            accuracy: correct as f64 / predicted.len() as f64,
            precision,
            recall,
            f1,
        }
    }
}

/// Area under the ROC curve, computed via the rank-sum (Mann–Whitney)
/// formulation with midrank tie handling. Returns `None` when either
/// class is absent.
#[must_use]
pub fn auc(scores: &[f64], truth: &[bool]) -> Option<f64> {
    assert_eq!(scores.len(), truth.len(), "length mismatch");
    let positives = truth.iter().filter(|&&t| t).count();
    let negatives = truth.len() - positives;
    if positives == 0 || negatives == 0 {
        return None;
    }
    // Rank scores ascending with midranks for ties.
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).expect("finite scores"));
    let mut ranks = vec![0.0f64; scores.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let midrank = (i + j) as f64 / 2.0 + 1.0;
        for &ix in &order[i..=j] {
            ranks[ix] = midrank;
        }
        i = j + 1;
    }
    let rank_sum_pos: f64 = ranks
        .iter()
        .zip(truth)
        .filter(|(_, &t)| t)
        .map(|(r, _)| r)
        .sum();
    let u = rank_sum_pos - positives as f64 * (positives as f64 + 1.0) / 2.0;
    Some(u / (positives as f64 * negatives as f64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_perfect() {
        let m = BinaryMetrics::compute(&[true, false, true], &[true, false, true]);
        assert_eq!(m.accuracy, 1.0);
        assert_eq!(m.f1, 1.0);
    }

    #[test]
    fn metrics_mixed() {
        // predictions: TP, FP, FN, TN
        let m = BinaryMetrics::compute(&[true, true, false, false], &[true, false, true, false]);
        assert_eq!(m.accuracy, 0.5);
        assert_eq!(m.precision, 0.5);
        assert_eq!(m.recall, 0.5);
        assert_eq!(m.f1, 0.5);
    }

    #[test]
    fn metrics_degenerate_classes() {
        let m = BinaryMetrics::compute(&[false, false], &[false, false]);
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
    }

    #[test]
    fn auc_perfect_separation() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let truth = [false, false, true, true];
        assert_eq!(auc(&scores, &truth), Some(1.0));
        let inverted = [true, true, false, false];
        assert_eq!(auc(&scores, &inverted), Some(0.0));
    }

    #[test]
    fn auc_random_is_half() {
        // All scores tied: AUC must be exactly 0.5 via midranks.
        let scores = [0.5; 10];
        let truth = [
            true, false, true, false, true, false, true, false, true, false,
        ];
        let a = auc(&scores, &truth).unwrap();
        assert!((a - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_single_class_is_none() {
        assert_eq!(auc(&[0.1, 0.9], &[true, true]), None);
        assert_eq!(auc(&[0.1, 0.9], &[false, false]), None);
    }

    #[test]
    fn auc_partial_overlap() {
        // One inverted pair among four: AUC = 3/4.
        let scores = [0.1, 0.3, 0.45, 0.8];
        let truth = [false, true, false, true];
        let a = auc(&scores, &truth).unwrap();
        assert!((a - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn metrics_reject_empty() {
        let _ = BinaryMetrics::compute(&[], &[]);
    }
}
