//! Logistic regression, from scratch.
//!
//! Plain SGD with L2 regularization, deterministic shuffling, and a
//! `partial_fit` so the model can "be continuously updated so that it
//! can automatically absorb the human knowledge" (§IV) as OCE labels
//! stream in.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Training hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Full passes over the data.
    pub epochs: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// L2 penalty strength.
    pub l2: f64,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 100,
            learning_rate: 0.1,
            l2: 1e-4,
            seed: 13,
        }
    }
}

/// A binary logistic-regression classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogisticRegression {
    weights: Vec<f64>,
    bias: f64,
}

impl LogisticRegression {
    /// Creates a zero-initialized model over `dim` features.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero.
    #[must_use]
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "feature dimension must be positive");
        Self {
            weights: vec![0.0; dim],
            bias: 0.0,
        }
    }

    /// Rebuilds a model from checkpointed state — the inverse of
    /// [`weights`](Self::weights) + [`bias`](Self::bias). Used by the
    /// online QoA checkpoint codec, so restoration is bit-exact by
    /// construction.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty.
    #[must_use]
    pub fn from_parts(weights: Vec<f64>, bias: f64) -> Self {
        assert!(!weights.is_empty(), "feature dimension must be positive");
        Self { weights, bias }
    }

    /// The learned weights (index-aligned with the feature vector).
    #[must_use]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The learned bias.
    #[must_use]
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// P(y = 1 | x).
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong dimension.
    #[must_use]
    pub fn predict_proba(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.weights.len(), "feature dimension mismatch");
        let z: f64 = self
            .weights
            .iter()
            .zip(x)
            .map(|(w, xi)| w * xi)
            .sum::<f64>()
            + self.bias;
        sigmoid(z)
    }

    /// Hard prediction at threshold 0.5.
    #[must_use]
    pub fn predict(&self, x: &[f64]) -> bool {
        self.predict_proba(x) >= 0.5
    }

    /// Mean log-loss over a dataset (lower is better).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch between `x` and `y`.
    #[must_use]
    pub fn log_loss(&self, x: &[Vec<f64>], y: &[bool]) -> f64 {
        assert_eq!(x.len(), y.len(), "x/y length mismatch");
        if x.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        for (xi, &yi) in x.iter().zip(y) {
            let p = self.predict_proba(xi).clamp(1e-12, 1.0 - 1e-12);
            total -= if yi { p.ln() } else { (1.0 - p).ln() };
        }
        total / x.len() as f64
    }

    /// Trains from scratch (equivalent to repeated
    /// [`partial_fit`](Self::partial_fit) with per-epoch shuffling).
    pub fn fit(&mut self, x: &[Vec<f64>], y: &[bool], config: &TrainConfig) {
        assert_eq!(x.len(), y.len(), "x/y length mismatch");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut order: Vec<usize> = (0..x.len()).collect();
        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                self.sgd_step(&x[i], y[i], config.learning_rate, config.l2);
            }
        }
    }

    /// One incremental pass over a fresh labelled batch — the continual
    /// update of the paper's Fig. 6 loop.
    pub fn partial_fit(&mut self, x: &[Vec<f64>], y: &[bool], learning_rate: f64, l2: f64) {
        assert_eq!(x.len(), y.len(), "x/y length mismatch");
        for (xi, &yi) in x.iter().zip(y) {
            self.sgd_step(xi, yi, learning_rate, l2);
        }
    }

    fn sgd_step(&mut self, x: &[f64], y: bool, lr: f64, l2: f64) {
        let error = self.predict_proba(x) - f64::from(y);
        for (w, xi) in self.weights.iter_mut().zip(x) {
            *w -= lr * (error * xi + l2 * *w);
        }
        self.bias -= lr * error;
    }
}

fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// y = x0 + x1 > 1, with margin.
    fn dataset() -> (Vec<Vec<f64>>, Vec<bool>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                let a = f64::from(i) / 10.0;
                let b = f64::from(j) / 10.0;
                if (a + b - 1.0).abs() < 0.15 {
                    continue; // margin
                }
                x.push(vec![a, b]);
                y.push(a + b > 1.0);
            }
        }
        (x, y)
    }

    #[test]
    fn probabilities_are_probabilities() {
        let model = LogisticRegression::new(3);
        for x in [[0.0, 0.0, 0.0], [1.0, -5.0, 100.0], [-100.0, 0.0, 0.0]] {
            let p = model.predict_proba(&x);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn training_reduces_loss_and_separates() {
        let (x, y) = dataset();
        let mut model = LogisticRegression::new(2);
        let before = model.log_loss(&x, &y);
        model.fit(&x, &y, &TrainConfig::default());
        let after = model.log_loss(&x, &y);
        assert!(after < before, "loss did not drop: {before} -> {after}");
        // High training accuracy on separable data.
        let correct = x
            .iter()
            .zip(&y)
            .filter(|(xi, &yi)| model.predict(xi) == yi)
            .count();
        assert!(
            correct as f64 / x.len() as f64 > 0.95,
            "accuracy {}/{}",
            correct,
            x.len()
        );
    }

    #[test]
    fn deterministic_training() {
        let (x, y) = dataset();
        let mut a = LogisticRegression::new(2);
        let mut b = LogisticRegression::new(2);
        a.fit(&x, &y, &TrainConfig::default());
        b.fit(&x, &y, &TrainConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn partial_fit_improves_on_new_data() {
        let (x, y) = dataset();
        let mut model = LogisticRegression::new(2);
        model.fit(
            &x,
            &y,
            &TrainConfig {
                epochs: 5,
                ..TrainConfig::default()
            },
        );
        let before = model.log_loss(&x, &y);
        for _ in 0..20 {
            model.partial_fit(&x, &y, 0.1, 1e-4);
        }
        let after = model.log_loss(&x, &y);
        assert!(after < before);
    }

    #[test]
    fn l2_shrinks_weights() {
        let (x, y) = dataset();
        let mut light = LogisticRegression::new(2);
        let mut heavy = LogisticRegression::new(2);
        light.fit(
            &x,
            &y,
            &TrainConfig {
                l2: 0.0,
                ..TrainConfig::default()
            },
        );
        heavy.fit(
            &x,
            &y,
            &TrainConfig {
                l2: 0.5,
                ..TrainConfig::default()
            },
        );
        let norm = |m: &LogisticRegression| -> f64 {
            m.weights().iter().map(|w| w * w).sum::<f64>().sqrt()
        };
        assert!(norm(&heavy) < norm(&light));
    }

    #[test]
    fn sigmoid_extremes_are_stable() {
        assert!(sigmoid(1_000.0) <= 1.0);
        assert!(sigmoid(-1_000.0) >= 0.0);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        let model = LogisticRegression::new(2);
        let _ = model.predict_proba(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_dim_rejected() {
        let _ = LogisticRegression::new(0);
    }

    #[test]
    fn empty_log_loss_is_zero() {
        let model = LogisticRegression::new(2);
        assert_eq!(model.log_loss(&[], &[]), 0.0);
    }

    mod serde_bit_exact {
        use proptest::prelude::*;

        use super::*;

        /// Any u64 bit pattern, coerced to a *finite* f64 by zeroing
        /// the exponent when it encodes an inf/NaN (keeps sign and
        /// mantissa, lands on a subnormal).
        fn finite(bits: u64) -> f64 {
            let v = f64::from_bits(bits);
            if v.is_finite() {
                v
            } else {
                f64::from_bits(bits & 0x800F_FFFF_FFFF_FFFF)
            }
        }

        proptest! {
            /// Model state is checkpointed into WAL segments and
            /// snapshots; a JSON round trip must preserve every weight
            /// bit-for-bit (serde_json prints the shortest f64
            /// representation that parses back to the same value, so
            /// this holds for all finite doubles — this test is the
            /// fence around that assumption).
            #[test]
            fn json_roundtrip_is_bit_exact(
                weight_bits in proptest::collection::vec(0u64..u64::MAX, 1..16),
                bias_bits in 0u64..u64::MAX,
            ) {
                let weights: Vec<f64> = weight_bits.iter().copied().map(finite).collect();
                let model = LogisticRegression::from_parts(weights, finite(bias_bits));
                let json = serde_json::to_string(&model).expect("serializes");
                let back: LogisticRegression =
                    serde_json::from_str(&json).expect("deserializes");
                for (a, b) in model.weights().iter().zip(back.weights()) {
                    prop_assert_eq!(a.to_bits(), b.to_bits());
                }
                prop_assert_eq!(model.bias().to_bits(), back.bias().to_bits());
            }
        }
    }
}
