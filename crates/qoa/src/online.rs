//! The online QoA loop: continual scoring at window boundaries.
//!
//! The paper's Fig. 6 loop wants the QoA model "continuously updated so
//! that it can automatically absorb the human knowledge" (§IV). This
//! module is the streaming half of that loop: an [`OnlineQoaModel`]
//! holds one [`LogisticRegression`] per [`Criterion`] and, once per
//! window, absorbs the window's OCE labels via `partial_fit`, re-scores
//! every strategy that alerted, and folds the scores into per-strategy
//! EMAs that drive governance:
//!
//! * strategies whose EMA sinks below `demote_below` are **demoted** —
//!   the governor adds a blocking rule for them;
//! * strategies whose EMA rises above `escalate_above` are **promoted**
//!   — their alerts ride the explicit `escalated` lane past storm
//!   suppression.
//!
//! Everything here is a pure function of the input streams: samples and
//! labels arrive sorted by strategy id, updates run in that order, EMAs
//! live in a `BTreeMap`, and the whole model state round-trips through
//! a bit-exact [`QoaCheckpoint`] so a cluster restart replays to
//! identical weights.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use alertops_model::{QoaLabel, StrategyId, QOA_CRITERIA};

use crate::features::FEATURE_NAMES;
use crate::logreg::LogisticRegression;
use crate::model::Criterion;

/// Hyperparameters of the streaming QoA loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QoaFeedbackConfig {
    /// `partial_fit` learning rate per window.
    pub learning_rate: f64,
    /// L2 penalty applied during the continual updates.
    pub l2: f64,
    /// EMA smoothing factor for per-strategy overall scores.
    pub ema_alpha: f64,
    /// EMA below which a strategy is demoted (blocked).
    pub demote_below: f64,
    /// EMA above which a strategy's alerts are escalated past storm
    /// suppression.
    pub escalate_above: f64,
}

impl Default for QoaFeedbackConfig {
    fn default() -> Self {
        Self {
            learning_rate: 0.05,
            l2: 1e-4,
            ema_alpha: 0.2,
            demote_below: 0.35,
            escalate_above: 0.8,
        }
    }
}

/// One strategy's feature vector for one window — what a shard emits
/// upward so the coordinator's single sequential model can score it.
///
/// Sample streams are always sorted by [`QoaSample::strategy`] within a
/// window and carry at most one entry per strategy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QoaSample {
    /// The strategy the features describe.
    pub strategy: StrategyId,
    /// Feature vector in [`FEATURE_NAMES`] order.
    pub features: Vec<f64>,
}

/// One strategy's scores after a window update.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StrategyQoa {
    /// The scored strategy.
    pub strategy: StrategyId,
    /// P(high quality) per criterion, in [`Criterion::ALL`] order.
    pub scores: [f64; QOA_CRITERIA],
    /// The strategy's overall-quality EMA after this window.
    pub ema: f64,
}

/// What the model concluded at one window boundary — published in the
/// window's `GovernanceSnapshot` so operators can watch the loop learn.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QoaWindowReport {
    /// Labels absorbed (matched to a sample) this window.
    pub absorbed: usize,
    /// Every sampled strategy, scored with the post-update model,
    /// sorted by strategy id.
    pub scored: Vec<StrategyQoa>,
    /// Strategies whose EMA is below the demotion threshold.
    pub demoted: Vec<StrategyId>,
    /// Strategies whose EMA is above the escalation threshold.
    pub promoted: Vec<StrategyId>,
    /// FNV-1a digest of the full model state (weights, biases, EMAs,
    /// window count) — the cheap byte-identity probe differential
    /// tests compare across topologies.
    pub model_digest: u64,
}

/// The governance-facing verdicts derived from the current EMAs —
/// pushed down to shards so window `N + 1` governs with what window
/// `N` taught the model.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QoaVerdicts {
    /// Strategies to block (low quality).
    pub demoted: Vec<StrategyId>,
    /// Strategies whose alerts escalate past storm suppression.
    pub promoted: Vec<StrategyId>,
}

impl QoaVerdicts {
    /// True when no strategy is demoted or promoted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.demoted.is_empty() && self.promoted.is_empty()
    }
}

/// The continually-updated QoA model: one classifier per criterion
/// plus the per-strategy quality EMAs.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineQoaModel {
    config: QoaFeedbackConfig,
    models: [LogisticRegression; QOA_CRITERIA],
    emas: BTreeMap<StrategyId, f64>,
    windows_absorbed: u64,
}

impl OnlineQoaModel {
    /// Creates a fresh (all-zero-weights) model over the standard
    /// feature set.
    #[must_use]
    pub fn new(config: QoaFeedbackConfig) -> Self {
        let dim = FEATURE_NAMES.len();
        Self {
            config,
            models: [
                LogisticRegression::new(dim),
                LogisticRegression::new(dim),
                LogisticRegression::new(dim),
            ],
            emas: BTreeMap::new(),
            windows_absorbed: 0,
        }
    }

    /// The loop's hyperparameters.
    #[must_use]
    pub fn config(&self) -> &QoaFeedbackConfig {
        &self.config
    }

    /// Windows absorbed so far.
    #[must_use]
    pub fn windows_absorbed(&self) -> u64 {
        self.windows_absorbed
    }

    /// The classifier of one criterion (read-only).
    #[must_use]
    pub fn model(&self, criterion: Criterion) -> &LogisticRegression {
        let index = Criterion::ALL
            .iter()
            .position(|c| *c == criterion)
            .expect("criterion is in ALL");
        &self.models[index]
    }

    /// Absorbs one window of feedback and re-scores its strategies.
    ///
    /// `samples` and `labels` must each be sorted by strategy id with
    /// at most one entry per strategy (the producers guarantee this).
    /// Labels without a matching sample are ignored — the strategy did
    /// not alert in this window, so there is nothing to score the
    /// feedback against.
    ///
    /// The update is strictly sequential: a merge-join pairs samples
    /// with labels, each criterion's classifier takes one `partial_fit`
    /// pass over the matched pairs in strategy order, and only then is
    /// every sample scored with the *post-update* model. Replaying the
    /// same streams therefore reproduces the same weights bit-for-bit.
    pub fn observe_window(
        &mut self,
        samples: &[QoaSample],
        labels: &[QoaLabel],
    ) -> QoaWindowReport {
        // Merge-join samples with labels (both sorted by strategy id).
        let mut matched: Vec<(&QoaSample, &QoaLabel)> = Vec::new();
        let mut label_iter = labels.iter().peekable();
        for sample in samples {
            while label_iter
                .peek()
                .is_some_and(|l| l.strategy < sample.strategy)
            {
                label_iter.next();
            }
            if let Some(label) = label_iter.peek() {
                if label.strategy == sample.strategy {
                    matched.push((sample, label));
                }
            }
        }

        // One in-order partial_fit pass per criterion.
        if !matched.is_empty() {
            let xs: Vec<Vec<f64>> = matched.iter().map(|(s, _)| s.features.clone()).collect();
            for (slot, model) in self.models.iter_mut().enumerate() {
                let ys: Vec<bool> = matched.iter().map(|(_, l)| l.labels[slot]).collect();
                model.partial_fit(&xs, &ys, self.config.learning_rate, self.config.l2);
            }
        }

        // Score every sampled strategy with the post-update model and
        // fold into the EMAs.
        let mut scored = Vec::with_capacity(samples.len());
        for sample in samples {
            let mut scores = [0.0; QOA_CRITERIA];
            for (slot, model) in self.models.iter().enumerate() {
                scores[slot] = model.predict_proba(&sample.features);
            }
            let overall = scores.iter().sum::<f64>() / QOA_CRITERIA as f64;
            let ema = self.emas.entry(sample.strategy).or_insert(0.5);
            *ema += self.config.ema_alpha * (overall - *ema);
            scored.push(StrategyQoa {
                strategy: sample.strategy,
                scores,
                ema: *ema,
            });
        }
        self.windows_absorbed += 1;

        let QoaVerdicts { demoted, promoted } = self.verdicts();
        QoaWindowReport {
            absorbed: matched.len(),
            scored,
            demoted,
            promoted,
            model_digest: self.digest(),
        }
    }

    /// The current governance verdicts, derived from all tracked EMAs
    /// (sorted by strategy id).
    #[must_use]
    pub fn verdicts(&self) -> QoaVerdicts {
        let mut verdicts = QoaVerdicts::default();
        for (&strategy, &ema) in &self.emas {
            if ema < self.config.demote_below {
                verdicts.demoted.push(strategy);
            } else if ema > self.config.escalate_above {
                verdicts.promoted.push(strategy);
            }
        }
        verdicts
    }

    /// FNV-1a digest over every weight bit, bias bit, EMA entry and
    /// the window count — equal digests mean bit-identical models.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bits: u64| {
            for byte in bits.to_le_bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x100_0000_01b3);
            }
        };
        for model in &self.models {
            for w in model.weights() {
                eat(w.to_bits());
            }
            eat(model.bias().to_bits());
        }
        for (strategy, ema) in &self.emas {
            eat(strategy.0);
            eat(ema.to_bits());
        }
        eat(self.windows_absorbed);
        hash
    }

    /// Captures the full model state for journaling.
    #[must_use]
    pub fn checkpoint(&self) -> QoaCheckpoint {
        QoaCheckpoint {
            windows_absorbed: self.windows_absorbed,
            models: self
                .models
                .iter()
                .map(|m| (m.weights().to_vec(), m.bias()))
                .collect(),
            emas: self.emas.iter().map(|(&s, &e)| (s, e)).collect(),
        }
    }

    /// Rebuilds a model from a checkpoint. Returns `None` when the
    /// checkpoint does not carry exactly one classifier per criterion
    /// over the standard feature set.
    #[must_use]
    pub fn from_checkpoint(config: QoaFeedbackConfig, checkpoint: &QoaCheckpoint) -> Option<Self> {
        if checkpoint.models.len() != QOA_CRITERIA
            || checkpoint
                .models
                .iter()
                .any(|(w, _)| w.len() != FEATURE_NAMES.len())
        {
            return None;
        }
        let mut models = checkpoint
            .models
            .iter()
            .map(|(w, b)| LogisticRegression::from_parts(w.clone(), *b));
        Some(Self {
            config,
            models: [
                models.next().expect("three models"),
                models.next().expect("three models"),
                models.next().expect("three models"),
            ],
            emas: checkpoint.emas.iter().copied().collect(),
            windows_absorbed: checkpoint.windows_absorbed,
        })
    }
}

/// A bit-exact snapshot of an [`OnlineQoaModel`]'s learned state.
///
/// The binary encoding ([`to_bytes`](Self::to_bytes) /
/// [`from_bytes`](Self::from_bytes)) ships every `f64` as its raw IEEE
/// bits, so WAL round trips cannot drift; the serde derive is the
/// human-readable view for status endpoints.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QoaCheckpoint {
    /// Windows absorbed when the checkpoint was taken.
    pub windows_absorbed: u64,
    /// Per-criterion `(weights, bias)` in [`Criterion::ALL`] order.
    pub models: Vec<(Vec<f64>, f64)>,
    /// Per-strategy quality EMAs, sorted by strategy id.
    pub emas: Vec<(StrategyId, f64)>,
}

/// Version byte of the binary checkpoint encoding.
const CHECKPOINT_VERSION: u8 = 1;

impl QoaCheckpoint {
    /// Encodes the checkpoint as raw little-endian bytes (every `f64`
    /// as its IEEE bit pattern).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = vec![CHECKPOINT_VERSION];
        out.extend_from_slice(&self.windows_absorbed.to_le_bytes());
        out.push(u8::try_from(self.models.len()).expect("few criteria"));
        for (weights, bias) in &self.models {
            out.extend_from_slice(
                &u32::try_from(weights.len())
                    .expect("small feature dim")
                    .to_le_bytes(),
            );
            for w in weights {
                out.extend_from_slice(&w.to_bits().to_le_bytes());
            }
            out.extend_from_slice(&bias.to_bits().to_le_bytes());
        }
        out.extend_from_slice(
            &u32::try_from(self.emas.len())
                .expect("strategy count fits u32")
                .to_le_bytes(),
        );
        for (strategy, ema) in &self.emas {
            out.extend_from_slice(&strategy.0.to_le_bytes());
            out.extend_from_slice(&ema.to_bits().to_le_bytes());
        }
        out
    }

    /// Decodes [`to_bytes`](Self::to_bytes) output. Returns `None` on
    /// any malformed input (wrong version, truncation, trailing bytes).
    #[must_use]
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let mut rest = bytes;
        let mut take = |n: usize| -> Option<&[u8]> {
            if rest.len() < n {
                return None;
            }
            let (head, tail) = rest.split_at(n);
            rest = tail;
            Some(head)
        };
        let u64_at = |b: &[u8]| u64::from_le_bytes(b.try_into().expect("eight bytes"));
        let u32_at = |b: &[u8]| u32::from_le_bytes(b.try_into().expect("four bytes"));

        if *take(1)?.first()? != CHECKPOINT_VERSION {
            return None;
        }
        let windows_absorbed = u64_at(take(8)?);
        let model_count = usize::from(*take(1)?.first()?);
        let mut models = Vec::with_capacity(model_count);
        for _ in 0..model_count {
            let dim = u32_at(take(4)?) as usize;
            let mut weights = Vec::with_capacity(dim);
            for _ in 0..dim {
                weights.push(f64::from_bits(u64_at(take(8)?)));
            }
            let bias = f64::from_bits(u64_at(take(8)?));
            models.push((weights, bias));
        }
        let ema_count = u32_at(take(4)?) as usize;
        let mut emas = Vec::with_capacity(ema_count);
        for _ in 0..ema_count {
            let strategy = StrategyId(u64_at(take(8)?));
            emas.push((strategy, f64::from_bits(u64_at(take(8)?))));
        }
        if !rest.is_empty() {
            return None;
        }
        Some(Self {
            windows_absorbed,
            models,
            emas,
        })
    }
}

#[cfg(test)]
mod tests {
    use proptest::prelude::*;

    use super::*;

    /// Deterministic synthetic feature vector for (seed, window,
    /// strategy) — arithmetic only, no RNG.
    fn features(seed: u64, window: u64, strategy: u64) -> Vec<f64> {
        (0..FEATURE_NAMES.len() as u64)
            .map(|i| {
                let h = seed
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(window.wrapping_mul(31))
                    .wrapping_add(strategy.wrapping_mul(17))
                    .wrapping_add(i.wrapping_mul(7));
                (h % 1000) as f64 / 1000.0
            })
            .collect()
    }

    fn window_streams(seed: u64, window: u64, strategies: u64) -> (Vec<QoaSample>, Vec<QoaLabel>) {
        let samples: Vec<QoaSample> = (0..strategies)
            .map(|s| QoaSample {
                strategy: StrategyId(s),
                features: features(seed, window, s),
            })
            .collect();
        let labels: Vec<QoaLabel> = (0..strategies)
            // Leave some strategies unlabeled so the merge-join path is
            // exercised.
            .filter(|s| !(s + window).is_multiple_of(3))
            .map(|s| {
                QoaLabel::new(
                    StrategyId(s),
                    [
                        (s + seed).is_multiple_of(2),
                        s % 2 == 1,
                        (s + window).is_multiple_of(2),
                    ],
                )
            })
            .collect();
        (samples, labels)
    }

    #[test]
    fn observe_window_absorbs_and_scores() {
        let mut model = OnlineQoaModel::new(QoaFeedbackConfig::default());
        let (samples, labels) = window_streams(3, 0, 6);
        let report = model.observe_window(&samples, &labels);
        assert_eq!(report.scored.len(), 6);
        assert_eq!(report.absorbed, labels.len());
        assert_eq!(model.windows_absorbed(), 1);
        // Scores are probabilities and EMAs moved off the 0.5 prior.
        for s in &report.scored {
            for p in s.scores {
                assert!((0.0..=1.0).contains(&p));
            }
            assert!((0.0..=1.0).contains(&s.ema));
        }
    }

    #[test]
    fn unmatched_labels_are_ignored() {
        let mut model = OnlineQoaModel::new(QoaFeedbackConfig::default());
        let labels = vec![QoaLabel::new(StrategyId(99), [true, true, true])];
        let report = model.observe_window(&[], &labels);
        assert_eq!(report.absorbed, 0);
        assert!(report.scored.is_empty());
        // No sample, no update: the model is still the fresh one.
        assert_eq!(model.model(Criterion::Precision).bias(), 0.0);
    }

    #[test]
    fn verdicts_follow_thresholds() {
        let mut model = OnlineQoaModel::new(QoaFeedbackConfig::default());
        model.emas.insert(StrategyId(1), 0.1);
        model.emas.insert(StrategyId(2), 0.5);
        model.emas.insert(StrategyId(3), 0.95);
        let verdicts = model.verdicts();
        assert_eq!(verdicts.demoted, vec![StrategyId(1)]);
        assert_eq!(verdicts.promoted, vec![StrategyId(3)]);
        assert!(!verdicts.is_empty());
        assert!(QoaVerdicts::default().is_empty());
    }

    #[test]
    fn checkpoint_roundtrips_bit_exactly() {
        let mut model = OnlineQoaModel::new(QoaFeedbackConfig::default());
        for window in 0..5 {
            let (samples, labels) = window_streams(7, window, 8);
            model.observe_window(&samples, &labels);
        }
        let checkpoint = model.checkpoint();
        let bytes = checkpoint.to_bytes();
        let decoded = QoaCheckpoint::from_bytes(&bytes).expect("decodes");
        assert_eq!(checkpoint, decoded);
        let restored = OnlineQoaModel::from_checkpoint(QoaFeedbackConfig::default(), &decoded)
            .expect("restores");
        assert_eq!(model.digest(), restored.digest());
        assert_eq!(model, restored);
    }

    #[test]
    fn truncated_checkpoint_bytes_are_rejected() {
        let model = OnlineQoaModel::new(QoaFeedbackConfig::default());
        let bytes = model.checkpoint().to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                QoaCheckpoint::from_bytes(&bytes[..cut]).is_none(),
                "truncation at {cut} decoded"
            );
        }
        let mut trailing = bytes;
        trailing.push(0);
        assert!(QoaCheckpoint::from_bytes(&trailing).is_none());
    }

    proptest! {
        /// The sharding contract (satellite): partition a window's
        /// sample/label streams across 1/2/4 shards by strategy id,
        /// merge each shard's contribution back in sorted order (what
        /// the coordinator does), and the replayed model must be
        /// byte-identical at EVERY window boundary regardless of the
        /// shard count.
        #[test]
        fn sharded_streams_replay_to_identical_weights(
            seed in 0u64..1_000,
            windows in 1u64..8,
            strategies in 1u64..12,
        ) {
            let mut digests: Vec<Vec<u64>> = Vec::new();
            for shards in [1u64, 2, 4] {
                let mut model = OnlineQoaModel::new(QoaFeedbackConfig::default());
                let mut boundary_digests = Vec::new();
                for window in 0..windows {
                    let (samples, labels) = window_streams(seed, window, strategies);
                    // Partition by shard, preserving per-shard order...
                    let mut sharded_samples: Vec<Vec<QoaSample>> =
                        vec![Vec::new(); shards as usize];
                    let mut sharded_labels: Vec<Vec<QoaLabel>> =
                        vec![Vec::new(); shards as usize];
                    for s in &samples {
                        sharded_samples[(s.strategy.0 % shards) as usize].push(s.clone());
                    }
                    for l in &labels {
                        sharded_labels[(l.strategy.0 % shards) as usize].push(*l);
                    }
                    // ...then merge at the coordinator: concat + sort.
                    let mut merged_samples: Vec<QoaSample> =
                        sharded_samples.into_iter().flatten().collect();
                    merged_samples.sort_by_key(|s| s.strategy);
                    let mut merged_labels: Vec<QoaLabel> =
                        sharded_labels.into_iter().flatten().collect();
                    merged_labels.sort_by_key(|l| l.strategy);
                    model.observe_window(&merged_samples, &merged_labels);
                    boundary_digests.push(model.digest());
                }
                digests.push(boundary_digests);
            }
            prop_assert_eq!(&digests[0], &digests[1]);
            prop_assert_eq!(&digests[0], &digests[2]);
        }
    }
}
