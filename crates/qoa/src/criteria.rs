//! Evidence-based QoA scoring.

use serde::{Deserialize, Serialize};

use alertops_model::{Alert, AlertStrategy, Clearance, Incident, Severity, SimDuration, Sop};
use alertops_text::TitleScorer;

/// The three QoA criteria for one strategy, each in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QoaScores {
    /// Does the alert indicate end-user-visible failures?
    pub indicativeness: f64,
    /// Does the configured severity reflect the anomaly's real severity?
    pub precision: f64,
    /// Can the alert be quickly handled (target + presentation)?
    pub handleability: f64,
}

impl QoaScores {
    /// The mean of the three criteria — a single QoA headline number.
    #[must_use]
    pub fn overall(&self) -> f64 {
        (self.indicativeness + self.precision + self.handleability) / 3.0
    }
}

/// A strategy's QoA assessment with the evidence that produced it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QoaReport {
    /// The assessed strategy.
    pub strategy: alertops_model::StrategyId,
    /// The three criteria.
    pub scores: QoaScores,
    /// Number of alerts the evidence is based on.
    pub alert_count: usize,
}

/// Computes evidence-based QoA scores.
///
/// * `indicativeness` = fraction of the strategy's alerts that co-occur
///   with an incident on the owning service;
/// * `precision` = `1 − severity_distance/3`, where the implied severity
///   comes from the same incident/auto-clear evidence the A2 detector
///   uses;
/// * `handleability` = mean of title informativeness, SOP completeness,
///   and the fraction of alerts carrying instance-level location.
///
/// Behavioural evidence is weighted by volume: with fewer than
/// [`min_evidence`](QoaScorer::min_evidence) alerts the scores blend
/// toward their no-evidence defaults (indicativeness 0.5, precision 1.0
/// — nothing contradicts the configured severity), so a probe that
/// fired once and self-healed is not condemned on a single sample.
/// Handleability is always judged statically from the title template and
/// SOP when no alerts exist.
#[derive(Debug, Clone)]
pub struct QoaScorer {
    title_scorer: TitleScorer,
    /// How far after an alert an incident may begin and still count as
    /// indicated by it.
    pub incident_lookahead: SimDuration,
    /// Alert count at which behavioural evidence gets full weight.
    pub min_evidence: usize,
}

impl Default for QoaScorer {
    fn default() -> Self {
        Self {
            title_scorer: TitleScorer::new(),
            incident_lookahead: SimDuration::from_mins(30),
            min_evidence: 10,
        }
    }
}

impl QoaScorer {
    /// Creates a scorer with the standard title lexicon.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the evidence floor: the alert count at which behavioural
    /// criteria get full weight (consuming builder-style).
    #[must_use]
    pub fn with_min_evidence(mut self, min_evidence: usize) -> Self {
        self.min_evidence = min_evidence;
        self
    }

    /// Scores one strategy given its SOP (if any), its alerts, and the
    /// incident history.
    #[must_use]
    pub fn score(
        &self,
        strategy: &AlertStrategy,
        sop: Option<&Sop>,
        alerts: &[&Alert],
        incidents: &[Incident],
    ) -> QoaReport {
        let total = alerts.len();
        let mut with_incident = 0usize;
        let mut auto_cleared = 0usize;
        let mut instance_level = 0usize;
        for alert in alerts {
            if incidents.iter().any(|inc| {
                inc.service() == strategy.service()
                    && inc.covers_or_follows(alert.raised_at(), self.incident_lookahead)
            }) {
                with_incident += 1;
            }
            if alert.clearance() == Some(Clearance::Auto) {
                auto_cleared += 1;
            }
            if alert.location().is_instance_level() {
                instance_level += 1;
            }
        }
        let title = self.title_scorer.score(strategy.title_template());
        let sop_completeness = sop.map_or(0.0, Sop::completeness);

        // Confidence in the behavioural evidence: 0 with no alerts, 1
        // once `min_evidence` alerts accumulated.
        let confidence = (total as f64 / self.min_evidence.max(1) as f64).min(1.0);
        let (indicativeness, precision, instance_rate) = if total == 0 {
            // No behavioural evidence: neutral indicativeness, benefit of
            // the doubt on precision, template-only presentation.
            (0.5, 1.0, 1.0)
        } else {
            let incident_rate = with_incident as f64 / total as f64;
            let auto_clear_rate = auto_cleared as f64 / total as f64;
            let implied = implied_severity(incident_rate, auto_clear_rate);
            let evidence_precision = 1.0 - f64::from(strategy.severity().distance(implied)) / 3.0;
            (
                confidence * incident_rate + (1.0 - confidence) * 0.5,
                confidence * evidence_precision + (1.0 - confidence) * 1.0,
                instance_level as f64 / total as f64,
            )
        };
        let handleability = (title + sop_completeness + instance_rate) / 3.0;

        QoaReport {
            strategy: strategy.id(),
            scores: QoaScores {
                indicativeness,
                precision,
                handleability,
            },
            alert_count: total,
        }
    }
}

/// The impact-implied severity (shared logic with the A2 detector,
/// duplicated here to keep the crates independent; the thresholds are
/// part of the published methodology, not incidental code).
fn implied_severity(incident_rate: f64, auto_clear_rate: f64) -> Severity {
    if incident_rate > 0.5 {
        Severity::Critical
    } else if incident_rate > 0.15 {
        Severity::Major
    } else if auto_clear_rate > 0.7 {
        Severity::Warning
    } else {
        Severity::Minor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alertops_model::{
        AlertId, IncidentId, Location, LogRule, ServiceId, SimDuration, SimTime, StrategyId,
        StrategyKind,
    };

    fn strategy(severity: Severity, title: &str) -> AlertStrategy {
        AlertStrategy::builder(StrategyId(1))
            .title_template(title)
            .severity(severity)
            .service(ServiceId(0))
            .kind(StrategyKind::Log(LogRule {
                keyword: "E".into(),
                min_count: 1,
                window: SimDuration::from_mins(1),
            }))
            .build()
            .unwrap()
    }

    fn alert(id: u64, t: u64, auto: bool, instance: bool) -> Alert {
        let mut location = Location::new("r", "dc");
        if instance {
            location = location.with_instance("vm-1");
        }
        let mut a = Alert::builder(AlertId(id), StrategyId(1))
            .location(location)
            .raised_at(SimTime::from_secs(t))
            .build();
        if auto {
            a.clear(SimTime::from_secs(t + 30), Clearance::Auto)
                .unwrap();
        }
        a
    }

    fn incident(from: u64, to: u64) -> Incident {
        let mut inc = Incident::new(
            IncidentId(0),
            ServiceId(0),
            Severity::Critical,
            SimTime::from_secs(from),
        );
        inc.mitigate(SimTime::from_secs(to));
        inc
    }

    fn full_sop() -> Sop {
        Sop::builder("x", StrategyId(1))
            .description("d")
            .generation_rule("g")
            .potential_impact("i")
            .possible_cause("c")
            .step("s")
            .build()
            .unwrap()
    }

    #[test]
    fn indicative_precise_handleable_strategy_scores_high() {
        let s = strategy(
            Severity::Critical,
            "Failed to allocate new blocks, disk full",
        );
        let alerts: Vec<Alert> = (0..10)
            .map(|i| alert(i, 100 + i * 10, false, true))
            .collect();
        let refs: Vec<&Alert> = alerts.iter().collect();
        let incidents = [incident(0, 10_000)];
        let sop = full_sop();
        let report = QoaScorer::new().score(&s, Some(&sop), &refs, &incidents);
        assert_eq!(report.scores.indicativeness, 1.0);
        assert_eq!(report.scores.precision, 1.0);
        assert!(report.scores.handleability > 0.8);
        assert!(report.scores.overall() > 0.9);
    }

    #[test]
    fn noise_strategy_scores_low() {
        let s = strategy(Severity::Critical, "Instance x is abnormal");
        // All alerts auto-clear, never during incidents; no SOP.
        let alerts: Vec<Alert> = (0..10)
            .map(|i| alert(i, 100 + i * 10, true, false))
            .collect();
        let refs: Vec<&Alert> = alerts.iter().collect();
        let report = QoaScorer::new().score(&s, None, &refs, &[]);
        assert_eq!(report.scores.indicativeness, 0.0);
        // Implied Warning vs configured Critical: precision 0.
        assert_eq!(report.scores.precision, 0.0);
        assert!(report.scores.handleability < 0.3);
        assert!(report.scores.overall() < 0.2);
    }

    #[test]
    fn scores_are_bounded() {
        let s = strategy(Severity::Minor, "disk full");
        for (auto, inst, with_inc) in [
            (false, false, false),
            (true, true, true),
            (false, true, true),
        ] {
            let alerts: Vec<Alert> = (0..6).map(|i| alert(i, 100 + i, auto, inst)).collect();
            let refs: Vec<&Alert> = alerts.iter().collect();
            let incidents = if with_inc {
                vec![incident(0, 1_000)]
            } else {
                vec![]
            };
            let r = QoaScorer::new().score(&s, None, &refs, &incidents);
            for v in [
                r.scores.indicativeness,
                r.scores.precision,
                r.scores.handleability,
                r.scores.overall(),
            ] {
                assert!((0.0..=1.0).contains(&v), "score {v} out of bounds");
            }
        }
    }

    #[test]
    fn no_alerts_means_neutral_behavioural_scores() {
        let s = strategy(Severity::Minor, "CPU usage of nginx is higher than 80%");
        let sop = full_sop();
        let report = QoaScorer::new().score(&s, Some(&sop), &[], &[]);
        assert_eq!(report.alert_count, 0);
        assert_eq!(report.scores.indicativeness, 0.5);
        assert_eq!(report.scores.precision, 1.0);
        assert!(report.scores.handleability > 0.7);
    }

    #[test]
    fn partial_incident_overlap_gives_partial_indicativeness() {
        let s = strategy(Severity::Major, "disk full");
        let alerts: Vec<Alert> = (0..10).map(|i| alert(i, i * 1_000, false, true)).collect();
        let refs: Vec<&Alert> = alerts.iter().collect();
        let incidents = [incident(0, 3_000)]; // covers alerts at 0,1000,2000
        let report = QoaScorer::new().score(&s, None, &refs, &incidents);
        assert!((report.scores.indicativeness - 0.3).abs() < 1e-12);
        // Implied Major (rate 0.3 > 0.15), configured Major: precision 1.
        assert_eq!(report.scores.precision, 1.0);
    }
}
