//! Feature extraction for learned QoA models.
//!
//! Ten per-strategy features in `[0, 1]` (or standardized ratios), drawn
//! from the strategy definition, its SOP, and its alert history — the
//! observable signals an OCE implicitly weighs when labelling an alert's
//! quality.

use alertops_model::{Alert, AlertStrategy, Clearance, Incident, SimDuration, Sop, StrategyKind};
use alertops_text::TitleScorer;

/// Names of the extracted features, index-aligned with
/// [`FeatureExtractor::extract`].
pub const FEATURE_NAMES: [&str; 11] = [
    "title_informativeness",
    "sop_completeness",
    "severity_rank",
    "is_infra_metric",
    "is_probe",
    "alert_volume_norm",
    "auto_clear_rate",
    "transient_rate",
    "incident_rate",
    "instance_location_rate",
    "severity_evidence_gap",
];

/// Extracts feature vectors for QoA learning.
#[derive(Debug, Clone)]
pub struct FeatureExtractor {
    title_scorer: TitleScorer,
    /// Alerts-per-strategy count that maps to feature value 1.0
    /// (volumes above it saturate).
    pub volume_ceiling: f64,
    /// Duration below which an auto-cleared alert counts as transient.
    pub intermittent_threshold: SimDuration,
}

impl Default for FeatureExtractor {
    fn default() -> Self {
        Self {
            title_scorer: TitleScorer::new(),
            volume_ceiling: 200.0,
            intermittent_threshold: SimDuration::from_mins(5),
        }
    }
}

impl FeatureExtractor {
    /// Creates an extractor with default normalization constants.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of features produced.
    #[must_use]
    pub fn dim(&self) -> usize {
        FEATURE_NAMES.len()
    }

    /// Extracts the feature vector of one strategy.
    #[must_use]
    pub fn extract(
        &self,
        strategy: &AlertStrategy,
        sop: Option<&Sop>,
        alerts: &[&Alert],
        incidents: &[Incident],
    ) -> Vec<f64> {
        let total = alerts.len();
        let mut auto = 0usize;
        let mut transient = 0usize;
        let mut with_incident = 0usize;
        let mut instance_level = 0usize;
        for alert in alerts {
            if alert.clearance() == Some(Clearance::Auto) {
                auto += 1;
                if alert
                    .duration()
                    .is_some_and(|d| d < self.intermittent_threshold)
                {
                    transient += 1;
                }
            }
            if incidents.iter().any(|inc| {
                inc.service() == strategy.service()
                    && inc.covers_or_follows(alert.raised_at(), SimDuration::from_mins(30))
            }) {
                with_incident += 1;
            }
            if alert.location().is_instance_level() {
                instance_level += 1;
            }
        }
        let rate = |count: usize| {
            if total == 0 {
                0.0
            } else {
                count as f64 / total as f64
            }
        };
        // The severity-vs-evidence gap: distance between the configured
        // severity and the rank the incident/auto-clear evidence implies
        // (the A2 detector's signal, exposed as a learnable feature).
        let severity_gap = if total == 0 {
            0.0
        } else {
            let incident_rate = rate(with_incident);
            let auto_rate = rate(auto);
            let self_clearing = auto_rate > 0.8;
            let implied: u8 = if incident_rate > 0.5 && !self_clearing {
                3
            } else if (incident_rate > 0.3 && !self_clearing) || incident_rate > 0.5 {
                2
            } else if self_clearing && incident_rate <= 0.3 {
                0
            } else {
                1
            };
            f64::from(strategy.severity().rank().abs_diff(implied)) / 3.0
        };
        vec![
            self.title_scorer.score(strategy.title_template()),
            sop.map_or(0.0, Sop::completeness),
            f64::from(strategy.severity().rank()) / 3.0,
            f64::from(matches!(
                strategy.kind(),
                StrategyKind::Metric(rule) if rule.metric.is_infrastructure()
            )),
            f64::from(matches!(strategy.kind(), StrategyKind::Probe(_))),
            (total as f64 / self.volume_ceiling).min(1.0),
            rate(auto),
            rate(transient),
            rate(with_incident),
            rate(instance_level),
            severity_gap,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alertops_model::{
        AlertId, Location, LogRule, MetricKind, MetricRule, Severity, SimTime, StrategyId,
        ThresholdOp,
    };

    fn metric_strategy(infra: bool) -> AlertStrategy {
        AlertStrategy::builder(StrategyId(1))
            .title_template("disk usage of node over 90")
            .severity(Severity::Major)
            .kind(StrategyKind::Metric(MetricRule {
                metric: if infra {
                    MetricKind::DiskUsage
                } else {
                    MetricKind::Latency
                },
                op: ThresholdOp::Above,
                threshold: 90.0,
                consecutive_samples: 1,
            }))
            .build()
            .unwrap()
    }

    fn log_strategy() -> AlertStrategy {
        AlertStrategy::builder(StrategyId(2))
            .title_template("errors in log")
            .kind(StrategyKind::Log(LogRule {
                keyword: "E".into(),
                min_count: 1,
                window: SimDuration::from_mins(1),
            }))
            .build()
            .unwrap()
    }

    fn transient_alert(id: u64) -> Alert {
        let mut a = Alert::builder(AlertId(id), StrategyId(1))
            .location(Location::new("r", "d").with_instance("vm"))
            .raised_at(SimTime::from_secs(id * 100))
            .build();
        a.clear(SimTime::from_secs(id * 100 + 30), Clearance::Auto)
            .unwrap();
        a
    }

    #[test]
    fn dimension_matches_names() {
        let x = FeatureExtractor::new();
        assert_eq!(x.dim(), FEATURE_NAMES.len());
        let features = x.extract(&metric_strategy(true), None, &[], &[]);
        assert_eq!(features.len(), x.dim());
    }

    #[test]
    fn all_features_bounded() {
        let x = FeatureExtractor::new();
        let alerts: Vec<Alert> = (0..300).map(transient_alert).collect();
        let refs: Vec<&Alert> = alerts.iter().collect();
        let features = x.extract(&metric_strategy(true), None, &refs, &[]);
        for (name, value) in FEATURE_NAMES.iter().zip(&features) {
            assert!(
                (0.0..=1.0).contains(value),
                "feature {name} = {value} out of bounds"
            );
        }
    }

    #[test]
    fn kind_flags() {
        let x = FeatureExtractor::new();
        let infra = x.extract(&metric_strategy(true), None, &[], &[]);
        assert_eq!(infra[3], 1.0);
        assert_eq!(infra[4], 0.0);
        let service = x.extract(&metric_strategy(false), None, &[], &[]);
        assert_eq!(service[3], 0.0);
        let log = x.extract(&log_strategy(), None, &[], &[]);
        assert_eq!(log[3], 0.0);
        assert_eq!(log[4], 0.0);
    }

    #[test]
    fn transient_and_auto_rates() {
        let x = FeatureExtractor::new();
        let alerts: Vec<Alert> = (0..10).map(transient_alert).collect();
        let refs: Vec<&Alert> = alerts.iter().collect();
        let features = x.extract(&metric_strategy(true), None, &refs, &[]);
        assert_eq!(features[6], 1.0); // auto clear rate
        assert_eq!(features[7], 1.0); // transient rate
        assert_eq!(features[9], 1.0); // instance location rate
    }

    #[test]
    fn volume_saturates_at_ceiling() {
        let x = FeatureExtractor::new();
        let alerts: Vec<Alert> = (0..500).map(transient_alert).collect();
        let refs: Vec<&Alert> = alerts.iter().collect();
        let features = x.extract(&metric_strategy(true), None, &refs, &[]);
        assert_eq!(features[5], 1.0);
    }

    #[test]
    fn severity_rank_scaling() {
        let x = FeatureExtractor::new();
        let features = x.extract(&metric_strategy(true), None, &[], &[]);
        assert!((features[2] - 2.0 / 3.0).abs() < 1e-12); // Major = rank 2
    }
}
