//! Quality of Alerts (QoA) evaluation — the paper's proposed future
//! direction (§IV), built out.
//!
//! The paper proposes three criteria to measure the quality of alerts:
//!
//! * **Indicativeness** — whether the alert indicates failures that will
//!   affect the end users' experience;
//! * **Precision** — whether the alert correctly reflects the severity
//!   of the anomaly;
//! * **Handleability** — whether the alert can be quickly handled
//!   (depends on the target and the presentation of the alert).
//!
//! Two evaluation paths are provided:
//!
//! * [`QoaScorer`] — direct, evidence-based scoring of each criterion
//!   from alert/incident history (the "human knowledge" rules of Fig. 6);
//! * [`QoaModel`] — the machine-learning path the paper sketches: OCEs
//!   label alerts high/low per criterion, a model is trained on
//!   [`features`] and "continuously updated so that it can automatically
//!   absorb the human knowledge" — implemented as from-scratch logistic
//!   regression ([`LogisticRegression`]) with a `partial_fit` for
//!   continual updates.
//!
//! # Example
//!
//! ```
//! use alertops_qoa::{LogisticRegression, TrainConfig};
//!
//! // Tiny separable problem: y = x0 > 0.
//! let x: Vec<Vec<f64>> = (0..40).map(|i| vec![f64::from(i - 20) / 20.0]).collect();
//! let y: Vec<bool> = (0..40).map(|i| i - 20 > 0).collect();
//! let mut model = LogisticRegression::new(1);
//! model.fit(&x, &y, &TrainConfig::default());
//! assert!(model.predict_proba(&[0.9]) > 0.8);
//! assert!(model.predict_proba(&[-0.9]) < 0.2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod criteria;
pub mod eval;
pub mod features;
pub mod labels;
pub mod logreg;
pub mod online;

mod model;

pub use criteria::{QoaReport, QoaScorer, QoaScores};
pub use eval::{auc, BinaryMetrics};
pub use features::{FeatureExtractor, FEATURE_NAMES};
pub use labels::flip_labels;
pub use logreg::{LogisticRegression, TrainConfig};
pub use model::{Criterion, QoaModel};
pub use online::{
    OnlineQoaModel, QoaCheckpoint, QoaFeedbackConfig, QoaSample, QoaVerdicts, QoaWindowReport,
    StrategyQoa,
};
