//! Strategy-id sharding.
//!
//! Alerts are partitioned across workers by hashing their
//! [`StrategyId`], so every alert of one strategy — the evidence the
//! per-strategy detectors (A1–A5) reason over — always lands on the
//! same shard. This is what makes the merged N-shard governance
//! picture equal the unsharded one for per-strategy findings.

use alertops_model::{AlertStrategy, StrategyId};

/// Maps a strategy to its shard in `[0, shards)`.
///
/// Uses the splitmix64 finalizer rather than `id % shards` so that
/// catalogs with structured id ranges (every simulator scenario
/// numbers strategies densely from 0) still spread evenly for any
/// shard count.
///
/// # Panics
///
/// Panics if `shards` is zero.
#[must_use]
pub fn shard_of(strategy: StrategyId, shards: usize) -> usize {
    assert!(shards > 0, "shard_of: shards must be >= 1");
    let mut z = strategy.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    usize::try_from(z % shards as u64).expect("shard index fits usize")
}

/// The sub-catalog a shard's governor should be built with: exactly
/// the strategies whose alerts [`shard_of`] routes to `shard`.
///
/// Giving each shard only its own strategies keeps catalog-driven
/// outputs (lint, QoA over the catalog) partitioned the same way the
/// alert stream is.
#[must_use]
pub fn shard_catalog(
    strategies: &[AlertStrategy],
    shards: usize,
    shard: usize,
) -> Vec<AlertStrategy> {
    strategies
        .iter()
        .filter(|s| shard_of(s.id(), shards) == shard)
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_and_in_range() {
        for shards in [1usize, 2, 4, 8, 13] {
            for id in 0..500u64 {
                let a = shard_of(StrategyId(id), shards);
                let b = shard_of(StrategyId(id), shards);
                assert_eq!(a, b, "sharding must be deterministic");
                assert!(a < shards);
            }
        }
    }

    #[test]
    fn single_shard_gets_everything() {
        for id in 0..100u64 {
            assert_eq!(shard_of(StrategyId(id), 1), 0);
        }
    }

    #[test]
    fn dense_ids_spread_across_shards() {
        let shards = 8;
        let mut hits = vec![0usize; shards];
        for id in 0..400u64 {
            hits[shard_of(StrategyId(id), shards)] += 1;
        }
        // 400 dense ids over 8 shards: every shard sees a decent cut.
        for (shard, &count) in hits.iter().enumerate() {
            assert!(count > 20, "shard {shard} starved: {hits:?}");
        }
    }
}
