//! The NDJSON wire protocol.
//!
//! One frame per line. A line is either an [`Alert`] serialized as a
//! JSON object, or a control frame `{"ctrl": "..."}`:
//!
//! - `{"ctrl":"flush"}` — close the current window across all shards
//!   now. The daemon replies on the same connection with
//!   `{"ack":"flush","window":N,"alerts":M}` once the merged snapshot
//!   is published, which is what makes replay deterministic.
//! - `{"ctrl":"shutdown"}` — request daemon shutdown (acked with
//!   `{"ack":"shutdown"}` before the socket closes).
//! - `{"ctrl":"sync"}` — barrier: acked (`{"ack":"sync"}`) only after
//!   every shard queue has fully drained. Producers use it to pace
//!   bursts deterministically.
//!
//! With chaos mode enabled ([`crate::IngestdConfig::chaos`]) three
//! fault-injection frames are also accepted (and quarantined as
//! unknown controls otherwise):
//!
//! - `{"ctrl":"panic","shard":N}` — the shard's worker panics at that
//!   point in its queue (add `"on_close":true` to panic mid-close
//!   instead, after detection has already mutated governor state);
//! - `{"ctrl":"stall","shard":N}` — park the shard's worker (acked
//!   with `{"ack":"stall","shard":N}` once it is parked and its queue
//!   drained);
//! - `{"ctrl":"resume","shard":N}` — unpark a stalled worker.
//!
//! Blank lines are ignored. Malformed lines are *quarantined*: counted
//! per [`QuarantineReason`] (with [`crate::Counters::decode_errors`]
//! as the total) and skipped — one bad producer must not poison the
//! stream. [`FrameDecoder`] performs the byte-level framing: it
//! carries partial lines across reads, quarantines frames cut short by
//! a dropped connection, and sheds lines that exceed
//! [`MAX_FRAME_LEN`] without buffering them.

use std::fmt;

use alertops_model::Alert;

/// The flush control frame, exactly as it appears on the wire.
pub const FLUSH_FRAME: &str = r#"{"ctrl":"flush"}"#;

/// The shutdown control frame, exactly as it appears on the wire.
pub const SHUTDOWN_FRAME: &str = r#"{"ctrl":"shutdown"}"#;

/// The sync (full queue drain) control frame.
pub const SYNC_FRAME: &str = r#"{"ctrl":"sync"}"#;

/// Hard ceiling on one frame's length in bytes. Longer lines are
/// quarantined as [`QuarantineReason::Oversized`] and discarded
/// without being buffered, so a producer streaming an unterminated
/// line cannot balloon daemon memory.
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// One decoded line of ingress.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// An alert record to route to its strategy's shard.
    Alert(Box<Alert>),
    /// Close the current window on every shard and publish the merged
    /// snapshot.
    Flush,
    /// Stop the daemon.
    Shutdown,
    /// Drain every shard queue, then ack.
    Sync,
    /// Chaos: panic the shard's worker (at this queue position, or
    /// during its next window close).
    ChaosPanic {
        /// Target shard.
        shard: usize,
        /// Panic inside the next `Close` instead of immediately.
        on_close: bool,
    },
    /// Chaos: park the shard's worker until resumed.
    ChaosStall {
        /// Target shard.
        shard: usize,
    },
    /// Chaos: unpark a stalled worker.
    ChaosResume {
        /// Target shard.
        shard: usize,
    },
}

/// Why a quarantined line was rejected. Each reason has its own
/// counter on the status socket, so an operator can tell a buggy
/// serializer (`invalid_alert`) from line noise (`invalid_utf8`) from
/// a protocol-version skew (`unknown_control`) at a glance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QuarantineReason {
    /// The line is not valid JSON (includes frames truncated by a
    /// connection reset).
    InvalidJson,
    /// The line is not valid UTF-8.
    InvalidUtf8,
    /// A `ctrl` frame with an unknown or malformed verb — including
    /// chaos verbs when chaos mode is off and shard targets out of
    /// range.
    UnknownControl,
    /// Valid JSON, but not an alert record.
    InvalidAlert,
    /// The line exceeded [`MAX_FRAME_LEN`].
    Oversized,
    /// A binary-ingress frame failed CRC or framing validation
    /// (`--wire binary` connections only). Terminal for its
    /// connection: a binary stream cannot resync past a bad length
    /// prefix, so the daemon quarantines the frame and closes.
    CorruptFrame,
}

impl QuarantineReason {
    /// All reasons, in counter order.
    pub const ALL: [QuarantineReason; 6] = [
        QuarantineReason::InvalidJson,
        QuarantineReason::InvalidUtf8,
        QuarantineReason::UnknownControl,
        QuarantineReason::InvalidAlert,
        QuarantineReason::Oversized,
        QuarantineReason::CorruptFrame,
    ];

    /// The stable snake_case label used in counter names.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            QuarantineReason::InvalidJson => "invalid_json",
            QuarantineReason::InvalidUtf8 => "invalid_utf8",
            QuarantineReason::UnknownControl => "unknown_control",
            QuarantineReason::InvalidAlert => "invalid_alert",
            QuarantineReason::Oversized => "oversized",
            QuarantineReason::CorruptFrame => "corrupt_frame",
        }
    }
}

impl fmt::Display for QuarantineReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Why a line failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The line was empty or whitespace; callers skip these silently.
    Empty,
    /// A quarantinable line: counted by reason and skipped.
    Malformed {
        /// The quarantine bucket.
        reason: QuarantineReason,
        /// Human-readable diagnostics (never parsed).
        detail: String,
    },
}

impl FrameError {
    fn malformed(reason: QuarantineReason, detail: impl Into<String>) -> Self {
        FrameError::Malformed {
            reason,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Empty => f.write_str("empty line"),
            FrameError::Malformed { reason, detail } => {
                write!(f, "malformed frame ({reason}): {detail}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

fn parse_control(value: &serde_json::Value) -> Result<Frame, FrameError> {
    let shard = || {
        value
            .get("shard")
            .and_then(serde_json::Value::as_u64)
            .and_then(|s| usize::try_from(s).ok())
            .ok_or_else(|| {
                FrameError::malformed(
                    QuarantineReason::UnknownControl,
                    "control frame requires a numeric \"shard\"",
                )
            })
    };
    match value.get("ctrl").and_then(serde_json::Value::as_str) {
        Some("flush") => Ok(Frame::Flush),
        Some("shutdown") => Ok(Frame::Shutdown),
        Some("sync") => Ok(Frame::Sync),
        Some("panic") => Ok(Frame::ChaosPanic {
            shard: shard()?,
            on_close: value
                .get("on_close")
                .and_then(serde_json::Value::as_bool)
                .unwrap_or(false),
        }),
        Some("stall") => Ok(Frame::ChaosStall { shard: shard()? }),
        Some("resume") => Ok(Frame::ChaosResume { shard: shard()? }),
        other => Err(FrameError::malformed(
            QuarantineReason::UnknownControl,
            format!("unknown control verb {other:?}"),
        )),
    }
}

/// Decodes one line of ingress.
///
/// # Errors
///
/// [`FrameError::Empty`] for blank lines, [`FrameError::Malformed`]
/// (with a [`QuarantineReason`]) for anything that is neither a
/// control frame nor an alert.
pub fn parse_frame(line: &str) -> Result<Frame, FrameError> {
    let line = line.trim();
    if line.is_empty() {
        return Err(FrameError::Empty);
    }
    // Hot path: alert frames vastly outnumber controls, and a line
    // without the byte sequence `"ctrl"` cannot be a control frame (an
    // embedded quote inside a JSON string would be escaped as `\"`),
    // so it parses straight to an `Alert` — one parse instead of the
    // generic-`Value`-then-`Alert` double parse. Any failure falls
    // through to the classifying slow path, which reproduces the exact
    // quarantine reasons (`invalid_json` vs `invalid_alert`).
    if !line.contains("\"ctrl\"") {
        if let Ok(alert) = serde_json::from_str::<Alert>(line) {
            return Ok(Frame::Alert(Box::new(alert)));
        }
    }
    let value: serde_json::Value = serde_json::from_str(line)
        .map_err(|e| FrameError::malformed(QuarantineReason::InvalidJson, e.to_string()))?;
    if value.get("ctrl").is_some() {
        return parse_control(&value);
    }
    serde_json::from_str::<Alert>(line)
        .map(|alert| Frame::Alert(Box::new(alert)))
        .map_err(|e| FrameError::malformed(QuarantineReason::InvalidAlert, e.to_string()))
}

/// Incremental NDJSON framing over raw reads.
///
/// Feed it whatever byte chunks the socket produces — frames split
/// across reads are carried over, frames cut short by a dropped
/// connection surface from [`finish`](Self::finish) as quarantined
/// lines, and lines longer than [`MAX_FRAME_LEN`] are quarantined
/// once and then discarded bytewise instead of buffered.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    skipping: bool,
}

impl FrameDecoder {
    /// A fresh decoder with no buffered bytes.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes one read's worth of bytes, returning every frame (or
    /// quarantinable error) completed by it. Blank lines are dropped
    /// here, so [`FrameError::Empty`] is never returned.
    pub fn feed(&mut self, bytes: &[u8]) -> Vec<Result<Frame, FrameError>> {
        let mut out = Vec::new();
        self.feed_into(bytes, &mut out);
        out
    }

    /// [`feed`](Self::feed) into a caller-owned scratch vector, so a
    /// read loop reuses one allocation for its whole connection
    /// instead of allocating a fresh `Vec` per socket read. `out` is
    /// cleared first.
    pub fn feed_into(&mut self, bytes: &[u8], out: &mut Vec<Result<Frame, FrameError>>) {
        out.clear();
        let mut rest = bytes;
        while !rest.is_empty() {
            match rest.iter().position(|&b| b == b'\n') {
                Some(idx) => {
                    let (line_end, tail) = rest.split_at(idx);
                    rest = &tail[1..];
                    if self.skipping {
                        // The oversized line this byte run belongs to
                        // was already quarantined; its newline ends it.
                        self.skipping = false;
                    } else {
                        self.extend_checked(line_end, out);
                        if self.skipping {
                            self.skipping = false;
                        } else if let Some(item) = decode_line(&self.buf) {
                            out.push(item);
                        }
                    }
                    self.buf.clear();
                }
                None => {
                    if !self.skipping {
                        self.extend_checked(rest, out);
                    }
                    rest = &[];
                }
            }
        }
    }

    /// Flushes the trailing unterminated line at end of stream, if
    /// any. A connection reset mid-frame lands here: the partial
    /// frame decodes (almost always to a quarantined
    /// [`QuarantineReason::InvalidJson`]) instead of vanishing.
    pub fn finish(&mut self) -> Option<Result<Frame, FrameError>> {
        if std::mem::take(&mut self.skipping) {
            self.buf.clear();
            return None; // already quarantined as oversized
        }
        let item = decode_line(&self.buf);
        self.buf.clear();
        item
    }

    fn extend_checked(&mut self, part: &[u8], out: &mut Vec<Result<Frame, FrameError>>) {
        if self.buf.len() + part.len() > MAX_FRAME_LEN {
            out.push(Err(FrameError::malformed(
                QuarantineReason::Oversized,
                format!("frame exceeds {MAX_FRAME_LEN} bytes"),
            )));
            self.buf.clear();
            self.skipping = true;
        } else {
            self.buf.extend_from_slice(part);
        }
    }
}

fn decode_line(bytes: &[u8]) -> Option<Result<Frame, FrameError>> {
    match std::str::from_utf8(bytes) {
        Err(e) => Some(Err(FrameError::malformed(
            QuarantineReason::InvalidUtf8,
            e.to_string(),
        ))),
        Ok(text) => match parse_frame(text) {
            Err(FrameError::Empty) => None,
            other => Some(other),
        },
    }
}

/// Encodes one alert as a wire line (no trailing newline).
#[must_use]
pub fn encode_alert(alert: &Alert) -> String {
    serde_json::to_string(alert).expect("alerts always serialize")
}

/// Encodes the flush acknowledgement the daemon sends back.
#[must_use]
pub fn encode_flush_ack(window: u64, alerts: usize) -> String {
    format!(r#"{{"ack":"flush","window":{window},"alerts":{alerts}}}"#)
}

/// Encodes the shutdown acknowledgement.
#[must_use]
pub fn encode_shutdown_ack() -> String {
    r#"{"ack":"shutdown"}"#.to_owned()
}

/// Encodes the sync (drain barrier) acknowledgement.
#[must_use]
pub fn encode_sync_ack() -> String {
    r#"{"ack":"sync"}"#.to_owned()
}

/// Encodes the stall acknowledgement: sent once the shard's worker is
/// parked and its queue drained.
#[must_use]
pub fn encode_stall_ack(shard: usize) -> String {
    format!(r#"{{"ack":"stall","shard":{shard}}}"#)
}

#[cfg(test)]
mod tests {
    use super::*;
    use alertops_model::{AlertId, SimTime, StrategyId};

    fn sample_alert() -> Alert {
        Alert::builder(AlertId(7), StrategyId(3))
            .title("cpu high")
            .raised_at(SimTime::from_secs(120))
            .build()
    }

    fn reason_of(result: Result<Frame, FrameError>) -> QuarantineReason {
        match result {
            Err(FrameError::Malformed { reason, .. }) => reason,
            other => panic!("expected malformed, got {other:?}"),
        }
    }

    #[test]
    fn alert_frames_roundtrip() {
        let alert = sample_alert();
        let line = encode_alert(&alert);
        match parse_frame(&line).unwrap() {
            Frame::Alert(back) => assert_eq!(*back, alert),
            other => panic!("expected alert frame, got {other:?}"),
        }
    }

    #[test]
    fn control_frames_parse() {
        assert_eq!(parse_frame(FLUSH_FRAME), Ok(Frame::Flush));
        assert_eq!(parse_frame(SHUTDOWN_FRAME), Ok(Frame::Shutdown));
        assert_eq!(parse_frame(SYNC_FRAME), Ok(Frame::Sync));
        assert_eq!(parse_frame("  \t "), Err(FrameError::Empty));
        assert_eq!(
            reason_of(parse_frame(r#"{"ctrl":"reboot"}"#)),
            QuarantineReason::UnknownControl
        );
        assert_eq!(
            reason_of(parse_frame("not json")),
            QuarantineReason::InvalidJson
        );
        assert_eq!(
            reason_of(parse_frame(r#"{"id":"not an alert"}"#)),
            QuarantineReason::InvalidAlert
        );
    }

    #[test]
    fn chaos_frames_parse_with_targets() {
        assert_eq!(
            parse_frame(r#"{"ctrl":"panic","shard":2}"#),
            Ok(Frame::ChaosPanic {
                shard: 2,
                on_close: false
            })
        );
        assert_eq!(
            parse_frame(r#"{"ctrl":"panic","shard":0,"on_close":true}"#),
            Ok(Frame::ChaosPanic {
                shard: 0,
                on_close: true
            })
        );
        assert_eq!(
            parse_frame(r#"{"ctrl":"stall","shard":1}"#),
            Ok(Frame::ChaosStall { shard: 1 })
        );
        assert_eq!(
            parse_frame(r#"{"ctrl":"resume","shard":1}"#),
            Ok(Frame::ChaosResume { shard: 1 })
        );
        // Missing shard target: quarantined, not a parse panic.
        assert_eq!(
            reason_of(parse_frame(r#"{"ctrl":"panic"}"#)),
            QuarantineReason::UnknownControl
        );
    }

    #[test]
    fn ctrl_text_in_titles_does_not_divert_the_fast_path() {
        // Titles may contain the word ctrl (even quoted in the source
        // string — JSON escapes the quotes on the wire); the
        // single-parse fast path and the classifying slow path must
        // agree these are alerts.
        for title in ["ctrl", "the \"ctrl\" key", "ctrl-c ctrl-v"] {
            let alert = Alert::builder(AlertId(1), StrategyId(2))
                .title(title)
                .raised_at(SimTime::from_secs(5))
                .build();
            match parse_frame(&encode_alert(&alert)).unwrap() {
                Frame::Alert(back) => assert_eq!(*back, alert),
                other => panic!("expected alert frame, got {other:?}"),
            }
        }
        // A non-string ctrl value skips the fast path and still
        // classifies as an unknown control, exactly as before.
        assert_eq!(
            reason_of(parse_frame(r#"{"ctrl":123}"#)),
            QuarantineReason::UnknownControl
        );
    }

    #[test]
    fn feed_into_reuses_scratch_and_matches_feed() {
        let alert = sample_alert();
        let wire = format!("{}\nnot json\n{}\n", encode_alert(&alert), FLUSH_FRAME);
        let mut baseline = FrameDecoder::new();
        let expect = baseline.feed(wire.as_bytes());

        let mut decoder = FrameDecoder::new();
        let mut scratch = vec![Ok(Frame::Sync)]; // stale content must be cleared
        decoder.feed_into(wire.as_bytes(), &mut scratch);
        assert_eq!(scratch, expect);
    }

    #[test]
    fn decoder_reassembles_frames_split_across_reads() {
        let alert = sample_alert();
        let wire = format!("{}\n{}\n", encode_alert(&alert), FLUSH_FRAME);
        let bytes = wire.as_bytes();
        // Split the stream at every possible position: the decoded
        // frames must be identical regardless of read boundaries.
        for cut in 0..=bytes.len() {
            let mut decoder = FrameDecoder::new();
            let mut frames: Vec<_> = decoder.feed(&bytes[..cut]);
            frames.extend(decoder.feed(&bytes[cut..]));
            assert!(decoder.finish().is_none(), "stream ended on a newline");
            assert_eq!(frames.len(), 2, "cut at {cut}");
            assert_eq!(frames[0], Ok(Frame::Alert(Box::new(alert.clone()))));
            assert_eq!(frames[1], Ok(Frame::Flush));
        }
    }

    #[test]
    fn decoder_quarantines_truncated_final_frame() {
        let mut decoder = FrameDecoder::new();
        let line = encode_alert(&sample_alert());
        let cut = &line.as_bytes()[..line.len() - 4]; // reset mid-frame
        assert!(decoder.feed(cut).is_empty());
        let tail = decoder.finish().expect("partial frame must surface");
        assert_eq!(reason_of(tail), QuarantineReason::InvalidJson);
    }

    #[test]
    fn decoder_quarantines_invalid_utf8() {
        let mut decoder = FrameDecoder::new();
        let frames = decoder.feed(b"{\"id\":\xFF\xFE}\n");
        assert_eq!(frames.len(), 1);
        assert_eq!(
            reason_of(frames.into_iter().next().unwrap()),
            QuarantineReason::InvalidUtf8
        );
    }

    #[test]
    fn decoder_sheds_oversized_lines_once() {
        let mut decoder = FrameDecoder::new();
        let chunk = vec![b'x'; MAX_FRAME_LEN / 2 + 1];
        assert!(decoder.feed(&chunk).is_empty());
        // Crossing the limit quarantines exactly once...
        let mid = decoder.feed(&chunk);
        assert_eq!(mid.len(), 1);
        assert_eq!(
            reason_of(mid.into_iter().next().unwrap()),
            QuarantineReason::Oversized
        );
        // ...further bytes of the same line are discarded silently...
        assert!(decoder.feed(&chunk).is_empty());
        // ...and the line's newline re-arms the decoder.
        let after = decoder.feed(b"\n{\"ctrl\":\"flush\"}\n");
        assert_eq!(after, vec![Ok(Frame::Flush)]);
    }

    #[test]
    fn decoder_skips_blank_lines() {
        let mut decoder = FrameDecoder::new();
        assert!(decoder.feed(b"\n\r\n  \n").is_empty());
        assert!(decoder.finish().is_none());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use alertops_model::{Alert, AlertId, SimTime, StrategyId};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Decoding arbitrary byte soup never panics, and the decoded
        /// sequence is independent of where the reads were split.
        #[test]
        fn decoder_never_panics_and_is_split_invariant(
            bytes in proptest::collection::vec(
                (0u64..256).prop_map(|b| b as u8),
                0..2048,
            ),
            cut in 0usize..2048,
        ) {
            let cut = cut.min(bytes.len());
            let mut split = FrameDecoder::new();
            let mut got = split.feed(&bytes[..cut]);
            got.extend(split.feed(&bytes[cut..]));
            let got_tail = split.finish();

            let mut whole = FrameDecoder::new();
            let expect = whole.feed(&bytes);
            let expect_tail = whole.finish();

            prop_assert_eq!(got, expect);
            prop_assert_eq!(got_tail, expect_tail);
        }

        /// Every valid frame round-trips through the decoder, however
        /// the wire bytes are split across reads.
        #[test]
        fn valid_frames_roundtrip_across_arbitrary_splits(
            specs in proptest::collection::vec(
                (0u64..1_000, 0u64..50, 0u64..100_000, "[ -~]{0,24}"),
                1..8,
            ),
            ctrl in 0u64..5,
            cuts in (0u64..1 << 20, 0u64..1 << 20),
        ) {
            let mut expected: Vec<Frame> = specs
                .iter()
                .map(|(id, strategy, at, title)| {
                    Frame::Alert(Box::new(
                        Alert::builder(AlertId(*id), StrategyId(*strategy))
                            .title(title.clone())
                            .raised_at(SimTime::from_secs(*at))
                            .build(),
                    ))
                })
                .collect();
            let mut wire: Vec<u8> = Vec::new();
            for frame in &expected {
                if let Frame::Alert(alert) = frame {
                    wire.extend_from_slice(encode_alert(alert).as_bytes());
                    wire.push(b'\n');
                }
            }
            let (ctrl_line, ctrl_frame) = match ctrl {
                0 => (FLUSH_FRAME, Frame::Flush),
                1 => (SYNC_FRAME, Frame::Sync),
                2 => (
                    r#"{"ctrl":"panic","shard":3,"on_close":true}"#,
                    Frame::ChaosPanic { shard: 3, on_close: true },
                ),
                3 => (r#"{"ctrl":"stall","shard":1}"#, Frame::ChaosStall { shard: 1 }),
                _ => (r#"{"ctrl":"resume","shard":0}"#, Frame::ChaosResume { shard: 0 }),
            };
            wire.extend_from_slice(ctrl_line.as_bytes());
            wire.push(b'\n');
            expected.push(ctrl_frame);

            let len = wire.len();
            let (a, b) = (cuts.0 as usize % (len + 1), cuts.1 as usize % (len + 1));
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let mut decoder = FrameDecoder::new();
            let mut got = decoder.feed(&wire[..lo]);
            got.extend(decoder.feed(&wire[lo..hi]));
            got.extend(decoder.feed(&wire[hi..]));
            prop_assert!(decoder.finish().is_none());
            let frames: Vec<Frame> = got
                .into_iter()
                .collect::<Result<_, _>>()
                .expect("all frames were valid");
            prop_assert_eq!(frames, expected);
        }
    }
}
