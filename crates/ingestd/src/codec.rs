//! The NDJSON wire protocol.
//!
//! One frame per line. A line is either an [`Alert`] serialized as a
//! JSON object, or a control frame `{"ctrl": "..."}`:
//!
//! - `{"ctrl":"flush"}` — close the current window across all shards
//!   now. The daemon replies on the same connection with
//!   `{"ack":"flush","window":N,"alerts":M}` once the merged snapshot
//!   is published, which is what makes replay deterministic.
//! - `{"ctrl":"shutdown"}` — request daemon shutdown (acked with
//!   `{"ack":"shutdown"}` before the socket closes).
//!
//! Blank lines are ignored. Malformed lines are counted
//! ([`crate::Counters::decode_errors`]) and skipped — one bad producer
//! must not poison the stream.

use std::fmt;

use alertops_model::Alert;

/// The flush control frame, exactly as it appears on the wire.
pub const FLUSH_FRAME: &str = r#"{"ctrl":"flush"}"#;

/// The shutdown control frame, exactly as it appears on the wire.
pub const SHUTDOWN_FRAME: &str = r#"{"ctrl":"shutdown"}"#;

/// One decoded line of ingress.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// An alert record to route to its strategy's shard.
    Alert(Box<Alert>),
    /// Close the current window on every shard and publish the merged
    /// snapshot.
    Flush,
    /// Stop the daemon.
    Shutdown,
}

/// Why a line failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The line was empty or whitespace; callers skip these silently.
    Empty,
    /// Not valid JSON, an unknown control verb, or not an alert shape.
    Malformed(String),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Empty => f.write_str("empty line"),
            FrameError::Malformed(msg) => write!(f, "malformed frame: {msg}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Decodes one line of ingress.
///
/// # Errors
///
/// [`FrameError::Empty`] for blank lines, [`FrameError::Malformed`]
/// for anything that is neither a control frame nor an alert.
pub fn parse_frame(line: &str) -> Result<Frame, FrameError> {
    let line = line.trim();
    if line.is_empty() {
        return Err(FrameError::Empty);
    }
    let value: serde_json::Value =
        serde_json::from_str(line).map_err(|e| FrameError::Malformed(e.to_string()))?;
    if let Some(ctrl) = value.get("ctrl") {
        return match ctrl.as_str() {
            Some("flush") => Ok(Frame::Flush),
            Some("shutdown") => Ok(Frame::Shutdown),
            other => Err(FrameError::Malformed(format!(
                "unknown control verb {other:?}"
            ))),
        };
    }
    serde_json::from_str::<Alert>(line)
        .map(|alert| Frame::Alert(Box::new(alert)))
        .map_err(|e| FrameError::Malformed(e.to_string()))
}

/// Encodes one alert as a wire line (no trailing newline).
#[must_use]
pub fn encode_alert(alert: &Alert) -> String {
    serde_json::to_string(alert).expect("alerts always serialize")
}

/// Encodes the flush acknowledgement the daemon sends back.
#[must_use]
pub fn encode_flush_ack(window: u64, alerts: usize) -> String {
    format!(r#"{{"ack":"flush","window":{window},"alerts":{alerts}}}"#)
}

/// Encodes the shutdown acknowledgement.
#[must_use]
pub fn encode_shutdown_ack() -> String {
    r#"{"ack":"shutdown"}"#.to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use alertops_model::{AlertId, SimTime, StrategyId};

    #[test]
    fn alert_frames_roundtrip() {
        let alert = Alert::builder(AlertId(7), StrategyId(3))
            .title("cpu high")
            .raised_at(SimTime::from_secs(120))
            .build();
        let line = encode_alert(&alert);
        match parse_frame(&line).unwrap() {
            Frame::Alert(back) => assert_eq!(*back, alert),
            other => panic!("expected alert frame, got {other:?}"),
        }
    }

    #[test]
    fn control_frames_parse() {
        assert_eq!(parse_frame(FLUSH_FRAME), Ok(Frame::Flush));
        assert_eq!(parse_frame(SHUTDOWN_FRAME), Ok(Frame::Shutdown));
        assert_eq!(parse_frame("  \t "), Err(FrameError::Empty));
        assert!(matches!(
            parse_frame(r#"{"ctrl":"reboot"}"#),
            Err(FrameError::Malformed(_))
        ));
        assert!(matches!(
            parse_frame("not json"),
            Err(FrameError::Malformed(_))
        ));
    }
}
