//! Daemon metrics and Prometheus exposition.
//!
//! The daemon has two sources of observable state:
//!
//! 1. [`Counters`] — the conservation-law counters every thread already
//!    shares. They stay the single source of truth for
//!    `ingested == delivered + dropped + quarantined`; at scrape time
//!    [`render_exposition`] translates a snapshot of them into
//!    Prometheus text, so they are never double-registered.
//! 2. An [`alertops_obs::MetricsRegistry`] holding everything richer
//!    than a conservation counter: stage latency histograms (window
//!    close, barrier wait, merge, per-shard close), frame decode
//!    counters, and — via [`alertops_core::GovernorMetrics`] registered
//!    on the same registry — the detect/react instrumentation of each
//!    shard's governor. Shards share series by construction: the
//!    registry returns the same handle for the same name + labels.
//!
//! Everything is observer-only. The chaos determinism suite runs the
//! same fault schedule with metrics on and off and asserts the merged
//! snapshots are byte-identical.

use std::sync::Arc;

use alertops_core::{EmergingMetrics, QoaMetrics, QoaWindowReport};
use alertops_obs::{render_sample, Counter, Gauge, Histogram, MetricsRegistry, Span};

use crate::codec::QuarantineReason;
use crate::counters::{CounterSnapshot, Counters};

/// Metric handles for the daemon's own stages, plus the registry the
/// per-shard governors record into.
#[derive(Debug)]
pub struct IngestdMetrics {
    registry: Arc<MetricsRegistry>,
    /// Frames decoded successfully (alerts and control frames).
    pub(crate) frames_decoded: Arc<Counter>,
    /// Ingress lines rejected by the decoder.
    pub(crate) frames_rejected: Arc<Counter>,
    /// Coordinator: full window close, broadcast → published snapshot.
    pub(crate) window_close_micros: Arc<Histogram>,
    /// Coordinator: barrier wait, broadcast → last shard delta.
    pub(crate) barrier_wait_micros: Arc<Histogram>,
    /// Coordinator: snapshot merge proper.
    pub(crate) merge_micros: Arc<Histogram>,
    /// Coordinator: the emerging-channel (R4) AO-LDA pass over the
    /// merged window documents. Same families a local-mode governor
    /// records into (the registry dedups by name + labels).
    pub(crate) emerging: EmergingMetrics,
    /// Coordinator: the streaming QoA feedback channel's model update
    /// over the merged samples and flush-carried labels. Same families
    /// a local-mode governor records into.
    qoa: QoaMetrics,
    /// Per-shard window close (sort + detection + checkpoint).
    shard_close_micros: Vec<Arc<Histogram>>,
    /// Process resident set size, sampled at each window close (0 on
    /// platforms without a procfs).
    rss_bytes: Arc<Gauge>,
}

impl IngestdMetrics {
    /// Creates a fresh registry and registers the daemon's families
    /// for `shards` shards.
    #[must_use]
    pub fn new(shards: usize) -> Self {
        let registry = Arc::new(MetricsRegistry::new());
        let frames_decoded = registry.counter(
            "alertops_frames_decoded_total",
            "Ingress frames decoded successfully (alerts and controls).",
            &[],
        );
        let frames_rejected = registry.counter(
            "alertops_frames_rejected_total",
            "Ingress lines rejected by the frame decoder.",
            &[],
        );
        let window_close_micros = registry.histogram(
            "alertops_window_close_micros",
            "Coordinator window close: broadcast to published snapshot.",
            &[],
        );
        let barrier_wait_micros = registry.histogram(
            "alertops_barrier_wait_micros",
            "Coordinator barrier: broadcast to last shard delta.",
            &[],
        );
        let merge_micros = registry.histogram(
            "alertops_merge_micros",
            "Merging per-shard deltas into the governance snapshot.",
            &[],
        );
        let emerging = EmergingMetrics::register(&registry);
        let qoa = QoaMetrics::register(&registry);
        let shard_close_micros = (0..shards)
            .map(|shard| {
                registry.histogram(
                    "alertops_shard_close_micros",
                    "One shard's window close: sort, detection, checkpoint.",
                    &[("shard", &shard.to_string())],
                )
            })
            .collect();
        let rss_bytes = alertops_obs::process::rss_gauge(&registry);
        Self {
            registry,
            frames_decoded,
            frames_rejected,
            window_close_micros,
            barrier_wait_micros,
            merge_micros,
            emerging,
            qoa,
            shard_close_micros,
            rss_bytes,
        }
    }

    /// Starts a wall-time span for one online QoA model update.
    pub(crate) fn qoa_update_timer(&self) -> Span<'_> {
        self.qoa.update_timer()
    }

    /// Records one window's QoA report.
    pub(crate) fn record_qoa(&self, report: &QoaWindowReport) {
        self.qoa.record_report(report);
    }

    /// Samples the process RSS into the
    /// [`alertops_obs::process::RSS_GAUGE_NAME`] gauge; a no-op where
    /// the platform has no procfs.
    pub(crate) fn sample_rss(&self) {
        alertops_obs::process::sample_rss(&self.rss_bytes);
    }

    /// The registry behind these handles — per-shard governors register
    /// their detect/react families here too.
    #[must_use]
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// The close-latency histogram of one shard.
    pub(crate) fn shard_close(&self, shard: usize) -> &Histogram {
        &self.shard_close_micros[shard]
    }
}

/// Pushes one fully headed counter/gauge family with a single
/// unlabelled series.
fn push_family(out: &mut String, name: &str, kind: &str, help: &str, value: u64) {
    out.push_str("# HELP ");
    out.push_str(name);
    out.push(' ');
    out.push_str(help);
    out.push('\n');
    out.push_str("# TYPE ");
    out.push_str(name);
    out.push(' ');
    out.push_str(kind);
    out.push('\n');
    out.push_str(&render_sample(name, &[], value));
    out.push('\n');
}

/// Renders the full exposition document: the conservation counters
/// translated from `counters`, then everything in the registry (when
/// metrics are enabled). Works with `metrics = None` — a daemon with
/// metrics disabled still exposes its conservation counters.
#[must_use]
pub fn render_exposition(counters: &Counters, metrics: Option<&IngestdMetrics>) -> String {
    let snap = counters.snapshot();
    let mut out = render_counter_snapshot(&snap);
    if let Some(metrics) = metrics {
        out.push_str(&metrics.registry.render());
    }
    out
}

/// The conservation counters as Prometheus text.
#[must_use]
pub fn render_counter_snapshot(snap: &CounterSnapshot) -> String {
    let mut out = String::with_capacity(2048);
    push_family(
        &mut out,
        "alertops_ingested_total",
        "counter",
        "Frames that entered the pipeline (routed alerts + quarantined lines).",
        snap.ingested,
    );
    push_family(
        &mut out,
        "alertops_delivered_total",
        "counter",
        "Alerts folded into a successfully closed window.",
        snap.delivered,
    );
    push_family(
        &mut out,
        "alertops_dropped_total",
        "counter",
        "Alerts shed by overflow policy or lost to worker restarts.",
        snap.dropped,
    );
    push_family(
        &mut out,
        "alertops_backpressure_waits_total",
        "counter",
        "Producer blocks on a full shard queue.",
        snap.backpressure_waits,
    );

    out.push_str("# HELP alertops_quarantined_total Ingress lines quarantined, by reason.\n");
    out.push_str("# TYPE alertops_quarantined_total counter\n");
    for reason in QuarantineReason::ALL {
        let value = match reason {
            QuarantineReason::InvalidJson => snap.quarantined_invalid_json,
            QuarantineReason::InvalidUtf8 => snap.quarantined_invalid_utf8,
            QuarantineReason::UnknownControl => snap.quarantined_unknown_control,
            QuarantineReason::InvalidAlert => snap.quarantined_invalid_alert,
            QuarantineReason::Oversized => snap.quarantined_oversized,
            QuarantineReason::CorruptFrame => snap.quarantined_corrupt_frame,
        };
        out.push_str(&render_sample(
            "alertops_quarantined_total",
            &[("reason", reason.label())],
            value,
        ));
        out.push('\n');
    }

    push_family(
        &mut out,
        "alertops_windows_closed_total",
        "counter",
        "Windows closed and merged.",
        snap.windows_closed,
    );
    push_family(
        &mut out,
        "alertops_degraded_windows_total",
        "counter",
        "Merged windows carrying at least one degraded shard.",
        snap.degraded_windows,
    );
    push_family(
        &mut out,
        "alertops_shard_restarts_total",
        "counter",
        "Shard workers restarted by the supervisor after a panic.",
        snap.shard_restarts,
    );
    push_family(
        &mut out,
        "alertops_last_window_micros",
        "gauge",
        "Latency of the most recent window close, in microseconds.",
        snap.last_window_micros,
    );

    out.push_str("# HELP alertops_queue_depth Alerts queued but not yet processed, per shard.\n");
    out.push_str("# TYPE alertops_queue_depth gauge\n");
    for (shard, depth) in snap.queue_depths.iter().enumerate() {
        out.push_str(&render_sample(
            "alertops_queue_depth",
            &[("shard", &shard.to_string())],
            *depth,
        ));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn counters_only_exposition_is_lintable_and_complete() {
        let counters = Counters::new(2);
        counters.ingested.fetch_add(5, Ordering::Relaxed);
        counters.delivered.fetch_add(4, Ordering::Relaxed);
        counters.quarantine(QuarantineReason::Oversized);
        let text = render_exposition(&counters, None);
        assert!(text.contains("alertops_ingested_total 6"));
        assert!(text.contains("alertops_quarantined_total{reason=\"oversized\"} 1"));
        assert!(text.contains("alertops_queue_depth{shard=\"1\"} 0"));
        alertops_obs::lint_exposition(&text).unwrap();
    }

    #[test]
    fn full_exposition_merges_registry_without_duplicates() {
        let counters = Counters::new(1);
        let metrics = IngestdMetrics::new(1);
        metrics.frames_decoded.inc();
        metrics.window_close_micros.observe(250);
        metrics.shard_close(0).observe(200);
        let text = render_exposition(&counters, Some(&metrics));
        assert!(text.contains("alertops_frames_decoded_total 1"));
        assert!(text.contains("alertops_window_close_micros_count 1"));
        assert!(text.contains("alertops_shard_close_micros_bucket{shard=\"0\""));
        alertops_obs::lint_exposition(&text).unwrap();
    }
}
