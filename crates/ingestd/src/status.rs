//! The status socket: one document per connection, selected by an
//! optional request line.
//!
//! The protocol is versioned by a single request line ending in `\n`:
//!
//! ```text
//! $ printf 'status\n'  | nc 127.0.0.1 4502   # JSON status document
//! $ printf 'metrics\n' | nc 127.0.0.1 4502   # Prometheus exposition
//! $ printf 'healthz\n' | nc 127.0.0.1 4502   # "ok <windows_closed>" liveness line
//! ```
//!
//! Backward compatibility: clients that connect and read without
//! sending anything (the original protocol) still get the JSON status
//! document — the daemon waits briefly for a request line and falls
//! back to `status` on timeout, EOF, or a blank line. An unknown verb
//! is answered with a single `error: ...` line.

use serde::{Deserialize, Serialize};

use alertops_core::GovernanceSnapshot;

use crate::counters::CounterSnapshot;

/// A parsed status-socket request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatusRequest {
    /// Serve the JSON status document (also the legacy default for
    /// bare connections and blank lines).
    Status,
    /// Serve the Prometheus text exposition.
    Metrics,
    /// Serve the one-line liveness answer (`ok <windows_closed>`).
    /// Deliberately cheap: no JSON serialization, no snapshot clone —
    /// a load balancer probing every node of a cluster each second
    /// should cost two atomic loads, not a serialized governance
    /// document.
    Healthz,
    /// An unrecognized verb, answered with an error line.
    Unknown(String),
}

impl StatusRequest {
    /// Parses one request line (without its newline). Blank lines mean
    /// the legacy default. Verbs are case-insensitive.
    #[must_use]
    pub fn parse(line: &str) -> Self {
        let verb = line.trim();
        if verb.is_empty() || verb.eq_ignore_ascii_case("status") {
            StatusRequest::Status
        } else if verb.eq_ignore_ascii_case("metrics") {
            StatusRequest::Metrics
        } else if verb.eq_ignore_ascii_case("healthz") {
            StatusRequest::Healthz
        } else {
            StatusRequest::Unknown(verb.to_string())
        }
    }
}

/// The document served for a `status` request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatusReport {
    /// Ingestion counters at the time of the request.
    pub counters: CounterSnapshot,
    /// The most recently merged governance snapshot; `None` until the
    /// first window closes.
    pub snapshot: Option<GovernanceSnapshot>,
}

impl StatusReport {
    /// Serializes the report as the wire document.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("status reports always serialize")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_without_snapshot() {
        let report = StatusReport {
            counters: CounterSnapshot {
                ingested: 10,
                delivered: 7,
                dropped: 1,
                backpressure_waits: 1,
                decode_errors: 2,
                quarantined_invalid_json: 1,
                quarantined_invalid_utf8: 0,
                quarantined_unknown_control: 0,
                quarantined_invalid_alert: 1,
                quarantined_oversized: 0,
                quarantined_corrupt_frame: 0,
                windows_closed: 3,
                degraded_windows: 1,
                shard_restarts: 1,
                last_window_micros: 450,
                queue_depths: vec![0, 4],
            },
            snapshot: None,
        };
        let back: StatusReport = serde_json::from_str(&report.to_json()).unwrap();
        assert_eq!(report, back);
        assert!(back.snapshot.is_none());
    }

    #[test]
    fn request_parsing_defaults_to_status() {
        assert_eq!(StatusRequest::parse(""), StatusRequest::Status);
        assert_eq!(StatusRequest::parse("  \r"), StatusRequest::Status);
        assert_eq!(StatusRequest::parse("status"), StatusRequest::Status);
        assert_eq!(StatusRequest::parse("STATUS"), StatusRequest::Status);
        assert_eq!(StatusRequest::parse("metrics"), StatusRequest::Metrics);
        assert_eq!(StatusRequest::parse("Metrics\r"), StatusRequest::Metrics);
        assert_eq!(StatusRequest::parse("healthz"), StatusRequest::Healthz);
        assert_eq!(StatusRequest::parse("HEALTHZ\r"), StatusRequest::Healthz);
        assert_eq!(
            StatusRequest::parse("gimme"),
            StatusRequest::Unknown("gimme".into())
        );
    }
}
