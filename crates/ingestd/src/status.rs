//! The status socket: one JSON document per connection.
//!
//! Connect, read until EOF, parse — no request syntax, so `curl` or a
//! three-line script can scrape it:
//!
//! ```text
//! $ nc 127.0.0.1 4502
//! {"counters":{...},"snapshot":{...}}
//! ```

use serde::{Deserialize, Serialize};

use alertops_core::GovernanceSnapshot;

use crate::counters::CounterSnapshot;

/// The document served per status connection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatusReport {
    /// Ingestion counters at the time of the request.
    pub counters: CounterSnapshot,
    /// The most recently merged governance snapshot; `None` until the
    /// first window closes.
    pub snapshot: Option<GovernanceSnapshot>,
}

impl StatusReport {
    /// Serializes the report as the wire document.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("status reports always serialize")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_without_snapshot() {
        let report = StatusReport {
            counters: CounterSnapshot {
                ingested: 10,
                delivered: 7,
                dropped: 1,
                backpressure_waits: 1,
                decode_errors: 2,
                quarantined_invalid_json: 1,
                quarantined_invalid_utf8: 0,
                quarantined_unknown_control: 0,
                quarantined_invalid_alert: 1,
                quarantined_oversized: 0,
                windows_closed: 3,
                degraded_windows: 1,
                shard_restarts: 1,
                last_window_micros: 450,
                queue_depths: vec![0, 4],
            },
            snapshot: None,
        };
        let back: StatusReport = serde_json::from_str(&report.to_json()).unwrap();
        assert_eq!(report, back);
        assert!(back.snapshot.is_none());
    }
}
