//! The coordinator: closes windows, barriers on per-shard deltas, and
//! publishes merged snapshots.

use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

use alertops_core::{merge_emerging_docs, GovernanceSnapshot};
use alertops_detect::StormConfig;
use alertops_react::EmergingAlertDetector;

use crate::counters::Counters;
use crate::metrics::IngestdMetrics;
use crate::worker::{ShardDelta, WorkerMsg};

/// Control messages for the coordinator.
pub(crate) enum CoordMsg {
    /// Close the current window now. If `ack` is set, the merged
    /// snapshot is sent once published (this is the flush path).
    CloseNow {
        ack: Option<SyncSender<GovernanceSnapshot>>,
    },
    /// Stop coordinating; acked when the loop is about to exit.
    Shutdown { ack: SyncSender<()> },
}

/// The coordinator loop.
///
/// Each cycle waits for a control message — or, with a tick
/// configured, times out into an automatic close. A close broadcasts
/// `WorkerMsg::Close{seq}` through every shard's ingest queue, then
/// barriers on exactly one [`ShardDelta`] per shard for that `seq`
/// before merging. Workers process closes in queue order and the
/// coordinator never issues `seq + 1` before collecting all of `seq`,
/// so the barrier cannot interleave windows. A panicking worker does
/// not wedge the barrier either: its supervisor contributes a
/// synthetic empty delta for the in-flight `seq`, and the shard is
/// listed in the published snapshot's `degraded` field.
///
/// When the emerging channel is enabled, the coordinator owns the one
/// [`EmergingAlertDetector`]: shards only *forward* window documents
/// (see `alertops_core::EmergingMode::Forward`), and the single
/// sequential AO-LDA pass runs here, after the merge, over the
/// id-sorted union of the forwards. AO-LDA's adaptive prior threads
/// every window's model through the previous windows' topics, so any
/// per-shard pass would diverge between shard counts; one pass at the
/// merge point keeps 1-shard and N-shard emerging output
/// byte-identical. The pass runs whether or not metrics are enabled.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_coordinator(
    control: &Receiver<CoordMsg>,
    shard_txs: &[SyncSender<WorkerMsg>],
    deltas: &Receiver<ShardDelta>,
    tick: Option<Duration>,
    storm: &StormConfig,
    mut emerging: Option<EmergingAlertDetector>,
    snapshot_slot: &Arc<RwLock<Option<GovernanceSnapshot>>>,
    counters: &Arc<Counters>,
    metrics: Option<&IngestdMetrics>,
) {
    let mut seq: u64 = 0;
    loop {
        let msg = match tick {
            Some(interval) => match control.recv_timeout(interval) {
                Ok(msg) => Some(msg),
                Err(RecvTimeoutError::Timeout) => None, // tick: close now
                Err(RecvTimeoutError::Disconnected) => return,
            },
            None => match control.recv() {
                Ok(msg) => Some(msg),
                Err(_) => return,
            },
        };

        let ack = match msg {
            Some(CoordMsg::CloseNow { ack }) => ack,
            Some(CoordMsg::Shutdown { ack }) => {
                let _ = ack.send(());
                return;
            }
            None => None,
        };

        let started = Instant::now();
        for tx in shard_txs {
            if tx.send(WorkerMsg::Close { seq }).is_err() {
                return; // a worker died: shutting down
            }
        }
        let mut collected = Vec::with_capacity(shard_txs.len());
        let mut degraded: Vec<usize> = Vec::new();
        while collected.len() < shard_txs.len() {
            match deltas.recv() {
                Ok(shard_delta) => {
                    debug_assert_eq!(shard_delta.seq, seq, "barrier interleaved windows");
                    if shard_delta.degraded {
                        degraded.push(shard_delta.shard);
                    }
                    collected.push(shard_delta.delta);
                }
                Err(_) => return,
            }
        }
        if let Some(m) = metrics {
            // Barrier wait spans broadcast to last delta: it includes
            // the shards' own close work, so it bounds the critical
            // path a straggling shard puts on the window.
            m.barrier_wait_micros.observe(elapsed_micros(started));
        }

        let merge_started = Instant::now();
        let mut snapshot = GovernanceSnapshot::merge(&collected, storm);
        if let Some(m) = metrics {
            m.merge_micros.observe(elapsed_micros(merge_started));
        }
        if let Some(detector) = emerging.as_mut() {
            let docs = merge_emerging_docs(&collected);
            let report = {
                let _span = metrics.map(|m| m.emerging.window_timer());
                detector.observe_docs(&docs)
            };
            if let Some(m) = metrics {
                m.emerging.record_report(&report);
            }
            snapshot.emerging = Some(report);
        }
        degraded.sort_unstable();
        if !degraded.is_empty() {
            counters.degraded_windows.fetch_add(1, Ordering::Relaxed);
        }
        snapshot.degraded = degraded;
        let window_micros = elapsed_micros(started);
        counters
            .last_window_micros
            .store(window_micros, Ordering::Relaxed);
        counters.windows_closed.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = metrics {
            m.window_close_micros.observe(window_micros);
        }
        *snapshot_slot.write().unwrap_or_else(|e| e.into_inner()) = Some(snapshot.clone());
        if let Some(ack) = ack {
            let _ = ack.send(snapshot);
        }
        seq += 1;
    }
}

fn elapsed_micros(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_micros()).unwrap_or(u64::MAX)
}
