//! The coordinator: closes windows, barriers on per-shard deltas, and
//! publishes merged snapshots.

use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

use alertops_core::{GovernanceSnapshot, OnlineQoaModel, WindowDelta};
use alertops_detect::StormConfig;
use alertops_model::QoaLabel;
use alertops_react::EmergingAlertDetector;

use crate::counters::Counters;
use crate::journal::WindowJournal;
use crate::metrics::IngestdMetrics;
use crate::worker::{ShardDelta, WorkerMsg};

/// Everything one window close produced: the published snapshot plus
/// the node-level [`WindowDelta`] it was built from (the fold of this
/// daemon's per-shard deltas through the `WindowDelta` monoid). A
/// cluster coordinator collects one `ClosedWindow` per node and merges
/// the `delta`s again — same monoid, one level up — which is what
/// makes N-node output byte-identical to 1-node output.
#[derive(Debug, Clone)]
pub struct ClosedWindow {
    /// The merged snapshot this daemon published for the window.
    pub snapshot: GovernanceSnapshot,
    /// The fold of the per-shard deltas: exactly what a level above
    /// needs to merge this node with its peers. When the daemon runs
    /// in the deferred-emerging node role, the window's forwarded
    /// documents ride along in `delta.emerging_docs`.
    pub delta: WindowDelta,
}

/// Control messages for the coordinator.
pub(crate) enum CoordMsg {
    /// Close the current window now. If `ack` is set, the close result
    /// is sent once published (this is the flush path). `labels` is
    /// the window's OCE feedback for the online QoA model — empty when
    /// the caller has none (plain flushes, tick closes).
    CloseNow {
        ack: Option<SyncSender<ClosedWindow>>,
        labels: Vec<QoaLabel>,
    },
    /// Stop coordinating; acked when the loop is about to exit.
    Shutdown { ack: SyncSender<()> },
}

/// The coordinator loop.
///
/// Each cycle waits for a control message — or, with a tick
/// configured, times out into an automatic close. A close broadcasts
/// `WorkerMsg::Close{seq}` through every shard's ingest queue, then
/// barriers on exactly one [`ShardDelta`] per shard for that `seq`
/// before merging. Workers process closes in queue order and the
/// coordinator never issues `seq + 1` before collecting all of `seq`,
/// so the barrier cannot interleave windows. A panicking worker does
/// not wedge the barrier either: its supervisor contributes a
/// synthetic empty delta for the in-flight `seq`, and the shard is
/// listed in the published snapshot's `degraded` field.
///
/// When the emerging channel is enabled and not deferred, the
/// coordinator owns the one [`EmergingAlertDetector`]: shards only
/// *forward* window documents (see
/// `alertops_core::EmergingMode::Forward`), and the single sequential
/// AO-LDA pass runs here, after the merge, over the id-sorted union of
/// the forwards. AO-LDA's adaptive prior threads every window's model
/// through the previous windows' topics, so any per-shard pass would
/// diverge between shard counts; one pass at the merge point keeps
/// 1-shard and N-shard emerging output byte-identical. The pass runs
/// whether or not metrics are enabled. In the deferred node role the
/// same argument moves the pass one level up: this daemon is *not*
/// the topmost merge point, so it forwards the merged documents in
/// its published [`ClosedWindow::delta`] instead.
///
/// The QoA feedback channel follows the same single-sequential-pass
/// argument: `qoa` (when `Some`) is the one [`OnlineQoaModel`], fed
/// the merged window's forwarded samples joined with the labels the
/// flush carried. The model updates *after* the window's governance —
/// window `N` is governed entirely by what window `N - 1` taught —
/// and the fresh verdicts are pushed down every shard queue before
/// the next close can be broadcast, so their application point is
/// exact for any shard count. In the deferred node role
/// (`defer_qoa`) the merged samples ride out in the published delta
/// instead.
///
/// With a journal attached, [`WindowJournal::window_closed`] fires
/// after the merge is published — the write-ahead log's cue to seal
/// the window's records and prune beyond the rolling history.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_coordinator(
    control: &Receiver<CoordMsg>,
    shard_txs: &[SyncSender<WorkerMsg>],
    deltas: &Receiver<ShardDelta>,
    tick: Option<Duration>,
    storm: &StormConfig,
    mut emerging: Option<EmergingAlertDetector>,
    mut qoa: Option<OnlineQoaModel>,
    journal: Option<Arc<dyn WindowJournal>>,
    snapshot_slot: &Arc<RwLock<Option<GovernanceSnapshot>>>,
    counters: &Arc<Counters>,
    metrics: Option<&IngestdMetrics>,
) {
    let mut seq: u64 = 0;
    loop {
        let msg = match tick {
            Some(interval) => match control.recv_timeout(interval) {
                Ok(msg) => Some(msg),
                Err(RecvTimeoutError::Timeout) => None, // tick: close now
                Err(RecvTimeoutError::Disconnected) => return,
            },
            None => match control.recv() {
                Ok(msg) => Some(msg),
                Err(_) => return,
            },
        };

        let (ack, labels) = match msg {
            Some(CoordMsg::CloseNow { ack, labels }) => (ack, labels),
            Some(CoordMsg::Shutdown { ack }) => {
                let _ = ack.send(());
                return;
            }
            None => (None, Vec::new()),
        };

        let started = Instant::now();
        for tx in shard_txs {
            if tx.send(WorkerMsg::Close { seq }).is_err() {
                return; // a worker died: shutting down
            }
        }
        let mut collected = Vec::with_capacity(shard_txs.len());
        let mut degraded: Vec<usize> = Vec::new();
        while collected.len() < shard_txs.len() {
            match deltas.recv() {
                Ok(shard_delta) => {
                    debug_assert_eq!(shard_delta.seq, seq, "barrier interleaved windows");
                    if shard_delta.degraded {
                        degraded.push(shard_delta.shard);
                    }
                    collected.push(shard_delta.delta);
                }
                Err(_) => return,
            }
        }
        if let Some(m) = metrics {
            // Barrier wait spans broadcast to last delta: it includes
            // the shards' own close work, so it bounds the critical
            // path a straggling shard puts on the window.
            m.barrier_wait_micros.observe(elapsed_micros(started));
        }

        let merge_started = Instant::now();
        let node_delta = WindowDelta::merge_all(&collected);
        let mut snapshot = GovernanceSnapshot::from_delta(&node_delta, storm);
        if let Some(m) = metrics {
            m.merge_micros.observe(elapsed_micros(merge_started));
        }
        if let Some(detector) = emerging.as_mut() {
            let report = {
                let _span = metrics.map(|m| m.emerging.window_timer());
                detector.observe_docs(&node_delta.emerging_docs)
            };
            if let Some(m) = metrics {
                m.emerging.record_report(&report);
            }
            snapshot.emerging = Some(report);
        }
        if let Some(model) = qoa.as_mut() {
            let report = {
                let _span = metrics.map(|m| m.qoa_update_timer());
                model.observe_window(&node_delta.qoa_samples, &labels)
            };
            if let Some(m) = metrics {
                m.record_qoa(&report);
            }
            // Push the post-update verdicts down every shard queue
            // *before* this loop can broadcast the next close: the
            // per-shard queues are FIFO, so the verdicts are applied
            // ahead of whatever window `seq + 1` governs.
            let verdicts = model.verdicts();
            for tx in shard_txs {
                let _ = tx.send(WorkerMsg::Qoa(verdicts.clone()));
            }
            snapshot.qoa = Some(report);
        }
        degraded.sort_unstable();
        if !degraded.is_empty() {
            counters.degraded_windows.fetch_add(1, Ordering::Relaxed);
        }
        snapshot.degraded = degraded;
        let window_micros = elapsed_micros(started);
        counters
            .last_window_micros
            .store(window_micros, Ordering::Relaxed);
        counters.windows_closed.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = metrics {
            m.window_close_micros.observe(window_micros);
            // Per-window RSS sample: the soak harness scrapes this to
            // enforce its memory ceiling. Observer-only, one procfs
            // read per window close.
            m.sample_rss();
        }
        if let Some(journal) = &journal {
            journal.window_closed(seq);
        }
        *snapshot_slot.write().unwrap_or_else(|e| e.into_inner()) = Some(snapshot.clone());
        if let Some(ack) = ack {
            let _ = ack.send(ClosedWindow {
                snapshot,
                delta: node_delta,
            });
        }
        seq += 1;
    }
}

fn elapsed_micros(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_micros()).unwrap_or(u64::MAX)
}
