//! Daemon configuration.

use std::time::Duration;

use alertops_core::StreamingConfig;
use alertops_wire::WireFormat;

/// What the router does when a shard's bounded queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverflowPolicy {
    /// Block the producing connection until the worker catches up —
    /// backpressure propagates to the TCP peer. Counted in
    /// [`crate::Counters::backpressure_waits`].
    Block,
    /// Drop the alert and count it in [`crate::Counters::dropped`].
    /// Keeps ingestion latency bounded at the cost of completeness.
    Drop,
}

/// Configuration for [`crate::Ingestd`].
#[derive(Debug, Clone)]
pub struct IngestdConfig {
    /// Number of worker shards (each runs its own streaming governor).
    pub shards: usize,
    /// Capacity of each shard's bounded ingest queue.
    pub queue_capacity: usize,
    /// Wall-clock interval between automatic window closes. `None`
    /// disables the tick: windows close only on `{"ctrl":"flush"}`
    /// frames or [`crate::IngestdHandle::flush`] — the deterministic
    /// mode tests and replay use.
    pub tick: Option<Duration>,
    /// Full-queue behaviour.
    pub overflow: OverflowPolicy,
    /// Per-shard streaming governor configuration (history depth,
    /// storm thresholds, emerging channel). Setting
    /// `streaming.emerging.mode` to anything but
    /// [`alertops_core::EmergingMode::Off`] enables the emerging-alert
    /// (R4) channel: shards forward each window's alert documents, the
    /// coordinator runs the single sequential AO-LDA pass after its
    /// merge, and the report is published in
    /// [`alertops_core::GovernanceSnapshot::emerging`].
    pub streaming: StreamingConfig,
    /// `host:port` to accept alert ingress on. `None` disables the TCP
    /// listener (alerts arrive via [`crate::IngestdHandle::route`] or
    /// stdin instead). Use port 0 to let the OS pick.
    pub listen: Option<String>,
    /// Ingress wire format (`--wire`): NDJSON lines (the default and
    /// the compatibility oracle) or `alertops-wire` binary frames.
    /// The connection speaks one protocol in *both* directions: NDJSON
    /// connections get JSON ack lines, binary connections get
    /// [`alertops_wire::AckFrame`] frames. The governed output is
    /// byte-identical either way — the format only changes how bytes
    /// travel.
    /// A corrupt binary frame is quarantined as
    /// [`crate::codec::QuarantineReason::CorruptFrame`] and closes its
    /// connection (a binary stream cannot resync).
    pub wire: WireFormat,
    /// `host:port` for the JSON status socket; `None` disables it.
    pub status: Option<String>,
    /// Register and record stage metrics (latency histograms, frame
    /// counters, per-shard governor instrumentation), served as
    /// Prometheus text via the status socket's `metrics` request and
    /// [`crate::IngestdHandle::render_metrics`]. Metrics are
    /// observer-only — outputs are byte-identical either way — and cost
    /// a few relaxed atomic adds per event, so they default to on.
    /// With `false`, the exposition still carries the conservation
    /// counters.
    pub metrics: bool,
    /// Accept chaos control frames (`{"ctrl":"panic"|"stall"|"resume",
    /// "shard":N}`) on the wire. Off by default: in production those
    /// frames are quarantined as unknown controls. The in-process
    /// handle methods ([`crate::IngestdHandle::inject_panic`] and
    /// friends) are not gated — they require holding the handle.
    pub chaos: bool,
    /// Node role: this daemon is one member of a cluster, and a
    /// cluster-level coordinator owns the single sequential AO-LDA
    /// pass. With `true` and an enabled emerging channel, the daemon's
    /// own coordinator does *not* run the detector after its merge —
    /// the forwarded documents stay in the published window's
    /// [`alertops_core::WindowDelta::emerging_docs`] for the level
    /// above. Irrelevant when the emerging channel is off. `false`
    /// (the default) is the standalone role: the daemon's coordinator
    /// is the topmost merge point and runs the pass itself. A
    /// storm-load token budget
    /// (`streaming.emerging.config.budget`, see
    /// [`alertops_react::EmergingBudget`]) is applied by whichever
    /// process runs the pass — shard count still cannot change output,
    /// because sampling happens after the merge, over the same merged
    /// document stream.
    pub defer_emerging: bool,
    /// Node role for the QoA feedback channel, mirroring
    /// [`defer_emerging`](Self::defer_emerging): the online QoA model's
    /// `partial_fit` is a single sequential pass, so exactly one
    /// process may run it. With `false` (standalone) and
    /// `streaming.qoa.mode` enabled, this daemon's coordinator owns
    /// the model: shards forward per-strategy feature samples, the
    /// coordinator updates the model with the labels handed to
    /// [`crate::IngestdHandle::flush_labeled`] at each close, and the
    /// resulting verdicts are pushed back down every shard queue
    /// before the next close. With `true` (cluster node role) the
    /// merged samples stay in the published window's
    /// [`alertops_core::WindowDelta::qoa_samples`] for the cluster
    /// coordinator, which pushes verdicts back via
    /// [`crate::IngestdHandle::push_qoa_verdicts`]. Irrelevant when
    /// the QoA channel is off.
    pub defer_qoa: bool,
}

impl Default for IngestdConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            queue_capacity: 1024,
            tick: None,
            overflow: OverflowPolicy::Block,
            streaming: StreamingConfig::default(),
            listen: None,
            wire: WireFormat::default(),
            status: None,
            metrics: true,
            chaos: false,
            defer_emerging: false,
            defer_qoa: false,
        }
    }
}

impl IngestdConfig {
    /// Validates invariants the daemon relies on.
    ///
    /// # Errors
    ///
    /// Returns a message naming the violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.shards == 0 {
            return Err("shards must be >= 1".into());
        }
        if self.queue_capacity == 0 {
            return Err("queue_capacity must be >= 1".into());
        }
        if let Some(tick) = self.tick {
            if tick.is_zero() {
                return Err("tick must be non-zero; use None to disable".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert_eq!(IngestdConfig::default().validate(), Ok(()));
    }

    #[test]
    fn zero_shards_rejected() {
        let config = IngestdConfig {
            shards: 0,
            ..IngestdConfig::default()
        };
        assert!(config.validate().is_err());
    }

    #[test]
    fn zero_tick_rejected() {
        let config = IngestdConfig {
            tick: Some(Duration::ZERO),
            ..IngestdConfig::default()
        };
        assert!(config.validate().is_err());
    }
}
