//! The write-ahead hook: durability as a trait, policy elsewhere.
//!
//! The daemon itself stays storage-free — its crash story is the
//! in-memory checkpoint rehydration of [`crate::worker`]. Deployments
//! that need *durable* losslessness (a node restart with no live peer
//! holding state) hand [`crate::Ingestd::spawn_with_journal`] a
//! [`WindowJournal`]: the router calls [`WindowJournal::record`] for
//! every accepted alert **before** enqueueing it to a shard
//! (write-ahead: an alert is never in flight without being journaled),
//! and the coordinator calls [`WindowJournal::window_closed`] after
//! each merge (the durability point: everything recorded before it has
//! been folded into governance state, so the journal may seal the
//! window's records and prune beyond the rolling history).
//!
//! The workspace's implementation is the length+CRC-framed NDJSON
//! write-ahead log in `alertops-cluster`; tests use in-memory
//! journals. Journal calls happen on the hot ingress path —
//! implementations buffer or flush at their own risk/latency
//! trade-off, but must be cheap and must never panic.

use alertops_model::Alert;

/// Observer of the daemon's accept/close cycle for write-ahead
/// durability. See the module docs for the exact call points.
pub trait WindowJournal: Send + Sync + std::fmt::Debug {
    /// One alert was accepted for routing (counted as ingested).
    /// Called before the alert is enqueued anywhere.
    fn record(&self, alert: &Alert);

    /// The window with this coordinator sequence number closed: every
    /// alert recorded before this call is folded into the published
    /// snapshot (or accounted dropped/degraded).
    fn window_closed(&self, seq: u64);
}
