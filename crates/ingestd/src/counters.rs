//! Ingestion accounting: lock-free counters shared by every thread of
//! the daemon and published on the status socket.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// Live counters. All operations use relaxed ordering — these are
/// statistics, not synchronization.
#[derive(Debug, Default)]
pub struct Counters {
    /// Alerts accepted into a shard queue.
    pub ingested: AtomicU64,
    /// Alerts dropped because a queue was full under
    /// [`crate::OverflowPolicy::Drop`].
    pub dropped: AtomicU64,
    /// Times a producer blocked on a full queue under
    /// [`crate::OverflowPolicy::Block`].
    pub backpressure_waits: AtomicU64,
    /// Ingress lines that failed to decode.
    pub decode_errors: AtomicU64,
    /// Windows closed and merged so far.
    pub windows_closed: AtomicU64,
    /// Latency of the most recent window close, in microseconds: from
    /// the coordinator issuing the close to the merged snapshot being
    /// published (includes every shard's detection pass).
    pub last_window_micros: AtomicU64,
    /// Per-shard gauge of alerts queued but not yet processed.
    pub queue_depths: Vec<AtomicU64>,
}

impl Counters {
    /// Creates counters for `shards` shards.
    #[must_use]
    pub fn new(shards: usize) -> Self {
        Self {
            queue_depths: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            ..Self::default()
        }
    }

    /// A consistent-enough point-in-time copy for reporting.
    #[must_use]
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            ingested: self.ingested.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            backpressure_waits: self.backpressure_waits.load(Ordering::Relaxed),
            decode_errors: self.decode_errors.load(Ordering::Relaxed),
            windows_closed: self.windows_closed.load(Ordering::Relaxed),
            last_window_micros: self.last_window_micros.load(Ordering::Relaxed),
            queue_depths: self
                .queue_depths
                .iter()
                .map(|d| d.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// Serializable point-in-time copy of [`Counters`] (see its fields for
/// semantics).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub struct CounterSnapshot {
    pub ingested: u64,
    pub dropped: u64,
    pub backpressure_waits: u64,
    pub decode_errors: u64,
    pub windows_closed: u64,
    pub last_window_micros: u64,
    pub queue_depths: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counts() {
        let counters = Counters::new(2);
        counters.ingested.fetch_add(5, Ordering::Relaxed);
        counters.queue_depths[1].store(3, Ordering::Relaxed);
        let snap = counters.snapshot();
        assert_eq!(snap.ingested, 5);
        assert_eq!(snap.queue_depths, vec![0, 3]);
        let json = serde_json::to_string(&snap).unwrap();
        let back: CounterSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, back);
    }
}
