//! Ingestion accounting: lock-free counters shared by every thread of
//! the daemon and published on the status socket.
//!
//! The counters obey one conservation law the chaos suite asserts
//! exactly: once all windows are closed and queues drained,
//!
//! ```text
//! ingested == delivered + dropped + quarantined
//! ```
//!
//! Every frame that enters the pipeline is `ingested`; it then either
//! reaches a closed window (`delivered`), is shed by overflow policy
//! or lost to a crashed worker (`dropped`), or is rejected at the
//! transport (`quarantined`, broken out per [`QuarantineReason`] with
//! [`Counters::decode_errors`] as the total). Nothing is ever
//! unaccounted for — that exactness is what makes fault injection
//! checkable.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

use crate::codec::QuarantineReason;

/// Live counters. All operations use relaxed ordering — these are
/// statistics, not synchronization.
#[derive(Debug, Default)]
pub struct Counters {
    /// Frames that entered the pipeline: alerts routed toward a shard
    /// (whether or not they survive overflow policy) plus quarantined
    /// lines. Control frames are not counted.
    pub ingested: AtomicU64,
    /// Alerts folded into a successfully closed window — the ones
    /// governance actually saw.
    pub delivered: AtomicU64,
    /// Alerts shed: queue overflow under
    /// [`crate::OverflowPolicy::Drop`], plus buffered alerts lost when
    /// a panicked worker was restarted.
    pub dropped: AtomicU64,
    /// Times a producer blocked on a full queue under
    /// [`crate::OverflowPolicy::Block`].
    pub backpressure_waits: AtomicU64,
    /// Ingress lines quarantined (total across all reasons).
    pub decode_errors: AtomicU64,
    /// Quarantined: not valid JSON (includes reset-truncated frames).
    pub quarantined_invalid_json: AtomicU64,
    /// Quarantined: not valid UTF-8.
    pub quarantined_invalid_utf8: AtomicU64,
    /// Quarantined: unknown or malformed control verb.
    pub quarantined_unknown_control: AtomicU64,
    /// Quarantined: valid JSON that is not an alert record.
    pub quarantined_invalid_alert: AtomicU64,
    /// Quarantined: line exceeded [`crate::codec::MAX_FRAME_LEN`].
    pub quarantined_oversized: AtomicU64,
    /// Windows closed and merged so far.
    pub windows_closed: AtomicU64,
    /// Windows whose merged snapshot carried at least one degraded
    /// shard.
    pub degraded_windows: AtomicU64,
    /// Shard workers restarted by the supervisor after a panic.
    pub shard_restarts: AtomicU64,
    /// Latency of the most recent window close, in microseconds: from
    /// the coordinator issuing the close to the merged snapshot being
    /// published (includes every shard's detection pass).
    pub last_window_micros: AtomicU64,
    /// Per-shard gauge of alerts queued but not yet processed.
    pub queue_depths: Vec<AtomicU64>,
}

impl Counters {
    /// Creates counters for `shards` shards.
    #[must_use]
    pub fn new(shards: usize) -> Self {
        Self {
            queue_depths: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            ..Self::default()
        }
    }

    /// Records one quarantined ingress line: the reason's counter, the
    /// [`decode_errors`](Self::decode_errors) total, and — because a
    /// quarantined frame still *entered* the pipeline —
    /// [`ingested`](Self::ingested), keeping the conservation law
    /// exact.
    pub fn quarantine(&self, reason: QuarantineReason) {
        self.ingested.fetch_add(1, Ordering::Relaxed);
        self.decode_errors.fetch_add(1, Ordering::Relaxed);
        self.quarantined_counter(reason)
            .fetch_add(1, Ordering::Relaxed);
    }

    /// The per-reason quarantine counter.
    #[must_use]
    pub fn quarantined_counter(&self, reason: QuarantineReason) -> &AtomicU64 {
        match reason {
            QuarantineReason::InvalidJson => &self.quarantined_invalid_json,
            QuarantineReason::InvalidUtf8 => &self.quarantined_invalid_utf8,
            QuarantineReason::UnknownControl => &self.quarantined_unknown_control,
            QuarantineReason::InvalidAlert => &self.quarantined_invalid_alert,
            QuarantineReason::Oversized => &self.quarantined_oversized,
        }
    }

    /// A consistent-enough point-in-time copy for reporting.
    #[must_use]
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            ingested: self.ingested.load(Ordering::Relaxed),
            delivered: self.delivered.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            backpressure_waits: self.backpressure_waits.load(Ordering::Relaxed),
            decode_errors: self.decode_errors.load(Ordering::Relaxed),
            quarantined_invalid_json: self.quarantined_invalid_json.load(Ordering::Relaxed),
            quarantined_invalid_utf8: self.quarantined_invalid_utf8.load(Ordering::Relaxed),
            quarantined_unknown_control: self.quarantined_unknown_control.load(Ordering::Relaxed),
            quarantined_invalid_alert: self.quarantined_invalid_alert.load(Ordering::Relaxed),
            quarantined_oversized: self.quarantined_oversized.load(Ordering::Relaxed),
            windows_closed: self.windows_closed.load(Ordering::Relaxed),
            degraded_windows: self.degraded_windows.load(Ordering::Relaxed),
            shard_restarts: self.shard_restarts.load(Ordering::Relaxed),
            last_window_micros: self.last_window_micros.load(Ordering::Relaxed),
            queue_depths: self
                .queue_depths
                .iter()
                .map(|d| d.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// Serializable point-in-time copy of [`Counters`] (see its fields for
/// semantics).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub struct CounterSnapshot {
    pub ingested: u64,
    pub delivered: u64,
    pub dropped: u64,
    pub backpressure_waits: u64,
    pub decode_errors: u64,
    pub quarantined_invalid_json: u64,
    pub quarantined_invalid_utf8: u64,
    pub quarantined_unknown_control: u64,
    pub quarantined_invalid_alert: u64,
    pub quarantined_oversized: u64,
    pub windows_closed: u64,
    pub degraded_windows: u64,
    pub shard_restarts: u64,
    pub last_window_micros: u64,
    pub queue_depths: Vec<u64>,
}

impl CounterSnapshot {
    /// Total quarantined lines (alias of
    /// [`decode_errors`](Self::decode_errors), named for the
    /// conservation law).
    #[must_use]
    pub fn quarantined(&self) -> u64 {
        self.decode_errors
    }

    /// Whether the conservation law `ingested == delivered + dropped +
    /// quarantined` holds for this snapshot. Only meaningful at a
    /// quiescent point (queues drained, windows closed).
    #[must_use]
    pub fn is_conserved(&self) -> bool {
        self.ingested == self.delivered + self.dropped + self.quarantined()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counts() {
        let counters = Counters::new(2);
        counters.ingested.fetch_add(5, Ordering::Relaxed);
        counters.queue_depths[1].store(3, Ordering::Relaxed);
        let snap = counters.snapshot();
        assert_eq!(snap.ingested, 5);
        assert_eq!(snap.queue_depths, vec![0, 3]);
        let json = serde_json::to_string(&snap).unwrap();
        let back: CounterSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn quarantine_feeds_total_reason_and_ingested() {
        let counters = Counters::new(1);
        counters.quarantine(QuarantineReason::InvalidUtf8);
        counters.quarantine(QuarantineReason::InvalidUtf8);
        counters.quarantine(QuarantineReason::Oversized);
        let snap = counters.snapshot();
        assert_eq!(snap.ingested, 3);
        assert_eq!(snap.decode_errors, 3);
        assert_eq!(snap.quarantined_invalid_utf8, 2);
        assert_eq!(snap.quarantined_oversized, 1);
        assert_eq!(snap.quarantined(), 3);
        assert!(snap.is_conserved(), "all quarantined, none delivered");
    }

    #[test]
    fn conservation_law_detects_leaks() {
        let counters = Counters::new(1);
        counters.ingested.fetch_add(10, Ordering::Relaxed);
        counters.delivered.fetch_add(7, Ordering::Relaxed);
        counters.dropped.fetch_add(2, Ordering::Relaxed);
        assert!(!counters.snapshot().is_conserved(), "one alert leaked");
        counters.dropped.fetch_add(1, Ordering::Relaxed);
        assert!(counters.snapshot().is_conserved());
    }
}
