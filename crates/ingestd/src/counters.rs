//! Ingestion accounting: lock-free counters shared by every thread of
//! the daemon and published on the status socket.
//!
//! The counters obey one conservation law the chaos suite asserts
//! exactly: once all windows are closed and queues drained,
//!
//! ```text
//! ingested == delivered + dropped + quarantined
//! ```
//!
//! Every frame that enters the pipeline is `ingested`; it then either
//! reaches a closed window (`delivered`), is shed by overflow policy
//! or lost to a crashed worker (`dropped`), or is rejected at the
//! transport (`quarantined`, broken out per [`QuarantineReason`] with
//! [`Counters::decode_errors`] as the total). Nothing is ever
//! unaccounted for — that exactness is what makes fault injection
//! checkable.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

use crate::codec::QuarantineReason;

/// Live counters. All operations use relaxed ordering — these are
/// statistics, not synchronization.
#[derive(Debug, Default)]
pub struct Counters {
    /// Frames that entered the pipeline: alerts routed toward a shard
    /// (whether or not they survive overflow policy) plus quarantined
    /// lines. Control frames are not counted.
    pub ingested: AtomicU64,
    /// Alerts folded into a successfully closed window — the ones
    /// governance actually saw.
    pub delivered: AtomicU64,
    /// Alerts shed: queue overflow under
    /// [`crate::OverflowPolicy::Drop`], plus buffered alerts lost when
    /// a panicked worker was restarted.
    pub dropped: AtomicU64,
    /// Times a producer blocked on a full queue under
    /// [`crate::OverflowPolicy::Block`].
    pub backpressure_waits: AtomicU64,
    /// Ingress lines quarantined (total across all reasons).
    pub decode_errors: AtomicU64,
    /// Quarantined: not valid JSON (includes reset-truncated frames).
    pub quarantined_invalid_json: AtomicU64,
    /// Quarantined: not valid UTF-8.
    pub quarantined_invalid_utf8: AtomicU64,
    /// Quarantined: unknown or malformed control verb.
    pub quarantined_unknown_control: AtomicU64,
    /// Quarantined: valid JSON that is not an alert record.
    pub quarantined_invalid_alert: AtomicU64,
    /// Quarantined: line exceeded [`crate::codec::MAX_FRAME_LEN`].
    pub quarantined_oversized: AtomicU64,
    /// Quarantined: binary-ingress frame failed CRC/framing validation
    /// (terminal for its connection).
    pub quarantined_corrupt_frame: AtomicU64,
    /// Windows closed and merged so far.
    pub windows_closed: AtomicU64,
    /// Windows whose merged snapshot carried at least one degraded
    /// shard.
    pub degraded_windows: AtomicU64,
    /// Shard workers restarted by the supervisor after a panic.
    pub shard_restarts: AtomicU64,
    /// Latency of the most recent window close, in microseconds: from
    /// the coordinator issuing the close to the merged snapshot being
    /// published (includes every shard's detection pass).
    pub last_window_micros: AtomicU64,
    /// Per-shard packed enqueue/dequeue tallies: producers add
    /// `1 << 32` (high half) per enqueue, workers add `1` (low half)
    /// per dequeue, and the queue depth is read as the saturating
    /// difference of the halves — one atomic, so a racing reader can
    /// never observe an enqueue-without-dequeue ordering artifact.
    /// Read through [`Counters::queue_depth`]; the raw cell is public
    /// only for the producer/worker increments.
    pub queue_depths: Vec<AtomicU64>,
}

/// Producers add this per enqueue (the high half of the packed
/// per-shard queue gauge); workers add plain `1` per dequeue.
pub(crate) const QUEUE_ENQUEUED: u64 = 1 << 32;

impl Counters {
    /// Creates counters for `shards` shards.
    #[must_use]
    pub fn new(shards: usize) -> Self {
        Self {
            queue_depths: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            ..Self::default()
        }
    }

    /// Records one quarantined ingress line: the reason's counter, the
    /// [`decode_errors`](Self::decode_errors) total, and — because a
    /// quarantined frame still *entered* the pipeline —
    /// [`ingested`](Self::ingested), keeping the conservation law
    /// exact.
    pub fn quarantine(&self, reason: QuarantineReason) {
        self.ingested.fetch_add(1, Ordering::Relaxed);
        self.decode_errors.fetch_add(1, Ordering::Relaxed);
        self.quarantined_counter(reason)
            .fetch_add(1, Ordering::Relaxed);
    }

    /// The per-reason quarantine counter.
    #[must_use]
    pub fn quarantined_counter(&self, reason: QuarantineReason) -> &AtomicU64 {
        match reason {
            QuarantineReason::InvalidJson => &self.quarantined_invalid_json,
            QuarantineReason::InvalidUtf8 => &self.quarantined_invalid_utf8,
            QuarantineReason::UnknownControl => &self.quarantined_unknown_control,
            QuarantineReason::InvalidAlert => &self.quarantined_invalid_alert,
            QuarantineReason::Oversized => &self.quarantined_oversized,
            QuarantineReason::CorruptFrame => &self.quarantined_corrupt_frame,
        }
    }

    /// Current depth of `shard`'s queue: enqueued minus dequeued,
    /// saturating at zero. Both tallies live in one packed atomic, so
    /// the difference is taken from a single load — a mid-handoff race
    /// (worker consumed, producer not yet counted) reads as briefly
    /// zero, never as a garbage depth.
    #[must_use]
    pub fn queue_depth(&self, shard: usize) -> u64 {
        let packed = self.queue_depths[shard].load(Ordering::Relaxed);
        let enqueued = (packed >> 32) as u32;
        let dequeued = packed as u32;
        // Signed difference: a worker that counted its dequeue before
        // the producer counted the enqueue reads negative → clamp to 0.
        let depth = enqueued.wrapping_sub(dequeued) as i32;
        u64::from(depth.max(0).unsigned_abs())
    }

    /// A consistent-enough point-in-time copy for reporting.
    #[must_use]
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            ingested: self.ingested.load(Ordering::Relaxed),
            delivered: self.delivered.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            backpressure_waits: self.backpressure_waits.load(Ordering::Relaxed),
            decode_errors: self.decode_errors.load(Ordering::Relaxed),
            quarantined_invalid_json: self.quarantined_invalid_json.load(Ordering::Relaxed),
            quarantined_invalid_utf8: self.quarantined_invalid_utf8.load(Ordering::Relaxed),
            quarantined_unknown_control: self.quarantined_unknown_control.load(Ordering::Relaxed),
            quarantined_invalid_alert: self.quarantined_invalid_alert.load(Ordering::Relaxed),
            quarantined_oversized: self.quarantined_oversized.load(Ordering::Relaxed),
            quarantined_corrupt_frame: self.quarantined_corrupt_frame.load(Ordering::Relaxed),
            windows_closed: self.windows_closed.load(Ordering::Relaxed),
            degraded_windows: self.degraded_windows.load(Ordering::Relaxed),
            shard_restarts: self.shard_restarts.load(Ordering::Relaxed),
            last_window_micros: self.last_window_micros.load(Ordering::Relaxed),
            queue_depths: (0..self.queue_depths.len())
                .map(|shard| self.queue_depth(shard))
                .collect(),
        }
    }
}

/// Serializable point-in-time copy of [`Counters`] (see its fields for
/// semantics).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub struct CounterSnapshot {
    pub ingested: u64,
    pub delivered: u64,
    pub dropped: u64,
    pub backpressure_waits: u64,
    pub decode_errors: u64,
    pub quarantined_invalid_json: u64,
    pub quarantined_invalid_utf8: u64,
    pub quarantined_unknown_control: u64,
    pub quarantined_invalid_alert: u64,
    pub quarantined_oversized: u64,
    pub quarantined_corrupt_frame: u64,
    pub windows_closed: u64,
    pub degraded_windows: u64,
    pub shard_restarts: u64,
    pub last_window_micros: u64,
    pub queue_depths: Vec<u64>,
}

impl CounterSnapshot {
    /// Total quarantined lines (alias of
    /// [`decode_errors`](Self::decode_errors), named for the
    /// conservation law).
    #[must_use]
    pub fn quarantined(&self) -> u64 {
        self.decode_errors
    }

    /// Whether the conservation law `ingested == delivered + dropped +
    /// quarantined` holds for this snapshot. Only meaningful at a
    /// quiescent point (queues drained, windows closed).
    #[must_use]
    pub fn is_conserved(&self) -> bool {
        self.ingested == self.delivered + self.dropped + self.quarantined()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counts() {
        let counters = Counters::new(2);
        counters.ingested.fetch_add(5, Ordering::Relaxed);
        // Five enqueues, two dequeues: depth 3.
        counters.queue_depths[1].store(5 * QUEUE_ENQUEUED + 2, Ordering::Relaxed);
        let snap = counters.snapshot();
        assert_eq!(snap.ingested, 5);
        assert_eq!(snap.queue_depths, vec![0, 3]);
        let json = serde_json::to_string(&snap).unwrap();
        let back: CounterSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn queue_depth_clamps_the_handoff_race_to_zero() {
        // A worker can count its dequeue before the producer counts the
        // enqueue; the reader must see 0, never a wrapped garbage depth.
        let counters = Counters::new(1);
        counters.queue_depths[0].fetch_add(1, Ordering::Relaxed);
        assert_eq!(counters.queue_depth(0), 0);
        counters.queue_depths[0].fetch_add(QUEUE_ENQUEUED, Ordering::Relaxed);
        assert_eq!(counters.queue_depth(0), 0);
        counters.queue_depths[0].fetch_add(QUEUE_ENQUEUED, Ordering::Relaxed);
        assert_eq!(counters.queue_depth(0), 1);
    }

    #[test]
    fn quarantine_feeds_total_reason_and_ingested() {
        let counters = Counters::new(1);
        counters.quarantine(QuarantineReason::InvalidUtf8);
        counters.quarantine(QuarantineReason::InvalidUtf8);
        counters.quarantine(QuarantineReason::Oversized);
        let snap = counters.snapshot();
        assert_eq!(snap.ingested, 3);
        assert_eq!(snap.decode_errors, 3);
        assert_eq!(snap.quarantined_invalid_utf8, 2);
        assert_eq!(snap.quarantined_oversized, 1);
        assert_eq!(snap.quarantined(), 3);
        assert!(snap.is_conserved(), "all quarantined, none delivered");
    }

    #[test]
    fn conservation_law_detects_leaks() {
        let counters = Counters::new(1);
        counters.ingested.fetch_add(10, Ordering::Relaxed);
        counters.delivered.fetch_add(7, Ordering::Relaxed);
        counters.dropped.fetch_add(2, Ordering::Relaxed);
        assert!(!counters.snapshot().is_conserved(), "one alert leaked");
        counters.dropped.fetch_add(1, Ordering::Relaxed);
        assert!(counters.snapshot().is_conserved());
    }
}
