//! Shard worker: one thread, one streaming governor, one bounded
//! queue — supervised.
//!
//! The worker's drain loop runs inside `catch_unwind`: a panic (a
//! detector bug, or one injected by the chaos suite) never takes the
//! thread down. The supervisor restarts the loop in place on the same
//! queue, restores the governor from the checkpoint cloned after the
//! last successful window close, counts the buffered-but-unclosed
//! alerts as dropped, and marks the shard degraded so the next merged
//! snapshot says so. If the panic struck mid-close, a synthetic empty
//! window is closed on the restored checkpoint so the coordinator's
//! barrier still receives exactly one delta for that sequence number —
//! a crashing shard must never wedge the whole daemon.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, Sender, SyncSender};
use std::sync::Arc;

use alertops_core::{QoaVerdicts, StreamingGovernor, WindowDelta};
use alertops_model::Alert;

use crate::counters::Counters;
use crate::metrics::IngestdMetrics;

/// The panic message marker every chaos-injected worker panic carries.
/// Test harnesses silence expected panics by matching on it (e.g. via
/// `alertops_chaos::silence_panics_containing`).
pub const CHAOS_PANIC_MSG: &str = "chaos: injected worker panic";

/// Messages a shard worker consumes, in queue order. Because `Close`
/// travels through the same queue as alerts, a close observed by the
/// worker is guaranteed to come after every alert enqueued before it —
/// that ordering is what makes flush-driven windows deterministic. The
/// chaos messages ride the same queue for the same reason: the set of
/// alerts lost to an injected panic is exactly the alerts enqueued
/// between the last close and the panic message, nothing racy.
pub(crate) enum WorkerMsg {
    /// An alert routed to this shard.
    Alert(Box<Alert>),
    /// Close the current window and report the delta tagged with `seq`.
    Close {
        /// The coordinator's window sequence number, echoed back.
        seq: u64,
    },
    /// Drain barrier: ack once every message queued before this one
    /// has been consumed.
    Sync(SyncSender<()>),
    /// Chaos: panic at this queue position (`on_close: false`) or
    /// during the next window close, after detection has already
    /// mutated governor state (`on_close: true`).
    Panic {
        /// Defer the panic into the next `Close`.
        on_close: bool,
    },
    /// Fresh QoA verdicts from whichever coordinator runs the online
    /// model. Rides the ingest queue so ordering against `Close` is
    /// exact: verdicts pushed after close `N` apply to everything the
    /// shard governs from window `N + 1` on — the same cadence a
    /// local-mode governor gets by updating its own model at each
    /// window boundary.
    Qoa(QoaVerdicts),
    /// Chaos: park the worker. `entered` is acked once parked (the
    /// queue ahead of this message is fully drained by then); the
    /// worker then blocks until `resume` yields or disconnects.
    Stall {
        /// Acked when the worker parks.
        entered: SyncSender<()>,
        /// Unblocks the worker (a send, or dropping the sender).
        resume: Receiver<()>,
    },
}

/// One shard's reply to a window close.
pub(crate) struct ShardDelta {
    pub seq: u64,
    pub shard: usize,
    /// This shard lost alerts to a worker restart during the window.
    pub degraded: bool,
    pub delta: WindowDelta,
}

/// Everything that must survive a panic of the drain loop.
struct ShardState {
    governor: StreamingGovernor,
    /// The governor as of the last successful close — what a restart
    /// rehydrates from.
    checkpoint: StreamingGovernor,
    window: Vec<Alert>,
    /// A restart happened since the last close: the next delta is
    /// incomplete.
    degraded: bool,
    /// The close sequence in flight when a panic struck, if any; the
    /// supervisor owes the coordinator a delta for it.
    pending_close: Option<u64>,
    /// Armed by `WorkerMsg::Panic { on_close: true }`.
    poison_next_close: bool,
    /// The latest coordinator-pushed QoA verdicts. Kept outside the
    /// governor so a post-panic restore from `checkpoint` (taken at
    /// the last close, possibly *before* a verdict push) can re-apply
    /// them — a restart must not regress the shard's governance.
    qoa_verdicts: QoaVerdicts,
}

/// The worker loop. Buffers routed alerts; on `Close`, feeds the
/// buffered window through this shard's [`StreamingGovernor`] and
/// reports the [`ShardDelta`]. Panics in the drain loop are caught,
/// counted, and recovered from. Returns when the ingest queue closes.
pub(crate) fn run_worker(
    shard: usize,
    governor: StreamingGovernor,
    ingest: &Receiver<WorkerMsg>,
    deltas: &Sender<ShardDelta>,
    counters: &Arc<Counters>,
    metrics: Option<&IngestdMetrics>,
) {
    let mut state = ShardState {
        checkpoint: governor.clone(),
        governor,
        window: Vec::new(),
        degraded: false,
        pending_close: None,
        poison_next_close: false,
        qoa_verdicts: QoaVerdicts::default(),
    };
    loop {
        let finished = catch_unwind(AssertUnwindSafe(|| {
            drain(shard, &mut state, ingest, deltas, counters, metrics);
        }));
        match finished {
            Ok(()) => return, // queue closed: clean shutdown
            Err(_) => {
                counters.shard_restarts.fetch_add(1, Ordering::Relaxed);
                counters
                    .dropped
                    .fetch_add(state.window.len() as u64, Ordering::Relaxed);
                state.window.clear();
                state.governor = state.checkpoint.clone();
                state.governor.set_qoa_verdicts(state.qoa_verdicts.clone());
                state.degraded = true;
                state.poison_next_close = false;
                if let Some(seq) = state.pending_close.take() {
                    // The panic struck mid-close: the barrier still
                    // needs this shard's delta for `seq`. Close an
                    // empty window on the restored checkpoint — the
                    // shard contributes nothing this window, but the
                    // window *happened*.
                    if !close_window(shard, &mut state, seq, deltas, counters, metrics) {
                        return;
                    }
                }
            }
        }
    }
}

/// Closes the current window: sort, detect, checkpoint, report.
/// Returns `false` when the coordinator is gone (shutdown).
fn close_window(
    shard: usize,
    state: &mut ShardState,
    seq: u64,
    deltas: &Sender<ShardDelta>,
    counters: &Arc<Counters>,
    metrics: Option<&IngestdMetrics>,
) -> bool {
    // If a chaos panic interrupts the close, the span still records on
    // unwind — metrics observe the attempt, never alter recovery.
    let _span = metrics.map(|m| m.shard_close(shard).time());
    // Detection expects time-sorted windows; TCP ingress from
    // concurrent producers does not guarantee order.
    state.window.sort_by_key(|a| (a.raised_at(), a.id()));
    let poisoned = std::mem::take(&mut state.poison_next_close);
    let window = std::mem::take(&mut state.window);
    if poisoned {
        // After detection mutated the governor: recovery must come
        // from the checkpoint, not from "retrying" this state. The
        // window goes back into the buffer first so the supervisor
        // counts its alerts as dropped, exactly like any other panic
        // between closes.
        let _ = state.governor.ingest(&window, &[]);
        state.window = window;
        panic!("{CHAOS_PANIC_MSG} (shard {shard}, close {seq})");
    }
    let closed = window.len() as u64;
    let delta = state.governor.ingest_owned(window, &[]);
    counters.delivered.fetch_add(closed, Ordering::Relaxed);
    state.checkpoint = state.governor.clone();
    state.pending_close = None;
    deltas
        .send(ShardDelta {
            seq,
            shard,
            degraded: std::mem::take(&mut state.degraded),
            delta,
        })
        .is_ok()
}

/// The drain loop proper; every panic inside it is caught by the
/// supervisor in [`run_worker`].
fn drain(
    shard: usize,
    state: &mut ShardState,
    ingest: &Receiver<WorkerMsg>,
    deltas: &Sender<ShardDelta>,
    counters: &Arc<Counters>,
    metrics: Option<&IngestdMetrics>,
) {
    while let Ok(msg) = ingest.recv() {
        match msg {
            WorkerMsg::Alert(alert) => {
                // Dequeue tally: low half of the packed gauge (see
                // `Counters::queue_depths`).
                counters.queue_depths[shard].fetch_add(1, Ordering::Relaxed);
                state.window.push(*alert);
            }
            WorkerMsg::Close { seq } => {
                state.pending_close = Some(seq);
                if !close_window(shard, state, seq, deltas, counters, metrics) {
                    return; // coordinator gone: shutting down
                }
            }
            WorkerMsg::Sync(ack) => {
                let _ = ack.send(());
            }
            WorkerMsg::Qoa(verdicts) => {
                state.governor.set_qoa_verdicts(verdicts.clone());
                state.qoa_verdicts = verdicts;
            }
            WorkerMsg::Panic { on_close } => {
                if on_close {
                    state.poison_next_close = true;
                } else {
                    panic!("{CHAOS_PANIC_MSG} (shard {shard})");
                }
            }
            WorkerMsg::Stall { entered, resume } => {
                let _ = entered.send(());
                let _ = resume.recv();
            }
        }
    }
}
