//! Shard worker: one thread, one streaming governor, one bounded queue.

use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;

use alertops_core::{StreamingGovernor, WindowDelta};
use alertops_model::Alert;

use crate::counters::Counters;

/// Messages a shard worker consumes, in queue order. Because `Close`
/// travels through the same queue as alerts, a close observed by the
/// worker is guaranteed to come after every alert enqueued before it —
/// that ordering is what makes flush-driven windows deterministic.
pub(crate) enum WorkerMsg {
    /// An alert routed to this shard.
    Alert(Box<Alert>),
    /// Close the current window and report the delta tagged with `seq`.
    Close {
        /// The coordinator's window sequence number, echoed back.
        seq: u64,
    },
}

/// One shard's reply to a window close.
pub(crate) struct ShardDelta {
    pub seq: u64,
    pub delta: WindowDelta,
}

/// The worker loop. Buffers routed alerts; on `Close`, feeds the
/// buffered window through this shard's [`StreamingGovernor`] and
/// reports the [`WindowDelta`]. Returns when the ingest queue closes.
pub(crate) fn run_worker(
    shard: usize,
    mut governor: StreamingGovernor,
    ingest: &Receiver<WorkerMsg>,
    deltas: &Sender<ShardDelta>,
    counters: &Arc<Counters>,
) {
    let mut window: Vec<Alert> = Vec::new();
    while let Ok(msg) = ingest.recv() {
        match msg {
            WorkerMsg::Alert(alert) => {
                counters.queue_depths[shard].fetch_sub(1, Ordering::Relaxed);
                window.push(*alert);
            }
            WorkerMsg::Close { seq } => {
                // Detection expects time-sorted windows; TCP ingress
                // from concurrent producers does not guarantee order.
                window.sort_by_key(|a| (a.raised_at(), a.id()));
                let delta = governor.ingest(&window, &[]);
                window.clear();
                if deltas.send(ShardDelta { seq, delta }).is_err() {
                    return; // coordinator gone: shutting down
                }
            }
        }
    }
}
