//! `alertops-ingestd`: a sharded, backpressured alert-ingestion daemon
//! serving the streaming governor.
//!
//! The DSN'22 study's governance loop ([`alertops_core::AlertGovernor`])
//! is batch-shaped; [`alertops_core::StreamingGovernor`] makes it
//! incremental; this crate makes it a *service*. The daemon accepts
//! NDJSON-encoded [`alertops_model::Alert`] records over TCP (and, in
//! the CLI, stdin), hash-shards them by [`alertops_model::StrategyId`]
//! — so all evidence for one strategy always lands on one shard — and
//! runs one [`alertops_core::StreamingGovernor`] per shard on its own
//! worker thread behind a bounded queue with explicit backpressure and
//! drop accounting.
//!
//! A coordinator thread closes the time window on a tick (or on an
//! explicit `{"ctrl":"flush"}` frame), barriers on one
//! [`alertops_core::WindowDelta`] per shard, and merges them into a
//! global [`alertops_core::GovernanceSnapshot`]: newly flagged
//! findings, resolved flags, exact global storm state (reconstructed
//! from summed per-shard region-hour histograms), and the triage list.
//! The latest snapshot plus ingestion counters are served as one JSON
//! document per connection on a plaintext status socket.
//!
//! ```text
//!                    ┌────────────┐   bounded    ┌──────────────────┐
//!  TCP/stdin ──────▶ │   router    │ ──queues──▶ │ worker 0..N-1     │
//!  NDJSON alerts     │ shard by    │             │ StreamingGovernor │
//!                    │ StrategyId  │             └────────┬─────────┘
//!                    └─────┬──────┘                WindowDelta per tick
//!                          │ flush                        │
//!                          ▼                              ▼
//!                    ┌────────────┐   merge    ┌────────────────────┐
//!                    │ coordinator │ ◀─────────│ barrier: one delta │
//!                    └─────┬──────┘            │ per shard per seq  │
//!                          ▼                   └────────────────────┘
//!                 GovernanceSnapshot ──▶ status socket (JSON)
//! ```
//!
//! Everything is `std`-only: threads, `mpsc::sync_channel`, and plain
//! TCP sockets.
//!
//! The daemon is built to be chaos-tested: shard workers run under a
//! supervisor that catches panics, restarts the worker on the same
//! queue, and rehydrates its governor from the checkpoint taken at the
//! last successful window close (the affected window is published with
//! the shard listed in `GovernanceSnapshot::degraded`); malformed
//! ingress is quarantined per [`QuarantineReason`] with exact
//! accounting (`ingested == delivered + dropped + quarantined`); and
//! with [`IngestdConfig::chaos`] enabled the wire accepts fault
//! injection frames (worker panics, stalls, resumes) plus a
//! `{"ctrl":"sync"}` drain barrier so fault timing is deterministic.
//! See `tests/chaos_ingestd.rs` at the workspace root for the scenario
//! matrix.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod codec;
pub mod config;
mod coordinator;
pub mod counters;
mod daemon;
pub mod journal;
pub mod metrics;
pub mod shard;
pub mod status;
mod worker;

pub use codec::{
    Frame, FrameDecoder, FrameError, QuarantineReason, FLUSH_FRAME, MAX_FRAME_LEN, SHUTDOWN_FRAME,
    SYNC_FRAME,
};
pub use config::{IngestdConfig, OverflowPolicy};
pub use coordinator::ClosedWindow;
pub use counters::{CounterSnapshot, Counters};
pub use daemon::{Ingestd, IngestdHandle};
pub use journal::WindowJournal;
pub use metrics::{render_exposition, IngestdMetrics};
pub use shard::{shard_catalog, shard_of};
pub use status::{StatusReport, StatusRequest};
pub use worker::CHAOS_PANIC_MSG;

pub use alertops_wire::WireFormat;
