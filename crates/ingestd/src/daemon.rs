//! Daemon assembly: threads, queues, sockets, and the public handle.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::{io, thread};

use alertops_core::{GovernanceSnapshot, StreamingGovernor};
use alertops_model::Alert;

use crate::codec::{encode_flush_ack, encode_shutdown_ack, parse_frame, Frame, FrameError};
use crate::config::{IngestdConfig, OverflowPolicy};
use crate::coordinator::{run_coordinator, CoordMsg};
use crate::counters::{CounterSnapshot, Counters};
use crate::shard::shard_of;
use crate::status::StatusReport;
use crate::worker::{run_worker, WorkerMsg};

/// Constructor namespace for the daemon; see [`Ingestd::spawn`].
#[derive(Debug)]
pub struct Ingestd;

/// Raised-and-waited shutdown request flag.
#[derive(Debug, Default)]
struct ShutdownSignal {
    requested: Mutex<bool>,
    condvar: Condvar,
}

impl ShutdownSignal {
    fn request(&self) {
        let mut requested = self.requested.lock().expect("shutdown lock poisoned");
        *requested = true;
        self.condvar.notify_all();
    }

    fn wait(&self) {
        let mut requested = self.requested.lock().expect("shutdown lock poisoned");
        while !*requested {
            requested = self
                .condvar
                .wait(requested)
                .expect("shutdown lock poisoned");
        }
    }
}

/// Shared ingress state: everything a connection needs to route frames.
#[derive(Debug)]
struct Router {
    shard_txs: Vec<SyncSender<WorkerMsg>>,
    coord_tx: Sender<CoordMsg>,
    counters: Arc<Counters>,
    overflow: OverflowPolicy,
    shutdown: Arc<ShutdownSignal>,
}

impl Router {
    /// Routes one alert to its strategy's shard, applying the overflow
    /// policy when the bounded queue is full.
    fn route(&self, alert: Box<Alert>) {
        let shard = shard_of(alert.strategy(), self.shard_txs.len());
        let queue_depth = &self.counters.queue_depths[shard];
        match self.shard_txs[shard].try_send(WorkerMsg::Alert(alert)) {
            Ok(()) => {
                queue_depth.fetch_add(1, Ordering::Relaxed);
                self.counters.ingested.fetch_add(1, Ordering::Relaxed);
            }
            Err(TrySendError::Full(msg)) => match self.overflow {
                OverflowPolicy::Block => {
                    self.counters
                        .backpressure_waits
                        .fetch_add(1, Ordering::Relaxed);
                    if self.shard_txs[shard].send(msg).is_ok() {
                        queue_depth.fetch_add(1, Ordering::Relaxed);
                        self.counters.ingested.fetch_add(1, Ordering::Relaxed);
                    } else {
                        self.counters.dropped.fetch_add(1, Ordering::Relaxed);
                    }
                }
                OverflowPolicy::Drop => {
                    self.counters.dropped.fetch_add(1, Ordering::Relaxed);
                }
            },
            Err(TrySendError::Disconnected(_)) => {
                self.counters.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Closes the window on every shard and returns the merged
    /// snapshot, or `None` if the coordinator is gone (shutdown race).
    fn flush(&self) -> Option<GovernanceSnapshot> {
        let (ack_tx, ack_rx) = mpsc::sync_channel(1);
        self.coord_tx
            .send(CoordMsg::CloseNow { ack: Some(ack_tx) })
            .ok()?;
        ack_rx.recv().ok()
    }
}

/// A running daemon. Dropping the handle without calling
/// [`IngestdHandle::shutdown`] leaves threads running detached.
#[derive(Debug)]
pub struct IngestdHandle {
    router: Arc<Router>,
    counters: Arc<Counters>,
    snapshot: Arc<RwLock<Option<GovernanceSnapshot>>>,
    running: Arc<AtomicBool>,
    shutdown: Arc<ShutdownSignal>,
    ingest_addr: Option<SocketAddr>,
    status_addr: Option<SocketAddr>,
    threads: Vec<JoinHandle<()>>,
}

impl Ingestd {
    /// Starts the daemon: workers, coordinator, and (if configured)
    /// the ingress and status listeners. `make_governor(shard, shards)`
    /// is called once per shard to build that shard's streaming
    /// governor — typically over [`crate::shard_catalog`] of a shared
    /// strategy catalog.
    ///
    /// # Errors
    ///
    /// Config validation failures surface as
    /// [`io::ErrorKind::InvalidInput`]; socket binding failures pass
    /// through.
    pub fn spawn(
        config: &IngestdConfig,
        mut make_governor: impl FnMut(usize, usize) -> StreamingGovernor,
    ) -> io::Result<IngestdHandle> {
        config
            .validate()
            .map_err(|msg| io::Error::new(io::ErrorKind::InvalidInput, msg))?;

        let counters = Arc::new(Counters::new(config.shards));
        let snapshot: Arc<RwLock<Option<GovernanceSnapshot>>> = Arc::new(RwLock::new(None));
        let running = Arc::new(AtomicBool::new(true));
        let shutdown = Arc::new(ShutdownSignal::default());
        let mut threads = Vec::new();

        // Workers, each behind its bounded queue.
        let (delta_tx, delta_rx) = mpsc::channel();
        let mut shard_txs = Vec::with_capacity(config.shards);
        for shard in 0..config.shards {
            let (tx, rx) = mpsc::sync_channel::<WorkerMsg>(config.queue_capacity);
            shard_txs.push(tx);
            let governor = make_governor(shard, config.shards);
            let deltas = delta_tx.clone();
            let worker_counters = Arc::clone(&counters);
            threads.push(
                thread::Builder::new()
                    .name(format!("ingestd-worker-{shard}"))
                    .spawn(move || run_worker(shard, governor, &rx, &deltas, &worker_counters))?,
            );
        }
        drop(delta_tx);

        // Coordinator.
        let (coord_tx, coord_rx) = mpsc::channel::<CoordMsg>();
        {
            let shard_txs = shard_txs.clone();
            let storm = config.streaming.storm;
            let tick = config.tick;
            let snapshot = Arc::clone(&snapshot);
            let coord_counters = Arc::clone(&counters);
            threads.push(
                thread::Builder::new()
                    .name("ingestd-coordinator".to_owned())
                    .spawn(move || {
                        run_coordinator(
                            &coord_rx,
                            &shard_txs,
                            &delta_rx,
                            tick,
                            &storm,
                            &snapshot,
                            &coord_counters,
                        );
                    })?,
            );
        }

        let router = Arc::new(Router {
            shard_txs,
            coord_tx,
            counters: Arc::clone(&counters),
            overflow: config.overflow,
            shutdown: Arc::clone(&shutdown),
        });

        // Ingress listener.
        let ingest_addr = match &config.listen {
            Some(addr) => {
                let listener = TcpListener::bind(addr.as_str())?;
                let local = listener.local_addr()?;
                let router = Arc::clone(&router);
                let running = Arc::clone(&running);
                threads.push(
                    thread::Builder::new()
                        .name("ingestd-ingress".to_owned())
                        .spawn(move || accept_ingress(&listener, &running, &router))?,
                );
                Some(local)
            }
            None => None,
        };

        // Status listener.
        let status_addr = match &config.status {
            Some(addr) => {
                let listener = TcpListener::bind(addr.as_str())?;
                let local = listener.local_addr()?;
                let running = Arc::clone(&running);
                let counters = Arc::clone(&counters);
                let snapshot = Arc::clone(&snapshot);
                threads.push(
                    thread::Builder::new()
                        .name("ingestd-status".to_owned())
                        .spawn(move || accept_status(&listener, &running, &counters, &snapshot))?,
                );
                Some(local)
            }
            None => None,
        };

        Ok(IngestdHandle {
            router,
            counters,
            snapshot,
            running,
            shutdown,
            ingest_addr,
            status_addr,
            threads,
        })
    }
}

impl IngestdHandle {
    /// The bound ingress address, if a listener was configured.
    #[must_use]
    pub fn ingest_addr(&self) -> Option<SocketAddr> {
        self.ingest_addr
    }

    /// The bound status address, if a listener was configured.
    #[must_use]
    pub fn status_addr(&self) -> Option<SocketAddr> {
        self.status_addr
    }

    /// Routes one alert directly (no socket); used by the stdin path
    /// and benches. Applies the same sharding and overflow policy as
    /// TCP ingress.
    pub fn route(&self, alert: Alert) {
        self.router.route(Box::new(alert));
    }

    /// Closes the current window on every shard and returns the merged
    /// snapshot (`None` only during shutdown races).
    pub fn flush(&self) -> Option<GovernanceSnapshot> {
        self.router.flush()
    }

    /// The most recently merged snapshot, if any window closed yet.
    #[must_use]
    pub fn latest_snapshot(&self) -> Option<GovernanceSnapshot> {
        self.snapshot
            .read()
            .expect("snapshot lock poisoned")
            .clone()
    }

    /// Point-in-time counter values.
    #[must_use]
    pub fn counters(&self) -> CounterSnapshot {
        self.counters.snapshot()
    }

    /// Blocks until some connection sends `{"ctrl":"shutdown"}` (or
    /// [`IngestdHandle::request_shutdown`] is called).
    pub fn wait_for_shutdown_request(&self) {
        self.shutdown.wait();
    }

    /// Raises the shutdown request flag (as the shutdown control frame
    /// does), unblocking [`IngestdHandle::wait_for_shutdown_request`].
    pub fn request_shutdown(&self) {
        self.shutdown.request();
    }

    /// Stops the daemon: coordinator first, then listeners, then
    /// workers; joins every thread. Open ingress connections must be
    /// closed by their peers for their detached handler threads to
    /// exit, but this method does not wait for those.
    pub fn shutdown(self) {
        self.shutdown.request();
        self.running.store(false, Ordering::Release);

        // Stop the coordinator (acked so no close is mid-flight).
        let (ack_tx, ack_rx) = mpsc::sync_channel(1);
        if self
            .router
            .coord_tx
            .send(CoordMsg::Shutdown { ack: ack_tx })
            .is_ok()
        {
            let _ = ack_rx.recv();
        }

        // Wake the accept loops so they observe `running == false`.
        for addr in [self.ingest_addr, self.status_addr].into_iter().flatten() {
            let _ = TcpStream::connect(addr);
        }

        // Workers exit once every sender into their queues is gone:
        // the coordinator's clones died with it, and the router's die
        // here (accept loops drop their clones as they exit).
        drop(self.router);

        for handle in self.threads {
            let _ = handle.join();
        }
    }
}

/// Ingress accept loop: one detached handler thread per connection.
fn accept_ingress(listener: &TcpListener, running: &Arc<AtomicBool>, router: &Arc<Router>) {
    for stream in listener.incoming() {
        if !running.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let router = Arc::clone(router);
        let _ = thread::Builder::new()
            .name("ingestd-conn".to_owned())
            .spawn(move || serve_ingress(&stream, &router));
    }
}

/// One ingress connection: NDJSON frames in, flush/shutdown acks out.
fn serve_ingress(stream: &TcpStream, router: &Arc<Router>) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut writer = stream;
    for line in BufReader::new(read_half).lines() {
        let Ok(line) = line else { break };
        match parse_frame(&line) {
            Ok(Frame::Alert(alert)) => router.route(alert),
            Ok(Frame::Flush) => {
                if let Some(snapshot) = router.flush() {
                    let ack = encode_flush_ack(snapshot.window_index, snapshot.alert_count);
                    if writeln!(writer, "{ack}").is_err() {
                        break;
                    }
                }
            }
            Ok(Frame::Shutdown) => {
                let _ = writeln!(writer, "{}", encode_shutdown_ack());
                router.shutdown.request();
                break;
            }
            Err(FrameError::Empty) => {}
            Err(FrameError::Malformed(_)) => {
                router
                    .counters
                    .decode_errors
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Status accept loop: serve the JSON document, close, repeat.
fn accept_status(
    listener: &TcpListener,
    running: &Arc<AtomicBool>,
    counters: &Arc<Counters>,
    snapshot: &Arc<RwLock<Option<GovernanceSnapshot>>>,
) {
    for stream in listener.incoming() {
        if !running.load(Ordering::Acquire) {
            break;
        }
        let Ok(mut stream) = stream else { continue };
        let report = StatusReport {
            counters: counters.snapshot(),
            snapshot: snapshot.read().expect("snapshot lock poisoned").clone(),
        };
        let _ = writeln!(stream, "{}", report.to_json());
    }
}
