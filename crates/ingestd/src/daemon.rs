//! Daemon assembly: threads, queues, sockets, and the public handle.
//!
//! Failure stance: the daemon assumes its own threads can die and its
//! peers can misbehave. Shared locks recover from poisoning instead of
//! cascading panics (`unwrap_or_else(PoisonError::into_inner)` —
//! counters and snapshots are monotonic data, so observing a value
//! written just before a panic is safe); ingress framing quarantines
//! malformed bytes instead of trusting line iterators; and shard
//! workers are supervised (see [`crate::worker`]'s module docs).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;
use std::{io, thread};

use alertops_core::{
    EmergingMode, GovernanceSnapshot, GovernorMetrics, OnlineQoaModel, QoaMode, QoaVerdicts,
    StreamingGovernor,
};
use alertops_model::{Alert, QoaLabel};
use alertops_react::EmergingAlertDetector;
use alertops_wire::{AckFrame, ChaosCmd, WireDecoder, WireEncoder, WireError, WireFormat};

use crate::codec::{
    encode_flush_ack, encode_shutdown_ack, encode_stall_ack, encode_sync_ack, Frame, FrameDecoder,
    FrameError, QuarantineReason,
};
use crate::config::{IngestdConfig, OverflowPolicy};
use crate::coordinator::{run_coordinator, ClosedWindow, CoordMsg};
use crate::counters::{CounterSnapshot, Counters, QUEUE_ENQUEUED};
use crate::journal::WindowJournal;
use crate::metrics::{render_exposition, IngestdMetrics};
use crate::shard::shard_of;
use crate::status::{StatusReport, StatusRequest};
use crate::worker::{run_worker, WorkerMsg};

/// How long a status connection may stay silent before it is treated
/// as a legacy bare connection and served the default status document.
const STATUS_REQUEST_TIMEOUT: Duration = Duration::from_millis(100);

/// Constructor namespace for the daemon; see [`Ingestd::spawn`].
#[derive(Debug)]
pub struct Ingestd;

/// Raised-and-waited shutdown request flag.
#[derive(Debug, Default)]
struct ShutdownSignal {
    requested: Mutex<bool>,
    condvar: Condvar,
}

impl ShutdownSignal {
    fn request(&self) {
        let mut requested = self.requested.lock().unwrap_or_else(|e| e.into_inner());
        *requested = true;
        self.condvar.notify_all();
    }

    fn wait(&self) {
        let mut requested = self.requested.lock().unwrap_or_else(|e| e.into_inner());
        while !*requested {
            requested = self
                .condvar
                .wait(requested)
                .unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Shared ingress state: everything a connection needs to route frames.
#[derive(Debug)]
struct Router {
    shard_txs: Vec<SyncSender<WorkerMsg>>,
    coord_tx: Sender<CoordMsg>,
    counters: Arc<Counters>,
    overflow: OverflowPolicy,
    chaos: bool,
    /// One slot per shard holding the resume sender of an in-flight
    /// stall (see [`Router::stall`]).
    resume_slots: Vec<Mutex<Option<Sender<()>>>>,
    shutdown: Arc<ShutdownSignal>,
    metrics: Option<Arc<IngestdMetrics>>,
    /// Write-ahead journal, recorded before any enqueue.
    journal: Option<Arc<dyn WindowJournal>>,
    /// Ingress wire format every connection speaks.
    wire: WireFormat,
}

impl Router {
    /// Routes one alert to its strategy's shard, applying the overflow
    /// policy when the bounded queue is full. Every alert entering
    /// here counts as ingested — including ones the overflow policy
    /// then sheds — so `ingested == delivered + dropped + quarantined`
    /// stays exact.
    fn route(&self, alert: Box<Alert>) {
        if let Some(journal) = &self.journal {
            // Write-ahead: journaled before the alert can be in any
            // queue, so a crash never holds an unjournaled alert.
            // Recorded even if the overflow policy then sheds it —
            // under `Drop`, replay may resurrect shed alerts, which is
            // the durable log being *more* complete than the live run.
            journal.record(&alert);
        }
        self.counters.ingested.fetch_add(1, Ordering::Relaxed);
        let shard = shard_of(alert.strategy(), self.shard_txs.len());
        // Enqueue tally: high half of the packed gauge (see
        // `Counters::queue_depths`).
        let queue_depth = &self.counters.queue_depths[shard];
        match self.shard_txs[shard].try_send(WorkerMsg::Alert(alert)) {
            Ok(()) => {
                queue_depth.fetch_add(QUEUE_ENQUEUED, Ordering::Relaxed);
            }
            Err(TrySendError::Full(msg)) => match self.overflow {
                OverflowPolicy::Block => {
                    self.counters
                        .backpressure_waits
                        .fetch_add(1, Ordering::Relaxed);
                    if self.shard_txs[shard].send(msg).is_ok() {
                        queue_depth.fetch_add(QUEUE_ENQUEUED, Ordering::Relaxed);
                    } else {
                        self.counters.dropped.fetch_add(1, Ordering::Relaxed);
                    }
                }
                OverflowPolicy::Drop => {
                    self.counters.dropped.fetch_add(1, Ordering::Relaxed);
                }
            },
            Err(TrySendError::Disconnected(_)) => {
                self.counters.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Closes the window on every shard and returns the close result,
    /// or `None` if the coordinator is gone (shutdown race). `labels`
    /// is the window's OCE feedback for the online QoA model (empty
    /// when the caller has none).
    fn flush(&self, labels: Vec<QoaLabel>) -> Option<ClosedWindow> {
        let (ack_tx, ack_rx) = mpsc::sync_channel(1);
        self.coord_tx
            .send(CoordMsg::CloseNow {
                ack: Some(ack_tx),
                labels,
            })
            .ok()?;
        ack_rx.recv().ok()
    }

    /// Pushes QoA verdicts down every shard queue — the cluster
    /// coordinator's lever when this daemon runs the deferred node
    /// role and the model lives a level up.
    fn push_qoa_verdicts(&self, verdicts: &QoaVerdicts) {
        for tx in &self.shard_txs {
            let _ = tx.send(WorkerMsg::Qoa(verdicts.clone()));
        }
    }

    /// Drain barrier: returns once every message enqueued on any shard
    /// before this call has been consumed by its worker. (Blocks
    /// indefinitely if a shard is stalled — resume first.)
    fn sync(&self) {
        let (ack_tx, ack_rx) = mpsc::sync_channel(self.shard_txs.len());
        let mut expected = 0;
        for tx in &self.shard_txs {
            if tx.send(WorkerMsg::Sync(ack_tx.clone())).is_ok() {
                expected += 1;
            }
        }
        drop(ack_tx);
        for _ in 0..expected {
            if ack_rx.recv().is_err() {
                break;
            }
        }
    }

    /// Enqueues a chaos panic for `shard` (a later queue position, or
    /// its next window close). No-op for out-of-range shards.
    fn inject_panic(&self, shard: usize, on_close: bool) {
        if let Some(tx) = self.shard_txs.get(shard) {
            let _ = tx.send(WorkerMsg::Panic { on_close });
        }
    }

    /// Parks `shard`'s worker, returning only once it is parked (by
    /// queue order, everything enqueued before this call has then been
    /// consumed). A stall replacing an unresumed earlier stall drops
    /// the old resume sender, which resumes the earlier parked state.
    fn stall(&self, shard: usize) {
        let Some(tx) = self.shard_txs.get(shard) else {
            return;
        };
        let (entered_tx, entered_rx) = mpsc::sync_channel(1);
        let (resume_tx, resume_rx) = mpsc::channel();
        *self.resume_slots[shard]
            .lock()
            .unwrap_or_else(|e| e.into_inner()) = Some(resume_tx);
        if tx
            .send(WorkerMsg::Stall {
                entered: entered_tx,
                resume: resume_rx,
            })
            .is_ok()
        {
            let _ = entered_rx.recv();
        }
    }

    /// Unparks `shard`'s stalled worker. No-op if it is not stalled.
    fn resume(&self, shard: usize) {
        let Some(slot) = self.resume_slots.get(shard) else {
            return;
        };
        if let Some(tx) = slot.lock().unwrap_or_else(|e| e.into_inner()).take() {
            let _ = tx.send(());
        }
    }
}

/// A running daemon. Dropping the handle without calling
/// [`IngestdHandle::shutdown`] leaves threads running detached.
#[derive(Debug)]
pub struct IngestdHandle {
    router: Arc<Router>,
    counters: Arc<Counters>,
    snapshot: Arc<RwLock<Option<GovernanceSnapshot>>>,
    running: Arc<AtomicBool>,
    shutdown: Arc<ShutdownSignal>,
    metrics: Option<Arc<IngestdMetrics>>,
    ingest_addr: Option<SocketAddr>,
    status_addr: Option<SocketAddr>,
    threads: Vec<JoinHandle<()>>,
}

impl Ingestd {
    /// Starts the daemon: workers, coordinator, and (if configured)
    /// the ingress and status listeners. `make_governor(shard, shards)`
    /// is called once per shard to build that shard's streaming
    /// governor — typically over [`crate::shard_catalog`] of a shared
    /// strategy catalog.
    ///
    /// # Errors
    ///
    /// Config validation failures surface as
    /// [`io::ErrorKind::InvalidInput`]; socket binding failures pass
    /// through.
    pub fn spawn(
        config: &IngestdConfig,
        make_governor: impl FnMut(usize, usize) -> StreamingGovernor,
    ) -> io::Result<IngestdHandle> {
        Self::spawn_with_journal(config, make_governor, None)
    }

    /// [`Ingestd::spawn`] with a write-ahead journal attached: the
    /// router records every accepted alert before enqueueing it and
    /// the coordinator reports each window close — see
    /// [`crate::journal`] for the durability contract. The daemon
    /// never reads the journal back; replay is the *caller's* startup
    /// move (load the log, re-route the retained windows, flush at
    /// each recorded boundary).
    ///
    /// # Errors
    ///
    /// As [`Ingestd::spawn`].
    pub fn spawn_with_journal(
        config: &IngestdConfig,
        mut make_governor: impl FnMut(usize, usize) -> StreamingGovernor,
        journal: Option<Arc<dyn WindowJournal>>,
    ) -> io::Result<IngestdHandle> {
        config
            .validate()
            .map_err(|msg| io::Error::new(io::ErrorKind::InvalidInput, msg))?;

        let counters = Arc::new(Counters::new(config.shards));
        let snapshot: Arc<RwLock<Option<GovernanceSnapshot>>> = Arc::new(RwLock::new(None));
        let running = Arc::new(AtomicBool::new(true));
        let shutdown = Arc::new(ShutdownSignal::default());
        let metrics = config
            .metrics
            .then(|| Arc::new(IngestdMetrics::new(config.shards)));
        let mut threads = Vec::new();

        // Workers, each behind its bounded queue.
        let (delta_tx, delta_rx) = mpsc::channel();
        let mut shard_txs = Vec::with_capacity(config.shards);
        for shard in 0..config.shards {
            let (tx, rx) = mpsc::sync_channel::<WorkerMsg>(config.queue_capacity);
            shard_txs.push(tx);
            let mut governor = make_governor(shard, config.shards);
            // Shard governors never run AO-LDA themselves — the
            // coordinator owns the single sequential pass, so shards
            // either forward window documents or keep the channel off,
            // matching the daemon's configuration regardless of how the
            // caller built the governor. This is what keeps N-shard
            // emerging output byte-identical to 1-shard.
            governor.set_emerging_mode(match config.streaming.emerging.mode {
                EmergingMode::Off => EmergingMode::Off,
                EmergingMode::Forward | EmergingMode::Local => EmergingMode::Forward,
            });
            // Same rule for the QoA channel: the online model's
            // sequential partial_fit belongs to the (daemon or
            // cluster) coordinator; shards only forward feature
            // samples and apply pushed verdicts.
            governor.set_qoa_mode(match config.streaming.qoa.mode {
                QoaMode::Off => QoaMode::Off,
                QoaMode::Forward | QoaMode::Local => QoaMode::Forward,
            });
            if let Some(metrics) = &metrics {
                // Shards share detect/react series: the registry hands
                // every shard the same aggregate instruments.
                governor = governor.with_metrics(GovernorMetrics::register(metrics.registry()));
            }
            let deltas = delta_tx.clone();
            let worker_counters = Arc::clone(&counters);
            let worker_metrics = metrics.clone();
            threads.push(
                thread::Builder::new()
                    .name(format!("ingestd-worker-{shard}"))
                    .spawn(move || {
                        run_worker(
                            shard,
                            governor,
                            &rx,
                            &deltas,
                            &worker_counters,
                            worker_metrics.as_deref(),
                        );
                    })?,
            );
        }
        drop(delta_tx);

        // Coordinator.
        let (coord_tx, coord_rx) = mpsc::channel::<CoordMsg>();
        {
            let shard_txs = shard_txs.clone();
            let storm = config.streaming.storm;
            let tick = config.tick;
            // The coordinator owns the one emerging-channel detector;
            // it runs after every merge, metrics or not — unless this
            // daemon is a cluster node (`defer_emerging`), in which
            // case the pass belongs to the cluster coordinator and the
            // merged documents ride out in the published delta.
            let emerging = (config.streaming.emerging.mode != EmergingMode::Off
                && !config.defer_emerging)
                .then(|| EmergingAlertDetector::new(config.streaming.emerging.config.clone()));
            // Likewise the one online QoA model — unless a cluster
            // coordinator owns it (`defer_qoa`).
            let qoa = (config.streaming.qoa.mode != QoaMode::Off && !config.defer_qoa)
                .then(|| OnlineQoaModel::new(config.streaming.qoa.config));
            let snapshot = Arc::clone(&snapshot);
            let coord_counters = Arc::clone(&counters);
            let coord_metrics = metrics.clone();
            let coord_journal = journal.clone();
            threads.push(
                thread::Builder::new()
                    .name("ingestd-coordinator".to_owned())
                    .spawn(move || {
                        run_coordinator(
                            &coord_rx,
                            &shard_txs,
                            &delta_rx,
                            tick,
                            &storm,
                            emerging,
                            qoa,
                            coord_journal,
                            &snapshot,
                            &coord_counters,
                            coord_metrics.as_deref(),
                        );
                    })?,
            );
        }

        let resume_slots = (0..config.shards).map(|_| Mutex::new(None)).collect();
        let router = Arc::new(Router {
            shard_txs,
            coord_tx,
            counters: Arc::clone(&counters),
            overflow: config.overflow,
            chaos: config.chaos,
            resume_slots,
            shutdown: Arc::clone(&shutdown),
            metrics: metrics.clone(),
            journal,
            wire: config.wire,
        });

        // Ingress listener.
        let ingest_addr = match &config.listen {
            Some(addr) => {
                let listener = TcpListener::bind(addr.as_str())?;
                let local = listener.local_addr()?;
                let router = Arc::clone(&router);
                let running = Arc::clone(&running);
                threads.push(
                    thread::Builder::new()
                        .name("ingestd-ingress".to_owned())
                        .spawn(move || accept_ingress(&listener, &running, &router))?,
                );
                Some(local)
            }
            None => None,
        };

        // Status listener.
        let status_addr = match &config.status {
            Some(addr) => {
                let listener = TcpListener::bind(addr.as_str())?;
                let local = listener.local_addr()?;
                let running = Arc::clone(&running);
                let counters = Arc::clone(&counters);
                let snapshot = Arc::clone(&snapshot);
                let status_metrics = metrics.clone();
                threads.push(
                    thread::Builder::new()
                        .name("ingestd-status".to_owned())
                        .spawn(move || {
                            accept_status(
                                &listener,
                                &running,
                                &counters,
                                &snapshot,
                                &status_metrics,
                            );
                        })?,
                );
                Some(local)
            }
            None => None,
        };

        Ok(IngestdHandle {
            router,
            counters,
            snapshot,
            running,
            shutdown,
            metrics,
            ingest_addr,
            status_addr,
            threads,
        })
    }
}

impl IngestdHandle {
    /// The bound ingress address, if a listener was configured.
    #[must_use]
    pub fn ingest_addr(&self) -> Option<SocketAddr> {
        self.ingest_addr
    }

    /// The bound status address, if a listener was configured.
    #[must_use]
    pub fn status_addr(&self) -> Option<SocketAddr> {
        self.status_addr
    }

    /// Routes one alert directly (no socket); used by the stdin path
    /// and benches. Applies the same sharding and overflow policy as
    /// TCP ingress.
    pub fn route(&self, alert: Alert) {
        self.router.route(Box::new(alert));
    }

    /// Closes the current window on every shard and returns the merged
    /// snapshot (`None` only during shutdown races).
    pub fn flush(&self) -> Option<GovernanceSnapshot> {
        self.router.flush(Vec::new()).map(|closed| closed.snapshot)
    }

    /// [`flush`](Self::flush) with the window's OCE feedback labels:
    /// the coordinator joins them with the merged per-strategy feature
    /// samples and updates the online QoA model (standalone role), or
    /// leaves both for the cluster coordinator (`defer_qoa`).
    pub fn flush_labeled(&self, labels: Vec<QoaLabel>) -> Option<GovernanceSnapshot> {
        self.router.flush(labels).map(|closed| closed.snapshot)
    }

    /// Like [`flush`](Self::flush), but returns the full
    /// [`ClosedWindow`]: the snapshot plus the node-level
    /// [`alertops_core::WindowDelta`] a cluster coordinator merges
    /// with this node's peers.
    pub fn flush_window(&self) -> Option<ClosedWindow> {
        self.router.flush(Vec::new())
    }

    /// [`flush_window`](Self::flush_window) with OCE feedback labels
    /// attached; see [`flush_labeled`](Self::flush_labeled).
    pub fn flush_window_labeled(&self, labels: Vec<QoaLabel>) -> Option<ClosedWindow> {
        self.router.flush(labels)
    }

    /// Pushes QoA verdicts down every shard queue, to apply before the
    /// next window close. Cluster coordinators call this after their
    /// own model update when this daemon runs with
    /// [`IngestdConfig::defer_qoa`](crate::IngestdConfig::defer_qoa).
    pub fn push_qoa_verdicts(&self, verdicts: &QoaVerdicts) {
        self.router.push_qoa_verdicts(verdicts);
    }

    /// Drain barrier: returns once every shard has consumed everything
    /// enqueued before this call. The chaos suite uses it to pace
    /// deterministically; blocks while a shard is stalled.
    pub fn sync(&self) {
        self.router.sync();
    }

    /// Chaos instrumentation: make `shard`'s worker panic at this
    /// point in its queue (`on_close = false`), or during its next
    /// window close after detection already mutated governor state
    /// (`on_close = true`). The supervisor restarts the worker either
    /// way. No-op for out-of-range shards.
    pub fn inject_panic(&self, shard: usize, on_close: bool) {
        self.router.inject_panic(shard, on_close);
    }

    /// Chaos instrumentation: park `shard`'s worker, returning once it
    /// is parked with its queue drained. Pair with
    /// [`resume_shard`](Self::resume_shard); a flush while stalled
    /// blocks until resumed.
    pub fn stall_shard(&self, shard: usize) {
        self.router.stall(shard);
    }

    /// Chaos instrumentation: unpark a worker parked by
    /// [`stall_shard`](Self::stall_shard). No-op if not stalled.
    pub fn resume_shard(&self, shard: usize) {
        self.router.resume(shard);
    }

    /// The most recently merged snapshot, if any window closed yet.
    #[must_use]
    pub fn latest_snapshot(&self) -> Option<GovernanceSnapshot> {
        self.snapshot
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Point-in-time counter values.
    #[must_use]
    pub fn counters(&self) -> CounterSnapshot {
        self.counters.snapshot()
    }

    /// The daemon's metric handles, if [`IngestdConfig::metrics`] is
    /// enabled.
    #[must_use]
    pub fn metrics(&self) -> Option<&Arc<IngestdMetrics>> {
        self.metrics.as_ref()
    }

    /// Renders the Prometheus text exposition: the conservation
    /// counters always, plus every registered stage/governor metric
    /// when metrics are enabled. Same document the status socket
    /// serves for a `metrics` request.
    #[must_use]
    pub fn render_metrics(&self) -> String {
        render_exposition(&self.counters, self.metrics.as_deref())
    }

    /// Blocks until some connection sends `{"ctrl":"shutdown"}` (or
    /// [`IngestdHandle::request_shutdown`] is called).
    pub fn wait_for_shutdown_request(&self) {
        self.shutdown.wait();
    }

    /// Raises the shutdown request flag (as the shutdown control frame
    /// does), unblocking [`IngestdHandle::wait_for_shutdown_request`].
    pub fn request_shutdown(&self) {
        self.shutdown.request();
    }

    /// Stops the daemon: coordinator first, then listeners, then
    /// workers; joins every thread. Open ingress connections must be
    /// closed by their peers for their detached handler threads to
    /// exit, but this method does not wait for those.
    pub fn shutdown(self) {
        self.shutdown.request();
        self.running.store(false, Ordering::Release);

        // Stop the coordinator (acked so no close is mid-flight).
        let (ack_tx, ack_rx) = mpsc::sync_channel(1);
        if self
            .router
            .coord_tx
            .send(CoordMsg::Shutdown { ack: ack_tx })
            .is_ok()
        {
            let _ = ack_rx.recv();
        }

        // Wake the accept loops so they observe `running == false`.
        for addr in [self.ingest_addr, self.status_addr].into_iter().flatten() {
            let _ = TcpStream::connect(addr);
        }

        // Workers exit once every sender into their queues is gone:
        // the coordinator's clones died with it, and the router's die
        // here (accept loops drop their clones as they exit).
        drop(self.router);

        for handle in self.threads {
            let _ = handle.join();
        }
    }
}

/// Ingress accept loop: one detached handler thread per connection.
fn accept_ingress(listener: &TcpListener, running: &Arc<AtomicBool>, router: &Arc<Router>) {
    for stream in listener.incoming() {
        if !running.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let router = Arc::clone(router);
        let _ = thread::Builder::new()
            .name("ingestd-conn".to_owned())
            .spawn(move || serve_ingress(&stream, &router));
    }
}

/// One ingress connection, in the daemon's configured wire format.
/// The connection speaks one protocol in both directions: NDJSON
/// connections are acked with JSON text lines, binary connections
/// with [`AckFrame`] frames.
fn serve_ingress(stream: &TcpStream, router: &Arc<Router>) {
    match router.wire {
        WireFormat::Ndjson => serve_ingress_ndjson(stream, router),
        WireFormat::Binary => serve_ingress_binary(stream, router),
    }
}

/// NDJSON ingress: one frame per line. Framing goes through
/// [`FrameDecoder`], so a connection dropped mid-frame quarantines its
/// partial line instead of losing it silently.
fn serve_ingress_ndjson(stream: &TcpStream, router: &Arc<Router>) {
    let Ok(mut read_half) = stream.try_clone() else {
        return;
    };
    let mut writer = stream;
    let mut decoder = FrameDecoder::new();
    let mut buf = [0u8; 8192];
    // One scratch vec per connection, reused for every read: the decode
    // loop allocates nothing in steady state.
    let mut frames = Vec::new();
    loop {
        let n = match read_half.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        decoder.feed_into(&buf[..n], &mut frames);
        for item in frames.drain(..) {
            if !handle_frame(item, router, &mut writer) {
                return;
            }
        }
    }
    if let Some(item) = decoder.finish() {
        let _ = handle_frame(item, router, &mut writer);
    }
}

/// Binary ingress: length+CRC `alertops-wire` frames. The first
/// decode error is terminal — the length prefix can no longer be
/// trusted and the string table may be desynced, so the frame is
/// quarantined ([`QuarantineReason::CorruptFrame`], or `Oversized`
/// for a declared length past the frame bound) and the connection
/// closed. A stream cut mid-frame quarantines the torn tail the same
/// way NDJSON quarantines a partial line.
fn serve_ingress_binary(stream: &TcpStream, router: &Arc<Router>) {
    let Ok(mut read_half) = stream.try_clone() else {
        return;
    };
    let mut writer = stream;
    let mut decoder = WireDecoder::new();
    // The write half gets its own encoder: acks are binary frames on a
    // binary connection, and the ack stream's string table is
    // independent of the ingress stream's.
    let mut ack_encoder = WireEncoder::new();
    let mut buf = [0u8; 8192];
    let mut frames = Vec::new();
    loop {
        let n = match read_half.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        decoder.feed_into(&buf[..n], &mut frames);
        for item in frames.drain(..) {
            match item {
                Ok(frame) => {
                    if let Some(metrics) = &router.metrics {
                        metrics.frames_decoded.inc();
                    }
                    if !handle_wire_frame(frame, router, &mut writer, &mut ack_encoder) {
                        return;
                    }
                }
                Err(err) => {
                    quarantine_wire_error(&err, router);
                    return;
                }
            }
        }
    }
    if let Some(err) = decoder.finish() {
        quarantine_wire_error(&err, router);
    }
}

/// Counts one terminal binary-ingress decode failure.
fn quarantine_wire_error(err: &WireError, router: &Arc<Router>) {
    if let Some(metrics) = &router.metrics {
        metrics.frames_rejected.inc();
    }
    let reason = if err.is_oversized() {
        QuarantineReason::Oversized
    } else {
        QuarantineReason::CorruptFrame
    };
    router.counters.quarantine(reason);
}

/// Writes one binary ack frame; `false` means the peer is gone.
fn write_wire_ack(ack: AckFrame, encoder: &mut WireEncoder, writer: &mut impl Write) -> bool {
    let bytes = encoder.encode(&alertops_wire::Frame::Ack(ack));
    writer.write_all(&bytes).is_ok()
}

/// Applies one decoded binary frame; `false` ends the connection.
/// Control semantics match the NDJSON equivalents, but acks go back
/// as binary [`AckFrame`] frames through `ack_encoder` — the protocol
/// is binary in both directions. Frame kinds that only exist for WAL
/// segments or handoff shipments are quarantined as unknown controls.
fn handle_wire_frame(
    frame: alertops_wire::Frame,
    router: &Arc<Router>,
    writer: &mut impl Write,
    ack_encoder: &mut WireEncoder,
) -> bool {
    use alertops_wire::Frame as WireFrame;
    match frame {
        WireFrame::Alert(alert) => router.route(alert),
        WireFrame::Flush => {
            if let Some(closed) = router.flush(Vec::new()) {
                let snapshot = closed.snapshot;
                let ack = AckFrame::Flush {
                    window: snapshot.window_index,
                    alerts: snapshot.alert_count as u64,
                };
                if !write_wire_ack(ack, ack_encoder, writer) {
                    return false;
                }
            }
        }
        WireFrame::Sync => {
            router.sync();
            if !write_wire_ack(AckFrame::Sync, ack_encoder, writer) {
                return false;
            }
        }
        WireFrame::Shutdown => {
            let _ = write_wire_ack(AckFrame::Shutdown, ack_encoder, writer);
            router.shutdown.request();
            return false;
        }
        WireFrame::Chaos(ChaosCmd::Panic { shard, on_close }) => {
            if chaos_target(router, shard) {
                router.inject_panic(shard, on_close);
            }
        }
        WireFrame::Chaos(ChaosCmd::Stall { shard }) => {
            if chaos_target(router, shard) {
                router.stall(shard);
                if !write_wire_ack(AckFrame::Stall { shard }, ack_encoder, writer) {
                    return false;
                }
            }
        }
        WireFrame::Chaos(ChaosCmd::Resume { shard }) => {
            if chaos_target(router, shard) {
                router.resume(shard);
            }
        }
        WireFrame::Boundary { .. }
        | WireFrame::Handoff(_)
        | WireFrame::Ack(_)
        | WireFrame::QoaState(_) => {
            router.counters.quarantine(QuarantineReason::UnknownControl);
        }
    }
    true
}

/// Applies one decoded ingress item; `false` ends the connection.
fn handle_frame(
    item: Result<Frame, FrameError>,
    router: &Arc<Router>,
    writer: &mut impl Write,
) -> bool {
    if let Some(metrics) = &router.metrics {
        match &item {
            Ok(_) => metrics.frames_decoded.inc(),
            Err(FrameError::Malformed { .. }) => metrics.frames_rejected.inc(),
            Err(FrameError::Empty) => {}
        }
    }
    match item {
        Ok(Frame::Alert(alert)) => router.route(alert),
        Ok(Frame::Flush) => {
            if let Some(closed) = router.flush(Vec::new()) {
                let snapshot = closed.snapshot;
                let ack = encode_flush_ack(snapshot.window_index, snapshot.alert_count);
                if writeln!(writer, "{ack}").is_err() {
                    return false;
                }
            }
        }
        Ok(Frame::Sync) => {
            router.sync();
            if writeln!(writer, "{}", encode_sync_ack()).is_err() {
                return false;
            }
        }
        Ok(Frame::Shutdown) => {
            let _ = writeln!(writer, "{}", encode_shutdown_ack());
            router.shutdown.request();
            return false;
        }
        Ok(Frame::ChaosPanic { shard, on_close }) => {
            if chaos_target(router, shard) {
                router.inject_panic(shard, on_close);
            }
        }
        Ok(Frame::ChaosStall { shard }) => {
            if chaos_target(router, shard) {
                router.stall(shard);
                if writeln!(writer, "{}", encode_stall_ack(shard)).is_err() {
                    return false;
                }
            }
        }
        Ok(Frame::ChaosResume { shard }) => {
            if chaos_target(router, shard) {
                router.resume(shard);
            }
        }
        Err(FrameError::Empty) => {}
        Err(FrameError::Malformed { reason, .. }) => {
            router.counters.quarantine(reason);
        }
    }
    true
}

/// Gate for wire-level chaos frames: chaos mode must be enabled and
/// the shard in range; otherwise the frame is quarantined as an
/// unknown control and ignored.
fn chaos_target(router: &Arc<Router>, shard: usize) -> bool {
    if router.chaos && shard < router.shard_txs.len() {
        true
    } else {
        router.counters.quarantine(QuarantineReason::UnknownControl);
        false
    }
}

/// Status accept loop: one detached handler thread per connection, so
/// a slow scraper cannot block the next one.
fn accept_status(
    listener: &TcpListener,
    running: &Arc<AtomicBool>,
    counters: &Arc<Counters>,
    snapshot: &Arc<RwLock<Option<GovernanceSnapshot>>>,
    metrics: &Option<Arc<IngestdMetrics>>,
) {
    for stream in listener.incoming() {
        if !running.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let counters = Arc::clone(counters);
        let snapshot = Arc::clone(snapshot);
        let metrics = metrics.clone();
        let _ = thread::Builder::new()
            .name("ingestd-status-conn".to_owned())
            .spawn(move || serve_status(&stream, &counters, &snapshot, metrics.as_deref()));
    }
}

/// One status connection: read the optional request line, serve the
/// selected document, close. See [`crate::status`] for the protocol.
fn serve_status(
    stream: &TcpStream,
    counters: &Arc<Counters>,
    snapshot: &Arc<RwLock<Option<GovernanceSnapshot>>>,
    metrics: Option<&IngestdMetrics>,
) {
    let request = read_status_request(stream);
    let mut writer = stream;
    match request {
        StatusRequest::Status => {
            let report = StatusReport {
                counters: counters.snapshot(),
                snapshot: snapshot.read().unwrap_or_else(|e| e.into_inner()).clone(),
            };
            let _ = writeln!(writer, "{}", report.to_json());
        }
        StatusRequest::Metrics => {
            let _ = writer.write_all(render_exposition(counters, metrics).as_bytes());
        }
        StatusRequest::Healthz => {
            // Liveness must stay cheap: two atomic loads and one small
            // write, no JSON, no snapshot clone. The counters give a
            // probe something monotone to watch.
            let windows = counters.windows_closed.load(Ordering::Relaxed);
            let ingested = counters.ingested.load(Ordering::Relaxed);
            let _ = writeln!(writer, "ok windows={windows} ingested={ingested}");
        }
        StatusRequest::Unknown(verb) => {
            let _ = writeln!(
                writer,
                "error: unknown request {verb:?} (try: status, metrics, healthz)"
            );
        }
    }
}

/// Reads the request line of a status connection. Falls back to the
/// legacy default ([`StatusRequest::Status`]) on timeout, EOF, or a
/// line that never terminates within a sane length — the original
/// protocol was "connect and read", and those clients must keep
/// working.
fn read_status_request(stream: &TcpStream) -> StatusRequest {
    let Ok(mut read_half) = stream.try_clone() else {
        return StatusRequest::Status;
    };
    if read_half
        .set_read_timeout(Some(STATUS_REQUEST_TIMEOUT))
        .is_err()
    {
        return StatusRequest::Status;
    }
    let mut line = Vec::with_capacity(16);
    let mut byte = [0u8; 1];
    loop {
        match read_half.read(&mut byte) {
            Ok(0) | Err(_) => return StatusRequest::Status,
            Ok(_) if byte[0] == b'\n' => {
                return StatusRequest::parse(&String::from_utf8_lossy(&line));
            }
            Ok(_) => {
                if line.len() >= 64 {
                    return StatusRequest::Status;
                }
                line.push(byte[0]);
            }
        }
    }
}
