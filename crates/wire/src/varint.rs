//! LEB128 variable-length integers.
//!
//! Alert ids, strategy ids, timestamps, and counts are all small most
//! of the time; a varint spends one byte on them instead of eight.
//! Encoding is the standard little-endian base-128 scheme: seven
//! payload bits per byte, high bit set on every byte but the last. A
//! `u64` never needs more than [`MAX_LEN`] bytes.

/// Longest possible encoding of a `u64` (ten 7-bit groups).
pub const MAX_LEN: usize = 10;

/// Appends the LEB128 encoding of `value` to `out`.
pub fn encode(mut value: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decodes one LEB128 integer from the front of `bytes`, returning the
/// value and the bytes consumed. `None` when `bytes` ends mid-varint,
/// when the encoding runs past [`MAX_LEN`] bytes, or when the final
/// byte overflows 64 bits.
#[must_use]
pub fn decode(bytes: &[u8]) -> Option<(u64, usize)> {
    let mut value = 0u64;
    for (i, &byte) in bytes.iter().enumerate().take(MAX_LEN) {
        let group = u64::from(byte & 0x7f);
        // The tenth byte may only carry the single remaining bit.
        if i == MAX_LEN - 1 && byte > 0x01 {
            return None;
        }
        value |= group << (7 * i);
        if byte & 0x80 == 0 {
            return Some((value, i + 1));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(value: u64) -> usize {
        let mut buf = Vec::new();
        encode(value, &mut buf);
        let (back, used) = decode(&buf).expect("decodes");
        assert_eq!(back, value);
        assert_eq!(used, buf.len());
        used
    }

    #[test]
    fn known_boundaries_roundtrip() {
        assert_eq!(roundtrip(0), 1);
        assert_eq!(roundtrip(127), 1);
        assert_eq!(roundtrip(128), 2);
        assert_eq!(roundtrip(16_383), 2);
        assert_eq!(roundtrip(16_384), 3);
        assert_eq!(roundtrip(u64::MAX), MAX_LEN);
    }

    #[test]
    fn trailing_bytes_are_left_alone() {
        let mut buf = Vec::new();
        encode(300, &mut buf);
        buf.extend_from_slice(b"tail");
        let (value, used) = decode(&buf).unwrap();
        assert_eq!(value, 300);
        assert_eq!(&buf[used..], b"tail");
    }

    #[test]
    fn truncated_and_overlong_encodings_are_rejected() {
        assert_eq!(decode(&[]), None);
        assert_eq!(decode(&[0x80]), None, "continuation bit with no tail");
        assert_eq!(decode(&[0x80; MAX_LEN]), None, "never terminates");
        // Ten bytes whose last would shift in more than one bit.
        let mut overflow = [0x80u8; MAX_LEN];
        overflow[MAX_LEN - 1] = 0x02;
        assert_eq!(decode(&overflow), None);
    }
}
