//! Frame types and their payload bodies.
//!
//! A payload is `[tag: u8][body]`; this module owns the tag space and
//! the per-tag body layouts. Bodies use [`varint`](crate::varint)
//! integers and table-backed strings (see [`codec`](crate::codec) for
//! the marker bytes). [`codec::WireEncoder`](crate::WireEncoder) and
//! [`codec::WireDecoder`](crate::WireDecoder) add the outer
//! length+CRC framing around what is encoded here.

use alertops_core::StreamingCheckpoint;
use alertops_model::{
    Alert, AlertId, AlertState, Clearance, Location, MicroserviceId, Severity, SimDuration,
    SimTime, StrTable, StrategyId,
};
use serde::{Deserialize, Serialize};

use crate::codec::WireError;
use crate::varint;

/// Payload tag: an alert record.
pub(crate) const TAG_ALERT: u8 = 1;
/// Payload tag: a WAL window boundary.
pub(crate) const TAG_BOUNDARY: u8 = 2;
/// Payload tag: a chaos fault-injection command.
pub(crate) const TAG_CHAOS: u8 = 3;
/// Payload tag: a range-handoff shipment.
pub(crate) const TAG_HANDOFF: u8 = 4;
/// Payload tag: close the current window.
pub(crate) const TAG_FLUSH: u8 = 5;
/// Payload tag: stop the daemon.
pub(crate) const TAG_SHUTDOWN: u8 = 6;
/// Payload tag: drain barrier.
pub(crate) const TAG_SYNC: u8 = 7;
/// Payload tag: a daemon→client acknowledgement.
pub(crate) const TAG_ACK: u8 = 8;
/// Payload tag: an opaque QoA model checkpoint (journaled in the WAL).
pub(crate) const TAG_QOA_STATE: u8 = 9;

/// String marker: literal, registered in the table (assigns the next
/// dense id on both ends).
const STR_LITERAL: u8 = 0x00;
/// String marker: back-reference to a previously assigned id.
const STR_BACKREF: u8 = 0x01;
/// String marker: literal that did *not* register (the encoder's
/// table was at capacity), so it assigns no id.
const STR_UNCACHED: u8 = 0x02;

/// One decoded binary frame. The superset of the NDJSON protocol's
/// line frames: ingress uses `Alert`/`Flush`/`Shutdown`/`Sync`/
/// `Chaos`, the WAL adds `Boundary`, range handoff adds `Handoff`.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// An alert record.
    Alert(Box<Alert>),
    /// The window with this cluster sequence number closed; in a WAL
    /// segment this seals the segment it ends.
    Boundary {
        /// The cluster coordinator's window sequence number.
        window: u64,
    },
    /// Chaos fault injection, gated exactly like the NDJSON chaos
    /// verbs.
    Chaos(ChaosCmd),
    /// A range-handoff shipment (sealed history slice plus in-flight
    /// tail).
    Handoff(Box<HandoffFrame>),
    /// Close the current window across all shards now.
    Flush,
    /// Stop the daemon.
    Shutdown,
    /// Drain every shard queue, then ack.
    Sync,
    /// A daemon→client acknowledgement. On a binary connection acks
    /// travel as frames, mirroring the NDJSON `{"ack":...}` lines.
    Ack(AckFrame),
    /// An opaque QoA model checkpoint (`QoaCheckpoint::to_bytes`
    /// bytes). The wire layer does not interpret the body — the
    /// cluster WAL journals it at window boundaries so a restart can
    /// replay the online model to identical weights.
    QoaState(Vec<u8>),
}

/// The body of a daemon→client [`Frame::Ack`]. Each variant mirrors
/// one NDJSON ack line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckFrame {
    /// `{"ack":"flush","window":N,"alerts":M}` — a window closed.
    Flush {
        /// Index of the window that closed.
        window: u64,
        /// Alerts governed in that window.
        alerts: u64,
    },
    /// `{"ack":"sync"}` — every shard queue drained.
    Sync,
    /// `{"ack":"shutdown"}` — daemon is stopping.
    Shutdown,
    /// `{"ack":"stall","shard":N}` — chaos stall took effect.
    Stall {
        /// The stalled shard.
        shard: usize,
    },
}

/// A chaos fault-injection command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosCmd {
    /// Panic the shard's worker (at this queue position, or during its
    /// next window close).
    Panic {
        /// Target shard.
        shard: usize,
        /// Panic inside the next close instead of immediately.
        on_close: bool,
    },
    /// Park the shard's worker until resumed.
    Stall {
        /// Target shard.
        shard: usize,
    },
    /// Unpark a stalled worker.
    Resume {
        /// Target shard.
        shard: usize,
    },
}

/// The checkpoint a range handoff ships from source to target: the
/// moved strategies' slice of the source's rolling history and
/// in-flight window. `alertops-cluster` re-exports this as its
/// `HandoffShipment`. The serde derives keep the JSON shape the
/// pre-binary protocol had, as a debugging/compatibility view; the
/// live handoff path ships it through the binary codec.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HandoffFrame {
    /// Cluster window sequence numbers of the shipped sealed windows,
    /// aligned with `checkpoint.windows`.
    pub window_seqs: Vec<u64>,
    /// The moved strategies' slice of the source's rolling history.
    pub checkpoint: StreamingCheckpoint,
    /// The moved strategies' slice of the source's in-flight window.
    pub tail: Vec<Alert>,
}

/// A read cursor over one payload's bytes.
pub(crate) struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub(crate) fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        let byte = *self
            .bytes
            .get(self.pos)
            .ok_or_else(|| WireError::malformed("payload ends mid-field"))?;
        self.pos += 1;
        Ok(byte)
    }

    fn varint(&mut self) -> Result<u64, WireError> {
        let (value, used) = varint::decode(&self.bytes[self.pos..])
            .ok_or_else(|| WireError::malformed("bad varint"))?;
        self.pos += used;
        Ok(value)
    }

    fn take(&mut self, len: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < len {
            return Err(WireError::malformed("payload ends mid-field"));
        }
        let slice = &self.bytes[self.pos..self.pos + len];
        self.pos += len;
        Ok(slice)
    }

    fn usize(&mut self) -> Result<usize, WireError> {
        usize::try_from(self.varint()?).map_err(|_| WireError::malformed("count overflows usize"))
    }

    fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(WireError::malformed(format!("bad bool byte {other:#04x}"))),
        }
    }

    /// Decodes one table-backed string into its interned handle.
    fn str(&mut self, table: &mut StrTable) -> Result<alertops_model::IStr, WireError> {
        match self.u8()? {
            STR_BACKREF => {
                let id = u32::try_from(self.varint()?)
                    .map_err(|_| WireError::malformed("back-reference id overflows u32"))?;
                table
                    .resolve(id)
                    .cloned()
                    .ok_or_else(|| WireError::malformed(format!("unassigned back-reference {id}")))
            }
            marker @ (STR_LITERAL | STR_UNCACHED) => {
                let len = self.usize()?;
                let bytes = self.take(len)?;
                let text = std::str::from_utf8(bytes)
                    .map_err(|_| WireError::malformed("string literal is not UTF-8"))?;
                if marker == STR_LITERAL {
                    // Registers (mirroring the encoder's id assignment)
                    // unless the table is at capacity.
                    Ok(table.intern(text))
                } else {
                    Ok(alertops_model::intern(text))
                }
            }
            other => Err(WireError::malformed(format!(
                "bad string marker {other:#04x}"
            ))),
        }
    }
}

/// Appends one table-backed string: a back-reference when the table
/// already assigned `s` an id, a registering literal on first sight,
/// an unregistered literal when the table is full.
fn encode_str(s: &str, table: &mut StrTable, out: &mut Vec<u8>) {
    match table.insert(s) {
        Some((id, false)) => {
            out.push(STR_BACKREF);
            varint::encode(u64::from(id), out);
        }
        Some((_, true)) => {
            out.push(STR_LITERAL);
            varint::encode(s.len() as u64, out);
            out.extend_from_slice(s.as_bytes());
        }
        None => {
            out.push(STR_UNCACHED);
            varint::encode(s.len() as u64, out);
            out.extend_from_slice(s.as_bytes());
        }
    }
}

fn encode_alert_body(alert: &Alert, table: &mut StrTable, out: &mut Vec<u8>) {
    varint::encode(alert.id().value(), out);
    varint::encode(alert.strategy().value(), out);
    encode_str(alert.title(), table, out);
    out.push(alert.severity().rank());
    encode_str(alert.service_name(), table, out);
    varint::encode(alert.microservice().value(), out);
    let location = alert.location();
    encode_str(location.region().as_str(), table, out);
    encode_str(location.dc(), table, out);
    match location.instance() {
        Some(instance) => {
            out.push(1);
            encode_str(instance, table, out);
        }
        None => out.push(0),
    }
    varint::encode(alert.raised_at().as_secs(), out);
    match alert.state() {
        AlertState::Active => out.push(0),
        AlertState::Cleared { at, by } => {
            out.push(1);
            varint::encode(at.as_secs(), out);
            out.push(match by {
                Clearance::Manual => 0,
                Clearance::Auto => 1,
            });
        }
    }
    match alert.processing_time() {
        Some(time) => {
            out.push(1);
            varint::encode(time.as_secs(), out);
        }
        None => out.push(0),
    }
}

fn decode_alert_body(cursor: &mut Cursor<'_>, table: &mut StrTable) -> Result<Alert, WireError> {
    let id = AlertId(cursor.varint()?);
    let strategy = StrategyId(cursor.varint()?);
    let title = cursor.str(table)?;
    let severity = Severity::from_rank(cursor.u8()?)
        .ok_or_else(|| WireError::malformed("bad severity rank"))?;
    let service = cursor.str(table)?;
    let microservice = MicroserviceId(cursor.varint()?);
    let region = cursor.str(table)?;
    let dc = cursor.str(table)?;
    let mut location = Location::new(region, dc);
    if cursor.bool()? {
        location = location.with_instance(cursor.str(table)?);
    }
    let raised_at = SimTime::from_secs(cursor.varint()?);
    let mut alert = Alert::builder(id, strategy)
        .title(title)
        .severity(severity)
        .service(service)
        .microservice(microservice)
        .location(location)
        .raised_at(raised_at)
        .build();
    if cursor.bool()? {
        let at = SimTime::from_secs(cursor.varint()?);
        let by = match cursor.u8()? {
            0 => Clearance::Manual,
            1 => Clearance::Auto,
            other => {
                return Err(WireError::malformed(format!(
                    "bad clearance byte {other:#04x}"
                )))
            }
        };
        alert
            .clear(at, by)
            .map_err(|e| WireError::malformed(format!("bad clearance: {e}")))?;
    }
    if cursor.bool()? {
        alert.record_processing_time(SimDuration::from_secs(cursor.varint()?));
    }
    Ok(alert)
}

fn encode_chaos_body(cmd: &ChaosCmd, out: &mut Vec<u8>) {
    match *cmd {
        ChaosCmd::Panic { shard, on_close } => {
            out.push(1);
            varint::encode(shard as u64, out);
            out.push(u8::from(on_close));
        }
        ChaosCmd::Stall { shard } => {
            out.push(2);
            varint::encode(shard as u64, out);
        }
        ChaosCmd::Resume { shard } => {
            out.push(3);
            varint::encode(shard as u64, out);
        }
    }
}

fn encode_ack_body(ack: &AckFrame, out: &mut Vec<u8>) {
    match *ack {
        AckFrame::Flush { window, alerts } => {
            out.push(1);
            varint::encode(window, out);
            varint::encode(alerts, out);
        }
        AckFrame::Sync => out.push(2),
        AckFrame::Shutdown => out.push(3),
        AckFrame::Stall { shard } => {
            out.push(4);
            varint::encode(shard as u64, out);
        }
    }
}

fn decode_ack_body(cursor: &mut Cursor<'_>) -> Result<AckFrame, WireError> {
    match cursor.u8()? {
        1 => Ok(AckFrame::Flush {
            window: cursor.varint()?,
            alerts: cursor.varint()?,
        }),
        2 => Ok(AckFrame::Sync),
        3 => Ok(AckFrame::Shutdown),
        4 => Ok(AckFrame::Stall {
            shard: cursor.usize()?,
        }),
        other => Err(WireError::malformed(format!(
            "bad ack sub-tag {other:#04x}"
        ))),
    }
}

fn decode_chaos_body(cursor: &mut Cursor<'_>) -> Result<ChaosCmd, WireError> {
    let sub = cursor.u8()?;
    let shard = cursor.usize()?;
    match sub {
        1 => Ok(ChaosCmd::Panic {
            shard,
            on_close: cursor.bool()?,
        }),
        2 => Ok(ChaosCmd::Stall { shard }),
        3 => Ok(ChaosCmd::Resume { shard }),
        other => Err(WireError::malformed(format!(
            "bad chaos sub-tag {other:#04x}"
        ))),
    }
}

fn encode_handoff_body(handoff: &HandoffFrame, table: &mut StrTable, out: &mut Vec<u8>) {
    varint::encode(handoff.window_seqs.len() as u64, out);
    for seq in &handoff.window_seqs {
        varint::encode(*seq, out);
    }
    varint::encode(handoff.checkpoint.start_index, out);
    varint::encode(handoff.checkpoint.windows.len() as u64, out);
    for window in &handoff.checkpoint.windows {
        varint::encode(window.len() as u64, out);
        for alert in window {
            encode_alert_body(alert, table, out);
        }
    }
    varint::encode(handoff.tail.len() as u64, out);
    for alert in &handoff.tail {
        encode_alert_body(alert, table, out);
    }
}

fn decode_handoff_body(
    cursor: &mut Cursor<'_>,
    table: &mut StrTable,
) -> Result<HandoffFrame, WireError> {
    // Counts bound allocation by what the payload could actually hold
    // (the frame length is already capped), so a corrupt count cannot
    // reserve unbounded memory before the field decode fails.
    let seqs = cursor.usize()?;
    let mut window_seqs = Vec::with_capacity(seqs.min(cursor.remaining()));
    for _ in 0..seqs {
        window_seqs.push(cursor.varint()?);
    }
    let start_index = cursor.varint()?;
    let windows = cursor.usize()?;
    let mut checkpoint = StreamingCheckpoint {
        start_index,
        windows: Vec::with_capacity(windows.min(cursor.remaining())),
    };
    for _ in 0..windows {
        let len = cursor.usize()?;
        let mut window = Vec::with_capacity(len.min(cursor.remaining()));
        for _ in 0..len {
            window.push(decode_alert_body(cursor, table)?);
        }
        checkpoint.windows.push(window);
    }
    let tail_len = cursor.usize()?;
    let mut tail = Vec::with_capacity(tail_len.min(cursor.remaining()));
    for _ in 0..tail_len {
        tail.push(decode_alert_body(cursor, table)?);
    }
    Ok(HandoffFrame {
        window_seqs,
        checkpoint,
        tail,
    })
}

/// Appends an alert payload (`[TAG_ALERT][body]`) without requiring
/// the alert to be boxed into a [`Frame`] first — the WAL's
/// per-append hot path.
pub(crate) fn encode_alert_payload(alert: &Alert, table: &mut StrTable, out: &mut Vec<u8>) {
    out.push(TAG_ALERT);
    encode_alert_body(alert, table, out);
}

/// Appends `frame`'s payload (`[tag][body]`, no outer framing) to
/// `out`, assigning string ids through `table`.
pub(crate) fn encode_payload(frame: &Frame, table: &mut StrTable, out: &mut Vec<u8>) {
    match frame {
        Frame::Alert(alert) => {
            out.push(TAG_ALERT);
            encode_alert_body(alert, table, out);
        }
        Frame::Boundary { window } => {
            out.push(TAG_BOUNDARY);
            varint::encode(*window, out);
        }
        Frame::Chaos(cmd) => {
            out.push(TAG_CHAOS);
            encode_chaos_body(cmd, out);
        }
        Frame::Handoff(handoff) => {
            out.push(TAG_HANDOFF);
            encode_handoff_body(handoff, table, out);
        }
        Frame::Flush => out.push(TAG_FLUSH),
        Frame::Shutdown => out.push(TAG_SHUTDOWN),
        Frame::Sync => out.push(TAG_SYNC),
        Frame::Ack(ack) => {
            out.push(TAG_ACK);
            encode_ack_body(ack, out);
        }
        Frame::QoaState(bytes) => {
            out.push(TAG_QOA_STATE);
            varint::encode(bytes.len() as u64, out);
            out.extend_from_slice(bytes);
        }
    }
}

/// Decodes one payload back into its frame. The whole payload must be
/// consumed — trailing bytes mean a layout mismatch, not padding.
pub(crate) fn decode_payload(bytes: &[u8], table: &mut StrTable) -> Result<Frame, WireError> {
    let mut cursor = Cursor::new(bytes);
    let frame = match cursor.u8()? {
        TAG_ALERT => Frame::Alert(Box::new(decode_alert_body(&mut cursor, table)?)),
        TAG_BOUNDARY => Frame::Boundary {
            window: cursor.varint()?,
        },
        TAG_CHAOS => Frame::Chaos(decode_chaos_body(&mut cursor)?),
        TAG_HANDOFF => Frame::Handoff(Box::new(decode_handoff_body(&mut cursor, table)?)),
        TAG_FLUSH => Frame::Flush,
        TAG_SHUTDOWN => Frame::Shutdown,
        TAG_SYNC => Frame::Sync,
        TAG_ACK => Frame::Ack(decode_ack_body(&mut cursor)?),
        TAG_QOA_STATE => {
            let len = cursor.usize()?;
            Frame::QoaState(cursor.take(len)?.to_vec())
        }
        other => return Err(WireError::malformed(format!("bad frame tag {other:#04x}"))),
    };
    if cursor.remaining() != 0 {
        return Err(WireError::malformed(format!(
            "{} trailing bytes after payload",
            cursor.remaining()
        )));
    }
    Ok(frame)
}
