//! The streaming encoder/decoder: length+CRC framing around
//! [`frame`](crate::frame) payloads.
//!
//! One [`WireEncoder`] and one [`WireDecoder`] per stream (a TCP
//! connection, or one WAL segment): the pair share string-table state
//! implicitly — ids are assigned in encode order on one end and in
//! decode order on the other, so they agree by construction and the
//! table is never shipped.
//!
//! # Corruption semantics
//!
//! Every frame is covered by its own CRC-32, so truncation and bit
//! flips are detected, never silently decoded. Unlike NDJSON — where
//! a bad line ends at the next `\n` and the stream resyncs — a binary
//! stream has no resync point: once a length prefix is untrustworthy,
//! so is everything after it, and a bad payload may have already
//! desynchronized the string table. The decoder therefore reports the
//! first error and **poisons itself**: further input is discarded.
//! Callers quarantine the error and close the connection (ingress) or
//! stop trusting the segment (WAL replay).

use alertops_model::StrTable;

use crate::frame::{decode_payload, encode_payload, Frame};
use crate::varint;

/// Hard ceiling on one frame's payload length in bytes (ingress
/// default). A length prefix above the decoder's limit is rejected
/// before any buffering, so a hostile producer cannot balloon daemon
/// memory with one declared-huge frame. Matches the NDJSON
/// `MAX_FRAME_LEN` line limit.
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// Distinct strings a stream's table registers before falling back to
/// unregistered literals. Bounds decoder memory against adversarial
/// streams; matches the interner's default-table cap.
pub const WIRE_TABLE_CAP: usize = 1 << 16;

/// IEEE CRC-32 (reflected, polynomial `0xEDB8_8320`) — the ubiquitous
/// zlib/PNG variant, implemented here because the workspace is
/// std-only. Shared by this codec and the v1 JSON WAL framing.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in bytes {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = 0u32.wrapping_sub(crc & 1);
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Why a binary stream failed to decode. Any error is terminal for
/// its stream (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The stream ended mid-frame (connection reset, torn WAL tail).
    Truncated,
    /// A frame's payload failed its CRC — bit rot or a torn write.
    Crc {
        /// The CRC the frame header declared.
        expected: u32,
        /// The CRC of the payload as received.
        found: u32,
    },
    /// A frame declared a payload longer than the decoder's limit.
    Oversized {
        /// The declared payload length.
        len: u64,
        /// The decoder's limit.
        max: usize,
    },
    /// The payload passed its CRC but does not decode: bad tag, bad
    /// varint, bad string marker, unassigned back-reference, invalid
    /// UTF-8, or a layout mismatch.
    Malformed(String),
}

impl WireError {
    pub(crate) fn malformed(detail: impl Into<String>) -> Self {
        WireError::Malformed(detail.into())
    }

    /// Whether this error is the oversized-frame rejection (callers
    /// bucket it separately from corruption).
    #[must_use]
    pub fn is_oversized(&self) -> bool {
        matches!(self, WireError::Oversized { .. })
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => f.write_str("stream ended mid-frame"),
            WireError::Crc { expected, found } => {
                write!(
                    f,
                    "payload CRC mismatch (header {expected:08x}, payload {found:08x})"
                )
            }
            WireError::Oversized { len, max } => {
                write!(
                    f,
                    "declared payload of {len} bytes exceeds the {max} byte limit"
                )
            }
            WireError::Malformed(detail) => write!(f, "malformed payload: {detail}"),
        }
    }
}

impl std::error::Error for WireError {}

/// The encoding half of a stream: owns the string table assigning
/// back-reference ids and a reusable payload scratch buffer, so
/// steady-state encoding allocates nothing.
#[derive(Debug, Default)]
pub struct WireEncoder {
    table: StrTable,
    payload: Vec<u8>,
}

impl WireEncoder {
    /// A fresh encoder with an empty string table (capped at
    /// [`WIRE_TABLE_CAP`]).
    #[must_use]
    pub fn new() -> Self {
        Self {
            table: StrTable::with_capacity(WIRE_TABLE_CAP),
            payload: Vec::new(),
        }
    }

    /// Appends `frame`, fully framed (`len` varint, CRC, payload), to
    /// `out`. `out` is *not* cleared: a window's worth of frames can
    /// be batched into one write buffer.
    pub fn encode_into(&mut self, frame: &Frame, out: &mut Vec<u8>) {
        self.payload.clear();
        encode_payload(frame, &mut self.table, &mut self.payload);
        varint::encode(self.payload.len() as u64, out);
        out.extend_from_slice(&crc32(&self.payload).to_le_bytes());
        out.extend_from_slice(&self.payload);
    }

    /// Appends one alert frame to `out` without boxing the alert into
    /// a [`Frame`] — the WAL's per-append hot path borrows the alert
    /// it is journaling.
    pub fn encode_alert_into(&mut self, alert: &alertops_model::Alert, out: &mut Vec<u8>) {
        self.payload.clear();
        crate::frame::encode_alert_payload(alert, &mut self.table, &mut self.payload);
        varint::encode(self.payload.len() as u64, out);
        out.extend_from_slice(&crc32(&self.payload).to_le_bytes());
        out.extend_from_slice(&self.payload);
    }

    /// [`encode_into`](Self::encode_into) into a fresh buffer.
    #[must_use]
    pub fn encode(&mut self, frame: &Frame) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(frame, &mut out);
        out
    }

    /// Distinct strings the stream has registered so far.
    #[must_use]
    pub fn table_len(&self) -> usize {
        self.table.len()
    }
}

/// The decoding half of a stream.
///
/// Feed it whatever byte chunks the socket (or segment file) produces
/// — frames split across reads are carried over. The first error
/// poisons the decoder (see the module docs): the error is returned
/// once and all further input is discarded.
#[derive(Debug)]
pub struct WireDecoder {
    buf: Vec<u8>,
    table: StrTable,
    max_frame_len: usize,
    poisoned: bool,
}

impl Default for WireDecoder {
    fn default() -> Self {
        Self::new()
    }
}

impl WireDecoder {
    /// A fresh decoder bounded at [`MAX_FRAME_LEN`].
    #[must_use]
    pub fn new() -> Self {
        Self::with_max_frame_len(MAX_FRAME_LEN)
    }

    /// A decoder accepting payloads up to `max_frame_len` bytes — the
    /// handoff path raises the bound, since one shipment frame carries
    /// a whole checkpoint.
    #[must_use]
    pub fn with_max_frame_len(max_frame_len: usize) -> Self {
        Self {
            buf: Vec::new(),
            table: StrTable::with_capacity(WIRE_TABLE_CAP),
            max_frame_len,
            poisoned: false,
        }
    }

    /// Whether a previous error ended this stream.
    #[must_use]
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Consumes one read's worth of bytes, returning every frame
    /// completed by it — and, last, the terminal error if the stream
    /// just went bad.
    pub fn feed(&mut self, bytes: &[u8]) -> Vec<Result<Frame, WireError>> {
        let mut out = Vec::new();
        self.feed_into(bytes, &mut out);
        out
    }

    /// [`feed`](Self::feed) into a caller-owned scratch vector (cleared
    /// first), so a read loop reuses one allocation for its whole
    /// connection. At most one `Err` is ever produced, always as the
    /// final item.
    pub fn feed_into(&mut self, bytes: &[u8], out: &mut Vec<Result<Frame, WireError>>) {
        out.clear();
        if self.poisoned {
            return;
        }
        self.buf.extend_from_slice(bytes);
        let mut pos = 0usize;
        loop {
            match self.next_frame(pos) {
                Ok(Some((frame, consumed))) => {
                    out.push(Ok(frame));
                    pos += consumed;
                }
                Ok(None) => break,
                Err(e) => {
                    self.poisoned = true;
                    self.buf.clear();
                    out.push(Err(e));
                    return;
                }
            }
        }
        self.buf.drain(..pos);
    }

    /// Flushes the end-of-stream state: `Some(Truncated)` if the
    /// stream ended mid-frame, `None` on a clean boundary (or after an
    /// already-reported error).
    pub fn finish(&mut self) -> Option<WireError> {
        if std::mem::take(&mut self.poisoned) {
            self.buf.clear();
            return None;
        }
        if self.buf.is_empty() {
            None
        } else {
            self.buf.clear();
            Some(WireError::Truncated)
        }
    }

    /// Tries to decode one frame at `pos`. `Ok(None)` means the buffer
    /// holds only a prefix — wait for more bytes.
    fn next_frame(&mut self, pos: usize) -> Result<Option<(Frame, usize)>, WireError> {
        let avail = &self.buf[pos..];
        if avail.is_empty() {
            return Ok(None);
        }
        let Some((len, len_bytes)) = varint::decode(avail) else {
            // A varint needs at most MAX_LEN bytes; more than that
            // without termination is corruption, not a short read.
            if avail.len() >= varint::MAX_LEN {
                return Err(WireError::malformed("bad frame length varint"));
            }
            return Ok(None);
        };
        if len > self.max_frame_len as u64 {
            return Err(WireError::Oversized {
                len,
                max: self.max_frame_len,
            });
        }
        let len = len as usize;
        let total = len_bytes + 4 + len;
        if avail.len() < total {
            return Ok(None);
        }
        let expected = u32::from_le_bytes(
            avail[len_bytes..len_bytes + 4]
                .try_into()
                .expect("4 bytes checked"),
        );
        let payload = &avail[len_bytes + 4..total];
        let found = crc32(payload);
        if found != expected {
            return Err(WireError::Crc { expected, found });
        }
        let frame = decode_payload(payload, &mut self.table)?;
        Ok(Some((frame, total)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{AckFrame, ChaosCmd, HandoffFrame};
    use alertops_core::StreamingCheckpoint;
    use alertops_model::{
        Alert, AlertId, Clearance, Location, Severity, SimDuration, SimTime, StrategyId,
    };

    fn alert(id: u64) -> Alert {
        let mut alert = Alert::builder(AlertId(id), StrategyId(id % 7))
            .title("haproxy process number warning")
            .severity(Severity::from_rank((id % 4) as u8).unwrap())
            .service("Block Storage")
            .microservice(id % 13)
            .location(Location::new("region-x", "dc-1").with_instance(format!("vm-{}", id % 5)))
            .raised_at(SimTime::from_secs(id * 60))
            .build();
        if id.is_multiple_of(3) {
            alert
                .clear(SimTime::from_secs(id * 60 + 90), Clearance::Auto)
                .unwrap();
        }
        if id.is_multiple_of(4) {
            alert.record_processing_time(SimDuration::from_secs(id));
        }
        alert
    }

    fn sample_frames() -> Vec<Frame> {
        let mut frames: Vec<Frame> = (0..40)
            .map(|id| Frame::Alert(Box::new(alert(id))))
            .collect();
        frames.push(Frame::Boundary { window: 17 });
        frames.push(Frame::Chaos(ChaosCmd::Panic {
            shard: 2,
            on_close: true,
        }));
        frames.push(Frame::Chaos(ChaosCmd::Stall { shard: 1 }));
        frames.push(Frame::Chaos(ChaosCmd::Resume { shard: 1 }));
        frames.push(Frame::Handoff(Box::new(HandoffFrame {
            window_seqs: vec![3, 4],
            checkpoint: StreamingCheckpoint {
                start_index: 3,
                windows: vec![vec![alert(100), alert(101)], vec![alert(102)]],
            },
            tail: vec![alert(103)],
        })));
        frames.push(Frame::Flush);
        frames.push(Frame::Shutdown);
        frames.push(Frame::Sync);
        frames.push(Frame::Ack(AckFrame::Flush {
            window: 17,
            alerts: 40,
        }));
        frames.push(Frame::Ack(AckFrame::Sync));
        frames.push(Frame::Ack(AckFrame::Shutdown));
        frames.push(Frame::Ack(AckFrame::Stall { shard: 1 }));
        frames.push(Frame::QoaState(vec![1, 0, 0, 254, 255, 7]));
        frames.push(Frame::QoaState(Vec::new()));
        frames
    }

    fn encode_stream(frames: &[Frame]) -> Vec<u8> {
        let mut encoder = WireEncoder::new();
        let mut wire = Vec::new();
        for frame in frames {
            encoder.encode_into(frame, &mut wire);
        }
        wire
    }

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn every_frame_kind_roundtrips() {
        let frames = sample_frames();
        let wire = encode_stream(&frames);
        let mut decoder = WireDecoder::new();
        let decoded: Vec<Frame> = decoder
            .feed(&wire)
            .into_iter()
            .collect::<Result<_, _>>()
            .expect("stream decodes");
        assert_eq!(decoder.finish(), None);
        assert_eq!(decoded, frames);
    }

    #[test]
    fn repeated_strings_travel_as_backrefs() {
        let frames: Vec<Frame> = (0..100)
            .map(|id| Frame::Alert(Box::new(alert(id))))
            .collect();
        let wire = encode_stream(&frames);
        let one = {
            let mut encoder = WireEncoder::new();
            encoder.encode(&frames[0]).len()
        };
        // 100 alerts over a handful of distinct strings must cost far
        // less than 100 first-frames: everything after the literals is
        // ids and varints.
        assert!(
            wire.len() < one * 40,
            "stream {} bytes vs first frame {one} bytes",
            wire.len()
        );
        let mut encoder = WireEncoder::new();
        let mut wire2 = Vec::new();
        for frame in &frames {
            encoder.encode_into(frame, &mut wire2);
        }
        // Distinct strings: 1 title, 1 service, 1 region, 1 dc, 5 vms.
        assert_eq!(encoder.table_len(), 9);
    }

    #[test]
    fn decoding_is_split_invariant() {
        let frames = sample_frames();
        let wire = encode_stream(&frames);
        for cut in [0, 1, 2, 3, 5, 7, wire.len() / 3, wire.len() / 2, wire.len()] {
            let mut decoder = WireDecoder::new();
            let mut got = decoder.feed(&wire[..cut]);
            got.extend(decoder.feed(&wire[cut..]));
            assert_eq!(decoder.finish(), None, "cut at {cut}");
            let decoded: Vec<Frame> = got.into_iter().collect::<Result<_, _>>().unwrap();
            assert_eq!(decoded, frames, "cut at {cut}");
        }
    }

    #[test]
    fn byte_at_a_time_feeding_decodes_everything() {
        let frames = sample_frames();
        let wire = encode_stream(&frames);
        let mut decoder = WireDecoder::new();
        let mut decoded = Vec::new();
        for &byte in &wire {
            for item in decoder.feed(&[byte]) {
                decoded.push(item.expect("valid stream"));
            }
        }
        assert_eq!(decoder.finish(), None);
        assert_eq!(decoded, frames);
    }

    #[test]
    fn truncation_surfaces_from_finish() {
        let wire = encode_stream(&sample_frames());
        let mut decoder = WireDecoder::new();
        let cut = wire.len() - 3;
        let frames = decoder.feed(&wire[..cut]);
        assert!(frames.iter().all(Result::is_ok));
        assert_eq!(decoder.finish(), Some(WireError::Truncated));
        // finish() resets the truncation state; the decoder is reusable.
        assert_eq!(decoder.finish(), None);
    }

    #[test]
    fn a_flipped_bit_fails_the_crc_and_poisons_the_stream() {
        let frames = sample_frames();
        let wire = encode_stream(&frames);
        // Flip one bit in every byte position in turn: no position may
        // decode the full stream cleanly.
        let full_len = frames.len();
        for pos in (0..wire.len()).step_by(7) {
            let mut bad = wire.clone();
            bad[pos] ^= 0x10;
            let mut decoder = WireDecoder::new();
            let got = decoder.feed(&bad);
            let errors = got.iter().filter(|r| r.is_err()).count();
            let oks = got.len() - errors;
            let clean = errors == 0 && oks == full_len && decoder.finish().is_none();
            assert!(
                !clean || {
                    // The flip may land in a string literal and still
                    // decode (CRC catches payload flips — a flip in the
                    // *length* field changes framing and must error, a
                    // flip in the payload must fail its CRC). Verify the
                    // decoded frames differ instead.
                    let decoded: Vec<Frame> = got.into_iter().collect::<Result<_, _>>().unwrap();
                    decoded != frames
                },
                "flip at {pos} decoded the original stream cleanly"
            );
            if errors > 0 {
                assert!(decoder.is_poisoned() || decoder.finish().is_none());
            }
        }
    }

    #[test]
    fn error_position_is_terminal() {
        let frames = sample_frames();
        let mut wire = encode_stream(&frames);
        wire[0] = 0xff; // frame 0's length varint goes continuation-heavy
        wire[1] = 0xff;
        wire[2] = 0xff;
        let mut decoder = WireDecoder::new();
        let got = decoder.feed(&wire);
        assert!(got.last().unwrap().is_err());
        assert!(decoder.is_poisoned());
        // Later (perfectly valid) bytes are discarded.
        let more = encode_stream(&frames);
        assert!(decoder.feed(&more).is_empty());
        assert_eq!(decoder.finish(), None, "error was already reported");
    }

    #[test]
    fn oversized_declaration_is_rejected_without_buffering() {
        let mut decoder = WireDecoder::with_max_frame_len(64);
        let mut wire = Vec::new();
        varint::encode(1 << 30, &mut wire); // declared length, no payload
        let got = decoder.feed(&wire);
        assert_eq!(got.len(), 1);
        match got.into_iter().next().unwrap() {
            Err(e) => assert!(e.is_oversized(), "got {e:?}"),
            Ok(f) => panic!("decoded {f:?} from a hostile length"),
        }
    }

    #[test]
    fn bad_backref_is_malformed() {
        // Hand-build a payload: alert tag with a back-reference to an
        // id nothing assigned.
        let mut payload = vec![crate::frame::TAG_ALERT];
        varint::encode(9, &mut payload); // id
        varint::encode(1, &mut payload); // strategy
        payload.push(0x01); // STR_BACKREF
        varint::encode(42, &mut payload); // unassigned id
        let mut wire = Vec::new();
        varint::encode(payload.len() as u64, &mut wire);
        wire.extend_from_slice(&crc32(&payload).to_le_bytes());
        wire.extend_from_slice(&payload);
        let mut decoder = WireDecoder::new();
        let got = decoder.feed(&wire);
        assert!(
            matches!(got.as_slice(), [Err(WireError::Malformed(_))]),
            "got {got:?}"
        );
        assert!(decoder.is_poisoned());
    }

    #[test]
    fn handoff_frames_can_exceed_the_ingress_bound() {
        let big = Frame::Handoff(Box::new(HandoffFrame {
            window_seqs: (0..4).collect(),
            checkpoint: StreamingCheckpoint {
                start_index: 0,
                windows: (0..4)
                    .map(|w| (0..2000).map(|i| alert(w * 2000 + i)).collect())
                    .collect(),
            },
            tail: Vec::new(),
        }));
        let mut encoder = WireEncoder::new();
        let wire = encoder.encode(&big);
        let mut decoder = WireDecoder::with_max_frame_len(usize::MAX);
        let got = decoder.feed(&wire);
        assert_eq!(got.len(), 1);
        assert_eq!(got.into_iter().next().unwrap().unwrap(), big);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use alertops_model::{Alert, AlertId, Clearance, Location, Severity, SimTime, StrategyId};
    use proptest::prelude::*;

    #[allow(clippy::too_many_arguments)]
    fn build_alert(
        id: u64,
        strategy: u64,
        at: u64,
        title: &str,
        service: &str,
        instance: Option<&str>,
        severity: u8,
        cleared_after: Option<u64>,
    ) -> Alert {
        let mut location = Location::new("region-p", format!("dc-{}", id % 3));
        if let Some(instance) = instance {
            location = location.with_instance(instance);
        }
        let mut alert = Alert::builder(AlertId(id), StrategyId(strategy))
            .title(title)
            .severity(Severity::from_rank(severity % 4).unwrap())
            .service(service)
            .location(location)
            .raised_at(SimTime::from_secs(at))
            .build();
        if let Some(delta) = cleared_after {
            alert
                .clear(SimTime::from_secs(at + delta), Clearance::Manual)
                .unwrap();
        }
        alert
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Arbitrary alert corpora round-trip identically, however the
        /// wire bytes are split across reads.
        #[test]
        fn seeded_corpora_roundtrip_across_splits(
            specs in proptest::collection::vec(
                (
                    0u64..10_000, 0u64..64, 0u64..1_000_000,
                    "[ -~]{0,24}", "[ -~]{0,12}",
                    proptest::option::of("[ -~]{1,8}"),
                    0u8..8,
                    proptest::option::of(0u64..10_000),
                ),
                1..24,
            ),
            cut in 0usize..1 << 16,
        ) {
            let frames: Vec<Frame> = specs
                .iter()
                .map(|(id, strat, at, title, service, instance, sev, cleared)| {
                    Frame::Alert(Box::new(build_alert(
                        *id, *strat, *at, title, service,
                        instance.as_deref(), *sev, *cleared,
                    )))
                })
                .collect();
            let mut encoder = WireEncoder::new();
            let mut wire = Vec::new();
            for frame in &frames {
                encoder.encode_into(frame, &mut wire);
            }
            let cut = cut % (wire.len() + 1);
            let mut decoder = WireDecoder::new();
            let mut got = decoder.feed(&wire[..cut]);
            got.extend(decoder.feed(&wire[cut..]));
            prop_assert_eq!(decoder.finish(), None);
            let decoded: Vec<Frame> = got.into_iter().collect::<Result<_, _>>().unwrap();
            prop_assert_eq!(decoded, frames);
        }

        /// Decoding arbitrary byte soup never panics, never fabricates
        /// more than one error, and is deterministic.
        #[test]
        fn byte_soup_never_panics(
            bytes in proptest::collection::vec((0u64..256).prop_map(|b| b as u8), 0..2048),
            cut in 0usize..2048,
        ) {
            let cut = cut.min(bytes.len());
            let mut split = WireDecoder::new();
            let mut got = split.feed(&bytes[..cut]);
            got.extend(split.feed(&bytes[cut..]));
            let got_tail = split.finish();

            let mut whole = WireDecoder::new();
            let expect = whole.feed(&bytes);
            let expect_tail = whole.finish();

            prop_assert_eq!(&got, &expect);
            prop_assert_eq!(got_tail, expect_tail);
            prop_assert!(got.iter().filter(|r| r.is_err()).count() <= 1);
        }

        /// Truncating a valid stream anywhere either reports Truncated
        /// from finish() or errors on the partial frame — it never
        /// decodes frames that were not fully sent, beyond the intact
        /// prefix.
        #[test]
        fn truncation_never_fabricates_frames(
            count in 1usize..12,
            cut in 0usize..1 << 14,
        ) {
            let frames: Vec<Frame> = (0..count as u64)
                .map(|id| Frame::Alert(Box::new(build_alert(
                    id, id % 5, id * 60, "title", "svc", None, 0, None,
                ))))
                .collect();
            let mut encoder = WireEncoder::new();
            let mut wire = Vec::new();
            let mut boundaries = vec![0usize];
            for frame in &frames {
                encoder.encode_into(frame, &mut wire);
                boundaries.push(wire.len());
            }
            let cut = cut % (wire.len() + 1);
            let mut decoder = WireDecoder::new();
            let got = decoder.feed(&wire[..cut]);
            let tail = decoder.finish();
            let decoded: Vec<&Frame> =
                got.iter().filter_map(|r| r.as_ref().ok()).collect();
            prop_assert!(decoded.len() <= frames.len());
            for (got, want) in decoded.iter().zip(frames.iter()) {
                prop_assert_eq!(*got, want);
            }
            if let Some(boundary) = boundaries.iter().position(|&b| b == cut) {
                // A cut on a frame boundary is a clean prefix: exactly
                // the complete frames decode, nothing dangles.
                prop_assert_eq!(decoded.len(), boundary);
                prop_assert_eq!(tail, None);
            } else if got.iter().all(Result::is_ok) {
                prop_assert_eq!(tail, Some(WireError::Truncated));
            }
        }
    }
}
