//! The versioned binary frame codec — one alert representation on
//! every wire.
//!
//! NDJSON (see `alertops-ingestd`'s codec) stays the default ingress
//! format and the compatibility oracle; this crate is the opt-in
//! binary alternative threaded through ingest, the cluster's
//! write-ahead log, and range handoff. It exists to kill the two
//! steady-state costs of JSON re-serialization on those paths: the
//! per-alert `String` round trip, and re-shipping the same few
//! thousand distinct title/service/location strings once per alert.
//!
//! # Frame layout
//!
//! A stream is a sequence of frames. Each frame is:
//!
//! ```text
//! [len: varint]  [crc32: u32 LE]  [payload: len bytes]
//! ```
//!
//! where `len` is the payload length, `crc32` is the IEEE CRC-32 of
//! the payload (the same [`crc32`] the JSON WAL framing uses), and
//! the payload is a one-byte tag followed by the tag's body:
//!
//! | tag | frame                                     |
//! |-----|-------------------------------------------|
//! | 1   | [`Frame::Alert`]                          |
//! | 2   | [`Frame::Boundary`] (WAL window seal)     |
//! | 3   | [`Frame::Chaos`] ([`ChaosCmd`] sub-tag)   |
//! | 4   | [`Frame::Handoff`] ([`HandoffFrame`])     |
//! | 5   | [`Frame::Flush`]                          |
//! | 6   | [`Frame::Shutdown`]                       |
//! | 7   | [`Frame::Sync`]                           |
//! | 8   | [`Frame::Ack`] ([`AckFrame`] sub-tag)     |
//! | 9   | [`Frame::QoaState`] (opaque checkpoint)   |
//!
//! Integers are LEB128 varints ([`varint`]). Strings ride the
//! stream's [`StrTable`](alertops_model::StrTable): the first
//! occurrence travels as a literal and implicitly assigns the next
//! dense id on both ends, later occurrences travel as a varint
//! back-reference — the table itself is never shipped. See
//! [`codec`] for the exact string marker bytes and the decoder's
//! corruption semantics (a bad frame poisons the stream: the length
//! prefix can no longer be trusted, so there is no resync).
//!
//! # Versioning
//!
//! This layout is **wire format v2**; v1 is the length+CRC-framed
//! NDJSON layout (`<len:08x> <crc32:08x> <json>\n`) that predates
//! this crate and lives on in `alertops-cluster`'s `wal_v1` module.
//! WAL segments declare their format with a header: v2 segments
//! start with the magic [`WAL_MAGIC`] (`AOWL`) followed by the
//! version byte [`WAL_VERSION`]; v1 segments start with a hex
//! length field, which can never collide with the magic (`L` is not
//! a hex digit). Replay sniffs per segment, so logs written before
//! the codec existed keep replaying byte-identically.

pub mod codec;
pub mod frame;
pub mod varint;

pub use codec::{crc32, WireDecoder, WireEncoder, WireError, MAX_FRAME_LEN, WIRE_TABLE_CAP};
pub use frame::{AckFrame, ChaosCmd, Frame, HandoffFrame};

/// Magic prefix of a binary (v2) WAL segment.
pub const WAL_MAGIC: [u8; 4] = *b"AOWL";

/// Wire/WAL format version this crate encodes.
pub const WAL_VERSION: u8 = 2;

/// Wire formats a stream can speak. NDJSON is the default everywhere;
/// binary is opt-in (`--wire binary`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WireFormat {
    /// One JSON frame per line — human-readable, the compatibility
    /// oracle.
    #[default]
    Ndjson,
    /// The length+CRC binary framing this crate implements.
    Binary,
}

impl WireFormat {
    /// The stable lowercase label (`ndjson` / `binary`) used by CLI
    /// flags and reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            WireFormat::Ndjson => "ndjson",
            WireFormat::Binary => "binary",
        }
    }
}

impl std::str::FromStr for WireFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "ndjson" | "json" => Ok(WireFormat::Ndjson),
            "binary" | "bin" => Ok(WireFormat::Binary),
            other => Err(format!("unknown wire format {other:?} (ndjson|binary)")),
        }
    }
}

impl std::fmt::Display for WireFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wal_magic_cannot_collide_with_v1_framing() {
        // A v1 segment starts with eight lowercase-hex length digits;
        // the magic has a non-hex byte inside its first four.
        assert!(WAL_MAGIC.iter().any(|b| !b.is_ascii_hexdigit()));
        assert_eq!(WAL_VERSION, 2);
    }

    #[test]
    fn wire_format_labels_roundtrip() {
        for format in [WireFormat::Ndjson, WireFormat::Binary] {
            assert_eq!(format.label().parse::<WireFormat>(), Ok(format));
            assert_eq!(format.to_string(), format.label());
        }
        assert_eq!("bin".parse::<WireFormat>(), Ok(WireFormat::Binary));
        assert!("carrier-pigeon".parse::<WireFormat>().is_err());
        assert_eq!(WireFormat::default(), WireFormat::Ndjson);
    }
}
