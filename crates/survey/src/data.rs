//! The encoded survey dataset.
//!
//! Published aggregates the dataset is constructed to satisfy (all from
//! §III of the paper):
//!
//! * demographics — 10 OCEs >3 yrs (55.6%), 3 with 2–3 yrs (16.7%),
//!   2 with 1–2 yrs (11.1%), 3 with <1 yr (16.7%);
//! * A1 — "All OCEs agree with the impact … and 61.1% of them think the
//!   impact is high" (11/18 high, 0 none);
//! * A2 — "88.9% of OCEs agree with the impact" (16/18 non-none);
//! * A3 — "72.2% of OCEs agree that the impact … is high" (13/18 high);
//! * A4 — "Although there are disagreements on the level of impact, most
//!   OCEs (94.4%) think the impact exists" (17/18 non-none, spread
//!   levels);
//! * A5 — "Most OCEs (94.4%) agree with the impact" (17/18);
//! * A6 — "All interviewed OCEs agree with the impact" (18/18);
//! * SOP Q1 — "only 22.2% of OCEs think current SOPs are helpful … the
//!   other 77.8% say the help is limited" (4 helpful / 14 limited /
//!   0 not-helpful);
//! * Fig. 4 — "The SOPs are deemed to show limited help by all OCEs with
//!   over 3 years' experience, taking up 71.4% of all OCEs selecting
//!   Limited" (all 10 seniors limited; 10/14 = 71.4%);
//! * Fig. 2(b) — "SOPs are considered much less helpful when dealing
//!   with collective anti-patterns (Q3) than individual (Q2)";
//! * Fig. 2(c) — "the effectiveness of all four reactions is relatively
//!   high"; and §III-A2: "17 out of 18 interviewed OCEs say that the
//!   alert storms greatly fatigue them".
//!
//! Where the paper gives only partial aggregates, the remaining cells
//! are filled with the most even split consistent with them; every such
//! assumption is visible in the tables below and locked by unit tests.

use serde::{Deserialize, Serialize};

pub use alertops_model::ExperienceBand;

/// Impact level of an anti-pattern, as asked in Fig. 2(a).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Impact {
    /// No impact (disagreement with the anti-pattern's existence).
    None,
    /// Low impact.
    Low,
    /// Moderate impact.
    Moderate,
    /// High impact.
    High,
}

impl Impact {
    /// All levels, ascending.
    pub const ALL: [Impact; 4] = [Impact::None, Impact::Low, Impact::Moderate, Impact::High];

    /// Whether the answer acknowledges any impact.
    #[must_use]
    pub const fn agrees(self) -> bool {
        !matches!(self, Impact::None)
    }
}

/// SOP helpfulness, as asked in Fig. 2(b) / Fig. 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Helpfulness {
    /// Not helpful at all.
    NotHelpful,
    /// "The help is limited."
    Limited,
    /// Helpful.
    Helpful,
}

impl Helpfulness {
    /// All levels, ascending.
    pub const ALL: [Helpfulness; 3] = [
        Helpfulness::NotHelpful,
        Helpfulness::Limited,
        Helpfulness::Helpful,
    ];
}

/// Reaction effectiveness, as asked in Fig. 2(c).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Effectiveness {
    /// Not effective.
    NotEffective,
    /// Somewhat effective.
    Somewhat,
    /// Effective.
    Effective,
}

impl Effectiveness {
    /// All levels, ascending.
    pub const ALL: [Effectiveness; 3] = [
        Effectiveness::NotEffective,
        Effectiveness::Somewhat,
        Effectiveness::Effective,
    ];
}

/// The six anti-patterns as survey items.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum AntiPatternQ {
    /// A1 — unclear name or description.
    A1UnclearTitle,
    /// A2 — misleading severity.
    A2MisleadingSeverity,
    /// A3 — improper and outdated generation rule.
    A3ImproperRule,
    /// A4 — transient and toggling alerts.
    A4TransientToggling,
    /// A5 — repeating alerts.
    A5Repeating,
    /// A6 — cascading alerts.
    A6Cascading,
}

impl AntiPatternQ {
    /// All items in paper order.
    pub const ALL: [AntiPatternQ; 6] = [
        AntiPatternQ::A1UnclearTitle,
        AntiPatternQ::A2MisleadingSeverity,
        AntiPatternQ::A3ImproperRule,
        AntiPatternQ::A4TransientToggling,
        AntiPatternQ::A5Repeating,
        AntiPatternQ::A6Cascading,
    ];

    /// The paper's code ("A1".."A6").
    #[must_use]
    pub const fn code(self) -> &'static str {
        match self {
            AntiPatternQ::A1UnclearTitle => "A1",
            AntiPatternQ::A2MisleadingSeverity => "A2",
            AntiPatternQ::A3ImproperRule => "A3",
            AntiPatternQ::A4TransientToggling => "A4",
            AntiPatternQ::A5Repeating => "A5",
            AntiPatternQ::A6Cascading => "A6",
        }
    }
}

/// The four reactions as survey items.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Reaction {
    /// R1 — alert blocking.
    R1Blocking,
    /// R2 — alert aggregation.
    R2Aggregation,
    /// R3 — alert correlation analysis.
    R3Correlation,
    /// R4 — emerging alert detection.
    R4Emerging,
}

impl Reaction {
    /// All items in paper order.
    pub const ALL: [Reaction; 4] = [
        Reaction::R1Blocking,
        Reaction::R2Aggregation,
        Reaction::R3Correlation,
        Reaction::R4Emerging,
    ];

    /// The paper's code ("R1".."R4").
    #[must_use]
    pub const fn code(self) -> &'static str {
        match self {
            Reaction::R1Blocking => "R1",
            Reaction::R2Aggregation => "R2",
            Reaction::R3Correlation => "R3",
            Reaction::R4Emerging => "R4",
        }
    }
}

/// The SOP helpfulness questions of Fig. 2(b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Question {
    /// Q1 — overall helpfulness of SOPs.
    SopOverall,
    /// Q2 — helpfulness for individual anti-patterns.
    SopIndividual,
    /// Q3 — helpfulness for collective anti-patterns.
    SopCollective,
}

/// One survey respondent with all their answers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Respondent {
    /// Respondent index (0..18).
    pub id: usize,
    /// Working experience band.
    pub experience: ExperienceBand,
    /// Fig. 2(a): impact per anti-pattern, in [`AntiPatternQ::ALL`] order.
    pub impact: [Impact; 6],
    /// Fig. 2(b): helpfulness for Q1/Q2/Q3.
    pub sop_overall: Helpfulness,
    /// Q2.
    pub sop_individual: Helpfulness,
    /// Q3.
    pub sop_collective: Helpfulness,
    /// Fig. 2(c): effectiveness per reaction, in [`Reaction::ALL`] order.
    pub effectiveness: [Effectiveness; 4],
    /// §III-A2: whether alert storms greatly fatigue this OCE.
    pub storm_fatigue: bool,
}

/// The full survey dataset.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SurveyDataset {
    respondents: Vec<Respondent>,
}

impl SurveyDataset {
    /// The dataset reproducing the paper's aggregates. See the module
    /// docs for the constraint list.
    #[must_use]
    pub fn paper() -> Self {
        use Effectiveness as E;
        use ExperienceBand as X;
        use Helpfulness as H;
        use Impact::{High, Low, Moderate, None as No};

        // Columns: experience, [A1..A6], Q1, Q2, Q3, [R1..R4], fatigue.
        // Respondents 0..=9 are the ten >3yr seniors (all Q1 Limited).
        type Row = (X, [Impact; 6], H, H, H, [E; 4], bool);
        #[rustfmt::skip]
        let rows: [Row; 18] = [
            (X::OverThreeYears,  [High,     High,     High,     Moderate, High,     High],     H::Limited, H::Helpful, H::Limited,    [E::Effective, E::Effective, E::Effective, E::Somewhat],  true),
            (X::OverThreeYears,  [High,     High,     High,     High,     High,     High],     H::Limited, H::Helpful, H::Limited,    [E::Effective, E::Effective, E::Effective, E::Effective], true),
            (X::OverThreeYears,  [High,     Moderate, High,     Moderate, High,     High],     H::Limited, H::Limited, H::NotHelpful, [E::Effective, E::Effective, E::Somewhat,  E::Effective], true),
            (X::OverThreeYears,  [High,     High,     High,     Low,      High,     High],     H::Limited, H::Helpful, H::Limited,    [E::Effective, E::Effective, E::Effective, E::Somewhat],  true),
            (X::OverThreeYears,  [High,     Moderate, High,     Moderate, Moderate, High],     H::Limited, H::Limited, H::NotHelpful, [E::Effective, E::Somewhat,  E::Effective, E::Effective], true),
            (X::OverThreeYears,  [High,     High,     High,     High,     High,     High],     H::Limited, H::Helpful, H::Limited,    [E::Somewhat,  E::Effective, E::Effective, E::Effective], true),
            (X::OverThreeYears,  [High,     Moderate, High,     Moderate, High,     High],     H::Limited, H::Limited, H::NotHelpful, [E::Effective, E::Effective, E::Somewhat,  E::Somewhat],  true),
            (X::OverThreeYears,  [High,     High,     High,     Low,      Moderate, High],     H::Limited, H::Helpful, H::Limited,    [E::Effective, E::Effective, E::Effective, E::Effective], true),
            (X::OverThreeYears,  [High,     Low,      High,     Moderate, High,     High],     H::Limited, H::Limited, H::NotHelpful, [E::Somewhat,  E::Effective, E::Effective, E::Somewhat],  true),
            (X::OverThreeYears,  [High,     High,     High,     High,     High,     High],     H::Limited, H::Helpful, H::Limited,    [E::Effective, E::Effective, E::Somewhat,  E::Effective], true),
            (X::TwoToThreeYears, [Moderate, High,     Moderate, Moderate, High,     High],     H::Helpful, H::Helpful, H::Limited,    [E::Effective, E::Effective, E::Effective, E::Effective], true),
            (X::TwoToThreeYears, [Moderate, Moderate, High,     Moderate, Moderate, High],     H::Limited, H::Limited, H::Limited,    [E::Effective, E::Somewhat,  E::Somewhat,  E::Somewhat],  true),
            (X::TwoToThreeYears, [Moderate, No,       High,     Low,      Low,      Moderate], H::Limited, H::Limited, H::NotHelpful, [E::NotEffective, E::Effective, E::Effective, E::Effective], true),
            (X::OneToTwoYears,   [Moderate, High,     Moderate, High,     High,     High],     H::Helpful, H::Helpful, H::Limited,    [E::Effective, E::Effective, E::Somewhat,  E::Somewhat],  true),
            (X::OneToTwoYears,   [Low,      Moderate, Low,      Moderate, Moderate, Moderate], H::Limited, H::Limited, H::Limited,    [E::Effective, E::NotEffective, E::Effective, E::Effective], true),
            (X::UnderOneYear,    [Moderate, No,       Moderate, No,       No,       High],     H::Helpful, H::Helpful, H::Helpful,    [E::Somewhat,  E::Effective, E::NotEffective, E::Somewhat], false),
            (X::UnderOneYear,    [Low,      Moderate, Moderate, Moderate, Moderate, Moderate], H::Helpful, H::Helpful, H::Limited,    [E::Effective, E::Effective, E::Effective, E::NotEffective], true),
            (X::UnderOneYear,    [High,     High,     High,     Low,      High,     High],     H::Limited, H::Limited, H::Limited,    [E::Effective, E::Somewhat,  E::Effective, E::Effective], true),
        ];
        let respondents = rows
            .into_iter()
            .enumerate()
            .map(
                |(id, (experience, impact, q1, q2, q3, effectiveness, storm_fatigue))| Respondent {
                    id,
                    experience,
                    impact,
                    sop_overall: q1,
                    sop_individual: q2,
                    sop_collective: q3,
                    effectiveness,
                    storm_fatigue,
                },
            )
            .collect();
        Self { respondents }
    }

    /// The respondents.
    #[must_use]
    pub fn respondents(&self) -> &[Respondent] {
        &self.respondents
    }

    /// Impact answers for one anti-pattern.
    #[must_use]
    pub fn impact_answers(&self, item: AntiPatternQ) -> Vec<Impact> {
        let ix = AntiPatternQ::ALL
            .iter()
            .position(|&p| p == item)
            .expect("item is one of the six");
        self.respondents.iter().map(|r| r.impact[ix]).collect()
    }

    /// Helpfulness distribution for one of the SOP questions.
    #[must_use]
    pub fn helpfulness_distribution(&self, question: Question) -> crate::Distribution<Helpfulness> {
        let answers = self.respondents.iter().map(|r| match question {
            Question::SopOverall => r.sop_overall,
            Question::SopIndividual => r.sop_individual,
            Question::SopCollective => r.sop_collective,
        });
        crate::Distribution::from_answers(answers)
    }

    /// Effectiveness answers for one reaction.
    #[must_use]
    pub fn effectiveness_answers(&self, reaction: Reaction) -> Vec<Effectiveness> {
        let ix = Reaction::ALL
            .iter()
            .position(|&r| r == reaction)
            .expect("reaction is one of the four");
        self.respondents
            .iter()
            .map(|r| r.effectiveness[ix])
            .collect()
    }

    /// Number of OCEs reporting storm fatigue (the paper: 17 of 18).
    #[must_use]
    pub fn storm_fatigued(&self) -> usize {
        self.respondents.iter().filter(|r| r.storm_fatigue).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Distribution;

    fn survey() -> SurveyDataset {
        SurveyDataset::paper()
    }

    #[test]
    fn demographics_match_paper() {
        let s = survey();
        assert_eq!(s.respondents().len(), 18);
        let count = |band| {
            s.respondents()
                .iter()
                .filter(|r| r.experience == band)
                .count()
        };
        assert_eq!(count(ExperienceBand::OverThreeYears), 10); // 55.6%
        assert_eq!(count(ExperienceBand::TwoToThreeYears), 3); // 16.7%
        assert_eq!(count(ExperienceBand::OneToTwoYears), 2); // 11.1%
        assert_eq!(count(ExperienceBand::UnderOneYear), 3); // 16.7%
    }

    #[test]
    fn a1_all_agree_and_61percent_high() {
        let answers = survey().impact_answers(AntiPatternQ::A1UnclearTitle);
        assert!(answers.iter().all(|a| a.agrees()));
        let high = answers.iter().filter(|&&a| a == Impact::High).count();
        assert_eq!(high, 11); // 11/18 = 61.1%
    }

    #[test]
    fn a2_889_percent_agree() {
        let answers = survey().impact_answers(AntiPatternQ::A2MisleadingSeverity);
        let agree = answers.iter().filter(|a| a.agrees()).count();
        assert_eq!(agree, 16); // 16/18 = 88.9%
    }

    #[test]
    fn a3_722_percent_high() {
        let answers = survey().impact_answers(AntiPatternQ::A3ImproperRule);
        let high = answers.iter().filter(|&&a| a == Impact::High).count();
        assert_eq!(high, 13); // 13/18 = 72.2%
    }

    #[test]
    fn a4_944_percent_exists_with_level_disagreement() {
        let answers = survey().impact_answers(AntiPatternQ::A4TransientToggling);
        let agree = answers.iter().filter(|a| a.agrees()).count();
        assert_eq!(agree, 17); // 94.4%
                               // "Disagreements on the level": at least three distinct non-none
                               // levels used.
        let dist = Distribution::from_answers(answers.into_iter());
        let levels_used = [Impact::Low, Impact::Moderate, Impact::High]
            .iter()
            .filter(|&&l| dist.count(l) > 0)
            .count();
        assert_eq!(levels_used, 3);
    }

    #[test]
    fn a5_944_percent_agree() {
        let answers = survey().impact_answers(AntiPatternQ::A5Repeating);
        assert_eq!(answers.iter().filter(|a| a.agrees()).count(), 17);
    }

    #[test]
    fn a6_all_agree() {
        let answers = survey().impact_answers(AntiPatternQ::A6Cascading);
        assert!(answers.iter().all(|a| a.agrees()));
    }

    #[test]
    fn q1_sop_split_is_4_14_0() {
        let dist = survey().helpfulness_distribution(Question::SopOverall);
        assert_eq!(dist.count(Helpfulness::Helpful), 4); // 22.2%
        assert_eq!(dist.count(Helpfulness::Limited), 14); // 77.8%
        assert_eq!(dist.count(Helpfulness::NotHelpful), 0);
    }

    #[test]
    fn all_seniors_say_limited_and_are_714_percent_of_limited() {
        let s = survey();
        let seniors_limited = s
            .respondents()
            .iter()
            .filter(|r| r.experience == ExperienceBand::OverThreeYears)
            .all(|r| r.sop_overall == Helpfulness::Limited);
        assert!(seniors_limited);
        let limited_total = s
            .respondents()
            .iter()
            .filter(|r| r.sop_overall == Helpfulness::Limited)
            .count();
        assert_eq!(limited_total, 14);
        // 10 seniors / 14 limited = 71.4%.
        assert!((10.0 / limited_total as f64 - 0.714).abs() < 0.001);
    }

    #[test]
    fn sops_less_helpful_for_collective_than_individual() {
        let s = survey();
        let q2 = s.helpfulness_distribution(Question::SopIndividual);
        let q3 = s.helpfulness_distribution(Question::SopCollective);
        assert!(q2.count(Helpfulness::Helpful) > q3.count(Helpfulness::Helpful));
        assert!(q3.count(Helpfulness::NotHelpful) > q2.count(Helpfulness::NotHelpful));
    }

    #[test]
    fn reactions_rated_relatively_high() {
        let s = survey();
        for reaction in Reaction::ALL {
            let answers = s.effectiveness_answers(reaction);
            let effective = answers
                .iter()
                .filter(|&&e| e == Effectiveness::Effective)
                .count();
            assert!(
                effective as f64 / answers.len() as f64 > 0.5,
                "{} rated effective by only {effective}/18",
                reaction.code()
            );
            let not = answers
                .iter()
                .filter(|&&e| e == Effectiveness::NotEffective)
                .count();
            assert!(
                not <= 1,
                "{} has {not} not-effective votes",
                reaction.code()
            );
        }
    }

    #[test]
    fn storm_fatigue_17_of_18() {
        assert_eq!(survey().storm_fatigued(), 17);
    }

    #[test]
    fn codes() {
        assert_eq!(AntiPatternQ::A1UnclearTitle.code(), "A1");
        assert_eq!(Reaction::R4Emerging.code(), "R4");
    }
}
