//! Likert-scale aggregation.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// A distribution of categorical survey answers.
///
/// # Example
///
/// ```
/// use alertops_survey::{Distribution, Impact};
///
/// let dist = Distribution::from_answers(
///     [Impact::High, Impact::High, Impact::Low].into_iter(),
/// );
/// assert_eq!(dist.total(), 3);
/// assert_eq!(dist.count(Impact::High), 2);
/// assert!((dist.share(Impact::High) - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Distribution<A: Ord> {
    counts: BTreeMap<A, usize>,
    total: usize,
}

impl<A: Ord + Copy> Distribution<A> {
    /// Tallies an answer iterator.
    pub fn from_answers(answers: impl Iterator<Item = A>) -> Self {
        let mut counts = BTreeMap::new();
        let mut total = 0;
        for answer in answers {
            *counts.entry(answer).or_insert(0) += 1;
            total += 1;
        }
        Self { counts, total }
    }

    /// Total number of answers.
    #[must_use]
    pub fn total(&self) -> usize {
        self.total
    }

    /// Count of one answer value.
    #[must_use]
    pub fn count(&self, answer: A) -> usize {
        self.counts.get(&answer).copied().unwrap_or(0)
    }

    /// Share of one answer value in `[0, 1]` (0 for an empty
    /// distribution).
    #[must_use]
    pub fn share(&self, answer: A) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(answer) as f64 / self.total as f64
        }
    }

    /// Share of answers satisfying a predicate.
    #[must_use]
    pub fn share_where(&self, pred: impl Fn(A) -> bool) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let matching: usize = self
            .counts
            .iter()
            .filter(|(&a, _)| pred(a))
            .map(|(_, &c)| c)
            .sum();
        matching as f64 / self.total as f64
    }

    /// Iterates `(answer, count)` in answer order.
    pub fn iter(&self) -> impl Iterator<Item = (A, usize)> + '_ {
        self.counts.iter().map(|(&a, &c)| (a, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tallies_and_shares() {
        let dist = Distribution::from_answers([1u8, 1, 2, 3, 3, 3].into_iter());
        assert_eq!(dist.total(), 6);
        assert_eq!(dist.count(3), 3);
        assert_eq!(dist.count(9), 0);
        assert!((dist.share(1) - 1.0 / 3.0).abs() < 1e-12);
        assert!((dist.share_where(|a| a >= 2) - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn empty_distribution() {
        let dist = Distribution::from_answers(std::iter::empty::<u8>());
        assert_eq!(dist.total(), 0);
        assert_eq!(dist.share(1), 0.0);
        assert_eq!(dist.share_where(|_| true), 0.0);
    }

    #[test]
    fn iter_in_answer_order() {
        let dist = Distribution::from_answers([3u8, 1, 2].into_iter());
        let pairs: Vec<_> = dist.iter().collect();
        assert_eq!(pairs, vec![(1, 1), (2, 1), (3, 1)]);
    }
}
