//! The 18-OCE survey of the DSN'22 study, as data plus analysis code.
//!
//! The paper surveys eighteen experienced on-call engineers about the
//! impact of the six anti-patterns (Fig. 2a), the helpfulness of SOPs
//! (Fig. 2b, Fig. 4), and the effectiveness of the four reactions
//! (Fig. 2c). The raw per-respondent answers are not published; this
//! crate encodes a per-respondent dataset that *exactly reproduces every
//! aggregate the paper reports* (each constraint is cited at the
//! definition site), together with the Likert aggregation and figure
//! builders that turn responses into the paper's charts.
//!
//! # Example
//!
//! ```
//! use alertops_survey::{SurveyDataset, Question};
//!
//! let survey = SurveyDataset::paper();
//! assert_eq!(survey.respondents().len(), 18);
//! let q1 = survey.helpfulness_distribution(Question::SopOverall);
//! // "only 22.2% of OCEs think current SOPs are helpful"
//! assert!((q1.share(alertops_survey::Helpfulness::Helpful) - 0.222).abs() < 0.001);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod data;
mod figures;
mod likert;

pub use data::{
    AntiPatternQ, Effectiveness, Helpfulness, Impact, Question, Reaction, Respondent, SurveyDataset,
};
pub use figures::{fig2a, fig2b, fig2c, fig4, render_bar, FigureRow};
pub use likert::Distribution;
