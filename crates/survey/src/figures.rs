//! Figure builders: the rows behind Fig. 2(a–c) and Fig. 4.

use serde::{Deserialize, Serialize};

use alertops_model::ExperienceBand;

use crate::data::{
    AntiPatternQ, Effectiveness, Helpfulness, Impact, Question, Reaction, SurveyDataset,
};
use crate::likert::Distribution;

/// One row of a stacked-bar figure: an item label plus `(answer label,
/// count)` segments in display order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FigureRow {
    /// Row label ("A1", "Q2", "R3", ">3 years", ...).
    pub label: String,
    /// Ordered `(segment label, count)` pairs.
    pub segments: Vec<(String, usize)>,
}

impl FigureRow {
    /// Total answers in the row.
    #[must_use]
    pub fn total(&self) -> usize {
        self.segments.iter().map(|(_, c)| c).sum()
    }
}

/// Fig. 2(a): "How about the impact of different anti-patterns to alert
/// diagnosis?" — one row per anti-pattern, segments High → None.
#[must_use]
pub fn fig2a(survey: &SurveyDataset) -> Vec<FigureRow> {
    AntiPatternQ::ALL
        .into_iter()
        .map(|item| {
            let dist = Distribution::from_answers(survey.impact_answers(item).into_iter());
            FigureRow {
                label: item.code().to_owned(),
                segments: [Impact::High, Impact::Moderate, Impact::Low, Impact::None]
                    .into_iter()
                    .map(|level| (format!("{level:?}"), dist.count(level)))
                    .collect(),
            }
        })
        .collect()
}

/// Fig. 2(b): "How helpful are the predefined SOPs?" — rows Q1..Q3,
/// segments Helpful → NotHelpful.
#[must_use]
pub fn fig2b(survey: &SurveyDataset) -> Vec<FigureRow> {
    [
        ("Q1 Overall", Question::SopOverall),
        ("Q2 Individual", Question::SopIndividual),
        ("Q3 Collective", Question::SopCollective),
    ]
    .into_iter()
    .map(|(label, question)| {
        let dist = survey.helpfulness_distribution(question);
        FigureRow {
            label: label.to_owned(),
            segments: [
                Helpfulness::Helpful,
                Helpfulness::Limited,
                Helpfulness::NotHelpful,
            ]
            .into_iter()
            .map(|level| (format!("{level:?}"), dist.count(level)))
            .collect(),
        }
    })
    .collect()
}

/// Fig. 2(c): "How about the effectiveness of current reactions?" —
/// rows R1..R4, segments Effective → NotEffective.
#[must_use]
pub fn fig2c(survey: &SurveyDataset) -> Vec<FigureRow> {
    Reaction::ALL
        .into_iter()
        .map(|reaction| {
            let dist =
                Distribution::from_answers(survey.effectiveness_answers(reaction).into_iter());
            FigureRow {
                label: reaction.code().to_owned(),
                segments: [
                    Effectiveness::Effective,
                    Effectiveness::Somewhat,
                    Effectiveness::NotEffective,
                ]
                .into_iter()
                .map(|level| (format!("{level:?}"), dist.count(level)))
                .collect(),
            }
        })
        .collect()
}

/// Fig. 4: answers to Q1 "Overall Helpfulness" broken down by the OCEs'
/// working experience — one row per band.
#[must_use]
pub fn fig4(survey: &SurveyDataset) -> Vec<FigureRow> {
    ExperienceBand::ALL
        .into_iter()
        .rev() // most experienced first, as in the paper
        .map(|band| {
            let dist = Distribution::from_answers(
                survey
                    .respondents()
                    .iter()
                    .filter(|r| r.experience == band)
                    .map(|r| r.sop_overall),
            );
            FigureRow {
                label: band.to_string(),
                segments: [
                    Helpfulness::Helpful,
                    Helpfulness::Limited,
                    Helpfulness::NotHelpful,
                ]
                .into_iter()
                .map(|level| (format!("{level:?}"), dist.count(level)))
                .collect(),
            }
        })
        .collect()
}

/// Renders a row as an ASCII stacked bar, e.g.
/// `A1  ███████████▒▒▒▒▒░░  High 11 | Moderate 5 | Low 2 | None 0`.
#[must_use]
pub fn render_bar(row: &FigureRow, width: usize) -> String {
    const FILLS: [char; 4] = ['█', '▒', '░', '·'];
    let total = row.total().max(1);
    let mut bar = String::new();
    for (i, (_, count)) in row.segments.iter().enumerate() {
        let cells = (count * width).div_ceil(total).min(width);
        let fill = FILLS[i % FILLS.len()];
        for _ in 0..cells {
            bar.push(fill);
        }
    }
    // Clamp accumulated rounding to the target width.
    let bar: String = bar.chars().take(width).collect();
    let legend = row
        .segments
        .iter()
        .map(|(label, count)| format!("{label} {count}"))
        .collect::<Vec<_>>()
        .join(" | ");
    format!("{:<14} {:<width$}  {legend}", row.label, bar, width = width)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn survey() -> SurveyDataset {
        SurveyDataset::paper()
    }

    #[test]
    fn fig2a_has_six_full_rows() {
        let rows = fig2a(&survey());
        assert_eq!(rows.len(), 6);
        for row in &rows {
            assert_eq!(row.total(), 18, "{} row incomplete", row.label);
            assert_eq!(row.segments.len(), 4);
        }
        assert_eq!(rows[0].label, "A1");
        assert_eq!(rows[5].label, "A6");
    }

    #[test]
    fn fig2b_matches_reported_q1() {
        let rows = fig2b(&survey());
        assert_eq!(rows.len(), 3);
        let q1 = &rows[0];
        assert_eq!(q1.segments[0], ("Helpful".to_owned(), 4));
        assert_eq!(q1.segments[1], ("Limited".to_owned(), 14));
    }

    #[test]
    fn fig2c_has_four_full_rows() {
        let rows = fig2c(&survey());
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert_eq!(row.total(), 18);
        }
    }

    #[test]
    fn fig4_rows_partition_the_team() {
        let rows = fig4(&survey());
        assert_eq!(rows.len(), 4);
        let total: usize = rows.iter().map(FigureRow::total).sum();
        assert_eq!(total, 18);
        // Most experienced first; all ten seniors Limited.
        assert_eq!(rows[0].label, ">3 years");
        assert_eq!(rows[0].segments[1], ("Limited".to_owned(), 10));
        assert_eq!(rows[0].segments[0], ("Helpful".to_owned(), 0));
    }

    #[test]
    fn render_bar_is_width_bounded_and_legended() {
        let rows = fig2a(&survey());
        let s = render_bar(&rows[0], 24);
        assert!(s.contains("A1"));
        assert!(s.contains("High 11"));
        let bar_chars = s.chars().filter(|c| "█▒░·".contains(*c)).count();
        assert!(bar_chars <= 24);
    }

    #[test]
    fn render_bar_empty_row() {
        let row = FigureRow {
            label: "empty".into(),
            segments: vec![("X".into(), 0)],
        };
        let s = render_bar(&row, 10);
        assert!(s.contains("X 0"));
    }
}
