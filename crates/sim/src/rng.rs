//! Deterministic hash-based noise.
//!
//! The telemetry generator needs *random-looking but replayable* values
//! at arbitrary `(entity, metric, tick)` coordinates, without storing any
//! state — so the monitoring system can sample any point of any series in
//! O(1) and two runs with the same seed agree exactly. A keyed splitmix64
//! hash provides that.

/// One round of splitmix64 finalization.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A keyed hash of up to three coordinates.
#[inline]
#[must_use]
pub fn hash3(seed: u64, a: u64, b: u64, c: u64) -> u64 {
    let mut h = splitmix64(seed ^ 0xA076_1D64_78BD_642F);
    h = splitmix64(h ^ a);
    h = splitmix64(h ^ b.rotate_left(17));
    splitmix64(h ^ c.rotate_left(37))
}

/// Uniform in `[0, 1)` from three coordinates.
#[inline]
#[must_use]
pub fn uniform(seed: u64, a: u64, b: u64, c: u64) -> f64 {
    // 53 high bits → exactly representable dyadic rational in [0, 1).
    (hash3(seed, a, b, c) >> 11) as f64 / (1u64 << 53) as f64
}

/// Standard normal (Box–Muller) from three coordinates.
#[inline]
#[must_use]
pub fn std_normal(seed: u64, a: u64, b: u64, c: u64) -> f64 {
    let u1 = uniform(seed, a, b, c).max(f64::MIN_POSITIVE);
    let u2 = uniform(seed ^ 0x5851_F42D_4C95_7F2D, a, b, c);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Poisson sample via inversion (suitable for small rates λ ≲ 30) from
/// three coordinates.
#[must_use]
pub fn poisson(seed: u64, a: u64, b: u64, c: u64, lambda: f64) -> u32 {
    if lambda <= 0.0 {
        return 0;
    }
    let u = uniform(seed, a, b, c);
    let mut p = (-lambda).exp();
    let mut cdf = p;
    let mut k = 0u32;
    while u > cdf && k < 1_000 {
        k += 1;
        p *= lambda / f64::from(k);
        cdf += p;
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(hash3(1, 2, 3, 4), hash3(1, 2, 3, 4));
        assert_eq!(uniform(9, 8, 7, 6), uniform(9, 8, 7, 6));
        assert_eq!(std_normal(1, 1, 1, 1), std_normal(1, 1, 1, 1));
    }

    #[test]
    fn coordinates_matter() {
        assert_ne!(hash3(1, 2, 3, 4), hash3(1, 2, 3, 5));
        assert_ne!(hash3(1, 2, 3, 4), hash3(2, 2, 3, 4));
        assert_ne!(hash3(1, 2, 3, 4), hash3(1, 3, 2, 4));
    }

    #[test]
    fn uniform_in_unit_interval() {
        for i in 0..1_000 {
            let u = uniform(42, i, i * 3, i * 7);
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_near_half() {
        let n = 10_000;
        let mean: f64 = (0..n).map(|i| uniform(7, i, 0, 0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn std_normal_moments() {
        let n = 10_000;
        let samples: Vec<f64> = (0..n).map(|i| std_normal(11, i, 0, 0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn poisson_mean_matches_lambda() {
        let n = 5_000;
        for lambda in [0.5, 2.0, 8.0] {
            let mean: f64 = (0..n)
                .map(|i| f64::from(poisson(3, i, 1, 2, lambda)))
                .sum::<f64>()
                / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.max(1.0) * 0.1,
                "lambda {lambda}, mean {mean}"
            );
        }
    }

    #[test]
    fn poisson_zero_rate_is_zero() {
        assert_eq!(poisson(1, 2, 3, 4, 0.0), 0);
        assert_eq!(poisson(1, 2, 3, 4, -1.0), 0);
    }
}
