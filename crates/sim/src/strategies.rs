//! Alert-strategy catalog generation with injected anti-patterns.
//!
//! "The configuration of alert strategies is empirical, which heavily
//! depends on human expertise" (§I) — and that is exactly where
//! anti-patterns creep in. The generator plays the role of those human
//! strategy authors: it writes a full catalog (the paper's study covers
//! **2010 strategies**) of probe/log/metric rules for every microservice,
//! and deliberately mis-writes a controlled fraction of them:
//!
//! | Injection | Anti-pattern | Mechanism |
//! |---|---|---|
//! | vague title | A1 | title replaced by "X is abnormal"-style text |
//! | misleading severity | A2 | severity ≥ 2 ranks away from impact-implied |
//! | improper rule | A3 | infra metric on a fault-tolerant microservice |
//! | over-sensitive | A4 | threshold inside the noise band, debounce 1 |
//! | chatty | A5 | fires on baseline log chatter with a short cooldown |
//!
//! The injected truth ([`InjectedProfile`]) is kept per strategy so the
//! detectors in `alertops-detect` can be scored with precision/recall.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use alertops_model::{
    AlertStrategy, LogRule, MetricKind, MetricRule, MicroserviceId, ProbeRule, Severity,
    SimDuration, Sop, StrategyId, StrategyKind, ThresholdOp,
};

use crate::rng;
use crate::telemetry::default_profile;
use crate::topology::Topology;

/// Ground truth: which anti-patterns were deliberately injected into a
/// strategy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct InjectedProfile {
    /// A1 — unclear name or description.
    pub vague_title: bool,
    /// A2 — misleading severity.
    pub misleading_severity: bool,
    /// A3 — improper/outdated generation rule (infra metric whose target
    /// is shielded by fault tolerance).
    pub improper_rule: bool,
    /// A4 — over-sensitive rule producing transient/toggling alerts.
    pub oversensitive: bool,
    /// A5 — chatty rule producing repeating alerts.
    pub chatty: bool,
}

impl InjectedProfile {
    /// Whether any anti-pattern was injected.
    #[must_use]
    pub fn any(&self) -> bool {
        self.vague_title
            || self.misleading_severity
            || self.improper_rule
            || self.oversensitive
            || self.chatty
    }

    /// Whether the strategy is clean (no injected anti-pattern).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        !self.any()
    }
}

/// Configuration for [`StrategyCatalog::generate`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StrategyCatalogConfig {
    /// Total number of strategies to generate (the paper: 2010). They are
    /// dealt round-robin over microservices.
    pub total_strategies: usize,
    /// Fraction with a vague title (A1).
    pub vague_fraction: f64,
    /// Fraction with misleading severity (A2).
    pub misleading_fraction: f64,
    /// Fraction with an over-sensitive threshold (A4).
    pub oversensitive_fraction: f64,
    /// Fraction of chatty log rules (A5).
    pub chatty_fraction: f64,
    /// Fraction of SOPs left incomplete (lowers handleability).
    pub poor_sop_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for StrategyCatalogConfig {
    fn default() -> Self {
        Self {
            total_strategies: 2010,
            vague_fraction: 0.08,
            misleading_fraction: 0.07,
            oversensitive_fraction: 0.06,
            chatty_fraction: 0.04,
            poor_sop_fraction: 0.30,
            seed: 2,
        }
    }
}

/// The generated strategy catalog: strategies, their SOPs, and the
/// injected ground truth.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StrategyCatalog {
    strategies: Vec<AlertStrategy>,
    profiles: HashMap<StrategyId, InjectedProfile>,
    sops: HashMap<StrategyId, Sop>,
}

/// The metric kinds cycled through when generating metric strategies.
const METRIC_CYCLE: [MetricKind; 7] = [
    MetricKind::CpuUtilization,
    MetricKind::MemoryUtilization,
    MetricKind::DiskUsage,
    MetricKind::Latency,
    MetricKind::ErrorRate,
    MetricKind::ConnectionCount,
    MetricKind::NetworkThroughput,
];

/// Vague title templates quoted (nearly verbatim) from the paper's A1
/// discussion.
const VAGUE_TEMPLATES: [&str; 4] = [
    "{service} is abnormal",
    "Instance x is abnormal",
    "Component y encounters exceptions",
    "Computing cluster has risks",
];

impl StrategyCatalog {
    /// An empty catalog, to be filled with [`push`](Self::push) — the
    /// bring-your-own-strategies path for users monitoring a real system
    /// rather than the simulator's generated one.
    #[must_use]
    pub fn empty() -> Self {
        Self {
            strategies: Vec::new(),
            profiles: HashMap::new(),
            sops: HashMap::new(),
        }
    }

    /// Builds a catalog from hand-written strategies (ids must be dense
    /// from zero, in order). Ground truth defaults to clean; SOPs can be
    /// attached later via [`push`](Self::push)-style reconstruction or
    /// kept externally.
    ///
    /// # Panics
    ///
    /// Panics if ids are not dense from zero.
    #[must_use]
    pub fn from_strategies(strategies: Vec<AlertStrategy>) -> Self {
        let mut catalog = Self::empty();
        for strategy in strategies {
            let sop = Sop::builder(strategy.title_template().to_owned(), strategy.id())
                .build()
                .expect("strategy titles are non-empty");
            catalog.push(strategy, InjectedProfile::default(), sop);
        }
        catalog
    }

    /// Generates a catalog for `topology`. Deterministic in the seed.
    ///
    /// Strategies are assigned to microservices round-robin; each
    /// microservice's slots cycle through probe → log → the seven metric
    /// kinds, so a 2010-strategy catalog over 192 microservices yields
    /// ~10.5 strategies per microservice, matching the paper's ratio.
    ///
    /// # Panics
    ///
    /// Panics if `total_strategies` is zero.
    #[must_use]
    pub fn generate(topology: &Topology, config: &StrategyCatalogConfig) -> Self {
        assert!(config.total_strategies > 0, "need at least one strategy");
        let seed = config.seed;
        let n_ms = topology.microservices().len();
        let mut strategies = Vec::with_capacity(config.total_strategies);
        let mut profiles = HashMap::new();
        let mut sops = HashMap::new();

        for i in 0..config.total_strategies {
            let id = StrategyId(i as u64);
            let ms = &topology.microservices()[i % n_ms];
            let slot = i / n_ms; // which of the microservice's slots
            let service_name = topology
                .service(ms.service)
                .map_or("Unknown", |s| s.name.as_str());

            // --- decide injections (mutually independent draws) ---
            let mut profile = InjectedProfile {
                vague_title: rng::uniform(seed, 41, i as u64, 0) < config.vague_fraction,
                misleading_severity: rng::uniform(seed, 42, i as u64, 0)
                    < config.misleading_fraction,
                oversensitive: false,
                chatty: false,
                improper_rule: false,
            };

            // --- build the rule ---
            let (kind, appropriate_severity, base_title) = match slot % 9 {
                0 => (
                    StrategyKind::Probe(ProbeRule {
                        no_response_timeout: SimDuration::from_secs(
                            60 + 30 * (rng::hash3(seed, 43, i as u64, 0) % 4),
                        ),
                    }),
                    Severity::Critical,
                    format!("{} not responding to heartbeat probes", ms.name),
                ),
                1 => {
                    // Log rule; a configured fraction are chatty (A5).
                    let chatty = rng::uniform(seed, 44, i as u64, 0) < config.chatty_fraction * 4.5;
                    profile.chatty = chatty;
                    let rule = if chatty {
                        LogRule {
                            keyword: "WARN".to_owned(),
                            min_count: 1,
                            window: SimDuration::from_mins(5),
                        }
                    } else {
                        LogRule {
                            keyword: "ERROR".to_owned(),
                            min_count: 5,
                            window: SimDuration::from_mins(2),
                        }
                    };
                    let title = if chatty {
                        format!("{} process number warning", ms.name)
                    } else {
                        format!(
                            "{} logged {} errors within {} minutes",
                            ms.name,
                            rule.min_count,
                            rule.window.as_secs() / 60
                        )
                    };
                    let sev = if chatty {
                        Severity::Warning
                    } else {
                        Severity::Minor
                    };
                    (StrategyKind::Log(rule), sev, title)
                }
                slot_rest => {
                    let metric = METRIC_CYCLE[(slot_rest - 2) % METRIC_CYCLE.len()];
                    let mp = default_profile(metric);
                    let oversensitive =
                        rng::uniform(seed, 45, i as u64, 0) < config.oversensitive_fraction * 1.8;
                    profile.oversensitive = oversensitive;
                    // Clean thresholds sit well above the noise band;
                    // over-sensitive ones sit inside it (A4).
                    let sigmas = if oversensitive { 1.0 } else { 5.0 };
                    let seasonal_margin = mp.seasonal_amplitude * mp.baseline;
                    let threshold = mp.baseline + seasonal_margin + sigmas * mp.noise_std;
                    let rule = MetricRule {
                        metric,
                        op: ThresholdOp::Above,
                        threshold,
                        consecutive_samples: if oversensitive { 1 } else { 3 },
                    };
                    profile.improper_rule = metric.is_infrastructure() && ms.fault_tolerant;
                    let sev = if metric.is_infrastructure() {
                        if ms.fault_tolerant {
                            Severity::Warning
                        } else {
                            Severity::Minor
                        }
                    } else {
                        Severity::Major
                    };
                    let title = format!(
                        "{} of {} is higher than {:.0}",
                        metric.name().replace('_', " "),
                        ms.name,
                        threshold
                    );
                    (StrategyKind::Metric(rule), sev, title)
                }
            };

            // --- severity: appropriate unless injected misleading ---
            let severity = if profile.misleading_severity {
                mislead(appropriate_severity, rng::hash3(seed, 46, i as u64, 0))
            } else {
                appropriate_severity
            };

            // --- title: concrete unless injected vague ---
            let title = if profile.vague_title {
                let template = VAGUE_TEMPLATES
                    [(rng::hash3(seed, 47, i as u64, 0) % VAGUE_TEMPLATES.len() as u64) as usize];
                template.replace("{service}", service_name)
            } else {
                base_title
            };

            // --- cooldown: chatty rules re-fire quickly ---
            let cooldown = if profile.chatty {
                SimDuration::from_mins(5)
            } else {
                SimDuration::from_mins(30)
            };

            let strategy = AlertStrategy::builder(id)
                .title_template(title.clone())
                .severity(severity)
                .service(ms.service)
                .microservice(ms.id)
                .kind(kind)
                .cooldown(cooldown)
                .notify(format!(
                    "oce-{}@cloud.example",
                    service_name.to_ascii_lowercase().replace(' ', "-")
                ))
                .build()
                .expect("generated strategy is structurally valid");

            // --- SOP, complete or poor ---
            let poor_sop = rng::uniform(seed, 48, i as u64, 0) < config.poor_sop_fraction;
            let sop = if poor_sop {
                Sop::builder(title.clone(), id)
                    .description(title.clone())
                    .build()
            } else {
                Sop::builder(title.clone(), id)
                    .description(format!("Alert condition for {}", ms.name))
                    .generation_rule(describe_rule(strategy.kind()))
                    .potential_impact(format!(
                        "May degrade {service_name} for tenants in {}",
                        ms.region
                    ))
                    .possible_cause("Workload spike beyond provisioned capacity.")
                    .possible_cause("Recent deployment regression.")
                    .step(format!("Check dashboards for {}", ms.name))
                    .step("Inspect recent deployments and roll back if correlated.")
                    .step("If unresolved in 30 minutes, page the service owner.")
                    .build()
            }
            .expect("generated SOP is structurally valid");

            profiles.insert(id, profile);
            sops.insert(id, sop);
            strategies.push(strategy);
        }

        Self {
            strategies,
            profiles,
            sops,
        }
    }

    /// All strategies, ordered by id.
    #[must_use]
    pub fn strategies(&self) -> &[AlertStrategy] {
        &self.strategies
    }

    /// The strategy with the given id, if present.
    #[must_use]
    pub fn strategy(&self, id: StrategyId) -> Option<&AlertStrategy> {
        self.strategies.get(id.0 as usize)
    }

    /// The injected ground truth for a strategy (clean profile if the id
    /// is unknown).
    #[must_use]
    pub fn profile(&self, id: StrategyId) -> InjectedProfile {
        self.profiles.get(&id).copied().unwrap_or_default()
    }

    /// The SOP of a strategy.
    #[must_use]
    pub fn sop(&self, id: StrategyId) -> Option<&Sop> {
        self.sops.get(&id)
    }

    /// Number of strategies.
    #[must_use]
    pub fn len(&self) -> usize {
        self.strategies.len()
    }

    /// Whether the catalog is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.strategies.is_empty()
    }

    /// Ids of strategies with at least one injected anti-pattern.
    #[must_use]
    pub fn injected_ids(&self) -> Vec<StrategyId> {
        let mut ids: Vec<StrategyId> = self
            .profiles
            .iter()
            .filter(|(_, p)| p.any())
            .map(|(&id, _)| id)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Appends a hand-crafted strategy (with its ground truth and SOP)
    /// to the catalog — used by scenarios that need one specific actor,
    /// e.g. the dominant "haproxy process number warning" repeater of
    /// the Fig. 3 storm.
    ///
    /// # Panics
    ///
    /// Panics if the strategy's id is not the next dense id.
    pub fn push(&mut self, strategy: AlertStrategy, profile: InjectedProfile, sop: Sop) {
        assert_eq!(
            strategy.id().0 as usize,
            self.strategies.len(),
            "catalog ids must stay dense"
        );
        self.profiles.insert(strategy.id(), profile);
        self.sops.insert(strategy.id(), sop);
        self.strategies.push(strategy);
    }

    /// Strategies owned by `ms`.
    pub fn by_microservice(&self, ms: MicroserviceId) -> impl Iterator<Item = &AlertStrategy> {
        self.strategies
            .iter()
            .filter(move |s| s.microservice() == ms)
    }
}

/// Pushes a severity at least two ranks away from `appropriate`.
fn mislead(appropriate: Severity, entropy: u64) -> Severity {
    let candidates: Vec<Severity> = Severity::ALL
        .into_iter()
        .filter(|s| s.distance(appropriate) >= 2)
        .collect();
    candidates[(entropy % candidates.len() as u64) as usize]
}

/// Renders a human-readable description of a generation rule, as it
/// would appear in the SOP's "Generation Rule" section.
fn describe_rule(kind: &StrategyKind) -> String {
    match kind {
        StrategyKind::Probe(p) => format!(
            "Probe the instance every 15s; alert after {}s without a response.",
            p.no_response_timeout.as_secs()
        ),
        StrategyKind::Log(l) => format!(
            "IF the logs contain {} {}s in the past {} minutes, THEN generate an alert.",
            l.min_count,
            l.keyword,
            l.window.as_secs() / 60
        ),
        StrategyKind::Metric(m) => format!(
            "Continuously check {}; generate the alert when the value is {} {:.0} for {} consecutive samples.",
            m.metric,
            m.op,
            m.threshold,
            m.consecutive_samples
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyConfig;

    fn catalog() -> (Topology, StrategyCatalog) {
        let topo = Topology::generate(&TopologyConfig::default());
        let cat = StrategyCatalog::generate(&topo, &StrategyCatalogConfig::default());
        (topo, cat)
    }

    #[test]
    fn paper_scale_catalog() {
        let (_, cat) = catalog();
        assert_eq!(cat.len(), 2010);
        assert!(!cat.is_empty());
    }

    #[test]
    fn deterministic() {
        let topo = Topology::generate(&TopologyConfig::default());
        let a = StrategyCatalog::generate(&topo, &StrategyCatalogConfig::default());
        let b = StrategyCatalog::generate(&topo, &StrategyCatalogConfig::default());
        assert_eq!(a.strategies(), b.strategies());
    }

    #[test]
    fn every_strategy_has_sop_and_profile() {
        let (_, cat) = catalog();
        for s in cat.strategies() {
            assert!(cat.sop(s.id()).is_some(), "missing SOP for {}", s.id());
            let _ = cat.profile(s.id()); // must not panic
        }
    }

    #[test]
    fn injection_fractions_are_plausible() {
        let (_, cat) = catalog();
        let n = cat.len() as f64;
        let count = |f: fn(&InjectedProfile) -> bool| {
            cat.strategies()
                .iter()
                .filter(|s| f(&cat.profile(s.id())))
                .count() as f64
        };
        let vague = count(|p| p.vague_title) / n;
        assert!((0.04..0.14).contains(&vague), "vague fraction {vague}");
        let misleading = count(|p| p.misleading_severity) / n;
        assert!(
            (0.03..0.12).contains(&misleading),
            "misleading fraction {misleading}"
        );
        let oversensitive = count(|p| p.oversensitive) / n;
        assert!(
            (0.02..0.15).contains(&oversensitive),
            "oversensitive fraction {oversensitive}"
        );
        let chatty = count(|p| p.chatty) / n;
        assert!((0.005..0.06).contains(&chatty), "chatty fraction {chatty}");
        let improper = count(|p| p.improper_rule) / n;
        assert!(
            (0.05..0.35).contains(&improper),
            "improper fraction {improper}"
        );
        // Most strategies remain clean.
        let clean = count(InjectedProfile::is_clean) / n;
        assert!(clean > 0.5, "clean fraction {clean}");
    }

    #[test]
    fn vague_titles_match_paper_patterns() {
        let (_, cat) = catalog();
        let vague: Vec<&AlertStrategy> = cat
            .strategies()
            .iter()
            .filter(|s| cat.profile(s.id()).vague_title)
            .collect();
        assert!(!vague.is_empty());
        for s in vague {
            let t = s.title_template();
            assert!(
                t.contains("abnormal") || t.contains("exceptions") || t.contains("risks"),
                "unexpected vague title {t:?}"
            );
        }
    }

    #[test]
    fn misleading_severity_is_far_from_appropriate() {
        // Probe strategies are appropriately Critical; misleading ones
        // must be ≥ 2 ranks away (Warning or Minor).
        let (_, cat) = catalog();
        for s in cat.strategies() {
            if matches!(s.kind(), StrategyKind::Probe(_)) {
                if cat.profile(s.id()).misleading_severity {
                    assert!(s.severity().distance(Severity::Critical) >= 2);
                } else {
                    assert_eq!(s.severity(), Severity::Critical);
                }
            }
        }
    }

    #[test]
    fn oversensitive_rules_sit_in_the_noise_band() {
        let (_, cat) = catalog();
        for s in cat.strategies() {
            if let StrategyKind::Metric(rule) = s.kind() {
                let mp = default_profile(rule.metric);
                let margin = mp.seasonal_amplitude * mp.baseline;
                if cat.profile(s.id()).oversensitive {
                    assert!(rule.threshold <= mp.baseline + margin + 1.5 * mp.noise_std);
                    assert_eq!(rule.consecutive_samples, 1);
                } else {
                    assert!(rule.threshold >= mp.baseline + margin + 4.0 * mp.noise_std);
                    assert!(rule.consecutive_samples >= 3);
                }
            }
        }
    }

    #[test]
    fn improper_rules_are_infra_on_fault_tolerant() {
        let (topo, cat) = catalog();
        for s in cat.strategies() {
            let p = cat.profile(s.id());
            if p.improper_rule {
                let StrategyKind::Metric(rule) = s.kind() else {
                    panic!("improper rule must be a metric rule");
                };
                assert!(rule.metric.is_infrastructure());
                assert!(topo.microservice(s.microservice()).unwrap().fault_tolerant);
            }
        }
    }

    #[test]
    fn chatty_rules_have_short_cooldowns() {
        let (_, cat) = catalog();
        for s in cat.strategies() {
            if cat.profile(s.id()).chatty {
                assert!(s.cooldown() <= SimDuration::from_mins(5));
                assert!(matches!(s.kind(), StrategyKind::Log(_)));
            }
        }
    }

    #[test]
    fn sop_completeness_is_bimodal() {
        let (_, cat) = catalog();
        let (mut poor, mut full) = (0, 0);
        for s in cat.strategies() {
            let c = cat.sop(s.id()).unwrap().completeness();
            if c < 0.5 {
                poor += 1;
            } else if c > 0.9 {
                full += 1;
            }
        }
        assert!(poor > 0 && full > 0);
        // Configured 30% poor.
        let frac = poor as f64 / cat.len() as f64;
        assert!((0.2..0.4).contains(&frac), "poor SOP fraction {frac}");
    }

    #[test]
    fn strategies_cover_all_microservices() {
        let (topo, cat) = catalog();
        for ms in topo.microservices() {
            assert!(
                cat.by_microservice(ms.id).count() >= 10,
                "{} has too few strategies",
                ms.name
            );
        }
    }

    #[test]
    fn injected_ids_sorted_and_consistent() {
        let (_, cat) = catalog();
        let ids = cat.injected_ids();
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
        for id in &ids {
            assert!(cat.profile(*id).any());
        }
    }
}
