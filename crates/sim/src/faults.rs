//! Fault injection: the anomalies behind the alerts.
//!
//! Each [`FaultEvent`] degrades one microservice over a time interval.
//! Cascading faults (the substrate of anti-pattern A6) are expanded
//! against the topology: a source failure spawns attenuated, delayed
//! faults in its transitive dependents, exactly the "anomalous states
//! propagate through the service-calling structure" mechanism the paper
//! describes.

use serde::{Deserialize, Serialize};

use alertops_model::{MicroserviceId, SimDuration, SimTime, TimeRange};

use crate::rng;
use crate::topology::Topology;

/// The kind of injected anomaly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum FaultKind {
    /// A short-lived blip (seconds to a couple of minutes) that recovers
    /// on its own — the raw material of transient alerts (A4).
    Transient,
    /// A sustained failure requiring intervention; escalates to an
    /// incident on non-fault-tolerant microservices.
    Sustained,
    /// Gray failure: memory leaks slowly until exhaustion.
    GrayMemoryLeak,
    /// Gray failure: CPU usage creeps up under a runaway workload.
    GrayCpuOverload,
    /// A sustained failure that additionally cascades to dependents.
    CascadeSource,
    /// A fault induced in a dependent by an upstream cascade source.
    CascadeInduced,
}

impl FaultKind {
    /// Whether this fault, if unmitigated on a non-fault-tolerant
    /// microservice, represents a user-visible service degradation.
    #[must_use]
    pub const fn is_user_visible(self) -> bool {
        matches!(
            self,
            FaultKind::Sustained
                | FaultKind::CascadeSource
                | FaultKind::CascadeInduced
                | FaultKind::GrayMemoryLeak
                | FaultKind::GrayCpuOverload
        )
    }
}

/// One injected fault.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// The degraded microservice.
    pub microservice: MicroserviceId,
    /// The kind of anomaly.
    pub kind: FaultKind,
    /// When the fault begins.
    pub start: SimTime,
    /// How long it lasts (for gray failures: time to full exhaustion).
    pub duration: SimDuration,
    /// Degradation magnitude in `[0, 1]`; scales metric deviations.
    pub magnitude: f64,
    /// For `CascadeInduced`: the microservice of the originating
    /// `CascadeSource` fault.
    pub cascade_origin: Option<MicroserviceId>,
}

impl FaultEvent {
    /// The `[start, start+duration)` window of the fault.
    #[must_use]
    pub fn window(&self) -> TimeRange {
        TimeRange::new(self.start, self.start.saturating_add(self.duration))
    }

    /// Whether the fault is active at `t`.
    #[must_use]
    pub fn active_at(&self, t: SimTime) -> bool {
        self.window().contains(t)
    }

    /// The fault's intensity at `t` in `[0, 1]`: 0 when inactive;
    /// `magnitude` for step faults; a linear ramp from 0 to `magnitude`
    /// for gray failures (leaks grow over time).
    #[must_use]
    pub fn intensity_at(&self, t: SimTime) -> f64 {
        if !self.active_at(t) {
            return 0.0;
        }
        match self.kind {
            FaultKind::GrayMemoryLeak | FaultKind::GrayCpuOverload => {
                let elapsed = t.duration_since(self.start).as_secs() as f64;
                let total = self.duration.as_secs().max(1) as f64;
                self.magnitude * (elapsed / total).min(1.0)
            }
            _ => self.magnitude,
        }
    }
}

/// A set of fault events, kept sorted by start time.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Creates an empty plan.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// All events, sorted by start time.
    #[must_use]
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Adds an event, keeping the plan sorted.
    pub fn push(&mut self, event: FaultEvent) {
        let pos = self.events.partition_point(|e| e.start <= event.start);
        self.events.insert(pos, event);
    }

    /// Adds a cascade: the source fault itself plus induced faults in
    /// the topological dependents of `source`, with per-hop delay and
    /// magnitude attenuation. Returns how many induced faults were
    /// created.
    ///
    /// `propagation_prob` is the per-dependent chance of the anomaly
    /// spreading (fault-tolerant dependents halve it), `hop_delay` the
    /// per-hop onset lag.
    #[allow(clippy::too_many_arguments)]
    pub fn push_cascade(
        &mut self,
        topology: &Topology,
        source: MicroserviceId,
        start: SimTime,
        duration: SimDuration,
        magnitude: f64,
        propagation_prob: f64,
        hop_delay: SimDuration,
        seed: u64,
    ) -> usize {
        self.push(FaultEvent {
            microservice: source,
            kind: FaultKind::CascadeSource,
            start,
            duration,
            magnitude,
            cascade_origin: None,
        });
        let mut induced = 0;
        for (dep, dist) in topology.cascade_closure(source) {
            let ft = topology
                .microservice(dep)
                .is_some_and(|ms| ms.fault_tolerant);
            let prob = propagation_prob * if ft { 0.5 } else { 1.0 };
            // Attenuate per hop.
            let p = prob.powi(dist as i32);
            if rng::uniform(seed, source.0, dep.0, dist as u64) >= p {
                continue;
            }
            let delay = SimDuration::from_secs(hop_delay.as_secs() * dist as u64);
            let att = magnitude * 0.8f64.powi(dist as i32 - 1);
            self.push(FaultEvent {
                microservice: dep,
                kind: FaultKind::CascadeInduced,
                start: start.saturating_add(delay),
                duration: SimDuration::from_secs(
                    (duration.as_secs() as f64 * 0.9f64.powi(dist as i32)) as u64,
                ),
                magnitude: att,
                cascade_origin: Some(source),
            });
            induced += 1;
        }
        induced
    }

    /// Faults active on `microservice` at time `t`.
    pub fn active_on(
        &self,
        microservice: MicroserviceId,
        t: SimTime,
    ) -> impl Iterator<Item = &FaultEvent> {
        self.events
            .iter()
            .filter(move |e| e.microservice == microservice && e.active_at(t))
    }

    /// The combined intensity of all faults of the given kinds on
    /// `microservice` at `t`, saturating at 1.
    #[must_use]
    pub fn intensity(&self, microservice: MicroserviceId, t: SimTime) -> f64 {
        self.active_on(microservice, t)
            .map(|e| e.intensity_at(t))
            .sum::<f64>()
            .min(1.0)
    }

    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan has no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl Extend<FaultEvent> for FaultPlan {
    fn extend<T: IntoIterator<Item = FaultEvent>>(&mut self, iter: T) {
        for event in iter {
            self.push(event);
        }
    }
}

impl FromIterator<FaultEvent> for FaultPlan {
    fn from_iter<T: IntoIterator<Item = FaultEvent>>(iter: T) -> Self {
        let mut plan = FaultPlan::new();
        plan.extend(iter);
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyConfig;

    fn step_fault(ms: u64, start: u64, dur: u64) -> FaultEvent {
        FaultEvent {
            microservice: MicroserviceId(ms),
            kind: FaultKind::Sustained,
            start: SimTime::from_secs(start),
            duration: SimDuration::from_secs(dur),
            magnitude: 0.8,
            cascade_origin: None,
        }
    }

    #[test]
    fn activity_window_is_half_open() {
        let f = step_fault(1, 100, 50);
        assert!(!f.active_at(SimTime::from_secs(99)));
        assert!(f.active_at(SimTime::from_secs(100)));
        assert!(f.active_at(SimTime::from_secs(149)));
        assert!(!f.active_at(SimTime::from_secs(150)));
    }

    #[test]
    fn step_fault_intensity_is_flat() {
        let f = step_fault(1, 0, 100);
        assert_eq!(f.intensity_at(SimTime::from_secs(1)), 0.8);
        assert_eq!(f.intensity_at(SimTime::from_secs(99)), 0.8);
        assert_eq!(f.intensity_at(SimTime::from_secs(100)), 0.0);
    }

    #[test]
    fn gray_fault_ramps_linearly() {
        let f = FaultEvent {
            kind: FaultKind::GrayMemoryLeak,
            magnitude: 1.0,
            ..step_fault(1, 0, 100)
        };
        assert!(f.intensity_at(SimTime::from_secs(0)) < 0.01);
        let mid = f.intensity_at(SimTime::from_secs(50));
        assert!((mid - 0.5).abs() < 0.02, "mid intensity {mid}");
        let late = f.intensity_at(SimTime::from_secs(99));
        assert!(late > 0.95);
    }

    #[test]
    fn plan_stays_sorted() {
        let mut plan = FaultPlan::new();
        plan.push(step_fault(1, 300, 10));
        plan.push(step_fault(2, 100, 10));
        plan.push(step_fault(3, 200, 10));
        let starts: Vec<u64> = plan.events().iter().map(|e| e.start.as_secs()).collect();
        assert_eq!(starts, vec![100, 200, 300]);
    }

    #[test]
    fn intensity_sums_and_saturates() {
        let mut plan = FaultPlan::new();
        plan.push(step_fault(1, 0, 100));
        plan.push(step_fault(1, 0, 100));
        assert_eq!(
            plan.intensity(MicroserviceId(1), SimTime::from_secs(5)),
            1.0
        );
        assert_eq!(
            plan.intensity(MicroserviceId(2), SimTime::from_secs(5)),
            0.0
        );
    }

    #[test]
    fn cascade_produces_delayed_attenuated_faults() {
        let topo = Topology::generate(&TopologyConfig::default());
        let source = topo
            .microservices()
            .iter()
            .map(|ms| ms.id)
            .max_by_key(|&id| topo.cascade_closure(id).len())
            .unwrap();
        let mut plan = FaultPlan::new();
        let induced = plan.push_cascade(
            &topo,
            source,
            SimTime::from_hours(1),
            SimDuration::from_mins(30),
            0.9,
            0.95,
            SimDuration::from_mins(2),
            7,
        );
        assert!(induced > 0, "cascade induced no faults");
        assert_eq!(plan.len(), induced + 1);
        for e in plan
            .events()
            .iter()
            .filter(|e| e.kind == FaultKind::CascadeInduced)
        {
            assert!(e.start >= SimTime::from_hours(1));
            assert!(e.magnitude <= 0.9);
            assert_eq!(e.cascade_origin, Some(source));
        }
    }

    #[test]
    fn cascade_is_deterministic() {
        let topo = Topology::generate(&TopologyConfig::default());
        let source = MicroserviceId(0);
        let mut a = FaultPlan::new();
        let mut b = FaultPlan::new();
        let args = (
            SimTime::from_hours(1),
            SimDuration::from_mins(10),
            0.8,
            0.9,
            SimDuration::from_mins(1),
        );
        a.push_cascade(&topo, source, args.0, args.1, args.2, args.3, args.4, 5);
        b.push_cascade(&topo, source, args.0, args.1, args.2, args.3, args.4, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn from_iterator_collects_sorted() {
        let plan: FaultPlan = vec![step_fault(1, 50, 5), step_fault(2, 10, 5)]
            .into_iter()
            .collect();
        assert_eq!(plan.events()[0].start, SimTime::from_secs(10));
        assert_eq!(plan.len(), 2);
        assert!(!plan.is_empty());
    }

    #[test]
    fn user_visibility_partition() {
        assert!(!FaultKind::Transient.is_user_visible());
        assert!(FaultKind::Sustained.is_user_visible());
        assert!(FaultKind::CascadeInduced.is_user_visible());
    }
}
