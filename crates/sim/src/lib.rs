//! Deterministic cloud microservice and monitoring-system simulator.
//!
//! The DSN'22 study analyzed 4M+ production alerts from a cloud of 11
//! services and 192 microservices. That telemetry is proprietary, so this
//! crate rebuilds the *generating processes* behind it, end to end:
//!
//! 1. [`topology`] — a seeded service/microservice dependency graph with
//!    the paper's shape (11 services, 192 microservices, regions, DCs);
//! 2. [`telemetry`] — per-microservice metric series (diurnal baseline +
//!    noise), log error streams, and probe responses;
//! 3. [`faults`] — injected anomalies: transient blips, sustained
//!    failures, gray failures (memory leak, CPU creep), and cascades that
//!    propagate along the dependency graph;
//! 4. [`strategies`] — a generated catalog of alert strategies (probes /
//!    logs / metrics, per §II-B3) with *known* injected anti-patterns:
//!    vague titles (A1), misleading severities (A2), improper infra rules
//!    (A3), over-sensitive thresholds (A4), and chatty rules (A5);
//! 5. [`monitor`] — the monitoring system: evaluates every strategy
//!    against the telemetry tick by tick, applies debounce and cooldown,
//!    emits alerts, and auto-clears probe/metric alerts (§II-B4);
//! 6. [`ocesim`] — the OCE model: assigns alerts to engineers and
//!    produces per-alert processing times whose inflation under
//!    anti-patterns mirrors the paper's candidate-mining assumption;
//! 7. [`scenarios`] — ready-made experiment presets: the scaled-down
//!    two-year study, the Fig. 3 alert storm, the Table II cascade.
//!
//! Everything is seeded: the same seed always reproduces the same alert
//! stream, which is what makes the figure harnesses in `alertops-bench`
//! reproducible.
//!
//! # Example
//!
//! ```
//! use alertops_sim::scenarios;
//!
//! let out = scenarios::quickstart(7).run();
//! assert!(!out.alerts.is_empty());
//! // Same seed ⇒ identical stream.
//! let again = scenarios::quickstart(7).run();
//! assert_eq!(out.alerts.len(), again.alerts.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod faults;
pub mod feedback;
pub mod monitor;
pub mod ocesim;
pub mod scenarios;
pub mod strategies;
pub mod telemetry;
pub mod topology;
pub mod workload;

mod rng;

pub use faults::{FaultEvent, FaultKind, FaultPlan};
pub use feedback::FeedbackOracle;
pub use monitor::{MonitorConfig, MonitoringSystem};
pub use ocesim::{OceTeam, ProcessingModel};
pub use scenarios::{Scenario, SimOutput};
pub use strategies::{InjectedProfile, StrategyCatalog, StrategyCatalogConfig};
pub use topology::{Microservice, Service, Topology, TopologyConfig};
pub use workload::{LoadShape, StatisticalStream};
