//! Telemetry generation: metrics, logs, probes.
//!
//! "Multiple monitoring techniques are employed to collect various types
//! of telemetry data" (§I). This module synthesizes all three kinds the
//! paper's strategies consume (§II-B3): performance-metric time series,
//! log error streams, and probe heartbeats — each a deterministic
//! function of `(microservice, time, seed)` plus the fault plan, so any
//! point can be sampled in O(active faults) with no stored state.

use serde::{Deserialize, Serialize};

use alertops_model::{MetricKind, MicroserviceId, SimTime, TimeRange, SECS_PER_DAY};

use crate::faults::{FaultKind, FaultPlan};
use crate::rng;
use crate::topology::Topology;

/// Per-metric baseline and noise characteristics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricProfile {
    /// Mean level in the metric's unit.
    pub baseline: f64,
    /// Diurnal seasonality amplitude as a fraction of baseline.
    pub seasonal_amplitude: f64,
    /// Standard deviation of the per-sample Gaussian noise.
    pub noise_std: f64,
}

/// The default profile of each metric kind.
#[must_use]
pub fn default_profile(kind: MetricKind) -> MetricProfile {
    match kind {
        MetricKind::CpuUtilization => MetricProfile {
            baseline: 40.0,
            seasonal_amplitude: 0.25,
            noise_std: 5.0,
        },
        MetricKind::MemoryUtilization => MetricProfile {
            baseline: 50.0,
            seasonal_amplitude: 0.05,
            noise_std: 3.0,
        },
        MetricKind::DiskUsage => MetricProfile {
            baseline: 55.0,
            seasonal_amplitude: 0.01,
            noise_std: 1.0,
        },
        MetricKind::NetworkThroughput => MetricProfile {
            baseline: 100.0,
            seasonal_amplitude: 0.4,
            noise_std: 12.0,
        },
        MetricKind::ConnectionCount => MetricProfile {
            baseline: 200.0,
            seasonal_amplitude: 0.3,
            noise_std: 25.0,
        },
        MetricKind::Latency => MetricProfile {
            baseline: 50.0,
            seasonal_amplitude: 0.15,
            noise_std: 8.0,
        },
        MetricKind::RequestRate => MetricProfile {
            baseline: 500.0,
            seasonal_amplitude: 0.45,
            noise_std: 40.0,
        },
        MetricKind::ErrorRate => MetricProfile {
            baseline: 0.5,
            seasonal_amplitude: 0.1,
            noise_std: 0.3,
        },
    }
}

/// A read-only view that answers "what did the monitoring system observe
/// at time t" for every telemetry source.
#[derive(Debug, Clone, Copy)]
pub struct Telemetry<'a> {
    topology: &'a Topology,
    faults: &'a FaultPlan,
    seed: u64,
}

impl<'a> Telemetry<'a> {
    /// Creates a telemetry view over a topology and a fault plan.
    #[must_use]
    pub fn new(topology: &'a Topology, faults: &'a FaultPlan, seed: u64) -> Self {
        Self {
            topology,
            faults,
            seed,
        }
    }

    /// The topology backing this view.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        self.topology
    }

    /// The fault plan backing this view.
    #[must_use]
    pub fn faults(&self) -> &FaultPlan {
        self.faults
    }

    /// Samples metric `kind` of `ms` at time `t`.
    ///
    /// The value is baseline + diurnal seasonality + Gaussian noise +
    /// fault deviations. Percent metrics are clamped to `[0, 100]`;
    /// everything else to `[0, ∞)`.
    #[must_use]
    pub fn metric(&self, ms: MicroserviceId, kind: MetricKind, t: SimTime) -> f64 {
        let profile = default_profile(kind);
        let phase = rng::uniform(self.seed, 21, ms.0, kind as u64) * std::f64::consts::TAU;
        let day_frac = (t.as_secs() % SECS_PER_DAY) as f64 / SECS_PER_DAY as f64;
        let seasonal = profile.seasonal_amplitude
            * profile.baseline
            * (std::f64::consts::TAU * day_frac + phase).sin();
        let noise = profile.noise_std
            * rng::std_normal(self.seed, 22 + kind as u64, ms.0, t.as_secs() / 60);
        let value = profile.baseline + seasonal + noise + self.fault_deviation(ms, kind, t);
        match kind {
            MetricKind::CpuUtilization
            | MetricKind::MemoryUtilization
            | MetricKind::DiskUsage
            | MetricKind::ErrorRate => value.clamp(0.0, 100.0),
            _ => value.max(0.0),
        }
    }

    /// How active faults shift metric `kind` on `ms` at `t`.
    fn fault_deviation(&self, ms: MicroserviceId, kind: MetricKind, t: SimTime) -> f64 {
        let fault_tolerant = self
            .topology
            .microservice(ms)
            .is_some_and(|m| m.fault_tolerant);
        let mut dev = 0.0;
        for fault in self.faults.active_on(ms, t) {
            let i = fault.intensity_at(t);
            if i <= 0.0 {
                continue;
            }
            // Infrastructure-level symptoms always show on the box.
            dev += match (fault.kind, kind) {
                (FaultKind::GrayCpuOverload, MetricKind::CpuUtilization) => 55.0 * i,
                (FaultKind::GrayMemoryLeak, MetricKind::MemoryUtilization) => 45.0 * i,
                (FaultKind::Transient, MetricKind::CpuUtilization | MetricKind::Latency) => {
                    35.0 * i
                }
                (
                    FaultKind::Sustained | FaultKind::CascadeSource | FaultKind::CascadeInduced,
                    MetricKind::CpuUtilization,
                ) => 20.0 * i,
                (
                    FaultKind::Sustained | FaultKind::CascadeSource | FaultKind::CascadeInduced,
                    MetricKind::ConnectionCount,
                ) => 300.0 * i,
                _ => 0.0,
            };
            // Service-level symptoms are shielded by fault tolerance:
            // "the performance indicators of lower-level infrastructures
            // do not have definite effect on the quality of cloud
            // services" (A3).
            let shield = if fault_tolerant { 0.1 } else { 1.0 };
            let user_visible = fault.kind.is_user_visible();
            dev += match kind {
                MetricKind::Latency if user_visible => 400.0 * i * shield,
                MetricKind::ErrorRate if user_visible => 30.0 * i * shield,
                MetricKind::RequestRate if user_visible => -0.5 * 500.0 * i * shield,
                _ => 0.0,
            };
        }
        dev
    }

    /// Number of ERROR-level log lines `ms` printed during `window`.
    ///
    /// Baseline chatter plus a strong fault term; Poisson-distributed,
    /// deterministic per `(ms, window start)`.
    #[must_use]
    pub fn error_log_count(&self, ms: MicroserviceId, window: TimeRange) -> u32 {
        let mins = (window.duration().as_secs() as f64 / 60.0).max(1.0 / 60.0);
        let fault_intensity = self.faults.intensity(ms, window.start());
        let rate = (0.2 + 20.0 * fault_intensity) * mins;
        rng::poisson(self.seed, 31, ms.0, window.start().as_secs(), rate)
    }

    /// Whether `ms` answers its heartbeat probe at `t`.
    ///
    /// A microservice stops responding while a sustained-class fault of
    /// intensity > 0.6 covers it.
    #[must_use]
    pub fn probe_responsive(&self, ms: MicroserviceId, t: SimTime) -> bool {
        let hard: f64 = self
            .faults
            .active_on(ms, t)
            .filter(|f| {
                matches!(
                    f.kind,
                    FaultKind::Sustained | FaultKind::CascadeSource | FaultKind::CascadeInduced
                )
            })
            .map(|f| f.intensity_at(t))
            .sum();
        hard <= 0.6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultEvent;
    use crate::topology::TopologyConfig;
    use alertops_model::SimDuration;

    fn topo() -> Topology {
        Topology::generate(&TopologyConfig::default())
    }

    fn fault(ms: u64, kind: FaultKind, start: u64, dur: u64, magnitude: f64) -> FaultEvent {
        FaultEvent {
            microservice: MicroserviceId(ms),
            kind,
            start: SimTime::from_secs(start),
            duration: SimDuration::from_secs(dur),
            magnitude,
            cascade_origin: None,
        }
    }

    #[test]
    fn metrics_are_deterministic() {
        let topo = topo();
        let plan = FaultPlan::new();
        let tel = Telemetry::new(&topo, &plan, 5);
        let a = tel.metric(
            MicroserviceId(3),
            MetricKind::CpuUtilization,
            SimTime::from_hours(2),
        );
        let b = tel.metric(
            MicroserviceId(3),
            MetricKind::CpuUtilization,
            SimTime::from_hours(2),
        );
        assert_eq!(a, b);
        let other_seed = Telemetry::new(&topo, &plan, 6).metric(
            MicroserviceId(3),
            MetricKind::CpuUtilization,
            SimTime::from_hours(2),
        );
        assert_ne!(a, other_seed);
    }

    #[test]
    fn percent_metrics_bounded() {
        let topo = topo();
        let plan: FaultPlan = vec![fault(0, FaultKind::GrayCpuOverload, 0, 86_400, 1.0)]
            .into_iter()
            .collect();
        let tel = Telemetry::new(&topo, &plan, 1);
        for h in 0..24 {
            for kind in [
                MetricKind::CpuUtilization,
                MetricKind::MemoryUtilization,
                MetricKind::DiskUsage,
                MetricKind::ErrorRate,
            ] {
                let v = tel.metric(MicroserviceId(0), kind, SimTime::from_hours(h));
                assert!((0.0..=100.0).contains(&v), "{kind} at h{h} = {v}");
            }
            let lat = tel.metric(
                MicroserviceId(0),
                MetricKind::Latency,
                SimTime::from_hours(h),
            );
            assert!(lat >= 0.0);
        }
    }

    #[test]
    fn cpu_overload_raises_cpu() {
        let topo = topo();
        let quiet = FaultPlan::new();
        let noisy: FaultPlan = vec![fault(0, FaultKind::GrayCpuOverload, 0, 7_200, 1.0)]
            .into_iter()
            .collect();
        let t = SimTime::from_secs(7_000); // near the end of the ramp
        let base = Telemetry::new(&topo, &quiet, 1).metric(
            MicroserviceId(0),
            MetricKind::CpuUtilization,
            t,
        );
        let loaded = Telemetry::new(&topo, &noisy, 1).metric(
            MicroserviceId(0),
            MetricKind::CpuUtilization,
            t,
        );
        assert!(
            loaded > base + 30.0,
            "cpu under overload {loaded} vs base {base}"
        );
    }

    #[test]
    fn memory_leak_ramps_over_time() {
        let topo = topo();
        let plan: FaultPlan = vec![fault(0, FaultKind::GrayMemoryLeak, 0, 36_000, 1.0)]
            .into_iter()
            .collect();
        let tel = Telemetry::new(&topo, &plan, 1);
        let early = tel.metric(
            MicroserviceId(0),
            MetricKind::MemoryUtilization,
            SimTime::from_secs(600),
        );
        let late = tel.metric(
            MicroserviceId(0),
            MetricKind::MemoryUtilization,
            SimTime::from_secs(34_000),
        );
        assert!(late > early + 20.0, "leak not visible: {early} -> {late}");
    }

    #[test]
    fn fault_tolerance_shields_service_level_metrics() {
        let topo = topo();
        let ft = topo
            .microservices()
            .iter()
            .find(|m| m.fault_tolerant)
            .unwrap()
            .id;
        let exposed = topo
            .microservices()
            .iter()
            .find(|m| !m.fault_tolerant)
            .unwrap()
            .id;
        let plan: FaultPlan = vec![
            fault(ft.0, FaultKind::Sustained, 0, 3_600, 0.9),
            fault(exposed.0, FaultKind::Sustained, 0, 3_600, 0.9),
        ]
        .into_iter()
        .collect();
        let tel = Telemetry::new(&topo, &plan, 1);
        let t = SimTime::from_secs(1_000);
        let lat_ft = tel.metric(ft, MetricKind::Latency, t);
        let lat_exposed = tel.metric(exposed, MetricKind::Latency, t);
        assert!(
            lat_exposed > lat_ft + 150.0,
            "fault tolerance did not shield latency: ft={lat_ft}, exposed={lat_exposed}"
        );
    }

    #[test]
    fn error_logs_spike_under_fault() {
        let topo = topo();
        let quiet = FaultPlan::new();
        let noisy: FaultPlan = vec![fault(5, FaultKind::Sustained, 0, 3_600, 1.0)]
            .into_iter()
            .collect();
        let window = TimeRange::new(SimTime::from_secs(60), SimTime::from_secs(180));
        let base = Telemetry::new(&topo, &quiet, 1).error_log_count(MicroserviceId(5), window);
        let spiked = Telemetry::new(&topo, &noisy, 1).error_log_count(MicroserviceId(5), window);
        assert!(
            spiked > base + 10,
            "error logs did not spike: {base} -> {spiked}"
        );
    }

    #[test]
    fn probe_fails_only_under_hard_faults() {
        let topo = topo();
        let plan: FaultPlan = vec![
            fault(1, FaultKind::Sustained, 0, 100, 0.9),
            fault(2, FaultKind::Transient, 0, 100, 0.9),
            fault(3, FaultKind::Sustained, 0, 100, 0.3),
        ]
        .into_iter()
        .collect();
        let tel = Telemetry::new(&topo, &plan, 1);
        let t = SimTime::from_secs(50);
        assert!(!tel.probe_responsive(MicroserviceId(1), t));
        assert!(tel.probe_responsive(MicroserviceId(2), t)); // transient ≠ down
        assert!(tel.probe_responsive(MicroserviceId(3), t)); // mild
        assert!(tel.probe_responsive(MicroserviceId(1), SimTime::from_secs(150)));
        // recovered
    }

    #[test]
    fn noise_varies_per_minute_not_per_second() {
        let topo = topo();
        let plan = FaultPlan::new();
        let tel = Telemetry::new(&topo, &plan, 3);
        let a = tel.metric(
            MicroserviceId(0),
            MetricKind::Latency,
            SimTime::from_secs(0),
        );
        let b = tel.metric(
            MicroserviceId(0),
            MetricKind::Latency,
            SimTime::from_secs(30),
        );
        let c = tel.metric(
            MicroserviceId(0),
            MetricKind::Latency,
            SimTime::from_secs(90),
        );
        // Same minute bucket ⇒ same noise; seasonality shift is tiny.
        assert!((a - b).abs() < 0.2, "{a} vs {b}");
        assert_ne!(a, c);
    }
}
