//! The seeded OCE-feedback oracle: replayable QoA labels per window.
//!
//! The streaming QoA loop needs a feedback source — in production that
//! is on-call engineers labelling alerts high/low per criterion; here
//! it is derived from the simulator's *ground truth*:
//!
//! * **indicativeness** — at least one of the strategy's alerts in the
//!   window co-occurs with an incident of its service (same co-occurrence
//!   rule the feature extractor uses: incident covers or follows the
//!   alert within 30 minutes);
//! * **precision** — the strategy was injected without severity-
//!   corrupting anti-patterns (no misleading severity, over-sensitive
//!   threshold, or chatty rule);
//! * **handleability** — the strategy has an SOP and its title is not
//!   vague.
//!
//! Real OCEs mislabel; a `noise` probability flips each verdict,
//! seeded per window so the label stream is a pure function of
//! `(seed, window_index, window contents)` — replay it anywhere and
//! the continually-updated model lands on identical weights.

use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use alertops_model::{Alert, Incident, QoaLabel, SimDuration, StrategyId, QOA_CRITERIA};

use crate::strategies::StrategyCatalog;

/// How far after an alert an incident may start and still count as
/// co-occurring — mirrors the QoA feature extractor's window.
const INCIDENT_LOOKAHEAD: SimDuration = SimDuration::from_mins(30);

/// A seeded, replayable source of per-window OCE feedback.
#[derive(Debug, Clone)]
pub struct FeedbackOracle {
    seed: u64,
    noise: f64,
}

impl FeedbackOracle {
    /// Creates an oracle. `noise` is the per-verdict flip probability.
    ///
    /// # Panics
    ///
    /// Panics if `noise` is outside `[0, 1]`.
    #[must_use]
    pub fn new(seed: u64, noise: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&noise),
            "noise must be a probability, got {noise}"
        );
        Self { seed, noise }
    }

    /// Labels of one window: one [`QoaLabel`] per strategy that alerted
    /// in `window`, sorted by strategy id.
    ///
    /// `incidents` is the full ground-truth incident history of the
    /// run; `catalog` supplies the injected anti-pattern profiles and
    /// SOPs the verdicts are derived from.
    #[must_use]
    pub fn label_window(
        &self,
        window_index: u64,
        catalog: &StrategyCatalog,
        window: &[Alert],
        incidents: &[Incident],
    ) -> Vec<QoaLabel> {
        let alerted: BTreeSet<StrategyId> = window.iter().map(Alert::strategy).collect();
        let mut labels = Vec::with_capacity(alerted.len());
        for id in alerted {
            let Some(strategy) = catalog.strategies().iter().find(|s| s.id() == id) else {
                // Unknown strategy: no ground truth, no feedback.
                continue;
            };
            let profile = catalog.profile(id);
            let indicative = window.iter().any(|alert| {
                alert.strategy() == id
                    && incidents.iter().any(|inc| {
                        inc.service() == strategy.service()
                            && inc.covers_or_follows(alert.raised_at(), INCIDENT_LOOKAHEAD)
                    })
            });
            let precise = !(profile.misleading_severity || profile.oversensitive || profile.chatty);
            let handleable = catalog.sop(id).is_some() && !profile.vague_title;
            labels.push(QoaLabel::new(id, [indicative, precise, handleable]));
        }
        self.flip(window_index, labels)
    }

    /// Applies the per-window label noise: each verdict flips with
    /// probability `noise`, drawn from an RNG seeded by
    /// `(oracle seed, window index)` so replays are exact.
    fn flip(&self, window_index: u64, mut labels: Vec<QoaLabel>) -> Vec<QoaLabel> {
        if self.noise == 0.0 {
            return labels;
        }
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ window_index.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        for label in &mut labels {
            for slot in 0..QOA_CRITERIA {
                if rng.gen_bool(self.noise) {
                    label.labels[slot] = !label.labels[slot];
                }
            }
        }
        labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios;

    #[test]
    fn labels_are_sorted_deduped_and_deterministic() {
        let out = scenarios::quickstart(5).run();
        let oracle = FeedbackOracle::new(11, 0.1);
        let window = &out.alerts[..out.alerts.len().min(300)];
        let a = oracle.label_window(0, &out.catalog, window, &out.incidents);
        let b = oracle.label_window(0, &out.catalog, window, &out.incidents);
        assert_eq!(a, b, "same (seed, window) must replay identically");
        assert!(!a.is_empty());
        for pair in a.windows(2) {
            assert!(pair[0].strategy < pair[1].strategy, "sorted, unique");
        }
    }

    #[test]
    fn noise_perturbs_and_zero_noise_is_ground_truth() {
        let out = scenarios::quickstart(5).run();
        let window = &out.alerts[..out.alerts.len().min(300)];
        let clean =
            FeedbackOracle::new(11, 0.0).label_window(3, &out.catalog, window, &out.incidents);
        let noisy =
            FeedbackOracle::new(11, 0.5).label_window(3, &out.catalog, window, &out.incidents);
        assert_eq!(clean.len(), noisy.len(), "noise flips verdicts, not rows");
        assert_ne!(clean, noisy, "50% noise must disturb some verdict");
        // Different windows draw different noise.
        let other =
            FeedbackOracle::new(11, 0.5).label_window(4, &out.catalog, window, &out.incidents);
        assert_ne!(noisy, other);
    }

    #[test]
    fn clean_strategies_score_high_on_ground_truth() {
        let out = scenarios::quickstart(5).run();
        let oracle = FeedbackOracle::new(0, 0.0);
        let labels = oracle.label_window(0, &out.catalog, &out.alerts, &out.incidents);
        for label in &labels {
            let profile = out.catalog.profile(label.strategy);
            if profile.misleading_severity || profile.oversensitive || profile.chatty {
                assert!(!label.labels[1], "corrupted strategy labelled precise");
            } else {
                assert!(label.labels[1]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn noise_outside_unit_interval_rejected() {
        let _ = FeedbackOracle::new(0, 1.5);
    }
}
