//! Production-scale statistical workload generation.
//!
//! The statistical engine ([`Engine::Statistical`](crate::scenarios::Engine))
//! originally lived inside [`crate::scenarios`] as a batch function that
//! materialized every alert for the whole range at once. This module is
//! its generalization along two axes the soak harness
//! (`alertops-load`) needs:
//!
//! * **Shape** — [`LoadShape`] layers the phenomena production traffic
//!   actually has on top of the per-profile Poisson baseline: a diurnal
//!   sinusoid, deployment-correlated alert waves, slow-burn gray-failure
//!   cascades that ramp a dependency closure over hours, and
//!   multi-tenant instance labels. The default shape is *neutral*: every
//!   multiplier degenerates to exactly `1.0`, and the generated stream
//!   is byte-identical to the pre-shape engine (pinned by
//!   `neutral_shape_reproduces_the_legacy_stream`).
//! * **Laziness** — [`StatisticalStream`] generates the same stream one
//!   simulated hour at a time, so a 60-day, multi-million-alert soak
//!   never holds more than a couple of hours of alerts in memory. The
//!   hour-at-a-time drain is byte-identical to the batch form: alerts
//!   never cross more than one hour boundary (an over-sensitive toggle
//!   burst extends at most 1500 s past its parent, which is under an
//!   hour), so each hour bucket can be sorted and id-stamped as soon as
//!   the following generation hour completes, reproducing the global
//!   `sort_by_key((raised_at, strategy))` + dense-id pass exactly.
//!
//! Everything is keyed off the scenario seed through the stateless
//! [`rng`](crate::rng) hashes, so any hour of any scenario is
//! replayable in isolation.

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

use alertops_model::{
    Alert, AlertId, Clearance, Location, MicroserviceId, ServiceId, SimDuration, SimTime,
};

use crate::faults::{FaultEvent, FaultKind};
use crate::rng;
use crate::scenarios::{Engine, Scenario};
use crate::strategies::StrategyCatalog;
use crate::topology::{Microservice, Topology};

/// The production-traffic phenomena layered over the Poisson baseline.
///
/// The [`Default`] shape is neutral: it reproduces the unshaped engine
/// bit for bit. Each knob is independent, seeded from the scenario
/// seed, and replayable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadShape {
    /// Peak-to-mean amplitude of the diurnal sinusoid in `[0, 1)`.
    /// `0.0` disables it. At `0.5` the peak hour carries 1.5× and the
    /// trough hour 0.5× the flat rate.
    pub diurnal_amplitude: f64,
    /// Hour of day (0–23) the diurnal curve peaks at.
    pub diurnal_peak_hour: u64,
    /// Deployments per simulated day across the fleet; each picks a
    /// service and an hour and multiplies that service's strategies by
    /// [`deploy_wave_boost`](Self::deploy_wave_boost) for the hour —
    /// the "alert wave right after a rollout" pattern. `0` disables.
    pub deploys_per_day: u64,
    /// Rate multiplier a deploying service's strategies see during the
    /// deploy hour.
    pub deploy_wave_boost: f64,
    /// Gray-failure cascades per simulated week: each picks a
    /// non-fault-tolerant source microservice and ramps the alert rate
    /// of every strategy in its cascade closure linearly from 1× to 4×
    /// over 6–18 hours — the slow-burn leak nobody notices until the
    /// graph is saturated. `0` disables.
    pub gray_cascades_per_week: u64,
    /// Number of tenants sharing the catalog. With `tenants > 1`,
    /// strategy ids are striped across tenants and instance labels
    /// carry the tenant (`t3-vm-17`); `<= 1` keeps the legacy
    /// single-tenant `vm-17` labels.
    pub tenants: u64,
    /// Uniform rate multiplier applied last (volume knob for soak
    /// sizing). `1.0` is neutral.
    pub rate_multiplier: f64,
}

impl Default for LoadShape {
    fn default() -> Self {
        Self {
            diurnal_amplitude: 0.0,
            diurnal_peak_hour: 14,
            deploys_per_day: 0,
            deploy_wave_boost: 6.0,
            gray_cascades_per_week: 0,
            tenants: 1,
            rate_multiplier: 1.0,
        }
    }
}

impl LoadShape {
    /// `true` when every knob is at its neutral value, i.e. the shaped
    /// engine degenerates to the legacy unshaped stream.
    #[must_use]
    pub fn is_neutral(&self) -> bool {
        self.diurnal_amplitude == 0.0
            && self.deploys_per_day == 0
            && self.gray_cascades_per_week == 0
            && self.tenants <= 1
            && self.rate_multiplier == 1.0
    }
}

/// One scheduled deployment: `service` rolls out during `hour`.
#[derive(Debug, Clone)]
struct DeployWave {
    hour: u64,
    service: ServiceId,
}

/// One scheduled gray-failure cascade.
#[derive(Debug, Clone)]
struct GrayCascade {
    start_hour: u64,
    duration_hours: u64,
    affected: HashSet<MicroserviceId>,
}

impl GrayCascade {
    /// Linear 1×→4× ramp across the cascade's lifetime; `None` outside
    /// it or for unaffected microservices.
    fn ramp(&self, hour: u64, ms: MicroserviceId) -> Option<f64> {
        if hour < self.start_hour || hour >= self.start_hour + self.duration_hours {
            return None;
        }
        if !self.affected.contains(&ms) {
            return None;
        }
        let elapsed = (hour - self.start_hour) as f64 / self.duration_hours as f64;
        Some(1.0 + 3.0 * elapsed)
    }
}

/// Lazily-driven statistical alert generator: the batch engine,
/// restructured to yield one simulated hour at a time with bounded
/// memory. Draining every hour reproduces the batch output exactly —
/// same alerts, same global sort, same dense ids.
#[derive(Debug)]
pub struct StatisticalStream {
    scenario: Scenario,
    topology: Topology,
    catalog: StrategyCatalog,
    seed: u64,
    start_hour: u64,
    end_hour: u64,
    /// `(hour, region index, root service)` triples, one per storm hour.
    storm_hours: Vec<(u64, usize, ServiceId)>,
    deploys: Vec<DeployWave>,
    grays: Vec<GrayCascade>,
    /// Ground-truth fault events the schedules injected (storm roots,
    /// deploy faults, gray sources) — callers feed these to incident
    /// derivation.
    planned_faults: Vec<FaultEvent>,
    /// Alerts generated but not yet emitted (toggle bursts can land one
    /// hour past their parent).
    pending: Vec<Alert>,
    next_hour: u64,
    /// Total alerts generated so far: the entropy counter the batch
    /// engine derived from `alerts.len()`.
    generated: u64,
    /// Next dense [`AlertId`] to stamp on emission.
    next_id: u64,
    /// Reused format buffer for per-alert instance names: the text is
    /// rendered here then interned, so the steady state (bounded
    /// instance vocabulary) allocates nothing per alert.
    scratch: String,
}

impl StatisticalStream {
    /// Builds the stream, generating the world (topology + catalog)
    /// from the scenario's configs.
    ///
    /// # Panics
    ///
    /// Panics if the scenario's engine is not
    /// [`Engine::Statistical`].
    #[must_use]
    pub fn new(scenario: &Scenario) -> Self {
        let topology = Topology::generate(&scenario.topology);
        let catalog = StrategyCatalog::generate(&topology, &scenario.catalog);
        Self::with_world(scenario.clone(), topology, catalog)
    }

    /// Builds the stream over an already-generated world (the form
    /// [`Scenario::run`] uses, where the catalog may carry injected
    /// strategies).
    ///
    /// # Panics
    ///
    /// Panics if the scenario's engine is not
    /// [`Engine::Statistical`].
    #[must_use]
    pub fn with_world(scenario: Scenario, topology: Topology, catalog: StrategyCatalog) -> Self {
        assert_eq!(
            scenario.engine,
            Engine::Statistical,
            "StatisticalStream drives the statistical engine only"
        );
        let seed = scenario.seed ^ 0x57A7;
        let start_hour = scenario.range.start().hour_bucket();
        let end_hour = scenario.range.end().hour_bucket();
        let total_hours = end_hour.saturating_sub(start_hour);
        let n_regions = topology.regions().len().max(1);
        let mut planned_faults = Vec::new();

        // Storm schedule: (hour, region index, service of the storm's
        // root fault — its strategies participate heavily, mirroring a
        // cascade inside one service stack).
        let mut storm_hours: Vec<(u64, usize, ServiceId)> = Vec::new();
        if scenario.storm_every_hours > 0 {
            let mut h = start_hour + scenario.storm_every_hours / 2;
            while h < end_hour {
                let region_ix = (rng::hash3(seed, 91, h, 0) % n_regions as u64) as usize;
                // Storms last 1–3 hours (consecutive hours merge, per §III-A2).
                let span = 1 + rng::hash3(seed, 92, h, 0) % 3;
                // A storm is backed by a real sustained fault so incidents
                // derive; pick an exposed microservice in that region, varying
                // the pick across storms.
                let candidates: Vec<&Microservice> = topology
                    .microservices()
                    .iter()
                    .filter(|m| !m.fault_tolerant && m.region == topology.regions()[region_ix])
                    .collect();
                let root = candidates
                    .get((rng::hash3(seed, 90, h, 1) % candidates.len().max(1) as u64) as usize)
                    .copied();
                let root_service = root.map_or(ServiceId(0), |m| m.service);
                for s in 0..span {
                    if h + s < end_hour {
                        storm_hours.push((h + s, region_ix, root_service));
                    }
                }
                if let Some(ms) = root {
                    planned_faults.push(FaultEvent {
                        microservice: ms.id,
                        kind: FaultKind::CascadeSource,
                        start: SimTime::from_hours(h),
                        duration: SimDuration::from_hours(span),
                        magnitude: 0.9,
                        cascade_origin: None,
                    });
                }
                h += scenario.storm_every_hours
                    + rng::hash3(seed, 93, h, 0) % (scenario.storm_every_hours / 2 + 1);
            }
        }

        // Deployment waves: service-scoped rate spikes with a short
        // ground-truth fault at the rollout minute.
        let mut deploys = Vec::new();
        if scenario.load.deploys_per_day > 0 && total_hours > 0 {
            let n = (scenario.load.deploys_per_day * total_hours).div_ceil(24);
            let n_services = topology.services().len().max(1) as u64;
            for i in 0..n {
                let hour = start_hour + rng::hash3(seed, 110, i, 0) % total_hours;
                let service = ServiceId(rng::hash3(seed, 111, i, 0) % n_services);
                deploys.push(DeployWave { hour, service });
                if let Some(ms) = topology
                    .microservices()
                    .iter()
                    .find(|m| m.service == service)
                {
                    planned_faults.push(FaultEvent {
                        microservice: ms.id,
                        kind: FaultKind::Transient,
                        start: SimTime::from_hours(hour).saturating_add(SimDuration::from_mins(
                            rng::hash3(seed, 112, i, 0) % 40,
                        )),
                        duration: SimDuration::from_mins(20),
                        magnitude: 0.6,
                        cascade_origin: None,
                    });
                }
            }
        }

        // Gray-failure cascades: slow-burn rate ramps over a dependency
        // closure, backed by a gray fault on the source.
        let mut grays = Vec::new();
        if scenario.load.gray_cascades_per_week > 0 && total_hours > 0 {
            let n = (scenario.load.gray_cascades_per_week * total_hours).div_ceil(24 * 7);
            let sources: Vec<&Microservice> = topology
                .microservices()
                .iter()
                .filter(|m| !m.fault_tolerant)
                .collect();
            for i in 0..n {
                let Some(source) = sources
                    .get((rng::hash3(seed, 120, i, 0) % sources.len().max(1) as u64) as usize)
                else {
                    break;
                };
                let start = start_hour + rng::hash3(seed, 121, i, 0) % total_hours;
                let duration_hours = 6 + rng::hash3(seed, 122, i, 0) % 12;
                let affected: HashSet<MicroserviceId> = topology
                    .cascade_closure(source.id)
                    .into_iter()
                    .map(|(id, _)| id)
                    .collect();
                grays.push(GrayCascade {
                    start_hour: start,
                    duration_hours,
                    affected,
                });
                planned_faults.push(FaultEvent {
                    microservice: source.id,
                    kind: FaultKind::GrayMemoryLeak,
                    start: SimTime::from_hours(start),
                    duration: SimDuration::from_hours(duration_hours),
                    magnitude: 0.7,
                    cascade_origin: None,
                });
            }
        }

        Self {
            scenario,
            topology,
            catalog,
            seed,
            start_hour,
            end_hour,
            storm_hours,
            deploys,
            grays,
            planned_faults,
            pending: Vec::new(),
            next_hour: start_hour,
            generated: 0,
            next_id: 0,
            scratch: String::new(),
        }
    }

    /// The generated world's catalog (including injected strategies
    /// when built [`with_world`](Self::with_world)).
    #[must_use]
    pub fn catalog(&self) -> &StrategyCatalog {
        &self.catalog
    }

    /// The generated topology.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Ground-truth fault events the schedules injected (storm roots,
    /// deploy faults, gray-cascade sources), in schedule order.
    #[must_use]
    pub fn planned_faults(&self) -> &[FaultEvent] {
        &self.planned_faults
    }

    /// Simulated hours not yet drained.
    #[must_use]
    pub fn hours_remaining(&self) -> u64 {
        self.end_hour.saturating_sub(self.next_hour)
    }

    /// Total simulated hours in the scenario range.
    #[must_use]
    pub fn total_hours(&self) -> u64 {
        self.end_hour.saturating_sub(self.start_hour)
    }

    /// Alerts emitted so far (== the next dense id to be assigned).
    #[must_use]
    pub fn emitted(&self) -> u64 {
        self.next_id
    }

    /// Generates and returns the next simulated hour of alerts, sorted
    /// by `(raised_at, strategy)` and stamped with dense ids, or `None`
    /// once the range is exhausted. Concatenating every batch equals
    /// the batch engine's output exactly.
    pub fn next_hour(&mut self) -> Option<Vec<Alert>> {
        if self.next_hour >= self.end_hour {
            if self.pending.is_empty() {
                return None;
            }
            let rest = std::mem::take(&mut self.pending);
            return Some(self.emit(rest));
        }
        let hour = self.next_hour;
        self.generate_hour(hour);
        self.next_hour += 1;
        // Toggle bursts reach at most ~1500 s past their parent, so the
        // bucket for `hour` is complete once this generation pass ends;
        // later buckets may still grow. On the last hour everything is
        // in range (the range is half-open), so drain it all.
        let cutoff = if self.next_hour >= self.end_hour {
            u64::MAX
        } else {
            (hour + 1) * 3_600
        };
        let pending = std::mem::take(&mut self.pending);
        let mut batch = Vec::with_capacity(pending.len());
        for alert in pending {
            if alert.raised_at().as_secs() < cutoff {
                batch.push(alert);
            } else {
                self.pending.push(alert);
            }
        }
        Some(self.emit(batch))
    }

    /// Drains up to `hours` hour-batches into one window, or `None`
    /// once the range is exhausted.
    pub fn next_window(&mut self, hours: u64) -> Option<Vec<Alert>> {
        let mut window: Option<Vec<Alert>> = None;
        for _ in 0..hours.max(1) {
            match self.next_hour() {
                Some(batch) => window.get_or_insert_with(Vec::new).extend(batch),
                None => break,
            }
        }
        window
    }

    /// Sorts a complete bucket and stamps dense ids, preserving the
    /// batch engine's global order (stable sort over insertion order
    /// within non-overlapping key ranges).
    fn emit(&mut self, mut batch: Vec<Alert>) -> Vec<Alert> {
        batch.sort_by_key(|a| (a.raised_at(), a.strategy()));
        batch
            .into_iter()
            .map(|a| {
                let id = self.next_id;
                self.next_id += 1;
                a.with_id(AlertId(id))
            })
            .collect()
    }

    /// Generates one simulated hour of raw (unsorted, unstamped)
    /// alerts into `pending`.
    #[allow(clippy::too_many_lines)]
    fn generate_hour(&mut self, hour: u64) {
        let seed = self.seed;
        let scenario = &self.scenario;
        let shape = &scenario.load;
        let shaped = !shape.is_neutral();
        let storm: Option<(usize, ServiceId)> = self
            .storm_hours
            .iter()
            .find(|&&(h, _, _)| h == hour)
            .map(|&(_, r, svc)| (r, svc));
        // Per-hour views of the shape schedules, so the per-strategy
        // loop stays O(1) in the schedule sizes.
        let deploying: HashSet<ServiceId> = self
            .deploys
            .iter()
            .filter(|d| d.hour == hour)
            .map(|d| d.service)
            .collect();
        let active_grays: Vec<&GrayCascade> = self
            .grays
            .iter()
            .filter(|g| hour >= g.start_hour && hour < g.start_hour + g.duration_hours)
            .collect();

        let mut generated = self.generated;
        let mut pending = std::mem::take(&mut self.pending);
        let mut scratch = std::mem::take(&mut self.scratch);
        for strategy in self.catalog.strategies() {
            let profile = self.catalog.profile(strategy.id());
            let ms = self
                .topology
                .microservice(strategy.microservice())
                .expect("strategy references a known microservice");
            let region_ix = self
                .topology
                .regions()
                .iter()
                .position(|r| *r == ms.region)
                .unwrap_or(0);

            let is_probe = matches!(strategy.kind(), alertops_model::StrategyKind::Probe(_));
            // Base hourly rate by injected profile. Probes only fire on
            // real unresponsiveness, so their background is far quieter.
            let mut rate: f64 = if profile.chatty {
                1.5
            } else if profile.oversensitive {
                0.5
            } else if profile.improper_rule {
                0.12
            } else if is_probe {
                0.008
            } else {
                0.04
            };
            // Storm amplification in the storm's region: the failing
            // service's own strategies participate heavily (the cascade
            // inside its stack), plus a thin random tail of dependents.
            // Probe alerts amplify less — hosts go down far more rarely
            // than metrics spike.
            if let Some((storm_region_ix, storm_service)) = storm {
                if storm_region_ix == region_ix {
                    let in_blast = strategy.service() == storm_service
                        || rng::hash3(seed, 94, strategy.id().0, hour / 24).is_multiple_of(25);
                    if in_blast {
                        rate = if is_probe {
                            rate.max(0.2) * 4.0
                        } else {
                            rate.max(0.8) * 12.0
                        };
                    } else {
                        rate *= 2.0;
                    }
                }
            }
            // Load shaping (all neutral multipliers are exact 1.0s, and
            // the whole block is skipped for a neutral shape, so the
            // legacy stream is reproduced bit for bit).
            if shaped {
                if shape.diurnal_amplitude > 0.0 {
                    let phase = (hour % 24) as f64 - shape.diurnal_peak_hour as f64;
                    rate *= 1.0
                        + shape.diurnal_amplitude * (std::f64::consts::TAU * phase / 24.0).cos();
                }
                if deploying.contains(&strategy.service()) {
                    rate = rate.max(0.3) * shape.deploy_wave_boost;
                }
                let gray_ramp = active_grays
                    .iter()
                    .filter_map(|g| g.ramp(hour, ms.id))
                    .fold(None::<f64>, |acc, r| Some(acc.map_or(r, |a: f64| a.max(r))));
                if let Some(ramp) = gray_ramp {
                    rate *= ramp;
                }
                if shape.rate_multiplier != 1.0 {
                    rate *= shape.rate_multiplier;
                }
            }
            let count = rng::poisson(seed, 95, strategy.id().0, hour, rate);
            for k in 0..count {
                let offset =
                    rng::hash3(seed, 96, strategy.id().0 * 131 + u64::from(k), hour) % 3_600;
                let raised_at = SimTime::from_secs(hour * 3_600 + offset);
                let mut alert = make_statistical_alert(
                    seed,
                    &self.topology,
                    strategy,
                    ms,
                    raised_at,
                    generated,
                    shape.tenants,
                    &mut scratch,
                );
                // Lifecycle: over-sensitive metric alerts always auto-clear
                // fast (transient); other probe/metric alerts auto-clear
                // only when the anomaly subsides on its own (~55%) —
                // the rest wait for the OCE, like real sustained
                // degradations. Log alerts always wait for the OCE.
                if strategy.kind().supports_auto_clear() {
                    if profile.oversensitive {
                        let secs = 20 + rng::hash3(seed, 97, generated, 0) % 220;
                        alert
                            .clear(
                                raised_at.saturating_add(SimDuration::from_secs(secs)),
                                Clearance::Auto,
                            )
                            .expect("fresh alert is clearable");
                    } else if rng::uniform(seed, 103, generated, 0) < 0.55 {
                        let secs = 600 + rng::hash3(seed, 97, generated, 0) % 5_400;
                        alert
                            .clear(
                                raised_at.saturating_add(SimDuration::from_secs(secs)),
                                Clearance::Auto,
                            )
                            .expect("fresh alert is clearable");
                    }
                }
                pending.push(alert);
                generated += 1;

                // Over-sensitive strategies toggle: append a quick
                // fire/clear burst after the initial alert.
                if profile.oversensitive
                    && rng::uniform(seed, 98, strategy.id().0, hour ^ u64::from(k)) < 0.35
                {
                    let burst = 2 + rng::hash3(seed, 99, strategy.id().0, hour) % 4;
                    let mut t = raised_at;
                    for b in 0..burst {
                        t = t.saturating_add(SimDuration::from_secs(
                            120 + rng::hash3(seed, 100, b, t.as_secs()) % 180,
                        ));
                        if !scenario.range.contains(t) {
                            break;
                        }
                        let mut toggled = make_statistical_alert(
                            seed,
                            &self.topology,
                            strategy,
                            ms,
                            t,
                            generated,
                            shape.tenants,
                            &mut scratch,
                        );
                        toggled
                            .clear(
                                t.saturating_add(SimDuration::from_secs(
                                    20 + rng::hash3(seed, 101, b, t.as_secs()) % 120,
                                )),
                                Clearance::Auto,
                            )
                            .expect("fresh alert is clearable");
                        pending.push(toggled);
                        generated += 1;
                    }
                }
            }
        }
        self.pending = pending;
        self.generated = generated;
        self.scratch = scratch;
    }
}

/// Statistical engine, batch form: drains a [`StatisticalStream`] over
/// the whole range and appends its planned ground-truth faults to
/// `faults`. Kept as the [`Scenario::run`] entry point.
pub(crate) fn statistical_alerts(
    scenario: &Scenario,
    topology: &Topology,
    catalog: &StrategyCatalog,
    faults: &mut crate::faults::FaultPlan,
) -> Vec<Alert> {
    let mut stream =
        StatisticalStream::with_world(scenario.clone(), topology.clone(), catalog.clone());
    for event in stream.planned_faults().to_vec() {
        faults.push(event);
    }
    let mut alerts = Vec::new();
    while let Some(batch) = stream.next_hour() {
        alerts.extend(batch);
    }
    alerts
}

#[allow(clippy::too_many_arguments)]
fn make_statistical_alert(
    seed: u64,
    topology: &Topology,
    strategy: &alertops_model::AlertStrategy,
    ms: &Microservice,
    raised_at: SimTime,
    entropy: u64,
    tenants: u64,
    scratch: &mut String,
) -> Alert {
    use std::fmt::Write;
    let vm = rng::hash3(seed, 102, entropy, raised_at.as_secs()) % 64;
    // Render the instance name into the reused buffer and intern it:
    // the instance vocabulary is bounded (64 VM slots per tenant
    // slice), so after warm-up this allocates nothing.
    scratch.clear();
    if tenants > 1 {
        let _ = write!(scratch, "t{}-vm-{}", strategy.id().0 % tenants, vm);
    } else {
        let _ = write!(scratch, "vm-{vm}");
    }
    let instance = alertops_model::intern(scratch);
    let service = topology
        .service_name_interned_of(ms.id)
        .cloned()
        .unwrap_or_default();
    Alert::builder(AlertId(0), strategy.id())
        .title(strategy.title_template_interned().clone())
        .severity(strategy.severity())
        .service(service)
        .microservice(ms.id)
        .location(Location::new(ms.region.clone(), ms.dc.clone()).with_instance(instance))
        .raised_at(raised_at)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::{mini_study, soak, soak_smoke};

    fn fnv(h: &mut u64, bytes: &[u8]) {
        for &b in bytes {
            *h ^= u64::from(b);
            *h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    fn digest(alerts: &[Alert]) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for a in alerts {
            fnv(&mut h, &a.id().0.to_le_bytes());
            fnv(&mut h, &a.strategy().0.to_le_bytes());
            fnv(&mut h, &a.raised_at().as_secs().to_le_bytes());
            fnv(&mut h, a.location().instance().unwrap_or("").as_bytes());
        }
        h
    }

    /// The neutral-shape stream must reproduce the pre-refactor batch
    /// engine bit for bit: lengths and digests pinned from the legacy
    /// implementation (id, strategy, raised_at, instance per alert).
    #[test]
    fn neutral_shape_reproduces_the_legacy_stream() {
        for (seed, len, want) in [
            (3u64, 10596usize, 0x971f_0487_9cd9_424cu64),
            (5, 10392, 0xce72_74d5_26eb_ceeb),
            (2022, 10526, 0xe9e8_b99a_3aad_6bd5),
        ] {
            let out = mini_study(seed).run();
            assert_eq!(out.alerts.len(), len, "seed {seed} length drifted");
            assert_eq!(
                digest(&out.alerts),
                want,
                "seed {seed} stream drifted from the legacy engine"
            );
        }
    }

    /// Hour-at-a-time draining equals the batch drain on the same
    /// scenario: ids dense, order identical.
    #[test]
    fn stream_drain_matches_batch_run() {
        let scenario = mini_study(3);
        let out = scenario.run();
        let mut stream = StatisticalStream::new(&scenario);
        let mut streamed = Vec::new();
        while let Some(batch) = stream.next_hour() {
            streamed.extend(batch);
        }
        assert_eq!(streamed.len(), out.alerts.len());
        for (s, b) in streamed.iter().zip(out.alerts.iter()) {
            assert_eq!(s.id(), b.id());
            assert_eq!(s.strategy(), b.strategy());
            assert_eq!(s.raised_at(), b.raised_at());
            assert_eq!(s.location(), b.location());
        }
    }

    /// Window draining is just a re-chunking of hour draining.
    #[test]
    fn window_drain_is_a_rechunking() {
        let scenario = soak_smoke(7);
        let mut by_hour = StatisticalStream::new(&scenario);
        let mut a = Vec::new();
        while let Some(batch) = by_hour.next_hour() {
            a.extend(batch);
        }
        let mut by_window = StatisticalStream::new(&scenario);
        let mut b = Vec::new();
        while let Some(window) = by_window.next_window(5) {
            b.extend(window);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn soak_scenarios_are_seed_replayable() {
        let mut a = StatisticalStream::new(&soak_smoke(11));
        let mut b = StatisticalStream::new(&soak_smoke(11));
        let wa = a.next_window(8).expect("smoke generates alerts");
        let wb = b.next_window(8).expect("smoke generates alerts");
        assert_eq!(wa, wb);
        assert!(wa.len() > 50, "too few alerts: {}", wa.len());
        let wc = StatisticalStream::new(&soak_smoke(12))
            .next_window(8)
            .expect("smoke generates alerts");
        assert_ne!(wa, wc, "different seeds should diverge");
    }

    /// The diurnal curve shows up as a peak-vs-trough volume ratio.
    #[test]
    fn diurnal_curve_shapes_hourly_volume() {
        let scenario = soak_smoke(5);
        let shape = &scenario.load;
        assert!(shape.diurnal_amplitude > 0.0);
        let mut stream = StatisticalStream::new(&scenario);
        let mut by_hour_of_day = [0usize; 24];
        while let Some(batch) = stream.next_hour() {
            for a in batch {
                by_hour_of_day[(a.raised_at().hour_bucket() % 24) as usize] += 1;
            }
        }
        let peak = by_hour_of_day[shape.diurnal_peak_hour as usize];
        let trough = by_hour_of_day[((shape.diurnal_peak_hour + 12) % 24) as usize];
        assert!(
            peak > trough,
            "peak hour ({peak}) should out-produce the trough ({trough})"
        );
    }

    /// Multi-tenant catalogs stripe tenant tags into instance labels.
    #[test]
    fn tenant_labels_stripe_the_catalog() {
        let scenario = soak_smoke(5);
        assert!(scenario.load.tenants > 1);
        let mut stream = StatisticalStream::new(&scenario);
        let window = stream.next_window(6).expect("smoke generates alerts");
        let mut tenants_seen = HashSet::new();
        for a in &window {
            let instance = a.location().instance().expect("instance label");
            assert!(instance.starts_with('t'), "tenant tag missing: {instance}");
            let tag: String = instance[1..]
                .chars()
                .take_while(char::is_ascii_digit)
                .collect();
            tenants_seen.insert(tag);
        }
        assert!(
            tenants_seen.len() > 1,
            "expected multiple tenants, saw {tenants_seen:?}"
        );
    }

    /// Deploy waves and gray cascades land ground-truth faults.
    #[test]
    fn shaped_schedules_plan_ground_truth_faults() {
        let stream = StatisticalStream::new(&soak(5));
        let kinds: Vec<FaultKind> = stream.planned_faults().iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&FaultKind::Transient), "no deploy faults");
        assert!(
            kinds.contains(&FaultKind::GrayMemoryLeak),
            "no gray-cascade faults"
        );
    }
}
