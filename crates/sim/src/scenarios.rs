//! Ready-made experiment scenarios.
//!
//! Each scenario bundles a topology, a strategy catalog, a fault plan and
//! a monitoring window into a single seeded, reproducible [`Scenario`]
//! whose [`run`](Scenario::run) yields the complete [`SimOutput`] the
//! detectors, reactions, and figure harnesses consume.
//!
//! Two generation engines are used:
//!
//! * **Signal-level** ([`MonitoringSystem`]): real per-tick strategy
//!   evaluation against telemetry. Used by [`quickstart`],
//!   [`cascade_table2`] and [`storm_fig3`] — faithful mechanics at
//!   hours-to-days scale.
//! * **Statistical** ([`workload`](crate::scenarios::study)): per-hour
//!   Poisson sampling per strategy with storm injections. Used by
//!   [`study`] to reach the paper's two-year scale (scaled down ~12×,
//!   documented in DESIGN.md) in seconds.

use serde::{Deserialize, Serialize};

use alertops_model::{
    Alert, AlertId, Clearance, Incident, Location, MicroserviceId, SimDuration, SimTime, TimeRange,
};

use crate::faults::{FaultEvent, FaultKind, FaultPlan};
use crate::monitor::{MonitorConfig, MonitoringSystem};
use crate::ocesim::{derive_incidents, OceTeam, ProcessingModel};
use crate::rng;
use crate::strategies::{StrategyCatalog, StrategyCatalogConfig};
use crate::telemetry::Telemetry;
use crate::topology::{Topology, TopologyConfig};

/// Which engine generates the alert stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Engine {
    /// Tick-by-tick signal evaluation (faithful, hours-to-days scale).
    Signal,
    /// Per-hour statistical sampling (scales to months).
    Statistical,
}

/// A fully specified, seeded experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// Scenario name (used in reports).
    pub name: String,
    /// Topology parameters.
    pub topology: TopologyConfig,
    /// Strategy-catalog parameters.
    pub catalog: StrategyCatalogConfig,
    /// The monitored interval.
    pub range: TimeRange,
    /// Evaluation tick (signal engine only).
    pub tick: SimDuration,
    /// Which engine to use.
    pub engine: Engine,
    /// Planned cascade injections: `(start, duration, magnitude)`; the
    /// source is picked as the microservice with the widest blast radius.
    pub cascades: Vec<(SimTime, SimDuration, f64)>,
    /// Scattered background faults per simulated day.
    pub background_faults_per_day: f64,
    /// Statistical engine: storm injections every N hours (0 = none).
    pub storm_every_hours: u64,
    /// Signal engine: add one dominant WARNING-level repeater (the
    /// Fig. 3 "haproxy process number warning"): `(cooldown, fault
    /// magnitude)`. The strategy fires at most once per cooldown; a
    /// sustained sub-incident fault on its host keeps its log rule hot
    /// for the duration of the first cascade onward.
    pub dominant_repeater: Option<(SimDuration, f64)>,
    /// Master seed.
    pub seed: u64,
}

/// Everything a scenario run produces.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimOutput {
    /// The generated topology.
    pub topology: Topology,
    /// The generated strategy catalog (with injected ground truth).
    pub catalog: StrategyCatalog,
    /// The injected fault plan (ground truth for A6 and incidents).
    pub faults: FaultPlan,
    /// The alert stream, sorted by raise time, fully processed (every
    /// alert has a processing time and a clearance).
    pub alerts: Vec<Alert>,
    /// Derived incidents (ground truth for indicativeness).
    pub incidents: Vec<Incident>,
    /// The on-call team.
    pub team: OceTeam,
}

impl Scenario {
    /// Runs the scenario end to end.
    #[must_use]
    pub fn run(&self) -> SimOutput {
        let topology = Topology::generate(&self.topology);
        let catalog = StrategyCatalog::generate(&topology, &self.catalog);
        let mut faults = FaultPlan::new();

        // Cascades from the widest-blast-radius source.
        let wide_source = topology
            .microservices()
            .iter()
            .map(|ms| ms.id)
            .max_by_key(|&id| topology.cascade_closure(id).len())
            .expect("topology has microservices");
        for &(start, duration, magnitude) in &self.cascades {
            faults.push_cascade(
                &topology,
                wide_source,
                start,
                duration,
                magnitude,
                0.9,
                SimDuration::from_mins(2),
                self.seed ^ 0xCA5C,
            );
        }

        // Background faults.
        let days = (self.range.duration().as_secs() as f64 / 86_400.0).max(1.0 / 24.0);
        let n_background = (self.background_faults_per_day * days).round() as u64;
        let n_ms = topology.microservices().len() as u64;
        for i in 0..n_background {
            let ms = MicroserviceId(rng::hash3(self.seed, 81, i, 0) % n_ms);
            let offset =
                (rng::uniform(self.seed, 82, i, 0) * self.range.duration().as_secs() as f64) as u64;
            let kind = match rng::hash3(self.seed, 83, i, 0) % 5 {
                0 => FaultKind::Sustained,
                1 => FaultKind::GrayMemoryLeak,
                2 => FaultKind::GrayCpuOverload,
                _ => FaultKind::Transient,
            };
            let duration = match kind {
                FaultKind::Transient => 30 + rng::hash3(self.seed, 84, i, 0) % 180,
                FaultKind::GrayMemoryLeak | FaultKind::GrayCpuOverload => {
                    3_600 + rng::hash3(self.seed, 84, i, 0) % 14_400
                }
                _ => 600 + rng::hash3(self.seed, 84, i, 0) % 3_000,
            };
            faults.push(FaultEvent {
                microservice: ms,
                kind,
                start: self
                    .range
                    .start()
                    .saturating_add(SimDuration::from_secs(offset)),
                duration: SimDuration::from_secs(duration),
                magnitude: 0.5 + rng::uniform(self.seed, 85, i, 0) * 0.5,
                cascade_origin: None,
            });
        }

        // Optional dominant repeater (Fig. 3's HAProxy).
        let mut catalog = catalog;
        if let Some((cooldown, magnitude)) = self.dominant_repeater {
            let host = topology
                .microservices()
                .iter()
                .find(|ms| ms.layer == 0 && ms.region == topology.regions()[0])
                .or_else(|| topology.microservices().first())
                .expect("topology has microservices");
            let id = alertops_model::StrategyId(catalog.len() as u64);
            let strategy = alertops_model::AlertStrategy::builder(id)
                .title_template("haproxy process number warning")
                .severity(alertops_model::Severity::Warning)
                .service(host.service)
                .microservice(host.id)
                .kind(alertops_model::StrategyKind::Log(alertops_model::LogRule {
                    keyword: "WARN".to_owned(),
                    // min_count 2 keeps the baseline chatter mostly
                    // sub-threshold; the host fault pushes it hot.
                    min_count: 2,
                    window: SimDuration::from_mins(5),
                }))
                .cooldown(cooldown)
                .build()
                .expect("repeater strategy is valid");
            let sop = alertops_model::Sop::builder("haproxy process number warning", id)
                .description("HAProxy worker count deviates from target")
                .build()
                .expect("repeater SOP is valid");
            catalog.push(
                strategy,
                crate::strategies::InjectedProfile {
                    chatty: true,
                    ..crate::strategies::InjectedProfile::default()
                },
                sop,
            );
            let start = self
                .cascades
                .first()
                .map_or(self.range.start(), |&(t, _, _)| t);
            faults.push(FaultEvent {
                microservice: host.id,
                kind: FaultKind::GrayCpuOverload,
                start,
                duration: self.range.end().duration_since(start),
                magnitude,
                cascade_origin: None,
            });
        }
        let catalog = catalog;

        let mut alerts = match self.engine {
            Engine::Signal => {
                let telemetry = Telemetry::new(&topology, &faults, self.seed ^ 0x7E1E);
                MonitoringSystem::new(
                    telemetry,
                    &catalog,
                    MonitorConfig {
                        tick: self.tick,
                        range: self.range,
                        seed: self.seed ^ 0x0CE,
                    },
                )
                .run()
            }
            Engine::Statistical => statistical_alerts(self, &topology, &catalog, &mut faults),
        };

        let team = OceTeam::survey_team();
        ProcessingModel {
            seed: self.seed ^ 0x9CE5,
            ..ProcessingModel::default()
        }
        .process(&mut alerts, &catalog, &team);
        let incidents = derive_incidents(&topology, &faults, &alerts);

        SimOutput {
            topology,
            catalog,
            faults,
            alerts,
            incidents,
            team,
        }
    }
}

/// Statistical engine: samples per-strategy hourly Poisson counts with
/// profile-dependent rates, plus periodic region-localized storms.
fn statistical_alerts(
    scenario: &Scenario,
    topology: &Topology,
    catalog: &StrategyCatalog,
    faults: &mut FaultPlan,
) -> Vec<Alert> {
    let seed = scenario.seed ^ 0x57A7;
    let start_hour = scenario.range.start().hour_bucket();
    let end_hour = scenario.range.end().hour_bucket();
    let n_regions = topology.regions().len().max(1);

    // Storm schedule: (hour, region index, service of the storm's root
    // fault — its strategies participate heavily, mirroring a cascade
    // inside one service stack).
    let mut storm_hours: Vec<(u64, usize, alertops_model::ServiceId)> = Vec::new();
    if scenario.storm_every_hours > 0 {
        let mut h = start_hour + scenario.storm_every_hours / 2;
        while h < end_hour {
            let region_ix = (rng::hash3(seed, 91, h, 0) % n_regions as u64) as usize;
            // Storms last 1–3 hours (consecutive hours merge, per §III-A2).
            let span = 1 + rng::hash3(seed, 92, h, 0) % 3;
            // A storm is backed by a real sustained fault so incidents
            // derive; pick an exposed microservice in that region, varying
            // the pick across storms.
            let candidates: Vec<&crate::topology::Microservice> = topology
                .microservices()
                .iter()
                .filter(|m| !m.fault_tolerant && m.region == topology.regions()[region_ix])
                .collect();
            let root = candidates
                .get((rng::hash3(seed, 90, h, 1) % candidates.len().max(1) as u64) as usize)
                .copied();
            let root_service = root.map_or(alertops_model::ServiceId(0), |m| m.service);
            for s in 0..span {
                if h + s < end_hour {
                    storm_hours.push((h + s, region_ix, root_service));
                }
            }
            if let Some(ms) = root {
                faults.push(FaultEvent {
                    microservice: ms.id,
                    kind: FaultKind::CascadeSource,
                    start: SimTime::from_hours(h),
                    duration: SimDuration::from_hours(span),
                    magnitude: 0.9,
                    cascade_origin: None,
                });
            }
            h += scenario.storm_every_hours
                + rng::hash3(seed, 93, h, 0) % (scenario.storm_every_hours / 2 + 1);
        }
    }

    let mut alerts: Vec<Alert> = Vec::new();
    for hour in start_hour..end_hour {
        let storm: Option<(usize, alertops_model::ServiceId)> = storm_hours
            .iter()
            .find(|&&(h, _, _)| h == hour)
            .map(|&(_, r, svc)| (r, svc));
        for strategy in catalog.strategies() {
            let profile = catalog.profile(strategy.id());
            let ms = topology
                .microservice(strategy.microservice())
                .expect("strategy references a known microservice");
            let region_ix = topology
                .regions()
                .iter()
                .position(|r| *r == ms.region)
                .unwrap_or(0);

            let is_probe = matches!(strategy.kind(), alertops_model::StrategyKind::Probe(_));
            // Base hourly rate by injected profile. Probes only fire on
            // real unresponsiveness, so their background is far quieter.
            let mut rate: f64 = if profile.chatty {
                1.5
            } else if profile.oversensitive {
                0.5
            } else if profile.improper_rule {
                0.12
            } else if is_probe {
                0.008
            } else {
                0.04
            };
            // Storm amplification in the storm's region: the failing
            // service's own strategies participate heavily (the cascade
            // inside its stack), plus a thin random tail of dependents.
            // Probe alerts amplify less — hosts go down far more rarely
            // than metrics spike.
            if let Some((storm_region_ix, storm_service)) = storm {
                if storm_region_ix == region_ix {
                    let in_blast = strategy.service() == storm_service
                        || rng::hash3(seed, 94, strategy.id().0, hour / 24).is_multiple_of(25);
                    if in_blast {
                        rate = if is_probe {
                            rate.max(0.2) * 4.0
                        } else {
                            rate.max(0.8) * 12.0
                        };
                    } else {
                        rate *= 2.0;
                    }
                }
            }
            let count = rng::poisson(seed, 95, strategy.id().0, hour, rate);
            for k in 0..count {
                let offset =
                    rng::hash3(seed, 96, strategy.id().0 * 131 + u64::from(k), hour) % 3_600;
                let raised_at = SimTime::from_secs(hour * 3_600 + offset);
                let mut alert = make_statistical_alert(
                    seed,
                    topology,
                    strategy,
                    ms,
                    raised_at,
                    alerts.len() as u64,
                );
                // Lifecycle: over-sensitive metric alerts always auto-clear
                // fast (transient); other probe/metric alerts auto-clear
                // only when the anomaly subsides on its own (~55%) —
                // the rest wait for the OCE, like real sustained
                // degradations. Log alerts always wait for the OCE.
                if strategy.kind().supports_auto_clear() {
                    if profile.oversensitive {
                        let secs = 20 + rng::hash3(seed, 97, alerts.len() as u64, 0) % 220;
                        alert
                            .clear(
                                raised_at.saturating_add(SimDuration::from_secs(secs)),
                                Clearance::Auto,
                            )
                            .expect("fresh alert is clearable");
                    } else if rng::uniform(seed, 103, alerts.len() as u64, 0) < 0.55 {
                        let secs = 600 + rng::hash3(seed, 97, alerts.len() as u64, 0) % 5_400;
                        alert
                            .clear(
                                raised_at.saturating_add(SimDuration::from_secs(secs)),
                                Clearance::Auto,
                            )
                            .expect("fresh alert is clearable");
                    }
                }
                alerts.push(alert);

                // Over-sensitive strategies toggle: append a quick
                // fire/clear burst after the initial alert.
                if profile.oversensitive
                    && rng::uniform(seed, 98, strategy.id().0, hour ^ u64::from(k)) < 0.35
                {
                    let burst = 2 + rng::hash3(seed, 99, strategy.id().0, hour) % 4;
                    let mut t = raised_at;
                    for b in 0..burst {
                        t = t.saturating_add(SimDuration::from_secs(
                            120 + rng::hash3(seed, 100, b, t.as_secs()) % 180,
                        ));
                        if !scenario.range.contains(t) {
                            break;
                        }
                        let mut toggled = make_statistical_alert(
                            seed,
                            topology,
                            strategy,
                            ms,
                            t,
                            alerts.len() as u64,
                        );
                        toggled
                            .clear(
                                t.saturating_add(SimDuration::from_secs(
                                    20 + rng::hash3(seed, 101, b, t.as_secs()) % 120,
                                )),
                                Clearance::Auto,
                            )
                            .expect("fresh alert is clearable");
                        alerts.push(toggled);
                    }
                }
            }
        }
    }

    alerts.sort_by_key(|a| (a.raised_at(), a.strategy()));
    alerts
        .into_iter()
        .enumerate()
        .map(|(i, a)| a.with_id(AlertId(i as u64)))
        .collect()
}

fn make_statistical_alert(
    seed: u64,
    topology: &Topology,
    strategy: &alertops_model::AlertStrategy,
    ms: &crate::topology::Microservice,
    raised_at: SimTime,
    entropy: u64,
) -> Alert {
    let instance = format!(
        "vm-{}",
        rng::hash3(seed, 102, entropy, raised_at.as_secs()) % 64
    );
    Alert::builder(AlertId(0), strategy.id())
        .title(strategy.title_template())
        .severity(strategy.severity())
        .service(topology.service_name_of(ms.id))
        .microservice(ms.id)
        .location(Location::new(ms.region.clone(), ms.dc.clone()).with_instance(instance))
        .raised_at(raised_at)
        .build()
}

/// A small 6-hour world for first contact with the API: 24 microservices,
/// 240 strategies, one sustained fault plus background transients.
#[must_use]
pub fn quickstart(seed: u64) -> Scenario {
    Scenario {
        name: "quickstart".to_owned(),
        topology: TopologyConfig {
            services: 4,
            microservices: 24,
            seed,
            ..TopologyConfig::default()
        },
        catalog: StrategyCatalogConfig {
            total_strategies: 240,
            seed: seed ^ 1,
            ..StrategyCatalogConfig::default()
        },
        range: TimeRange::new(SimTime::EPOCH, SimTime::from_hours(6)),
        tick: SimDuration::from_secs(60),
        engine: Engine::Signal,
        cascades: vec![(SimTime::from_hours(3), SimDuration::from_mins(40), 0.9)],
        background_faults_per_day: 20.0,
        storm_every_hours: 0,
        dominant_repeater: None,
        seed,
    }
}

/// The Table II cascade: a Block Storage failure at ~06:36 cascading into
/// its Database dependents, at full paper scale (192 microservices).
#[must_use]
pub fn cascade_table2(seed: u64) -> Scenario {
    Scenario {
        name: "cascade-table2".to_owned(),
        topology: TopologyConfig {
            seed,
            ..TopologyConfig::default()
        },
        catalog: StrategyCatalogConfig {
            seed: seed ^ 1,
            // A quiet background so the cascade's own alerts dominate the
            // sample table, as in the paper's hand-picked example.
            chatty_fraction: 0.001,
            oversensitive_fraction: 0.004,
            ..StrategyCatalogConfig::default()
        },
        range: TimeRange::new(SimTime::from_hours(5), SimTime::from_hours(8)),
        tick: SimDuration::from_secs(60),
        engine: Engine::Signal,
        // 06:36, matching the paper's sample alerts.
        cascades: vec![(
            SimTime::from_secs(6 * 3_600 + 36 * 60),
            SimDuration::from_mins(12),
            0.95,
        )],
        background_faults_per_day: 2.0,
        storm_every_hours: 0,
        dominant_repeater: None,
        seed,
    }
}

/// The Fig. 3 alert storm: a 05:00–12:00 window at full catalog scale
/// with a major cascade at 07:00 — the paper's storm produced 2751 alerts
/// from 200 effective strategies between 07:00 and 11:59, dominated by a
/// WARNING-level "haproxy process number warning" at ≈30% per hour.
#[must_use]
pub fn storm_fig3(seed: u64) -> Scenario {
    Scenario {
        name: "storm-fig3".to_owned(),
        topology: TopologyConfig {
            seed,
            ..TopologyConfig::default()
        },
        catalog: StrategyCatalogConfig {
            seed: seed ^ 1,
            // Quieter baseline than the study defaults so the calm hours
            // before 07:00 stay under the storm threshold and the storm
            // itself is cascade-driven, as in the paper's case study.
            chatty_fraction: 0.002,
            oversensitive_fraction: 0.006,
            ..StrategyCatalogConfig::default()
        },
        range: TimeRange::new(SimTime::from_hours(5), SimTime::from_hours(12)),
        tick: SimDuration::from_secs(20),
        engine: Engine::Signal,
        cascades: vec![
            (SimTime::from_hours(7), SimDuration::from_hours(2), 0.95),
            (
                SimTime::from_secs(8 * 3_600 + 30 * 60),
                SimDuration::from_mins(110),
                0.9,
            ),
            (
                SimTime::from_secs(9 * 3_600 + 20 * 60),
                SimDuration::from_mins(100),
                0.9,
            ),
            (
                SimTime::from_secs(10 * 3_600 + 40 * 60),
                SimDuration::from_mins(75),
                0.9,
            ),
        ],
        background_faults_per_day: 60.0,
        storm_every_hours: 0,
        dominant_repeater: Some((SimDuration::from_secs(40), 0.5)),
        seed,
    }
}

/// The two-year study, scaled: 60 days of statistical generation at the
/// full 2010-strategy / 192-microservice scale, with storms every ~2
/// days. Rates are tuned so the per-hour volume matches the paper's
/// ≈230 alerts/hour average (4M+ over two years); extrapolating 60 days
/// ×12.2 recovers the paper's scale.
#[must_use]
pub fn study(seed: u64) -> Scenario {
    Scenario {
        name: "study".to_owned(),
        topology: TopologyConfig {
            seed,
            ..TopologyConfig::default()
        },
        catalog: StrategyCatalogConfig {
            seed: seed ^ 1,
            ..StrategyCatalogConfig::default()
        },
        range: TimeRange::new(SimTime::EPOCH, SimTime::from_days(60)),
        tick: SimDuration::from_secs(60),
        engine: Engine::Statistical,
        cascades: Vec::new(),
        background_faults_per_day: 6.0,
        storm_every_hours: 48,
        dominant_repeater: None,
        seed,
    }
}

/// A miniature statistical study (4 days, small world) for tests and
/// quick demos: same code paths as [`study`], two orders of magnitude
/// faster.
#[must_use]
pub fn mini_study(seed: u64) -> Scenario {
    Scenario {
        name: "mini-study".to_owned(),
        topology: TopologyConfig {
            services: 6,
            microservices: 48,
            seed,
            ..TopologyConfig::default()
        },
        catalog: StrategyCatalogConfig {
            total_strategies: 480,
            seed: seed ^ 1,
            ..StrategyCatalogConfig::default()
        },
        range: TimeRange::new(SimTime::EPOCH, SimTime::from_days(4)),
        tick: SimDuration::from_secs(60),
        engine: Engine::Statistical,
        cascades: Vec::new(),
        background_faults_per_day: 6.0,
        storm_every_hours: 24,
        dominant_repeater: None,
        seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quickstart_runs_and_is_deterministic() {
        let a = quickstart(7).run();
        let b = quickstart(7).run();
        assert!(!a.alerts.is_empty());
        assert_eq!(a.alerts, b.alerts);
        assert_eq!(a.incidents.len(), b.incidents.len());
        let c = quickstart(8).run();
        assert_ne!(a.alerts.len(), 0);
        // Different seed almost surely differs.
        assert!(a.alerts != c.alerts);
    }

    #[test]
    fn quickstart_alerts_are_processed() {
        let out = quickstart(7).run();
        for alert in &out.alerts {
            assert!(alert.processing_time().is_some());
            assert!(!alert.is_active());
        }
    }

    #[test]
    fn quickstart_has_cascade_ground_truth() {
        let out = quickstart(7).run();
        let induced = out
            .faults
            .events()
            .iter()
            .filter(|e| e.kind == FaultKind::CascadeInduced)
            .count();
        assert!(induced > 0, "cascade produced no induced faults");
    }

    #[test]
    fn mini_study_volume_and_storms() {
        let out = mini_study(3).run();
        // 4 days × 48 microservices world: expect a few thousand alerts.
        assert!(
            out.alerts.len() > 500,
            "too few alerts: {}",
            out.alerts.len()
        );
        // Hour × region counting should reveal at least one >100 hour
        // (a storm).
        use std::collections::HashMap;
        let mut counts: HashMap<(String, u64), usize> = HashMap::new();
        for a in &out.alerts {
            *counts
                .entry((a.location().region().as_str().to_owned(), a.hour_bucket()))
                .or_insert(0) += 1;
        }
        let max = counts.values().copied().max().unwrap_or(0);
        assert!(max > 100, "no storm-like hour; max {max}");
        // And typical hours are calm.
        let median = {
            let mut v: Vec<usize> = counts.values().copied().collect();
            v.sort_unstable();
            v[v.len() / 2]
        };
        assert!(median < 100, "median hourly volume too high: {median}");
    }

    #[test]
    fn mini_study_is_deterministic() {
        let a = mini_study(5).run();
        let b = mini_study(5).run();
        assert_eq!(a.alerts.len(), b.alerts.len());
        assert_eq!(a.alerts.first(), b.alerts.first());
        assert_eq!(a.alerts.last(), b.alerts.last());
    }

    #[test]
    fn statistical_alerts_sorted_with_dense_ids() {
        let out = mini_study(3).run();
        for (i, a) in out.alerts.iter().enumerate() {
            assert_eq!(a.id(), AlertId(i as u64));
        }
        for w in out.alerts.windows(2) {
            assert!(w[0].raised_at() <= w[1].raised_at());
        }
    }

    #[test]
    fn study_incidents_exist() {
        let out = mini_study(3).run();
        assert!(
            !out.incidents.is_empty(),
            "storms should escalate to incidents"
        );
    }

    #[test]
    fn chatty_strategies_dominate_repeats() {
        let out = mini_study(3).run();
        use std::collections::HashMap;
        let mut per_strategy: HashMap<_, usize> = HashMap::new();
        for a in &out.alerts {
            *per_strategy.entry(a.strategy()).or_insert(0) += 1;
        }
        let (&top, &top_count) = per_strategy
            .iter()
            .max_by_key(|(_, &c)| c)
            .expect("nonempty");
        let profile = out.catalog.profile(top);
        assert!(
            profile.chatty || profile.oversensitive,
            "top strategy {top} ({top_count} alerts) is not chatty/oversensitive"
        );
    }
}
