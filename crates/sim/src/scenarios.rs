//! Ready-made experiment scenarios.
//!
//! Each scenario bundles a topology, a strategy catalog, a fault plan and
//! a monitoring window into a single seeded, reproducible [`Scenario`]
//! whose [`run`](Scenario::run) yields the complete [`SimOutput`] the
//! detectors, reactions, and figure harnesses consume.
//!
//! Two generation engines are used:
//!
//! * **Signal-level** ([`MonitoringSystem`]): real per-tick strategy
//!   evaluation against telemetry. Used by [`quickstart`],
//!   [`cascade_table2`] and [`storm_fig3`] — faithful mechanics at
//!   hours-to-days scale.
//! * **Statistical** ([`workload`](crate::scenarios::study)): per-hour
//!   Poisson sampling per strategy with storm injections. Used by
//!   [`study`] to reach the paper's two-year scale (scaled down ~12×,
//!   documented in DESIGN.md) in seconds.

use serde::{Deserialize, Serialize};

use alertops_model::{Alert, Incident, MicroserviceId, SimDuration, SimTime, TimeRange};

use crate::faults::{FaultEvent, FaultKind, FaultPlan};
use crate::monitor::{MonitorConfig, MonitoringSystem};
use crate::ocesim::{derive_incidents, OceTeam, ProcessingModel};
use crate::rng;
use crate::strategies::{StrategyCatalog, StrategyCatalogConfig};
use crate::telemetry::Telemetry;
use crate::topology::{Topology, TopologyConfig};
use crate::workload::{self, LoadShape};

/// Which engine generates the alert stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Engine {
    /// Tick-by-tick signal evaluation (faithful, hours-to-days scale).
    Signal,
    /// Per-hour statistical sampling (scales to months).
    Statistical,
}

/// A fully specified, seeded experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// Scenario name (used in reports).
    pub name: String,
    /// Topology parameters.
    pub topology: TopologyConfig,
    /// Strategy-catalog parameters.
    pub catalog: StrategyCatalogConfig,
    /// The monitored interval.
    pub range: TimeRange,
    /// Evaluation tick (signal engine only).
    pub tick: SimDuration,
    /// Which engine to use.
    pub engine: Engine,
    /// Planned cascade injections: `(start, duration, magnitude)`; the
    /// source is picked as the microservice with the widest blast radius.
    pub cascades: Vec<(SimTime, SimDuration, f64)>,
    /// Scattered background faults per simulated day.
    pub background_faults_per_day: f64,
    /// Statistical engine: storm injections every N hours (0 = none).
    pub storm_every_hours: u64,
    /// Statistical engine: production-traffic shaping (diurnal curve,
    /// deploy waves, gray cascades, multi-tenant labels). The default
    /// is neutral — see [`LoadShape`].
    pub load: LoadShape,
    /// Signal engine: add one dominant WARNING-level repeater (the
    /// Fig. 3 "haproxy process number warning"): `(cooldown, fault
    /// magnitude)`. The strategy fires at most once per cooldown; a
    /// sustained sub-incident fault on its host keeps its log rule hot
    /// for the duration of the first cascade onward.
    pub dominant_repeater: Option<(SimDuration, f64)>,
    /// Master seed.
    pub seed: u64,
}

/// Everything a scenario run produces.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimOutput {
    /// The generated topology.
    pub topology: Topology,
    /// The generated strategy catalog (with injected ground truth).
    pub catalog: StrategyCatalog,
    /// The injected fault plan (ground truth for A6 and incidents).
    pub faults: FaultPlan,
    /// The alert stream, sorted by raise time, fully processed (every
    /// alert has a processing time and a clearance).
    pub alerts: Vec<Alert>,
    /// Derived incidents (ground truth for indicativeness).
    pub incidents: Vec<Incident>,
    /// The on-call team.
    pub team: OceTeam,
}

impl Scenario {
    /// Runs the scenario end to end.
    #[must_use]
    pub fn run(&self) -> SimOutput {
        let topology = Topology::generate(&self.topology);
        let catalog = StrategyCatalog::generate(&topology, &self.catalog);
        let mut faults = FaultPlan::new();

        // Cascades from the widest-blast-radius source.
        let wide_source = topology
            .microservices()
            .iter()
            .map(|ms| ms.id)
            .max_by_key(|&id| topology.cascade_closure(id).len())
            .expect("topology has microservices");
        for &(start, duration, magnitude) in &self.cascades {
            faults.push_cascade(
                &topology,
                wide_source,
                start,
                duration,
                magnitude,
                0.9,
                SimDuration::from_mins(2),
                self.seed ^ 0xCA5C,
            );
        }

        // Background faults.
        let days = (self.range.duration().as_secs() as f64 / 86_400.0).max(1.0 / 24.0);
        let n_background = (self.background_faults_per_day * days).round() as u64;
        let n_ms = topology.microservices().len() as u64;
        for i in 0..n_background {
            let ms = MicroserviceId(rng::hash3(self.seed, 81, i, 0) % n_ms);
            let offset =
                (rng::uniform(self.seed, 82, i, 0) * self.range.duration().as_secs() as f64) as u64;
            let kind = match rng::hash3(self.seed, 83, i, 0) % 5 {
                0 => FaultKind::Sustained,
                1 => FaultKind::GrayMemoryLeak,
                2 => FaultKind::GrayCpuOverload,
                _ => FaultKind::Transient,
            };
            let duration = match kind {
                FaultKind::Transient => 30 + rng::hash3(self.seed, 84, i, 0) % 180,
                FaultKind::GrayMemoryLeak | FaultKind::GrayCpuOverload => {
                    3_600 + rng::hash3(self.seed, 84, i, 0) % 14_400
                }
                _ => 600 + rng::hash3(self.seed, 84, i, 0) % 3_000,
            };
            faults.push(FaultEvent {
                microservice: ms,
                kind,
                start: self
                    .range
                    .start()
                    .saturating_add(SimDuration::from_secs(offset)),
                duration: SimDuration::from_secs(duration),
                magnitude: 0.5 + rng::uniform(self.seed, 85, i, 0) * 0.5,
                cascade_origin: None,
            });
        }

        // Optional dominant repeater (Fig. 3's HAProxy).
        let mut catalog = catalog;
        if let Some((cooldown, magnitude)) = self.dominant_repeater {
            let host = topology
                .microservices()
                .iter()
                .find(|ms| ms.layer == 0 && ms.region == topology.regions()[0])
                .or_else(|| topology.microservices().first())
                .expect("topology has microservices");
            let id = alertops_model::StrategyId(catalog.len() as u64);
            let strategy = alertops_model::AlertStrategy::builder(id)
                .title_template("haproxy process number warning")
                .severity(alertops_model::Severity::Warning)
                .service(host.service)
                .microservice(host.id)
                .kind(alertops_model::StrategyKind::Log(alertops_model::LogRule {
                    keyword: "WARN".to_owned(),
                    // min_count 2 keeps the baseline chatter mostly
                    // sub-threshold; the host fault pushes it hot.
                    min_count: 2,
                    window: SimDuration::from_mins(5),
                }))
                .cooldown(cooldown)
                .build()
                .expect("repeater strategy is valid");
            let sop = alertops_model::Sop::builder("haproxy process number warning", id)
                .description("HAProxy worker count deviates from target")
                .build()
                .expect("repeater SOP is valid");
            catalog.push(
                strategy,
                crate::strategies::InjectedProfile {
                    chatty: true,
                    ..crate::strategies::InjectedProfile::default()
                },
                sop,
            );
            let start = self
                .cascades
                .first()
                .map_or(self.range.start(), |&(t, _, _)| t);
            faults.push(FaultEvent {
                microservice: host.id,
                kind: FaultKind::GrayCpuOverload,
                start,
                duration: self.range.end().duration_since(start),
                magnitude,
                cascade_origin: None,
            });
        }
        let catalog = catalog;

        let mut alerts = match self.engine {
            Engine::Signal => {
                let telemetry = Telemetry::new(&topology, &faults, self.seed ^ 0x7E1E);
                MonitoringSystem::new(
                    telemetry,
                    &catalog,
                    MonitorConfig {
                        tick: self.tick,
                        range: self.range,
                        seed: self.seed ^ 0x0CE,
                    },
                )
                .run()
            }
            Engine::Statistical => {
                workload::statistical_alerts(self, &topology, &catalog, &mut faults)
            }
        };

        let team = OceTeam::survey_team();
        ProcessingModel {
            seed: self.seed ^ 0x9CE5,
            ..ProcessingModel::default()
        }
        .process(&mut alerts, &catalog, &team);
        let incidents = derive_incidents(&topology, &faults, &alerts);

        SimOutput {
            topology,
            catalog,
            faults,
            alerts,
            incidents,
            team,
        }
    }
}

/// A small 6-hour world for first contact with the API: 24 microservices,
/// 240 strategies, one sustained fault plus background transients.
#[must_use]
pub fn quickstart(seed: u64) -> Scenario {
    Scenario {
        name: "quickstart".to_owned(),
        topology: TopologyConfig {
            services: 4,
            microservices: 24,
            seed,
            ..TopologyConfig::default()
        },
        catalog: StrategyCatalogConfig {
            total_strategies: 240,
            seed: seed ^ 1,
            ..StrategyCatalogConfig::default()
        },
        range: TimeRange::new(SimTime::EPOCH, SimTime::from_hours(6)),
        tick: SimDuration::from_secs(60),
        engine: Engine::Signal,
        cascades: vec![(SimTime::from_hours(3), SimDuration::from_mins(40), 0.9)],
        background_faults_per_day: 20.0,
        storm_every_hours: 0,
        load: LoadShape::default(),
        dominant_repeater: None,
        seed,
    }
}

/// The Table II cascade: a Block Storage failure at ~06:36 cascading into
/// its Database dependents, at full paper scale (192 microservices).
#[must_use]
pub fn cascade_table2(seed: u64) -> Scenario {
    Scenario {
        name: "cascade-table2".to_owned(),
        topology: TopologyConfig {
            seed,
            ..TopologyConfig::default()
        },
        catalog: StrategyCatalogConfig {
            seed: seed ^ 1,
            // A quiet background so the cascade's own alerts dominate the
            // sample table, as in the paper's hand-picked example.
            chatty_fraction: 0.001,
            oversensitive_fraction: 0.004,
            ..StrategyCatalogConfig::default()
        },
        range: TimeRange::new(SimTime::from_hours(5), SimTime::from_hours(8)),
        tick: SimDuration::from_secs(60),
        engine: Engine::Signal,
        // 06:36, matching the paper's sample alerts.
        cascades: vec![(
            SimTime::from_secs(6 * 3_600 + 36 * 60),
            SimDuration::from_mins(12),
            0.95,
        )],
        background_faults_per_day: 2.0,
        storm_every_hours: 0,
        load: LoadShape::default(),
        dominant_repeater: None,
        seed,
    }
}

/// The Fig. 3 alert storm: a 05:00–12:00 window at full catalog scale
/// with a major cascade at 07:00 — the paper's storm produced 2751 alerts
/// from 200 effective strategies between 07:00 and 11:59, dominated by a
/// WARNING-level "haproxy process number warning" at ≈30% per hour.
#[must_use]
pub fn storm_fig3(seed: u64) -> Scenario {
    Scenario {
        name: "storm-fig3".to_owned(),
        topology: TopologyConfig {
            seed,
            ..TopologyConfig::default()
        },
        catalog: StrategyCatalogConfig {
            seed: seed ^ 1,
            // Quieter baseline than the study defaults so the calm hours
            // before 07:00 stay under the storm threshold and the storm
            // itself is cascade-driven, as in the paper's case study.
            chatty_fraction: 0.002,
            oversensitive_fraction: 0.006,
            ..StrategyCatalogConfig::default()
        },
        range: TimeRange::new(SimTime::from_hours(5), SimTime::from_hours(12)),
        tick: SimDuration::from_secs(20),
        engine: Engine::Signal,
        cascades: vec![
            (SimTime::from_hours(7), SimDuration::from_hours(2), 0.95),
            (
                SimTime::from_secs(8 * 3_600 + 30 * 60),
                SimDuration::from_mins(110),
                0.9,
            ),
            (
                SimTime::from_secs(9 * 3_600 + 20 * 60),
                SimDuration::from_mins(100),
                0.9,
            ),
            (
                SimTime::from_secs(10 * 3_600 + 40 * 60),
                SimDuration::from_mins(75),
                0.9,
            ),
        ],
        background_faults_per_day: 60.0,
        storm_every_hours: 0,
        load: LoadShape::default(),
        dominant_repeater: Some((SimDuration::from_secs(40), 0.5)),
        seed,
    }
}

/// The two-year study, scaled: 60 days of statistical generation at the
/// full 2010-strategy / 192-microservice scale, with storms every ~2
/// days. Rates are tuned so the per-hour volume matches the paper's
/// ≈230 alerts/hour average (4M+ over two years); extrapolating 60 days
/// ×12.2 recovers the paper's scale.
#[must_use]
pub fn study(seed: u64) -> Scenario {
    Scenario {
        name: "study".to_owned(),
        topology: TopologyConfig {
            seed,
            ..TopologyConfig::default()
        },
        catalog: StrategyCatalogConfig {
            seed: seed ^ 1,
            ..StrategyCatalogConfig::default()
        },
        range: TimeRange::new(SimTime::EPOCH, SimTime::from_days(60)),
        tick: SimDuration::from_secs(60),
        engine: Engine::Statistical,
        cascades: Vec::new(),
        background_faults_per_day: 6.0,
        storm_every_hours: 48,
        load: LoadShape::default(),
        dominant_repeater: None,
        seed,
    }
}

/// A miniature statistical study (4 days, small world) for tests and
/// quick demos: same code paths as [`study`], two orders of magnitude
/// faster.
#[must_use]
pub fn mini_study(seed: u64) -> Scenario {
    Scenario {
        name: "mini-study".to_owned(),
        topology: TopologyConfig {
            services: 6,
            microservices: 48,
            seed,
            ..TopologyConfig::default()
        },
        catalog: StrategyCatalogConfig {
            total_strategies: 480,
            seed: seed ^ 1,
            ..StrategyCatalogConfig::default()
        },
        range: TimeRange::new(SimTime::EPOCH, SimTime::from_days(4)),
        tick: SimDuration::from_secs(60),
        engine: Engine::Statistical,
        cascades: Vec::new(),
        background_faults_per_day: 6.0,
        storm_every_hours: 24,
        load: LoadShape::default(),
        dominant_repeater: None,
        seed,
    }
}

/// Production-scale soak world: a multi-tenant fleet of 32 services /
/// 1024 microservices monitored by 8000 strategies over three days,
/// with a diurnal load curve, eight deployments a day, daily gray
/// cascades, and storms every ~12 hours. Drive it through
/// [`crate::workload::StatisticalStream`] (hour-at-a-time, bounded
/// memory) rather than [`Scenario::run`] — materializing the whole
/// range at once is exactly what the soak harness exists to avoid.
#[must_use]
pub fn soak(seed: u64) -> Scenario {
    Scenario {
        name: "soak".to_owned(),
        topology: TopologyConfig {
            services: 32,
            microservices: 1024,
            seed,
            ..TopologyConfig::default()
        },
        catalog: StrategyCatalogConfig {
            total_strategies: 8000,
            seed: seed ^ 1,
            ..StrategyCatalogConfig::default()
        },
        range: TimeRange::new(SimTime::EPOCH, SimTime::from_days(3)),
        tick: SimDuration::from_secs(60),
        engine: Engine::Statistical,
        cascades: Vec::new(),
        background_faults_per_day: 12.0,
        storm_every_hours: 12,
        load: LoadShape {
            diurnal_amplitude: 0.5,
            diurnal_peak_hour: 14,
            deploys_per_day: 8,
            deploy_wave_boost: 6.0,
            gray_cascades_per_week: 7,
            tenants: 6,
            rate_multiplier: 1.5,
        },
        dominant_repeater: None,
        seed,
    }
}

/// The soak world shrunk to smoke-test size (8 services, 96
/// microservices, 800 strategies, one day) with every [`LoadShape`]
/// phenomenon still active — same code paths as [`soak`], seconds of
/// wall clock. This is what the CI `soak-smoke` gate and
/// `tests/soak_smoke.rs` drive.
#[must_use]
pub fn soak_smoke(seed: u64) -> Scenario {
    Scenario {
        name: "soak-smoke".to_owned(),
        topology: TopologyConfig {
            services: 8,
            microservices: 96,
            seed,
            ..TopologyConfig::default()
        },
        catalog: StrategyCatalogConfig {
            total_strategies: 800,
            seed: seed ^ 1,
            ..StrategyCatalogConfig::default()
        },
        range: TimeRange::new(SimTime::EPOCH, SimTime::from_days(1)),
        tick: SimDuration::from_secs(60),
        engine: Engine::Statistical,
        cascades: Vec::new(),
        background_faults_per_day: 12.0,
        storm_every_hours: 8,
        load: LoadShape {
            diurnal_amplitude: 0.5,
            diurnal_peak_hour: 14,
            deploys_per_day: 8,
            deploy_wave_boost: 6.0,
            gray_cascades_per_week: 7,
            tenants: 4,
            rate_multiplier: 2.0,
        },
        dominant_repeater: None,
        seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alertops_model::AlertId;

    #[test]
    fn quickstart_runs_and_is_deterministic() {
        let a = quickstart(7).run();
        let b = quickstart(7).run();
        assert!(!a.alerts.is_empty());
        assert_eq!(a.alerts, b.alerts);
        assert_eq!(a.incidents.len(), b.incidents.len());
        let c = quickstart(8).run();
        assert_ne!(a.alerts.len(), 0);
        // Different seed almost surely differs.
        assert!(a.alerts != c.alerts);
    }

    #[test]
    fn quickstart_alerts_are_processed() {
        let out = quickstart(7).run();
        for alert in &out.alerts {
            assert!(alert.processing_time().is_some());
            assert!(!alert.is_active());
        }
    }

    #[test]
    fn quickstart_has_cascade_ground_truth() {
        let out = quickstart(7).run();
        let induced = out
            .faults
            .events()
            .iter()
            .filter(|e| e.kind == FaultKind::CascadeInduced)
            .count();
        assert!(induced > 0, "cascade produced no induced faults");
    }

    #[test]
    fn mini_study_volume_and_storms() {
        let out = mini_study(3).run();
        // 4 days × 48 microservices world: expect a few thousand alerts.
        assert!(
            out.alerts.len() > 500,
            "too few alerts: {}",
            out.alerts.len()
        );
        // Hour × region counting should reveal at least one >100 hour
        // (a storm).
        use std::collections::HashMap;
        let mut counts: HashMap<(String, u64), usize> = HashMap::new();
        for a in &out.alerts {
            *counts
                .entry((a.location().region().as_str().to_owned(), a.hour_bucket()))
                .or_insert(0) += 1;
        }
        let max = counts.values().copied().max().unwrap_or(0);
        assert!(max > 100, "no storm-like hour; max {max}");
        // And typical hours are calm.
        let median = {
            let mut v: Vec<usize> = counts.values().copied().collect();
            v.sort_unstable();
            v[v.len() / 2]
        };
        assert!(median < 100, "median hourly volume too high: {median}");
    }

    #[test]
    fn mini_study_is_deterministic() {
        let a = mini_study(5).run();
        let b = mini_study(5).run();
        assert_eq!(a.alerts.len(), b.alerts.len());
        assert_eq!(a.alerts.first(), b.alerts.first());
        assert_eq!(a.alerts.last(), b.alerts.last());
    }

    #[test]
    fn statistical_alerts_sorted_with_dense_ids() {
        let out = mini_study(3).run();
        for (i, a) in out.alerts.iter().enumerate() {
            assert_eq!(a.id(), AlertId(i as u64));
        }
        for w in out.alerts.windows(2) {
            assert!(w[0].raised_at() <= w[1].raised_at());
        }
    }

    #[test]
    fn study_incidents_exist() {
        let out = mini_study(3).run();
        assert!(
            !out.incidents.is_empty(),
            "storms should escalate to incidents"
        );
    }

    #[test]
    fn chatty_strategies_dominate_repeats() {
        let out = mini_study(3).run();
        use std::collections::HashMap;
        let mut per_strategy: HashMap<_, usize> = HashMap::new();
        for a in &out.alerts {
            *per_strategy.entry(a.strategy()).or_insert(0) += 1;
        }
        let (&top, &top_count) = per_strategy
            .iter()
            .max_by_key(|(_, &c)| c)
            .expect("nonempty");
        let profile = out.catalog.profile(top);
        assert!(
            profile.chatty || profile.oversensitive,
            "top strategy {top} ({top_count} alerts) is not chatty/oversensitive"
        );
    }
}
