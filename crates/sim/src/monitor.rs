//! The monitoring system: strategy evaluation and alert emission.
//!
//! "The cloud monitoring system will continuously detect anomalies and
//! generate system reliability alerts according to the alert strategies"
//! (§II-B3). This module walks simulated time in fixed ticks, evaluates
//! every strategy of the catalog against the telemetry, and emits
//! [`Alert`]s with the full lifecycle the paper describes: debounce
//! (consecutive samples), per-strategy cooldown, and automatic clearance
//! for probe/metric alerts once the condition subsides (§II-B4).

use serde::{Deserialize, Serialize};

use alertops_model::{
    Alert, AlertId, Clearance, Location, SimDuration, SimTime, StrategyKind, TimeRange,
};

use crate::rng;
use crate::strategies::StrategyCatalog;
use crate::telemetry::Telemetry;

/// Configuration for [`MonitoringSystem`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonitorConfig {
    /// Evaluation period; every strategy is checked once per tick.
    pub tick: SimDuration,
    /// The simulated interval to monitor.
    pub range: TimeRange,
    /// Seed for cosmetic randomness (instance names).
    pub seed: u64,
}

impl MonitorConfig {
    /// A config monitoring `[0, hours)` with the default 60 s tick.
    #[must_use]
    pub fn for_hours(hours: u64) -> Self {
        Self {
            tick: SimDuration::from_secs(60),
            range: TimeRange::new(SimTime::EPOCH, SimTime::from_hours(hours)),
            seed: 3,
        }
    }
}

/// Per-strategy evaluation state carried across ticks.
#[derive(Debug, Clone, Default)]
struct StrategyState {
    /// Consecutive ticks the metric condition held.
    consecutive: u32,
    /// Index into the output vector of the currently active alert, if any
    /// (probe/metric only — log alerts are not auto-tracked).
    active: Option<usize>,
    /// Last time this strategy fired.
    last_fire: Option<SimTime>,
    /// First tick at which the probe became unresponsive.
    probe_down_since: Option<SimTime>,
}

/// The monitoring system. Construct once, [`run`](Self::run) to produce
/// the alert stream of the configured interval.
#[derive(Debug)]
pub struct MonitoringSystem<'a> {
    telemetry: Telemetry<'a>,
    catalog: &'a StrategyCatalog,
    config: MonitorConfig,
}

impl<'a> MonitoringSystem<'a> {
    /// Creates a monitoring system over telemetry and a strategy catalog.
    ///
    /// # Panics
    ///
    /// Panics if the tick is zero.
    #[must_use]
    pub fn new(
        telemetry: Telemetry<'a>,
        catalog: &'a StrategyCatalog,
        config: MonitorConfig,
    ) -> Self {
        assert!(!config.tick.is_zero(), "tick must be positive");
        Self {
            telemetry,
            catalog,
            config,
        }
    }

    /// Runs the simulation and returns all alerts raised in the range,
    /// sorted by raise time (ties broken by strategy id), with ids
    /// assigned in that order.
    ///
    /// Probe and metric alerts whose condition subsides inside the range
    /// are automatically cleared; alerts still firing at the end of the
    /// range stay [`Active`](alertops_model::AlertState::Active). Log
    /// alerts are never auto-cleared (the OCE model clears them).
    #[must_use]
    pub fn run(&self) -> Vec<Alert> {
        let mut states: Vec<StrategyState> = vec![StrategyState::default(); self.catalog.len()];
        // (raise_time, strategy_ix) plus lifecycle metadata, resolved to
        // final `Alert`s at the end.
        let mut raised: Vec<Alert> = Vec::new();

        let start = self.config.range.start();
        let end = self.config.range.end();
        let tick = self.config.tick;
        let mut now = start;
        while now < end {
            for (ix, strategy) in self.catalog.strategies().iter().enumerate() {
                let state = &mut states[ix];
                let ms = strategy.microservice();
                match strategy.kind() {
                    StrategyKind::Metric(rule) => {
                        let value = self.telemetry.metric(ms, rule.metric, now);
                        let firing = rule.op.triggers(value, rule.threshold);
                        if firing {
                            state.consecutive = state.consecutive.saturating_add(1);
                        } else {
                            state.consecutive = 0;
                        }
                        if let Some(active_ix) = state.active {
                            if !firing {
                                // Condition subsided: automatic clearance.
                                raised[active_ix]
                                    .clear(now, Clearance::Auto)
                                    .expect("active alert is clearable");
                                state.active = None;
                            }
                        } else if firing
                            && state.consecutive >= rule.consecutive_samples
                            && self.cooldown_passed(strategy.cooldown(), state.last_fire, now)
                        {
                            state.last_fire = Some(now);
                            state.active = Some(raised.len());
                            raised.push(self.make_alert(ix, now));
                        }
                    }
                    StrategyKind::Probe(rule) => {
                        let responsive = self.telemetry.probe_responsive(ms, now);
                        if responsive {
                            state.probe_down_since = None;
                            if let Some(active_ix) = state.active {
                                raised[active_ix]
                                    .clear(now, Clearance::Auto)
                                    .expect("active alert is clearable");
                                state.active = None;
                            }
                        } else {
                            let since = *state.probe_down_since.get_or_insert(now);
                            let down_for = now.duration_since(since);
                            if state.active.is_none()
                                && down_for >= rule.no_response_timeout
                                && self.cooldown_passed(strategy.cooldown(), state.last_fire, now)
                            {
                                state.last_fire = Some(now);
                                state.active = Some(raised.len());
                                raised.push(self.make_alert(ix, now));
                            }
                        }
                    }
                    StrategyKind::Log(rule) => {
                        let window = TimeRange::new(
                            now.checked_sub(rule.window).unwrap_or(SimTime::EPOCH),
                            now,
                        );
                        // The telemetry's error stream stands in for all
                        // keyword-bearing lines; chatty WARN rules with
                        // min_count 1 catch its baseline chatter.
                        let count = self.telemetry.error_log_count(ms, window);
                        if count >= rule.min_count
                            && self.cooldown_passed(strategy.cooldown(), state.last_fire, now)
                        {
                            state.last_fire = Some(now);
                            raised.push(self.make_alert(ix, now));
                        }
                    }
                }
            }
            now += tick;
        }

        // Sort by (raise time, strategy) and re-assign dense ids.
        raised.sort_by_key(|a| (a.raised_at(), a.strategy()));
        raised
            .into_iter()
            .enumerate()
            .map(|(i, a)| a.with_id(AlertId(i as u64)))
            .collect()
    }

    fn cooldown_passed(
        &self,
        cooldown: SimDuration,
        last_fire: Option<SimTime>,
        now: SimTime,
    ) -> bool {
        last_fire.is_none_or(|t| now.duration_since(t) >= cooldown)
    }

    fn make_alert(&self, strategy_ix: usize, now: SimTime) -> Alert {
        let strategy = &self.catalog.strategies()[strategy_ix];
        let ms_id = strategy.microservice();
        let topo = self.telemetry.topology();
        let (region, dc) = topo.microservice(ms_id).map_or_else(
            || ("unknown".into(), "dc-0".into()),
            |m| (m.region.clone(), m.dc.clone()),
        );
        let instance = format!(
            "vm-{}",
            rng::hash3(self.config.seed, 61, ms_id.0, now.as_secs()) % 64
        );
        Alert::builder(AlertId(0), strategy.id())
            .title(strategy.title_template())
            .severity(strategy.severity())
            .service(topo.service_name_of(ms_id))
            .microservice(ms_id)
            .location(Location::new(region, dc).with_instance(instance))
            .raised_at(now)
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultEvent, FaultKind, FaultPlan};
    use crate::strategies::StrategyCatalogConfig;
    use crate::topology::{Topology, TopologyConfig};
    use alertops_model::{AlertState, MicroserviceId};

    fn small_world() -> (Topology, StrategyCatalog) {
        let topo = Topology::generate(&TopologyConfig {
            services: 4,
            microservices: 24,
            ..TopologyConfig::default()
        });
        let catalog = StrategyCatalog::generate(
            &topo,
            &StrategyCatalogConfig {
                total_strategies: 240,
                ..StrategyCatalogConfig::default()
            },
        );
        (topo, catalog)
    }

    fn run_with(plan: &FaultPlan, hours: u64) -> (Vec<Alert>, StrategyCatalog) {
        let (topo, catalog) = small_world();
        let telemetry = Telemetry::new(&topo, plan, 9);
        let monitor = MonitoringSystem::new(telemetry, &catalog, MonitorConfig::for_hours(hours));
        (monitor.run(), catalog)
    }

    #[test]
    fn quiet_system_still_produces_noise_alerts() {
        // Over-sensitive and chatty strategies fire even with no faults —
        // that is exactly anti-patterns A4/A5.
        let (alerts, catalog) = run_with(&FaultPlan::new(), 6);
        assert!(!alerts.is_empty(), "expected noise alerts");
        let noisy_strategies: std::collections::BTreeSet<_> = alerts
            .iter()
            .map(Alert::strategy)
            .filter(|&id| {
                let p = catalog.profile(id);
                p.oversensitive || p.chatty
            })
            .collect();
        assert!(
            !noisy_strategies.is_empty(),
            "noise should come from injected noisy strategies"
        );
    }

    #[test]
    fn sustained_fault_raises_alerts_on_target() {
        let target = MicroserviceId(2);
        let plan: FaultPlan = vec![FaultEvent {
            microservice: target,
            kind: FaultKind::Sustained,
            start: SimTime::from_hours(2),
            duration: SimDuration::from_hours(1),
            magnitude: 0.9,
            cascade_origin: None,
        }]
        .into_iter()
        .collect();
        let (alerts, _) = run_with(&plan, 4);
        let on_target: Vec<&Alert> = alerts
            .iter()
            .filter(|a| a.microservice() == target)
            .filter(|a| a.raised_at() >= SimTime::from_hours(2))
            .collect();
        assert!(
            !on_target.is_empty(),
            "no alerts on the faulted microservice"
        );
    }

    #[test]
    fn alerts_are_sorted_with_dense_ids() {
        let (alerts, _) = run_with(&FaultPlan::new(), 4);
        for (i, alert) in alerts.iter().enumerate() {
            assert_eq!(alert.id(), AlertId(i as u64));
        }
        for pair in alerts.windows(2) {
            assert!(pair[0].raised_at() <= pair[1].raised_at());
        }
    }

    #[test]
    fn cleared_alerts_respect_lifecycle() {
        let (alerts, _) = run_with(&FaultPlan::new(), 6);
        for alert in &alerts {
            if let AlertState::Cleared { at, by } = alert.state() {
                assert!(at >= alert.raised_at());
                assert_eq!(by, Clearance::Auto);
            }
        }
        // At least some metric alerts auto-clear in 6 quiet hours.
        assert!(
            alerts.iter().any(|a| !a.is_active()),
            "expected some auto-cleared alerts"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let plan = FaultPlan::new();
        let (a, _) = run_with(&plan, 3);
        let (b, _) = run_with(&plan, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn cooldown_limits_fire_rate() {
        let (alerts, catalog) = run_with(&FaultPlan::new(), 6);
        // For every strategy, consecutive raises must be >= cooldown apart.
        use std::collections::HashMap;
        let mut last: HashMap<_, SimTime> = HashMap::new();
        for alert in &alerts {
            let cooldown = catalog
                .strategy(alert.strategy())
                .expect("alert references a known strategy")
                .cooldown();
            if let Some(&prev) = last.get(&alert.strategy()) {
                assert!(
                    alert.raised_at().duration_since(prev) >= cooldown,
                    "{} re-fired within cooldown",
                    alert.strategy()
                );
            }
            last.insert(alert.strategy(), alert.raised_at());
        }
    }

    #[test]
    fn probe_alert_fires_and_clears_on_hard_fault() {
        let (topo, catalog) = small_world();
        // Fault the microservice of some probe strategy.
        let probe_strategy = catalog
            .strategies()
            .iter()
            .find(|s| matches!(s.kind(), StrategyKind::Probe(_)))
            .unwrap();
        let target = probe_strategy.microservice();
        let plan: FaultPlan = vec![FaultEvent {
            microservice: target,
            kind: FaultKind::Sustained,
            start: SimTime::from_hours(1),
            duration: SimDuration::from_mins(30),
            magnitude: 0.9,
            cascade_origin: None,
        }]
        .into_iter()
        .collect();
        let telemetry = Telemetry::new(&topo, &plan, 9);
        let monitor = MonitoringSystem::new(telemetry, &catalog, MonitorConfig::for_hours(3));
        let alerts = monitor.run();
        let probe_alerts: Vec<&Alert> = alerts
            .iter()
            .filter(|a| a.strategy() == probe_strategy.id())
            .collect();
        assert_eq!(probe_alerts.len(), 1, "expected exactly one probe alert");
        let alert = probe_alerts[0];
        assert!(alert.raised_at() >= SimTime::from_hours(1));
        assert_eq!(alert.clearance(), Some(Clearance::Auto));
        assert!(
            alert.cleared_at().unwrap()
                <= SimTime::from_secs(SimTime::from_hours(1).as_secs() + 31 * 60)
        );
    }

    #[test]
    fn alert_titles_come_from_strategy_templates() {
        let (alerts, catalog) = run_with(&FaultPlan::new(), 2);
        for alert in alerts.iter().take(20) {
            let strategy = catalog.strategy(alert.strategy()).unwrap();
            assert_eq!(alert.title(), strategy.title_template());
            assert_eq!(alert.severity(), strategy.severity());
        }
    }

    #[test]
    fn locations_are_instance_level() {
        let (alerts, _) = run_with(&FaultPlan::new(), 2);
        assert!(alerts.iter().all(|a| a.location().is_instance_level()));
    }
}
