//! Service / microservice topology generation.
//!
//! The paper's system: 11 cloud services, 192 microservices, multiple
//! regions. Microservices depend on one another; anomalies propagate
//! along those dependencies ("such anomalous states can propagate
//! through the service-calling structure"), producing the cascading
//! anti-pattern (A6). The generator builds a layered DAG so propagation
//! is acyclic and replayable.

use std::collections::{BTreeSet, HashMap, VecDeque};

use serde::{Deserialize, Serialize};

use alertops_model::{IStr, MicroserviceId, RegionId, ServiceId};

use crate::rng;

/// Human-readable service names, cycled if more services are requested.
const SERVICE_NAMES: &[&str] = &[
    "Block Storage",
    "Database",
    "Elastic Computing",
    "Object Storage",
    "Virtual Network",
    "Load Balancing",
    "Container Platform",
    "Message Queue",
    "Identity",
    "Monitoring",
    "CDN",
    "DNS",
    "Key Management",
];

/// Microservice role suffixes used to synthesize names.
const MS_ROLES: &[&str] = &[
    "api",
    "gateway",
    "scheduler",
    "worker",
    "replicator",
    "allocator",
    "metadata",
    "proxy",
    "cache",
    "quota",
    "billing",
    "agent",
    "controller",
    "indexer",
    "janitor",
    "router",
];

/// Configuration for [`Topology::generate`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopologyConfig {
    /// Number of cloud services (the paper: 11).
    pub services: usize,
    /// Number of microservices (the paper: 192).
    pub microservices: usize,
    /// Region names, e.g. `["region-x", "region-y"]`.
    pub regions: Vec<String>,
    /// Mean number of dependencies per microservice (edges to lower
    /// layers).
    pub mean_dependencies: f64,
    /// Fraction of microservices with fault-tolerance (their
    /// infrastructure-level faults do not affect service quality — the
    /// substrate behind anti-pattern A3).
    pub fault_tolerant_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TopologyConfig {
    fn default() -> Self {
        Self {
            services: 11,
            microservices: 192,
            regions: vec!["region-x".to_owned(), "region-y".to_owned()],
            mean_dependencies: 2.0,
            fault_tolerant_fraction: 0.35,
            seed: 1,
        }
    }
}

/// A cloud service: a named group of microservices.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Service {
    /// The service id.
    pub id: ServiceId,
    /// The display name ("Block Storage", ...). Interned: every alert
    /// of every strategy of this service shares the one allocation.
    pub name: IStr,
}

/// A microservice: the unit of deployment, monitoring, and failure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Microservice {
    /// The microservice id.
    pub id: MicroserviceId,
    /// The owning service.
    pub service: ServiceId,
    /// Synthesized name, e.g. `block-storage-allocator-3`.
    pub name: String,
    /// Home region.
    pub region: RegionId,
    /// Data center within the region. Interned — cloned into every
    /// alert location this microservice raises.
    pub dc: IStr,
    /// Topological layer (0 = foundation; higher layers depend on lower).
    pub layer: usize,
    /// Whether fault-tolerance shields service quality from this
    /// microservice's infrastructure-level faults.
    pub fault_tolerant: bool,
}

/// The generated topology: services, microservices, and the dependency
/// graph between microservices.
///
/// Edges point from a microservice to the microservices it *depends on*
/// (callees). Cascades propagate the other way, via
/// [`dependents_of`](Self::dependents_of).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    services: Vec<Service>,
    microservices: Vec<Microservice>,
    /// dependencies[i] = ids the i-th microservice calls.
    dependencies: Vec<Vec<MicroserviceId>>,
    /// dependents[i] = ids that call the i-th microservice.
    dependents: Vec<Vec<MicroserviceId>>,
    regions: Vec<RegionId>,
}

impl Topology {
    /// Generates a topology from `config`. Deterministic in the seed.
    ///
    /// # Panics
    ///
    /// Panics if `services` or `microservices` is zero, or `regions` is
    /// empty.
    #[must_use]
    pub fn generate(config: &TopologyConfig) -> Self {
        assert!(config.services > 0, "need at least one service");
        assert!(config.microservices > 0, "need at least one microservice");
        assert!(!config.regions.is_empty(), "need at least one region");
        let seed = config.seed;

        let services: Vec<Service> = (0..config.services)
            .map(|i| Service {
                id: ServiceId(i as u64),
                name: SERVICE_NAMES[i % SERVICE_NAMES.len()].into(),
            })
            .collect();

        // Layered DAG: ~4 layers, foundation services (storage, network)
        // concentrated at the bottom.
        let layers = 4usize;
        let mut microservices = Vec::with_capacity(config.microservices);
        for i in 0..config.microservices {
            let id = MicroserviceId(i as u64);
            let service = ServiceId((i % config.services) as u64);
            let layer = {
                // Lower service ids sit lower in the stack on average.
                let base = (service.0 as usize * layers) / config.services;
                let jitter = (rng::hash3(seed, 11, i as u64, 0) % 2) as usize;
                (base + jitter).min(layers - 1)
            };
            let region_ix =
                (rng::hash3(seed, 12, i as u64, 0) % config.regions.len() as u64) as usize;
            let region = RegionId::new(config.regions[region_ix].clone());
            let dc = IStr::from(format!("dc-{}", 1 + rng::hash3(seed, 13, i as u64, 0) % 3));
            let role =
                MS_ROLES[(rng::hash3(seed, 14, i as u64, 0) % MS_ROLES.len() as u64) as usize];
            let service_slug = services[service.0 as usize]
                .name
                .to_ascii_lowercase()
                .replace(' ', "-");
            let fault_tolerant =
                rng::uniform(seed, 15, i as u64, 0) < config.fault_tolerant_fraction;
            microservices.push(Microservice {
                id,
                service,
                name: format!("{service_slug}-{role}-{i}"),
                region,
                dc,
                layer,
                fault_tolerant,
            });
        }

        // Dependencies: each microservice depends on a few microservices
        // in strictly lower layers (acyclic by construction).
        let mut dependencies: Vec<Vec<MicroserviceId>> = vec![Vec::new(); config.microservices];
        let by_layer: HashMap<usize, Vec<usize>> = {
            let mut m: HashMap<usize, Vec<usize>> = HashMap::new();
            for (ix, ms) in microservices.iter().enumerate() {
                m.entry(ms.layer).or_default().push(ix);
            }
            m
        };
        for (ix, ms) in microservices.iter().enumerate() {
            if ms.layer == 0 {
                continue;
            }
            let candidates: Vec<usize> = (0..ms.layer)
                .flat_map(|l| by_layer.get(&l).cloned().unwrap_or_default())
                .collect();
            if candidates.is_empty() {
                continue;
            }
            let n_deps = {
                let draw = rng::uniform(seed, 16, ix as u64, 0);
                // 1 + geometric-ish around the configured mean.
                let extra = (draw * 2.0 * (config.mean_dependencies - 1.0).max(0.0)).round();
                (1.0 + extra) as usize
            };
            let mut chosen = BTreeSet::new();
            for d in 0..n_deps * 3 {
                if chosen.len() >= n_deps {
                    break;
                }
                let pick = candidates[(rng::hash3(seed, 17, ix as u64, d as u64)
                    % candidates.len() as u64) as usize];
                chosen.insert(pick);
            }
            dependencies[ix] = chosen
                .into_iter()
                .map(|c| MicroserviceId(c as u64))
                .collect();
        }

        let mut dependents: Vec<Vec<MicroserviceId>> = vec![Vec::new(); config.microservices];
        for (ix, deps) in dependencies.iter().enumerate() {
            for dep in deps {
                dependents[dep.0 as usize].push(MicroserviceId(ix as u64));
            }
        }

        Self {
            services,
            microservices,
            dependencies,
            dependents,
            regions: config.regions.iter().cloned().map(RegionId::new).collect(),
        }
    }

    /// All services.
    #[must_use]
    pub fn services(&self) -> &[Service] {
        &self.services
    }

    /// All microservices.
    #[must_use]
    pub fn microservices(&self) -> &[Microservice] {
        &self.microservices
    }

    /// All regions.
    #[must_use]
    pub fn regions(&self) -> &[RegionId] {
        &self.regions
    }

    /// The microservice with id `id`, if it exists.
    #[must_use]
    pub fn microservice(&self, id: MicroserviceId) -> Option<&Microservice> {
        self.microservices.get(id.0 as usize)
    }

    /// The service with id `id`, if it exists.
    #[must_use]
    pub fn service(&self, id: ServiceId) -> Option<&Service> {
        self.services.get(id.0 as usize)
    }

    /// The display name of the service owning microservice `id`
    /// (empty string if unknown — callers treat it as cosmetic).
    #[must_use]
    pub fn service_name_of(&self, id: MicroserviceId) -> &str {
        self.microservice(id)
            .and_then(|ms| self.service(ms.service))
            .map_or("", |s| s.name.as_str())
    }

    /// The interned display name of the service owning microservice
    /// `id` — alert producers clone this handle per alert instead of
    /// re-interning the text.
    #[must_use]
    pub fn service_name_interned_of(&self, id: MicroserviceId) -> Option<&IStr> {
        self.microservice(id)
            .and_then(|ms| self.service(ms.service))
            .map(|s| &s.name)
    }

    /// Microservices that `id` depends on (its callees).
    #[must_use]
    pub fn dependencies_of(&self, id: MicroserviceId) -> &[MicroserviceId] {
        self.dependencies
            .get(id.0 as usize)
            .map_or(&[], Vec::as_slice)
    }

    /// Microservices that depend on `id` (its callers) — the direction a
    /// failure cascades.
    #[must_use]
    pub fn dependents_of(&self, id: MicroserviceId) -> &[MicroserviceId] {
        self.dependents
            .get(id.0 as usize)
            .map_or(&[], Vec::as_slice)
    }

    /// Breadth-first upstream closure: every microservice reachable from
    /// `id` via dependents edges, *excluding* `id`, paired with its hop
    /// distance. This is the blast radius of a failure in `id`.
    #[must_use]
    pub fn cascade_closure(&self, id: MicroserviceId) -> Vec<(MicroserviceId, usize)> {
        let mut out = Vec::new();
        let mut seen = BTreeSet::new();
        seen.insert(id);
        let mut queue = VecDeque::new();
        queue.push_back((id, 0usize));
        while let Some((cur, dist)) = queue.pop_front() {
            for &dep in self.dependents_of(cur) {
                if seen.insert(dep) {
                    out.push((dep, dist + 1));
                    queue.push_back((dep, dist + 1));
                }
            }
        }
        out
    }

    /// Whether `a` transitively depends on `b` (i.e. `b` is in `a`'s
    /// dependency closure).
    #[must_use]
    pub fn depends_transitively(&self, a: MicroserviceId, b: MicroserviceId) -> bool {
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::new();
        queue.push_back(a);
        while let Some(cur) = queue.pop_front() {
            for &dep in self.dependencies_of(cur) {
                if dep == b {
                    return true;
                }
                if seen.insert(dep) {
                    queue.push_back(dep);
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::generate(&TopologyConfig::default())
    }

    #[test]
    fn paper_scale_defaults() {
        let t = topo();
        assert_eq!(t.services().len(), 11);
        assert_eq!(t.microservices().len(), 192);
        assert_eq!(t.regions().len(), 2);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = Topology::generate(&TopologyConfig::default());
        let b = Topology::generate(&TopologyConfig::default());
        assert_eq!(a, b);
        let c = Topology::generate(&TopologyConfig {
            seed: 99,
            ..TopologyConfig::default()
        });
        assert_ne!(a, c);
    }

    #[test]
    fn dependencies_point_to_lower_layers_only() {
        let t = topo();
        for ms in t.microservices() {
            for &dep in t.dependencies_of(ms.id) {
                let dep_ms = t.microservice(dep).unwrap();
                assert!(
                    dep_ms.layer < ms.layer,
                    "{} (layer {}) depends on {} (layer {})",
                    ms.name,
                    ms.layer,
                    dep_ms.name,
                    dep_ms.layer
                );
            }
        }
    }

    #[test]
    fn graph_is_acyclic() {
        // Layer monotonicity already implies acyclicity; double-check by
        // asserting no microservice transitively depends on itself.
        let t = topo();
        for ms in t.microservices().iter().take(50) {
            assert!(!t.depends_transitively(ms.id, ms.id));
        }
    }

    #[test]
    fn dependents_inverse_of_dependencies() {
        let t = topo();
        for ms in t.microservices() {
            for &dep in t.dependencies_of(ms.id) {
                assert!(
                    t.dependents_of(dep).contains(&ms.id),
                    "missing inverse edge {dep} -> {}",
                    ms.id
                );
            }
        }
    }

    #[test]
    fn cascade_closure_excludes_source_and_has_distances() {
        let t = topo();
        // Find a layer-0 microservice with dependents.
        let source = t
            .microservices()
            .iter()
            .find(|ms| ms.layer == 0 && !t.dependents_of(ms.id).is_empty())
            .expect("a foundation microservice with dependents");
        let closure = t.cascade_closure(source.id);
        assert!(!closure.is_empty());
        assert!(closure.iter().all(|&(id, _)| id != source.id));
        assert!(closure.iter().all(|&(_, d)| d >= 1));
        // No duplicates.
        let ids: BTreeSet<_> = closure.iter().map(|&(id, _)| id).collect();
        assert_eq!(ids.len(), closure.len());
    }

    #[test]
    fn names_embed_service_slug() {
        let t = topo();
        let ms = &t.microservices()[0];
        let service = t.service(ms.service).unwrap();
        let slug = service.name.to_ascii_lowercase().replace(' ', "-");
        assert!(ms.name.starts_with(&slug), "{} vs {}", ms.name, slug);
    }

    #[test]
    fn some_microservices_are_fault_tolerant() {
        let t = topo();
        let ft = t
            .microservices()
            .iter()
            .filter(|ms| ms.fault_tolerant)
            .count();
        // Configured fraction 0.35 of 192 ≈ 67; allow wide slack.
        assert!(ft > 30 && ft < 110, "fault-tolerant count {ft}");
    }

    #[test]
    fn service_name_lookup() {
        let t = topo();
        assert_eq!(t.service_name_of(MicroserviceId(0)), "Block Storage");
        assert_eq!(t.service_name_of(MicroserviceId(9999)), "");
    }

    #[test]
    #[should_panic(expected = "at least one region")]
    fn rejects_empty_regions() {
        let _ = Topology::generate(&TopologyConfig {
            regions: Vec::new(),
            ..TopologyConfig::default()
        });
    }
}

impl Topology {
    /// Exports the dependency edges as a neutral
    /// [`DependencyGraph`](alertops_model::DependencyGraph), the form the
    /// A6 detector and the R3 correlation reaction consume.
    #[must_use]
    pub fn dependency_graph(&self) -> alertops_model::DependencyGraph {
        self.microservices
            .iter()
            .flat_map(|ms| {
                self.dependencies_of(ms.id)
                    .iter()
                    .map(move |&dep| (ms.id, dep))
                    .collect::<Vec<_>>()
            })
            .collect()
    }
}

#[cfg(test)]
mod graph_export_tests {
    use super::*;

    #[test]
    fn dependency_graph_matches_topology_edges() {
        let topo = Topology::generate(&TopologyConfig::default());
        let graph = topo.dependency_graph();
        let edge_total: usize = topo
            .microservices()
            .iter()
            .map(|ms| topo.dependencies_of(ms.id).len())
            .sum();
        assert_eq!(graph.edge_count(), edge_total);
        for ms in topo.microservices().iter().take(30) {
            for &dep in topo.dependencies_of(ms.id) {
                assert!(graph.depends_on(ms.id, dep));
            }
        }
    }
}
