//! The OCE model: alert processing times, manual clearance, incidents.
//!
//! The paper's candidate mining for individual anti-patterns keys on the
//! *average processing time per strategy* (the top 30% slowest become
//! candidates). This module supplies the causal link that makes that
//! mining meaningful: anti-patterns inflate processing time.
//!
//! * A vague title (A1) denies the OCE "intuitive judgment at first
//!   sight" → large multiplier.
//! * A misleading severity (A2) mis-prioritizes the alert → delay.
//! * An improper rule (A3) sends the OCE chasing infrastructure noise →
//!   delay.
//! * An incomplete SOP gives "limited help" (Finding 2) → delay.
//! * Storm congestion (more alerts than the team can absorb in an hour)
//!   queues everything → global slowdown.
//! * Experienced OCEs are faster ([`ExperienceBand::speed_factor`]).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use alertops_model::{
    Alert, Clearance, ExperienceBand, Incident, IncidentId, Oce, OceId, SimDuration,
};

use crate::faults::FaultPlan;
use crate::rng;
use crate::strategies::StrategyCatalog;
use crate::topology::Topology;

/// An on-call team.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OceTeam {
    oces: Vec<Oce>,
}

impl OceTeam {
    /// The 18-engineer team with the paper's experience demographics:
    /// 10 with >3 years, 3 with 2–3, 2 with 1–2, and 3 with <1.
    #[must_use]
    pub fn survey_team() -> Self {
        let mut oces = Vec::new();
        let mut id = 0u64;
        let push = |band: ExperienceBand, n: usize, oces: &mut Vec<Oce>, id: &mut u64| {
            for _ in 0..n {
                oces.push(Oce::new(OceId(*id), format!("oce-{id}"), band));
                *id += 1;
            }
        };
        push(ExperienceBand::OverThreeYears, 10, &mut oces, &mut id);
        push(ExperienceBand::TwoToThreeYears, 3, &mut oces, &mut id);
        push(ExperienceBand::OneToTwoYears, 2, &mut oces, &mut id);
        push(ExperienceBand::UnderOneYear, 3, &mut oces, &mut id);
        Self { oces }
    }

    /// The team members.
    #[must_use]
    pub fn oces(&self) -> &[Oce] {
        &self.oces
    }

    /// Team size.
    #[must_use]
    pub fn len(&self) -> usize {
        self.oces.len()
    }

    /// Whether the team is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.oces.is_empty()
    }
}

impl Default for OceTeam {
    fn default() -> Self {
        Self::survey_team()
    }
}

/// The processing-time model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessingModel {
    /// Baseline processing time of a clean alert by a senior OCE.
    pub base: SimDuration,
    /// Hourly per-region alert count beyond which congestion kicks in
    /// (the paper estimates an OCE team absorbs ~200 alerts/hour).
    pub congestion_capacity: usize,
    /// Random jitter sigma (lognormal).
    pub jitter_sigma: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ProcessingModel {
    fn default() -> Self {
        Self {
            base: SimDuration::from_mins(5),
            congestion_capacity: 200,
            jitter_sigma: 0.3,
            seed: 4,
        }
    }
}

impl ProcessingModel {
    /// Annotates every alert with a processing time and manually clears
    /// the still-active ones at `raised_at + processing_time` (the OCE
    /// "fix the problems, and clear the alert" loop of Fig. 1).
    ///
    /// Alerts already cleared automatically keep their clearance but
    /// still get a processing time if an OCE would have looked at them
    /// (non-transient ones).
    pub fn process(&self, alerts: &mut [Alert], catalog: &StrategyCatalog, team: &OceTeam) {
        assert!(!team.is_empty(), "cannot process alerts with an empty team");
        // Congestion: count alerts per (region, hour).
        let mut per_region_hour: HashMap<(String, u64), usize> = HashMap::new();
        for alert in alerts.iter() {
            *per_region_hour
                .entry((
                    alert.location().region().as_str().to_owned(),
                    alert.hour_bucket(),
                ))
                .or_insert(0) += 1;
        }

        for (ix, alert) in alerts.iter_mut().enumerate() {
            let profile = catalog.profile(alert.strategy());
            let sop_completeness = catalog
                .sop(alert.strategy())
                .map_or(0.0, alertops_model::Sop::completeness);

            let mut mins = self.base.as_secs() as f64 / 60.0;
            if profile.vague_title {
                mins *= 2.2;
            }
            if profile.misleading_severity {
                mins *= 1.6;
            }
            if profile.improper_rule {
                mins *= 1.8;
            }
            if sop_completeness < 0.5 {
                mins *= 1.5;
            }
            // Transient/toggling alerts are individually quick but the
            // interruption itself costs a floor of ~1 minute.
            if profile.oversensitive || profile.chatty {
                mins = (mins * 0.6).max(1.0);
            }

            // Congestion multiplier.
            let key = (
                alert.location().region().as_str().to_owned(),
                alert.hour_bucket(),
            );
            let volume = per_region_hour.get(&key).copied().unwrap_or(0);
            if volume > self.congestion_capacity {
                mins *= 1.0 + (volume as f64 / self.congestion_capacity as f64).log2();
            }

            // OCE assignment (hash round-robin) and experience factor.
            let oce =
                &team.oces()[(rng::hash3(self.seed, 71, ix as u64, alert.raised_at().as_secs())
                    % team.len() as u64) as usize];
            mins *= oce.experience().speed_factor();

            // Lognormal jitter.
            let jitter = (self.jitter_sigma * rng::std_normal(self.seed, 72, ix as u64, 0)).exp();
            mins *= jitter;

            let processing = SimDuration::from_secs((mins * 60.0).round().max(30.0) as u64);
            alert.record_processing_time(processing);
            if alert.is_active() {
                let clear_at = alert.raised_at() + processing;
                alert
                    .clear(clear_at, Clearance::Manual)
                    .expect("active alert is clearable");
            }
        }
    }
}

/// Derives the incidents implied by the fault plan: every user-visible
/// fault of sufficient magnitude and duration on a *non*-fault-tolerant
/// microservice escalates to a service-level incident, with the alerts
/// raised on that microservice during the fault window linked to it.
///
/// This is the ground truth for QoA *indicativeness*: an alert is
/// indicative iff it co-occurs with (and shares a service with) an
/// incident.
#[must_use]
pub fn derive_incidents(
    topology: &Topology,
    faults: &FaultPlan,
    alerts: &[Alert],
) -> Vec<Incident> {
    let mut incidents = Vec::new();
    let mut next_id = 0u64;
    for fault in faults.events() {
        if !fault.kind.is_user_visible() || fault.magnitude < 0.7 {
            continue;
        }
        if fault.duration < SimDuration::from_mins(10) {
            continue;
        }
        let Some(ms) = topology.microservice(fault.microservice) else {
            continue;
        };
        if ms.fault_tolerant {
            continue;
        }
        // User impact surfaces a few minutes after the fault begins.
        let started = fault.start.saturating_add(SimDuration::from_mins(5));
        let mut incident = Incident::new(
            IncidentId(next_id),
            ms.service,
            alertops_model::Severity::Critical,
            started,
        );
        let window = fault.window();
        for alert in alerts {
            if alert.microservice() == fault.microservice && window.contains(alert.raised_at()) {
                incident.link_alert(alert.id());
            }
        }
        incident.mitigate(window.end());
        incidents.push(incident);
        next_id += 1;
    }
    incidents
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultEvent, FaultKind};
    use crate::monitor::{MonitorConfig, MonitoringSystem};
    use crate::strategies::StrategyCatalogConfig;
    use crate::telemetry::Telemetry;
    use crate::topology::{Topology, TopologyConfig};
    use alertops_model::{MicroserviceId, SimTime};

    fn world() -> (Topology, StrategyCatalog) {
        let topo = Topology::generate(&TopologyConfig {
            services: 4,
            microservices: 24,
            ..TopologyConfig::default()
        });
        let catalog = StrategyCatalog::generate(
            &topo,
            &StrategyCatalogConfig {
                total_strategies: 240,
                ..StrategyCatalogConfig::default()
            },
        );
        (topo, catalog)
    }

    #[test]
    fn survey_team_matches_paper_demographics() {
        let team = OceTeam::survey_team();
        assert_eq!(team.len(), 18);
        let count = |band| {
            team.oces()
                .iter()
                .filter(|o| o.experience() == band)
                .count()
        };
        assert_eq!(count(ExperienceBand::OverThreeYears), 10);
        assert_eq!(count(ExperienceBand::TwoToThreeYears), 3);
        assert_eq!(count(ExperienceBand::OneToTwoYears), 2);
        assert_eq!(count(ExperienceBand::UnderOneYear), 3);
    }

    #[test]
    fn processing_annotates_every_alert_and_clears_active() {
        let (topo, catalog) = world();
        let plan = FaultPlan::new();
        let telemetry = Telemetry::new(&topo, &plan, 9);
        let mut alerts =
            MonitoringSystem::new(telemetry, &catalog, MonitorConfig::for_hours(4)).run();
        assert!(!alerts.is_empty());
        ProcessingModel::default().process(&mut alerts, &catalog, &OceTeam::survey_team());
        for alert in &alerts {
            assert!(alert.processing_time().is_some());
            assert!(!alert.is_active(), "{} left active", alert.id());
            assert!(alert.cleared_at().unwrap() >= alert.raised_at());
        }
    }

    #[test]
    fn anti_pattern_strategies_take_longer_on_average() {
        let (topo, catalog) = world();
        let plan = FaultPlan::new();
        let telemetry = Telemetry::new(&topo, &plan, 9);
        let mut alerts =
            MonitoringSystem::new(telemetry, &catalog, MonitorConfig::for_hours(8)).run();
        ProcessingModel::default().process(&mut alerts, &catalog, &OceTeam::survey_team());

        // Compare vague-title alerts against fully clean ones.
        let mean = |pred: &dyn Fn(&Alert) -> bool| -> Option<f64> {
            let sel: Vec<f64> = alerts
                .iter()
                .filter(|a| pred(a))
                .filter_map(|a| a.processing_time())
                .map(|d| d.as_mins_f64())
                .collect();
            (!sel.is_empty()).then(|| sel.iter().sum::<f64>() / sel.len() as f64)
        };
        let vague = mean(&|a| catalog.profile(a.strategy()).vague_title);
        let clean = mean(&|a| catalog.profile(a.strategy()).is_clean());
        if let (Some(vague), Some(clean)) = (vague, clean) {
            assert!(
                vague > clean,
                "vague alerts should be slower: {vague:.1}m vs {clean:.1}m"
            );
        }
    }

    #[test]
    fn processing_is_deterministic() {
        let (topo, catalog) = world();
        let plan = FaultPlan::new();
        let telemetry = Telemetry::new(&topo, &plan, 9);
        let base = MonitoringSystem::new(telemetry, &catalog, MonitorConfig::for_hours(3)).run();
        let mut a = base.clone();
        let mut b = base;
        let model = ProcessingModel::default();
        model.process(&mut a, &catalog, &OceTeam::survey_team());
        model.process(&mut b, &catalog, &OceTeam::survey_team());
        assert_eq!(a, b);
    }

    #[test]
    fn incidents_derive_only_from_hard_faults_on_exposed_microservices() {
        let (topo, catalog) = world();
        let exposed = topo
            .microservices()
            .iter()
            .find(|m| !m.fault_tolerant)
            .unwrap()
            .id;
        let shielded = topo
            .microservices()
            .iter()
            .find(|m| m.fault_tolerant)
            .unwrap()
            .id;
        let mk = |ms: MicroserviceId, kind, magnitude, mins| FaultEvent {
            microservice: ms,
            kind,
            start: SimTime::from_hours(1),
            duration: SimDuration::from_mins(mins),
            magnitude,
            cascade_origin: None,
        };
        let plan: FaultPlan = vec![
            mk(exposed, FaultKind::Sustained, 0.9, 30),  // → incident
            mk(shielded, FaultKind::Sustained, 0.9, 30), // shielded → none
            mk(exposed, FaultKind::Transient, 0.9, 30),  // not user-visible
            mk(exposed, FaultKind::Sustained, 0.3, 30),  // too weak
            mk(exposed, FaultKind::Sustained, 0.9, 5),   // too short
        ]
        .into_iter()
        .collect();
        let telemetry = Telemetry::new(&topo, &plan, 9);
        let alerts = MonitoringSystem::new(telemetry, &catalog, MonitorConfig::for_hours(3)).run();
        let incidents = derive_incidents(&topo, &plan, &alerts);
        assert_eq!(incidents.len(), 1);
        let incident = &incidents[0];
        assert_eq!(
            incident.service(),
            topo.microservice(exposed).unwrap().service
        );
        assert!(!incident.is_open());
        // Linked alerts are on the faulted microservice inside the window.
        for aid in incident.alerts() {
            let alert = alerts.iter().find(|a| a.id() == *aid).unwrap();
            assert_eq!(alert.microservice(), exposed);
        }
    }

    #[test]
    fn congestion_inflates_processing_times() {
        // Two copies of the same alert stream, one with an artificial
        // flood in the same region-hour.
        let (topo, catalog) = world();
        let plan = FaultPlan::new();
        let telemetry = Telemetry::new(&topo, &plan, 9);
        let alerts = MonitoringSystem::new(telemetry, &catalog, MonitorConfig::for_hours(2)).run();
        let model = ProcessingModel {
            congestion_capacity: 1, // everything is congested
            jitter_sigma: 0.0,
            ..ProcessingModel::default()
        };
        let baseline_model = ProcessingModel {
            congestion_capacity: usize::MAX,
            jitter_sigma: 0.0,
            ..ProcessingModel::default()
        };
        let team = OceTeam::survey_team();
        let mut congested = alerts.clone();
        let mut relaxed = alerts;
        model.process(&mut congested, &catalog, &team);
        baseline_model.process(&mut relaxed, &catalog, &team);
        let total = |v: &[Alert]| -> u64 {
            v.iter()
                .filter_map(Alert::processing_time)
                .map(SimDuration::as_secs)
                .sum()
        };
        assert!(total(&congested) > total(&relaxed));
    }
}
