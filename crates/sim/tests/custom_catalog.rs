//! The bring-your-own-catalog path: hand-written strategies driven
//! through the real monitoring system, covering rule shapes the
//! generated catalog never produces (Below-threshold metrics, custom
//! keywords, zero-cooldown rules).

use alertops_model::{
    AlertStrategy, Clearance, LogRule, MetricKind, MetricRule, MicroserviceId, ProbeRule,
    ServiceId, Severity, SimDuration, SimTime, StrategyId, StrategyKind, ThresholdOp, TimeRange,
};
use alertops_sim::telemetry::Telemetry;
use alertops_sim::{
    FaultEvent, FaultKind, FaultPlan, MonitorConfig, MonitoringSystem, StrategyCatalog, Topology,
    TopologyConfig,
};

fn world() -> Topology {
    Topology::generate(&TopologyConfig {
        services: 2,
        microservices: 8,
        ..TopologyConfig::default()
    })
}

fn strategy(id: u64, ms: u64, kind: StrategyKind, cooldown_mins: u64) -> AlertStrategy {
    AlertStrategy::builder(StrategyId(id))
        .title_template(format!("custom rule {id}"))
        .severity(Severity::Major)
        .service(ServiceId(0))
        .microservice(MicroserviceId(ms))
        .kind(kind)
        .cooldown(SimDuration::from_mins(cooldown_mins))
        .build()
        .unwrap()
}

#[test]
fn below_threshold_rule_fires_when_traffic_drops() {
    let topo = world();
    // Pick a microservice that is NOT shielded by fault tolerance so the
    // request-rate collapse is guaranteed to surface.
    let target = topo
        .microservices()
        .iter()
        .find(|m| !m.fault_tolerant)
        .expect("some exposed microservice")
        .id;
    // Request rate collapses under a hard sustained fault (the engine
    // halves it at full intensity); a Below rule must catch the drop.
    let catalog = StrategyCatalog::from_strategies(vec![strategy(
        0,
        target.0,
        StrategyKind::Metric(MetricRule {
            metric: MetricKind::RequestRate,
            op: ThresholdOp::Below,
            threshold: 300.0,
            consecutive_samples: 3,
        }),
        30,
    )]);
    let plan: FaultPlan = vec![FaultEvent {
        microservice: target,
        kind: FaultKind::Sustained,
        start: SimTime::from_hours(1),
        duration: SimDuration::from_hours(1),
        magnitude: 0.95,
        cascade_origin: None,
    }]
    .into_iter()
    .collect();
    let telemetry = Telemetry::new(&topo, &plan, 5);
    let alerts = MonitoringSystem::new(
        telemetry,
        &catalog,
        MonitorConfig {
            tick: SimDuration::from_secs(60),
            range: TimeRange::new(SimTime::EPOCH, SimTime::from_hours(3)),
            seed: 1,
        },
    )
    .run();
    assert!(
        !alerts.is_empty(),
        "Below rule never fired despite a 95% sustained fault"
    );
    let first = &alerts[0];
    assert!(first.raised_at() >= SimTime::from_hours(1));
    // Auto-clears once traffic recovers.
    assert_eq!(first.clearance(), Some(Clearance::Auto));
    assert!(first.cleared_at().unwrap() <= SimTime::from_secs(2 * 3_600 + 300));
}

#[test]
fn zero_cooldown_log_rule_fires_every_matching_tick() {
    let topo = world();
    let catalog = StrategyCatalog::from_strategies(vec![strategy(
        0,
        2,
        StrategyKind::Log(LogRule {
            keyword: "ERROR".into(),
            min_count: 1,
            window: SimDuration::from_mins(10),
        }),
        0, // no cooldown: the degenerate config behind A5
    )]);
    let plan: FaultPlan = vec![FaultEvent {
        microservice: MicroserviceId(2),
        kind: FaultKind::Sustained,
        start: SimTime::EPOCH,
        duration: SimDuration::from_hours(1),
        magnitude: 0.9,
        cascade_origin: None,
    }]
    .into_iter()
    .collect();
    let telemetry = Telemetry::new(&topo, &plan, 5);
    let alerts = MonitoringSystem::new(
        telemetry,
        &catalog,
        MonitorConfig {
            tick: SimDuration::from_secs(60),
            range: TimeRange::new(SimTime::EPOCH, SimTime::from_hours(1)),
            seed: 1,
        },
    )
    .run();
    // Under a strong fault, errors flow every window: ~1 alert per tick.
    assert!(
        alerts.len() >= 55,
        "zero-cooldown rule fired only {} times in 60 ticks",
        alerts.len()
    );
}

#[test]
fn custom_probe_rule_respects_timeout() {
    let topo = world();
    let catalog = StrategyCatalog::from_strategies(vec![strategy(
        0,
        1,
        StrategyKind::Probe(ProbeRule {
            no_response_timeout: SimDuration::from_mins(5),
        }),
        30,
    )]);
    let plan: FaultPlan = vec![FaultEvent {
        microservice: MicroserviceId(1),
        kind: FaultKind::Sustained,
        start: SimTime::from_mins(10),
        duration: SimDuration::from_mins(20),
        magnitude: 0.9,
        cascade_origin: None,
    }]
    .into_iter()
    .collect();
    let telemetry = Telemetry::new(&topo, &plan, 5);
    let alerts = MonitoringSystem::new(
        telemetry,
        &catalog,
        MonitorConfig {
            tick: SimDuration::from_secs(60),
            range: TimeRange::new(SimTime::EPOCH, SimTime::from_hours(1)),
            seed: 1,
        },
    )
    .run();
    assert_eq!(alerts.len(), 1, "one down window, one probe alert");
    // Fires only after the 5-minute no-response timeout.
    assert!(alerts[0].raised_at() >= SimTime::from_mins(15));
    assert!(alerts[0].raised_at() <= SimTime::from_mins(17));
}

#[test]
fn from_strategies_defaults_are_clean() {
    let catalog = StrategyCatalog::from_strategies(vec![strategy(
        0,
        0,
        StrategyKind::Probe(ProbeRule {
            no_response_timeout: SimDuration::from_secs(60),
        }),
        10,
    )]);
    assert_eq!(catalog.len(), 1);
    assert!(catalog.profile(StrategyId(0)).is_clean());
    assert!(catalog.sop(StrategyId(0)).is_some());
    assert!(catalog.injected_ids().is_empty());
    assert!(StrategyCatalog::empty().is_empty());
}

#[test]
#[should_panic(expected = "dense")]
fn from_strategies_rejects_sparse_ids() {
    let _ = StrategyCatalog::from_strategies(vec![strategy(
        5,
        0,
        StrategyKind::Probe(ProbeRule {
            no_response_timeout: SimDuration::from_secs(60),
        }),
        10,
    )]);
}
