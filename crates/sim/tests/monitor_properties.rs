//! Property-based tests over the monitoring system with arbitrary
//! hand-written catalogs and fault plans: whatever the rules, the alert
//! stream must satisfy its structural contract.

use proptest::prelude::*;

use alertops_model::{
    AlertId, AlertState, AlertStrategy, LogRule, MetricKind, MetricRule, MicroserviceId, ProbeRule,
    Severity, SimDuration, SimTime, StrategyId, StrategyKind, ThresholdOp, TimeRange,
};
use alertops_sim::telemetry::Telemetry;
use alertops_sim::{
    FaultEvent, FaultKind, FaultPlan, MonitorConfig, MonitoringSystem, StrategyCatalog, Topology,
    TopologyConfig,
};

fn arb_kind() -> impl Strategy<Value = StrategyKind> {
    prop_oneof![
        (30u64..300).prop_map(|secs| StrategyKind::Probe(ProbeRule {
            no_response_timeout: SimDuration::from_secs(secs),
        })),
        (1u32..6, 1u64..10).prop_map(|(min_count, window)| StrategyKind::Log(LogRule {
            keyword: "ERROR".into(),
            min_count,
            window: SimDuration::from_mins(window),
        })),
        (0usize..8, 20.0f64..95.0, 1u32..4, prop::bool::ANY).prop_map(
            |(metric_ix, threshold, samples, above)| StrategyKind::Metric(MetricRule {
                metric: MetricKind::ALL[metric_ix],
                op: if above {
                    ThresholdOp::Above
                } else {
                    ThresholdOp::Below
                },
                threshold,
                consecutive_samples: samples,
            })
        ),
    ]
}

fn arb_catalog(n_ms: u64) -> impl Strategy<Value = StrategyCatalog> {
    prop::collection::vec((arb_kind(), 0..n_ms, 0u64..40), 1..6).prop_map(|rules| {
        StrategyCatalog::from_strategies(
            rules
                .into_iter()
                .enumerate()
                .map(|(ix, (kind, ms, cooldown))| {
                    AlertStrategy::builder(StrategyId(ix as u64))
                        .title_template(format!("rule {ix}"))
                        .severity(Severity::Major)
                        .microservice(MicroserviceId(ms))
                        .kind(kind)
                        .cooldown(SimDuration::from_mins(cooldown))
                        .build()
                        .expect("valid strategy")
                })
                .collect(),
        )
    })
}

fn arb_faults(n_ms: u64) -> impl Strategy<Value = FaultPlan> {
    prop::collection::vec(
        (0..n_ms, 0u64..4, 0u64..5_400, 60u64..5_400, 0.3f64..1.0),
        0..5,
    )
    .prop_map(|events| {
        events
            .into_iter()
            .map(|(ms, kind_ix, start, duration, magnitude)| FaultEvent {
                microservice: MicroserviceId(ms),
                kind: match kind_ix {
                    0 => FaultKind::Transient,
                    1 => FaultKind::Sustained,
                    2 => FaultKind::GrayMemoryLeak,
                    _ => FaultKind::GrayCpuOverload,
                },
                start: SimTime::from_secs(start),
                duration: SimDuration::from_secs(duration),
                magnitude,
                cascade_origin: None,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn monitor_output_contract_holds_for_any_rules(
        catalog in arb_catalog(8),
        faults in arb_faults(8),
        seed in 0u64..50,
    ) {
        let topo = Topology::generate(&TopologyConfig {
            services: 2,
            microservices: 8,
            seed,
            ..TopologyConfig::default()
        });
        let telemetry = Telemetry::new(&topo, &faults, seed);
        let range = TimeRange::new(SimTime::EPOCH, SimTime::from_hours(2));
        let alerts = MonitoringSystem::new(
            telemetry,
            &catalog,
            MonitorConfig {
                tick: SimDuration::from_secs(60),
                range,
                seed,
            },
        )
        .run();

        let mut last_fire: std::collections::HashMap<StrategyId, SimTime> =
            std::collections::HashMap::new();
        for (ix, alert) in alerts.iter().enumerate() {
            // Dense ids in raise order.
            prop_assert_eq!(alert.id(), AlertId(ix as u64));
            if ix > 0 {
                prop_assert!(alerts[ix - 1].raised_at() <= alert.raised_at());
            }
            // Raised inside the monitored range.
            prop_assert!(range.contains(alert.raised_at()));
            // References a real strategy, inherits its attributes.
            let strategy = catalog.strategy(alert.strategy());
            prop_assert!(strategy.is_some());
            let strategy = strategy.unwrap();
            prop_assert_eq!(alert.title(), strategy.title_template());
            // Cooldown respected per strategy.
            if let Some(&prev) = last_fire.get(&alert.strategy()) {
                prop_assert!(
                    alert.raised_at().duration_since(prev) >= strategy.cooldown(),
                    "{} re-fired within cooldown",
                    alert.strategy()
                );
            }
            last_fire.insert(alert.strategy(), alert.raised_at());
            // Lifecycle: clearance kind allowed by the rule category.
            if let AlertState::Cleared { at, by } = alert.state() {
                prop_assert!(at >= alert.raised_at());
                if by == alertops_model::Clearance::Auto {
                    prop_assert!(strategy.kind().supports_auto_clear());
                }
            }
        }
    }

    #[test]
    fn monitor_is_deterministic_for_any_rules(
        catalog in arb_catalog(6),
        faults in arb_faults(6),
        seed in 0u64..20,
    ) {
        let topo = Topology::generate(&TopologyConfig {
            services: 2,
            microservices: 6,
            seed,
            ..TopologyConfig::default()
        });
        let run = || {
            let telemetry = Telemetry::new(&topo, &faults, seed);
            MonitoringSystem::new(
                telemetry,
                &catalog,
                MonitorConfig {
                    tick: SimDuration::from_secs(60),
                    range: TimeRange::new(SimTime::EPOCH, SimTime::from_hours(1)),
                    seed,
                },
            )
            .run()
        };
        prop_assert_eq!(run(), run());
    }
}
