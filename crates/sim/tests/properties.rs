//! Property-based tests over the simulator: determinism, lifecycle
//! invariants, and structural guarantees for arbitrary seeds and scales.

use proptest::prelude::*;

use alertops_model::MetricKind;
use alertops_sim::telemetry::Telemetry;
use alertops_sim::{FaultPlan, StrategyCatalog, StrategyCatalogConfig, Topology, TopologyConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn topology_layers_acyclic_for_any_seed(
        seed in 0u64..1_000,
        services in 1usize..8,
        microservices in 1usize..60,
    ) {
        let topo = Topology::generate(&TopologyConfig {
            services,
            microservices,
            seed,
            ..TopologyConfig::default()
        });
        prop_assert_eq!(topo.services().len(), services);
        prop_assert_eq!(topo.microservices().len(), microservices);
        for ms in topo.microservices() {
            for &dep in topo.dependencies_of(ms.id) {
                let dep_layer = topo.microservice(dep).unwrap().layer;
                prop_assert!(dep_layer < ms.layer);
            }
        }
    }

    #[test]
    fn catalog_ids_dense_and_valid_for_any_seed(
        seed in 0u64..1_000,
        total in 1usize..200,
    ) {
        let topo = Topology::generate(&TopologyConfig {
            services: 4,
            microservices: 16,
            seed,
            ..TopologyConfig::default()
        });
        let catalog = StrategyCatalog::generate(
            &topo,
            &StrategyCatalogConfig {
                total_strategies: total,
                seed,
                ..StrategyCatalogConfig::default()
            },
        );
        prop_assert_eq!(catalog.len(), total);
        for (ix, strategy) in catalog.strategies().iter().enumerate() {
            prop_assert_eq!(strategy.id().0 as usize, ix);
            prop_assert!(!strategy.title_template().trim().is_empty());
            prop_assert!(topo.microservice(strategy.microservice()).is_some());
            prop_assert!(catalog.sop(strategy.id()).is_some());
        }
    }

    #[test]
    fn telemetry_is_finite_and_bounded_everywhere(
        seed in 0u64..200,
        ms in 0u64..16,
        minutes in 0u64..10_000,
    ) {
        let topo = Topology::generate(&TopologyConfig {
            services: 4,
            microservices: 16,
            seed,
            ..TopologyConfig::default()
        });
        let faults = FaultPlan::new();
        let telemetry = Telemetry::new(&topo, &faults, seed);
        let t = alertops_model::SimTime::from_secs(minutes * 60);
        for kind in MetricKind::ALL {
            let v = telemetry.metric(alertops_model::MicroserviceId(ms), kind, t);
            prop_assert!(v.is_finite());
            prop_assert!(v >= 0.0);
            if matches!(
                kind,
                MetricKind::CpuUtilization
                    | MetricKind::MemoryUtilization
                    | MetricKind::DiskUsage
                    | MetricKind::ErrorRate
            ) {
                prop_assert!(v <= 100.0);
            }
        }
    }
}

#[test]
fn quickstart_alert_stream_is_internally_consistent() {
    // One richer non-proptest pass over a real scenario: every alert
    // references a catalog strategy, lifecycle holds, ids dense.
    let out = alertops_sim::scenarios::quickstart(3).run();
    for (ix, alert) in out.alerts.iter().enumerate() {
        assert_eq!(alert.id().0 as usize, ix);
        assert!(out.catalog.strategy(alert.strategy()).is_some());
        assert!(alert.processing_time().is_some());
        if let Some(cleared) = alert.cleared_at() {
            assert!(cleared >= alert.raised_at());
        }
    }
    for incident in &out.incidents {
        for linked in incident.alerts() {
            assert!(out.alerts.iter().any(|a| a.id() == *linked));
        }
    }
}
