//! `alertops-load`: the soak and load harness.
//!
//! The governance pipeline's correctness story is differential — batch
//! == streaming == sharded == clustered, byte for byte. This crate adds
//! the *endurance* story on top: does that identity, and the memory and
//! latency behaviour behind it, survive production-scale traffic
//! sustained over a real socket for hours?
//!
//! Two modules:
//!
//! - [`driver`] — spawns a live [`alertops_ingestd::Ingestd`], streams a
//!   statistical scenario into it as NDJSON over TCP at full speed, and
//!   evaluates the soak gates (memory ceiling, conservation law,
//!   oracle identity on a sampled prefix, sustained rate). The entry
//!   point is [`run_soak`]; `cargo bench --bench soak_bench` wraps it
//!   into `BENCH_soak.json` for CI.
//! - [`scrape`] — a Prometheus text-exposition parser that reads the
//!   daemon's metrics the way an external monitoring stack would,
//!   including histogram quantiles that agree exactly with the
//!   in-process [`alertops_obs::HistogramSnapshot::quantile`].

#![warn(missing_docs, missing_debug_implementations)]

pub mod driver;
pub mod scrape;

pub use driver::{run_soak, SoakConfig, SoakReport};
pub use scrape::Exposition;
