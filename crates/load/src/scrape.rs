//! Prometheus text-exposition scraping.
//!
//! The soak driver watches a live daemon the same way an operator's
//! monitoring stack would: by scraping the status socket's `metrics`
//! document and reading the families back out of the text format. This
//! parser covers exactly the subset `alertops-obs` emits — integer
//! samples, `{k="v"}` label sets, and cumulative `_bucket{le=...}`
//! histogram series — and mirrors
//! [`alertops_obs::HistogramSnapshot::quantile`] bit for bit over the
//! scraped buckets (same 1-based `ceil(q·count)` rank over the same
//! cumulative counts), so a latency gate enforced from the outside
//! agrees with one enforced in-process.

use std::collections::BTreeMap;

/// One scraped exposition document, indexed for lookups.
#[derive(Debug, Default, Clone)]
pub struct Exposition {
    /// Non-histogram samples: full series key (name + rendered labels,
    /// exactly as exposed) → value.
    samples: BTreeMap<String, u64>,
    /// Histogram buckets: family key (name + non-`le` labels) →
    /// ascending `(upper_bound, cumulative_count)`; the `+Inf` bucket
    /// is stored as [`u64::MAX`].
    buckets: BTreeMap<String, Vec<(u64, u64)>>,
}

impl Exposition {
    /// Parses an exposition document. Unparseable lines are skipped —
    /// a scraper must not crash on a format extension.
    #[must_use]
    pub fn parse(text: &str) -> Self {
        let mut out = Self::default();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((series, value)) = line.rsplit_once(' ') else {
                continue;
            };
            let Ok(value) = value.parse::<u64>() else {
                continue;
            };
            if let Some((family, le)) = split_bucket(series) {
                out.buckets.entry(family).or_default().push((le, value));
            } else {
                out.samples.insert(series.to_owned(), value);
            }
        }
        out
    }

    /// The value of a plain (non-histogram) series, by its full key as
    /// exposed — e.g. `alertops_ingested_total` or
    /// `alertops_queue_depth{shard="2"}`.
    #[must_use]
    pub fn value(&self, series: &str) -> Option<u64> {
        self.samples.get(series).copied()
    }

    /// Every series of `family` (prefix match on `family` alone or
    /// `family{`), yielding `(full_series_key, value)`.
    pub fn series_of<'a>(&'a self, family: &'a str) -> impl Iterator<Item = (&'a str, u64)> + 'a {
        self.samples
            .iter()
            .filter(move |(k, _)| {
                k.as_str() == family
                    || (k.starts_with(family) && k.as_bytes().get(family.len()) == Some(&b'{'))
            })
            .map(|(k, v)| (k.as_str(), *v))
    }

    /// The maximum value across every series of `family` (e.g. peak
    /// per-shard queue depth), or `None` when the family is absent.
    #[must_use]
    pub fn max_of(&self, family: &str) -> Option<u64> {
        self.series_of(family).map(|(_, v)| v).max()
    }

    /// Total observation count of a histogram family (its `_count`
    /// series). `family` may carry labels (`name{shard="2"}`); the
    /// suffix goes on the name, as the exposition renders it.
    #[must_use]
    pub fn histogram_count(&self, family: &str) -> Option<u64> {
        let key = match family.split_once('{') {
            Some((name, labels)) => format!("{name}_count{{{labels}"),
            None => format!("{family}_count"),
        };
        self.value(&key)
    }

    /// The `q`-quantile upper bound of an unlabelled histogram family,
    /// mirroring [`alertops_obs::HistogramSnapshot::quantile`]: the
    /// upper bound of the bucket holding the 1-based `ceil(q·count)`
    /// ranked observation. Returns `None` when the family is absent or
    /// empty.
    #[must_use]
    pub fn histogram_quantile(&self, family: &str, q: f64) -> Option<u64> {
        let buckets = self.buckets.get(family)?;
        let total = buckets.iter().map(|&(_, cum)| cum).max()?;
        if total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
        #[allow(clippy::cast_sign_loss)]
        let rank = ((q * total as f64).ceil() as u64).max(1);
        buckets
            .iter()
            .find(|&&(_, cum)| cum >= rank)
            .map(|&(upper, _)| upper)
    }
}

/// Splits a `_bucket{...le="N"...}` series into its family key (name +
/// labels minus `le`) and the bucket upper bound (`+Inf` → `u64::MAX`).
fn split_bucket(series: &str) -> Option<(String, u64)> {
    let (name, labels) = series.split_once('{')?;
    let name = name.strip_suffix("_bucket")?;
    let labels = labels.strip_suffix('}')?;
    let mut upper = None;
    let mut rest = Vec::new();
    for part in labels.split(',') {
        let (key, value) = part.split_once('=')?;
        let value = value.strip_prefix('"')?.strip_suffix('"')?;
        if key == "le" {
            upper = Some(if value == "+Inf" {
                u64::MAX
            } else {
                value.parse().ok()?
            });
        } else {
            rest.push(part);
        }
    }
    let family = if rest.is_empty() {
        name.to_owned()
    } else {
        format!("{name}{{{}}}", rest.join(","))
    };
    Some((family, upper?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use alertops_obs::MetricsRegistry;

    #[test]
    fn parses_counters_gauges_and_labels() {
        let doc = "\
# HELP alertops_ingested_total Frames in.
# TYPE alertops_ingested_total counter
alertops_ingested_total 42
alertops_queue_depth{shard=\"0\"} 3
alertops_queue_depth{shard=\"1\"} 9
";
        let exposition = Exposition::parse(doc);
        assert_eq!(exposition.value("alertops_ingested_total"), Some(42));
        assert_eq!(
            exposition.value("alertops_queue_depth{shard=\"1\"}"),
            Some(9)
        );
        assert_eq!(exposition.max_of("alertops_queue_depth"), Some(9));
        assert_eq!(exposition.max_of("alertops_queue"), None, "no prefix leaks");
        assert_eq!(exposition.value("missing"), None);
    }

    /// The scraped quantile must agree with the in-process snapshot
    /// quantile on real histogram output — the soak gate depends on
    /// this round-trip.
    #[test]
    fn scraped_quantiles_match_inprocess_snapshots() {
        let registry = MetricsRegistry::new();
        let histogram = registry.histogram("demo_close_micros", "Close latency.", &[]);
        for i in 1..=1000u64 {
            histogram.observe(i * 7 % 5000);
        }
        let exposition = Exposition::parse(&registry.render());
        let snapshot = histogram.snapshot();
        assert_eq!(
            exposition.histogram_count("demo_close_micros"),
            Some(snapshot.count())
        );
        for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(
                exposition.histogram_quantile("demo_close_micros", q),
                Some(snapshot.quantile(q)),
                "quantile {q} diverged from the in-process snapshot"
            );
        }
    }

    #[test]
    fn labelled_histograms_keep_their_label_key() {
        let registry = MetricsRegistry::new();
        let histogram =
            registry.histogram("demo_shard_micros", "Per-shard close.", &[("shard", "2")]);
        histogram.observe(100);
        let exposition = Exposition::parse(&registry.render());
        assert_eq!(
            exposition.histogram_count("demo_shard_micros{shard=\"2\"}"),
            Some(1)
        );
        assert!(exposition
            .histogram_quantile("demo_shard_micros{shard=\"2\"}", 0.5)
            .is_some());
    }

    #[test]
    fn garbage_lines_are_skipped_not_fatal() {
        let exposition = Exposition::parse("!!!\nname_only\nok 5\nbad value x\n");
        assert_eq!(exposition.value("ok"), Some(5));
    }
}
