//! The soak driver: sustained load into a live daemon, gated hard.
//!
//! [`run_soak`] plays a statistical scenario through
//! [`alertops_sim::StatisticalStream`] one window at a time and streams
//! it over a real TCP connection — NDJSON lines or `alertops-wire`
//! binary frames, per [`SoakConfig::wire`] — into a freshly spawned
//! [`Ingestd`]: the same wire path production traffic takes, not an
//! in-process shortcut. While the soak runs it behaves like the
//! operator's monitoring stack: it scrapes the status socket's
//! Prometheus exposition for queue depths and close-latency histograms,
//! samples the resident set size every window, and at the end checks
//! four gates:
//!
//! 1. **Memory ceiling** — peak RSS stays under
//!    [`SoakConfig::rss_ceiling_bytes`]; the pipeline must hold windows,
//!    not history.
//! 2. **Conservation** — `ingested == delivered + dropped + quarantined`
//!    over the whole soak ([`CounterSnapshot::is_conserved`]).
//! 3. **Identity** — the snapshots published for a sampled prefix of
//!    windows are byte-identical (modulo per-shard triage) to an
//!    in-process oracle re-run at each of
//!    [`SoakConfig::oracle_shard_counts`] — throughput must never buy a
//!    different answer.
//! 4. **Rate** — the sustained alerts/hour-equivalent throughput, which
//!    callers gate via [`SoakReport::check_gates`].
//!
//! The generated traffic is fully determined by the scenario seed; the
//! only nondeterminism in a soak run is wall-clock timing, which is
//! reported but never feeds back into outputs.

use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;

use serde::Serialize;

use alertops_core::{
    AlertGovernor, GovernanceSnapshot, GovernorConfig, StreamingConfig, StreamingGovernor,
};
use alertops_ingestd::codec::encode_alert;
use alertops_ingestd::{shard_catalog, Ingestd, IngestdConfig, FLUSH_FRAME};
use alertops_model::{Alert, AlertStrategy};
use alertops_sim::scenarios::{self, Scenario};
use alertops_sim::StatisticalStream;
use alertops_wire::{AckFrame, Frame, WireDecoder, WireEncoder, WireFormat};

use crate::scrape::Exposition;

/// One soak run's shape: the scenario to play and the gates to hold.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// The statistical scenario generating the traffic.
    pub scenario: Scenario,
    /// Shard count of the live daemon under load.
    pub shards: usize,
    /// Simulated hours folded into each streamed window.
    pub window_hours: u64,
    /// Truncate the soak after this many windows (`None` = play the
    /// scenario's whole range).
    pub max_windows: Option<usize>,
    /// Per-shard ingest queue capacity of the live daemon.
    pub queue_capacity: usize,
    /// Peak-RSS gate: the whole soak must stay under this many bytes.
    pub rss_ceiling_bytes: u64,
    /// How many leading windows are kept for the identity gate.
    pub oracle_prefix_windows: usize,
    /// Shard counts the oracle re-runs the prefix at; the live
    /// snapshots must match every one of them.
    pub oracle_shard_counts: Vec<usize>,
    /// Throughput gate in alerts per hour of wall time
    /// ([`SoakReport::check_gates`] enforces it).
    pub min_alerts_per_hour: f64,
    /// Wire format the alerts travel in: NDJSON lines (the default and
    /// the compatibility oracle) or `alertops-wire` binary frames. The
    /// oracle and the identity gate are format-blind — both formats
    /// must publish byte-identical snapshots.
    pub wire: WireFormat,
}

impl SoakConfig {
    /// The CI-sized soak: [`scenarios::soak_smoke`] (one simulated day,
    /// 800 strategies, shaped load) against a 4-shard daemon, with the
    /// identity gate at 1 and 4 shards. Deterministic per seed and
    /// quick enough for every pipeline run.
    #[must_use]
    pub fn smoke(seed: u64) -> Self {
        Self {
            scenario: scenarios::soak_smoke(seed),
            shards: 4,
            window_hours: 4,
            max_windows: None,
            queue_capacity: 8192,
            rss_ceiling_bytes: 1536 * 1024 * 1024,
            oracle_prefix_windows: 2,
            oracle_shard_counts: vec![1, 4],
            min_alerts_per_hour: 1_000_000.0,
            wire: WireFormat::default(),
        }
    }

    /// The full soak: [`scenarios::soak`] (three simulated days, 8000
    /// strategies, six tenants) — the million-alert-scale run behind
    /// `BENCH_soak.json`.
    #[must_use]
    pub fn full(seed: u64) -> Self {
        Self {
            scenario: scenarios::soak(seed),
            shards: 4,
            window_hours: 6,
            max_windows: None,
            queue_capacity: 16384,
            rss_ceiling_bytes: 2048 * 1024 * 1024,
            oracle_prefix_windows: 2,
            oracle_shard_counts: vec![1, 4],
            min_alerts_per_hour: 1_000_000.0,
            wire: WireFormat::default(),
        }
    }
}

/// What a soak run measured and which gates held. Serialized verbatim
/// into `BENCH_soak.json`.
#[derive(Debug, Clone, Serialize)]
pub struct SoakReport {
    /// Scenario name.
    pub scenario: String,
    /// Scenario seed (the whole traffic stream is a function of it).
    pub seed: u64,
    /// Shard count of the daemon under load.
    pub shards: usize,
    /// Wire format the alerts traveled in (`"ndjson"` or `"binary"`).
    pub wire: String,
    /// Simulated hours per streamed window.
    pub window_hours: u64,
    /// Windows streamed and closed.
    pub windows: usize,
    /// Alerts written to the socket (all acked by window closes).
    pub alerts_sent: u64,
    /// Wall-clock duration of the streaming phase.
    pub elapsed_secs: f64,
    /// Sustained throughput over the wire.
    pub alerts_per_sec: f64,
    /// The same throughput as an hourly-equivalent rate — the unit the
    /// ≥ 1M/hour acceptance gate is stated in.
    pub alerts_per_hour_equiv: f64,
    /// Window-close latency quantiles, scraped from the daemon's
    /// `alertops_window_close_micros` histogram.
    pub close_p50_micros: u64,
    /// 99th percentile window close, microseconds.
    pub close_p99_micros: u64,
    /// 99.9th percentile window close, microseconds.
    pub close_p999_micros: u64,
    /// Largest per-shard queue depth seen across per-window scrapes.
    pub max_queue_depth: u64,
    /// Peak resident set size sampled across the soak (0 when the
    /// platform has no procfs).
    pub peak_rss_bytes: u64,
    /// The asserted ceiling.
    pub rss_ceiling_bytes: u64,
    /// Whether RSS sampling was available at all.
    pub rss_supported: bool,
    /// `peak_rss_bytes <= rss_ceiling_bytes` (vacuously true without
    /// procfs).
    pub ceiling_ok: bool,
    /// Alerts shed by overflow policy (must be 0 for identity to hold).
    pub dropped: u64,
    /// The conservation law held over the whole soak.
    pub conservation_ok: bool,
    /// Leading windows replayed through the oracle.
    pub oracle_prefix_windows: usize,
    /// Shard counts the oracle ran at.
    pub oracle_shard_counts: Vec<usize>,
    /// Live prefix snapshots matched the oracle at every shard count.
    pub outputs_identical: bool,
}

impl SoakReport {
    /// Checks every hard gate: identity, conservation, the memory
    /// ceiling, zero drops, and the `min_rate` alerts/hour floor.
    ///
    /// # Errors
    ///
    /// Returns the first violated gate as a human-readable message.
    pub fn check_gates(&self, min_rate: f64) -> Result<(), String> {
        if !self.outputs_identical {
            return Err("live soak snapshots diverged from the batch oracle".into());
        }
        if !self.conservation_ok {
            return Err(
                "conservation law violated: ingested != delivered + dropped + quarantined".into(),
            );
        }
        if self.dropped != 0 {
            return Err(format!("{} alerts dropped under load", self.dropped));
        }
        if !self.ceiling_ok {
            return Err(format!(
                "peak RSS {} exceeded the {} byte ceiling",
                self.peak_rss_bytes, self.rss_ceiling_bytes
            ));
        }
        if self.alerts_per_hour_equiv < min_rate {
            return Err(format!(
                "sustained rate {:.0} alerts/hour is under the {min_rate:.0} floor",
                self.alerts_per_hour_equiv
            ));
        }
        Ok(())
    }
}

/// Per-shard governor factory mirroring the CLI/daemon construction:
/// each shard governs its slice of the shared catalog.
fn shard_governor(strategies: &[AlertStrategy], shards: usize, shard: usize) -> StreamingGovernor {
    let catalog = shard_catalog(strategies, shards, shard);
    StreamingGovernor::new(
        AlertGovernor::new(catalog, GovernorConfig::default()),
        StreamingConfig::default(),
    )
}

/// Strips the one field sharding is *not* exact for: triage
/// (cross-strategy correlation runs within each shard only). Everything
/// else must be byte-identical across shard counts and transports.
fn comparable(snapshot: &GovernanceSnapshot) -> GovernanceSnapshot {
    GovernanceSnapshot {
        triage: Vec::new(),
        ..snapshot.clone()
    }
}

/// Scrapes one `metrics` document from the daemon's status socket.
fn scrape_metrics(addr: SocketAddr) -> io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(b"metrics\n")?;
    let mut body = String::new();
    stream.read_to_string(&mut body)?;
    Ok(body)
}

/// Replays `windows` through an in-process daemon at `shards` shards
/// (route + flush, no sockets) and returns the per-window snapshots —
/// the oracle the live soak's prefix is compared against.
fn oracle_snapshots(
    strategies: &[AlertStrategy],
    windows: &[Vec<Alert>],
    shards: usize,
    queue_capacity: usize,
) -> io::Result<Vec<GovernanceSnapshot>> {
    let config = IngestdConfig {
        shards,
        queue_capacity,
        ..IngestdConfig::default()
    };
    let handle = Ingestd::spawn(&config, |shard, shards| {
        shard_governor(strategies, shards, shard)
    })?;
    let mut snapshots = Vec::with_capacity(windows.len());
    for window in windows {
        for alert in window {
            handle.route(alert.clone());
        }
        snapshots.push(
            handle
                .flush()
                .ok_or_else(|| io::Error::other("oracle flush yielded no snapshot"))?,
        );
    }
    handle.shutdown();
    Ok(snapshots)
}

/// The TCP half of a soak: the open connection into the live daemon,
/// speaking whichever wire format the daemon was spawned with — in
/// both directions. Acks come back as JSON text lines on NDJSON
/// connections and as [`Frame::Ack`] binary frames on binary ones.
struct Connection {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    wire: WireFormat,
    /// Binary mode only: the connection-scoped string table.
    encoder: WireEncoder,
    /// Binary mode only: decodes the daemon's binary ack frames (its
    /// write half runs an independent encoder).
    decoder: WireDecoder,
    /// Binary mode only: reusable frame scratch.
    scratch: Vec<u8>,
    ack: String,
}

impl Connection {
    fn open(addr: SocketAddr, wire: WireFormat) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self {
            reader,
            writer: BufWriter::new(stream),
            wire,
            encoder: WireEncoder::new(),
            decoder: WireDecoder::new(),
            scratch: Vec::new(),
            ack: String::new(),
        })
    }

    /// Reads the next binary frame off the connection. The ingest
    /// protocol is lock-step (one ack per flush, nothing unsolicited),
    /// so at most one frame is ever in flight toward the client.
    fn read_binary_frame(&mut self) -> io::Result<Frame> {
        loop {
            let buf = self.reader.fill_buf()?;
            if buf.is_empty() {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed before the ack frame",
                ));
            }
            let consumed = buf.len();
            let frames = self.decoder.feed(buf);
            self.reader.consume(consumed);
            if let Some(first) = frames.into_iter().next() {
                return first.map_err(|e| io::Error::other(format!("bad ack frame: {e:?}")));
            }
        }
    }

    /// Streams one window of alerts (buffered; flushed to the socket at
    /// the end so the daemon sees the whole window promptly).
    fn send_window(&mut self, window: &[Alert]) -> io::Result<()> {
        match self.wire {
            WireFormat::Ndjson => {
                for alert in window {
                    writeln!(self.writer, "{}", encode_alert(alert))?;
                }
            }
            WireFormat::Binary => {
                for alert in window {
                    self.scratch.clear();
                    self.encoder.encode_alert_into(alert, &mut self.scratch);
                    self.writer.write_all(&self.scratch)?;
                }
            }
        }
        self.writer.flush()
    }

    /// Sends the flush control frame and waits for its ack — the
    /// window-close barrier — in the connection's own format.
    fn flush_window(&mut self) -> io::Result<()> {
        match self.wire {
            WireFormat::Ndjson => {
                writeln!(self.writer, "{FLUSH_FRAME}")?;
                self.writer.flush()?;
                self.ack.clear();
                self.reader.read_line(&mut self.ack)?;
                if self.ack.contains(r#""ack":"flush""#) {
                    Ok(())
                } else {
                    Err(io::Error::other(format!(
                        "expected a flush ack, got {:?}",
                        self.ack
                    )))
                }
            }
            WireFormat::Binary => {
                self.scratch.clear();
                self.encoder.encode_into(&Frame::Flush, &mut self.scratch);
                self.writer.write_all(&self.scratch)?;
                self.writer.flush()?;
                match self.read_binary_frame()? {
                    Frame::Ack(AckFrame::Flush { .. }) => Ok(()),
                    other => Err(io::Error::other(format!(
                        "expected a binary flush ack, got {other:?}"
                    ))),
                }
            }
        }
    }
}

/// Runs one soak: spawn a live daemon, stream the scenario over TCP
/// window by window, observe it from the outside, and evaluate every
/// gate. See the module docs for the gate list.
///
/// # Errors
///
/// Propagates socket and daemon-spawn failures; gate *violations* are
/// not errors — they land in the report for [`SoakReport::check_gates`]
/// (and the CI grep over `BENCH_soak.json`) to flag.
///
/// # Panics
///
/// Panics if the scenario's engine is not statistical.
pub fn run_soak(config: &SoakConfig) -> io::Result<SoakReport> {
    let mut stream = StatisticalStream::new(&config.scenario);
    let strategies = stream.catalog().strategies().to_vec();

    let daemon_config = IngestdConfig {
        shards: config.shards,
        queue_capacity: config.queue_capacity,
        listen: Some("127.0.0.1:0".to_owned()),
        status: Some("127.0.0.1:0".to_owned()),
        wire: config.wire,
        ..IngestdConfig::default()
    };
    let handle = Ingestd::spawn(&daemon_config, |shard, shards| {
        shard_governor(&strategies, shards, shard)
    })?;
    let ingest_addr = handle
        .ingest_addr()
        .ok_or_else(|| io::Error::other("ingress listener not bound"))?;
    let status_addr = handle
        .status_addr()
        .ok_or_else(|| io::Error::other("status listener not bound"))?;
    let mut connection = Connection::open(ingest_addr, config.wire)?;

    let mut windows = 0usize;
    let mut alerts_sent = 0u64;
    let mut peak_rss = 0u64;
    let mut max_queue_depth = 0u64;
    let mut prefix_windows: Vec<Vec<Alert>> = Vec::new();
    let mut live_prefix: Vec<GovernanceSnapshot> = Vec::new();

    let started = Instant::now();
    while let Some(window) = stream.next_window(config.window_hours) {
        if config.max_windows.is_some_and(|max| windows >= max) {
            break;
        }
        alerts_sent += window.len() as u64;
        connection.send_window(&window)?;
        // Scrape between send and close, while the shard queues are
        // live — the external view of backpressure.
        let mid = Exposition::parse(&scrape_metrics(status_addr)?);
        if let Some(depth) = mid.max_of("alertops_queue_depth") {
            max_queue_depth = max_queue_depth.max(depth);
        }
        connection.flush_window()?;
        if windows < config.oracle_prefix_windows {
            live_prefix.push(
                handle
                    .latest_snapshot()
                    .ok_or_else(|| io::Error::other("flush published no snapshot"))?,
            );
            prefix_windows.push(window);
        }
        if let Some(rss) = alertops_obs::process::rss_bytes() {
            peak_rss = peak_rss.max(rss);
        }
        windows += 1;
    }
    let elapsed = started.elapsed();

    // Final external scrape: close-latency quantiles as a monitoring
    // stack would read them.
    let exposition = Exposition::parse(&scrape_metrics(status_addr)?);
    let quantile = |q| {
        exposition
            .histogram_quantile("alertops_window_close_micros", q)
            .unwrap_or(0)
    };
    let (close_p50, close_p99, close_p999) = (quantile(0.5), quantile(0.99), quantile(0.999));

    drop(connection);
    let counters = handle.counters();
    handle.shutdown();

    let mut outputs_identical = true;
    for &shards in &config.oracle_shard_counts {
        let oracle = oracle_snapshots(&strategies, &prefix_windows, shards, config.queue_capacity)?;
        for (live, want) in live_prefix.iter().zip(oracle.iter()) {
            if comparable(live) != comparable(want) {
                outputs_identical = false;
            }
        }
    }

    let rss_supported = alertops_obs::process::rss_bytes().is_some();
    let elapsed_secs = elapsed.as_secs_f64().max(f64::EPSILON);
    #[allow(clippy::cast_precision_loss)]
    let alerts_per_sec = alerts_sent as f64 / elapsed_secs;
    Ok(SoakReport {
        scenario: config.scenario.name.clone(),
        seed: config.scenario.seed,
        shards: config.shards,
        wire: config.wire.label().to_owned(),
        window_hours: config.window_hours,
        windows,
        alerts_sent,
        elapsed_secs,
        alerts_per_sec,
        alerts_per_hour_equiv: alerts_per_sec * 3600.0,
        close_p50_micros: close_p50,
        close_p99_micros: close_p99,
        close_p999_micros: close_p999,
        max_queue_depth,
        peak_rss_bytes: peak_rss,
        rss_ceiling_bytes: config.rss_ceiling_bytes,
        rss_supported,
        ceiling_ok: !rss_supported || peak_rss <= config.rss_ceiling_bytes,
        dropped: counters.dropped,
        conservation_ok: counters.is_conserved(),
        oracle_prefix_windows: prefix_windows.len(),
        oracle_shard_counts: config.oracle_shard_counts.clone(),
        outputs_identical,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use alertops_model::{SimTime, TimeRange};

    /// A truncated smoke soak small enough for a unit test: the whole
    /// TCP → daemon → oracle loop, every gate evaluated.
    #[test]
    fn truncated_smoke_soak_passes_every_gate() {
        let mut config = SoakConfig::smoke(11);
        config.scenario.range = TimeRange::new(SimTime::from_hours(0), SimTime::from_hours(8));
        config.max_windows = Some(2);
        config.min_alerts_per_hour = 1.0;
        let report = run_soak(&config).expect("soak runs");
        assert_eq!(report.windows, 2);
        assert!(
            report.alerts_sent > 100,
            "too quiet: {}",
            report.alerts_sent
        );
        assert!(report.outputs_identical, "prefix diverged from the oracle");
        assert!(report.conservation_ok, "conservation law violated");
        assert_eq!(report.dropped, 0);
        assert!(report.ceiling_ok);
        assert_eq!(report.oracle_prefix_windows, 2);
        report.check_gates(1.0).expect("gates hold");
        assert!(
            report.check_gates(f64::INFINITY).is_err(),
            "an impossible rate floor must fail the rate gate"
        );
    }

    /// The same truncated soak over binary wire frames: the daemon's
    /// published snapshots must match the (NDJSON-blind, in-process)
    /// oracle exactly — the wire format buys throughput, never a
    /// different answer.
    #[test]
    fn binary_wire_soak_matches_the_oracle() {
        let mut config = SoakConfig::smoke(11);
        config.scenario.range = TimeRange::new(SimTime::from_hours(0), SimTime::from_hours(8));
        config.max_windows = Some(2);
        config.min_alerts_per_hour = 1.0;
        config.wire = WireFormat::Binary;
        let report = run_soak(&config).expect("binary soak runs");
        assert_eq!(report.wire, "binary");
        assert_eq!(report.windows, 2);
        assert!(report.outputs_identical, "binary wire changed the output");
        report
            .check_gates(1.0)
            .expect("gates hold over binary wire");
    }

    /// The soak traffic itself is deterministic: two streams of the
    /// same truncated scenario are identical window for window.
    #[test]
    fn soak_traffic_is_seed_deterministic() {
        let config = SoakConfig::smoke(23);
        let mut a = StatisticalStream::new(&config.scenario);
        let mut b = StatisticalStream::new(&config.scenario);
        for _ in 0..2 {
            assert_eq!(
                a.next_window(config.window_hours),
                b.next_window(config.window_hours)
            );
        }
    }
}
