//! The wire differential: the binary frame format is a *transport*,
//! never a semantics change. The same windowed trace is played
//!
//! * through an in-process daemon (the oracle),
//! * over real TCP in NDJSON and in binary frames, at 1 and 4 shards,
//! * and through a 4-node cluster journaling binary WAL segments,
//!
//! and every published [`GovernanceSnapshot`] stream must agree —
//! byte-for-byte where the partitioning is exact, modulo per-shard
//! triage where it is not. A corrupt binary frame must be quarantined
//! and counted, not parsed; and a WAL written in the pre-binary v1
//! format must replay to exactly the history a v2 log of the same
//! appends replays to.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use alertops::cluster::{replay, AlertCluster, ClusterConfig, Wal, WalFormat};
use alertops::core::prelude::*;
use alertops::ingestd::codec::encode_alert;
use alertops::ingestd::{shard_catalog, Ingestd, IngestdConfig, IngestdHandle, FLUSH_FRAME};
use alertops::sim::scenarios;
use alertops::wire::{AckFrame, Frame, WireDecoder, WireEncoder, WireFormat};

/// The quickstart trace chopped into time-sorted windows, with a
/// trailing empty window so the differential also covers detection
/// over a draining history.
fn windowed_trace(seed: u64, window_len: usize) -> (Vec<AlertStrategy>, Vec<Vec<Alert>>) {
    let out = scenarios::quickstart(seed).run();
    let mut trace = out.alerts.clone();
    trace.sort_by_key(|a| (a.raised_at(), a.id()));
    let mut windows: Vec<Vec<Alert>> = trace.chunks(window_len).map(<[Alert]>::to_vec).collect();
    windows.push(Vec::new());
    (out.catalog.strategies().to_vec(), windows)
}

fn daemon(
    strategies: &[AlertStrategy],
    shards: usize,
    wire: WireFormat,
    listen: bool,
) -> IngestdHandle {
    let config = IngestdConfig {
        shards,
        queue_capacity: 8192,
        listen: listen.then(|| "127.0.0.1:0".to_owned()),
        wire,
        ..IngestdConfig::default()
    };
    let strategies = strategies.to_vec();
    Ingestd::spawn(&config, move |shard, shards| {
        StreamingGovernor::new(
            AlertGovernor::new(
                shard_catalog(&strategies, shards, shard),
                GovernorConfig::default(),
            ),
            StreamingConfig::default(),
        )
    })
    .expect("daemon starts")
}

/// Reads the next binary frame off the daemon's ack lane. The ingest
/// protocol is lock-step (one ack per flush), so nothing else is ever
/// in flight toward the client.
fn read_binary_frame(reader: &mut BufReader<TcpStream>, decoder: &mut WireDecoder) -> Frame {
    loop {
        let buf = reader.fill_buf().expect("read ack bytes");
        assert!(!buf.is_empty(), "connection closed before the ack frame");
        let consumed = buf.len();
        let frames = decoder.feed(buf);
        reader.consume(consumed);
        if let Some(frame) = frames.into_iter().next() {
            return frame.expect("well-formed ack frame");
        }
    }
}

/// Streams the windows over a real TCP connection in `wire` format and
/// returns the per-window published snapshots.
fn run_over_tcp(
    strategies: &[AlertStrategy],
    windows: &[Vec<Alert>],
    shards: usize,
    wire: WireFormat,
) -> Vec<GovernanceSnapshot> {
    let handle = daemon(strategies, shards, wire, true);
    let addr = handle.ingest_addr().expect("ingress bound");
    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone socket"));
    let mut writer = stream;
    let mut encoder = WireEncoder::new();
    let mut decoder = WireDecoder::new();
    let mut buf = Vec::new();
    let mut snapshots = Vec::with_capacity(windows.len());
    for (seq, window) in windows.iter().enumerate() {
        // Acks come back in the connection's own format: a JSON text
        // line on NDJSON connections, a binary `AckFrame` on binary
        // ones — never a text line mid-binary-stream.
        match wire {
            WireFormat::Ndjson => {
                for alert in window {
                    writeln!(writer, "{}", encode_alert(alert)).expect("write alert");
                }
                writeln!(writer, "{FLUSH_FRAME}").expect("write flush");
                writer.flush().expect("flush socket");
                let mut ack = String::new();
                reader.read_line(&mut ack).expect("read flush ack");
                assert!(ack.contains(r#""ack":"flush""#), "unexpected ack: {ack:?}");
            }
            WireFormat::Binary => {
                buf.clear();
                for alert in window {
                    encoder.encode_alert_into(alert, &mut buf);
                }
                encoder.encode_into(&Frame::Flush, &mut buf);
                writer.write_all(&buf).expect("write window");
                writer.flush().expect("flush socket");
                match read_binary_frame(&mut reader, &mut decoder) {
                    Frame::Ack(AckFrame::Flush {
                        window: acked,
                        alerts,
                    }) => {
                        assert_eq!(acked, seq as u64, "ack carries the window seq");
                        assert_eq!(
                            alerts,
                            window.len() as u64,
                            "ack carries the window's alert count"
                        );
                    }
                    other => panic!("expected a binary flush ack, got {other:?}"),
                }
            }
        }
        snapshots.push(handle.latest_snapshot().expect("snapshot published"));
    }
    let counters = handle.counters();
    assert!(counters.is_conserved(), "{counters:?}");
    assert_eq!(counters.dropped, 0);
    assert_eq!(counters.decode_errors, 0);
    // Close the connection before shutdown: the daemon joins its
    // per-connection threads, which are parked in read() until EOF.
    drop(reader);
    drop(writer);
    handle.shutdown();
    snapshots
}

/// The in-process oracle: same governors, no sockets, no wire format.
fn run_in_process(
    strategies: &[AlertStrategy],
    windows: &[Vec<Alert>],
    shards: usize,
) -> Vec<GovernanceSnapshot> {
    let handle = daemon(strategies, shards, WireFormat::default(), false);
    let mut snapshots = Vec::with_capacity(windows.len());
    for window in windows {
        for alert in window {
            handle.route(alert.clone());
        }
        snapshots.push(handle.flush().expect("flush publishes"));
    }
    handle.shutdown();
    snapshots
}

/// Strips the one field sharding is not exact for (triage correlates
/// within a shard) plus the fault bookkeeping.
fn comparable(snapshot: &GovernanceSnapshot) -> GovernanceSnapshot {
    GovernanceSnapshot {
        triage: Vec::new(),
        degraded: Vec::new(),
        ..snapshot.clone()
    }
}

fn json(snapshot: &GovernanceSnapshot) -> String {
    serde_json::to_string(snapshot).expect("snapshot serializes")
}

/// The acceptance matrix: batch == 1-shard == 4-shard == 4-node, and
/// NDJSON == binary at every point where both travel.
#[test]
fn binary_and_ndjson_publish_byte_identical_snapshots_across_topologies() {
    let (strategies, windows) = windowed_trace(2022, 400);

    let oracle = run_in_process(&strategies, &windows, 1);
    let ndjson_1 = run_over_tcp(&strategies, &windows, 1, WireFormat::Ndjson);
    let binary_1 = run_over_tcp(&strategies, &windows, 1, WireFormat::Binary);
    let ndjson_4 = run_over_tcp(&strategies, &windows, 4, WireFormat::Ndjson);
    let binary_4 = run_over_tcp(&strategies, &windows, 4, WireFormat::Binary);

    for (((oracle, ndjson), binary), window) in
        oracle.iter().zip(&ndjson_1).zip(&binary_1).zip(0usize..)
    {
        // Single shard is the full catalog: byte equality, triage and
        // all, across the in-process oracle and both transports.
        assert_eq!(json(oracle), json(ndjson), "ndjson diverged at {window}");
        assert_eq!(json(oracle), json(binary), "binary diverged at {window}");
    }
    for ((ndjson, binary), window) in ndjson_4.iter().zip(&binary_4).zip(0usize..) {
        // Same topology, different transport: still byte equality.
        assert_eq!(
            json(ndjson),
            json(binary),
            "4-shard binary diverged from 4-shard ndjson at {window}"
        );
        assert_eq!(
            json(&comparable(ndjson)),
            json(&comparable(&oracle[window])),
            "4-shard diverged from the oracle at {window}"
        );
    }

    // The 4-node cluster (binary WAL segments underneath) agrees too.
    let root = std::env::temp_dir().join(format!("alertops-wire-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let config = ClusterConfig {
        nodes: 4,
        node: IngestdConfig {
            shards: 1,
            queue_capacity: 8192,
            ..IngestdConfig::default()
        },
        wal_root: root.clone(),
        wal_format: WalFormat::default(),
    };
    let mut cluster = AlertCluster::spawn(
        config,
        strategies.clone(),
        std::sync::Arc::new(|catalog: &[AlertStrategy]| {
            StreamingGovernor::new(
                AlertGovernor::new(catalog.to_vec(), GovernorConfig::default()),
                StreamingConfig::default(),
            )
        }),
    )
    .expect("cluster spawns");
    for (window, index) in windows.iter().zip(0usize..) {
        for alert in window {
            cluster.route(alert.clone()).expect("route succeeds");
        }
        let snapshot = cluster.close_window().expect("window closes");
        assert_eq!(
            json(&comparable(&snapshot)),
            json(&comparable(&oracle[index])),
            "4-node cluster diverged from the oracle at {index}"
        );
    }
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

/// Corruption on the binary wire is counted, not parsed: the daemon
/// quarantines the frame as `corrupt_frame`, closes the connection,
/// and the conservation law still holds — alerts decoded before the
/// corruption survive.
#[test]
fn corrupt_binary_frame_is_quarantined_and_closes_the_connection() {
    let (strategies, windows) = windowed_trace(7, 200);
    let window = &windows[0];
    let handle = daemon(&strategies, 2, WireFormat::Binary, true);
    let addr = handle.ingest_addr().expect("ingress bound");

    let mut writer = TcpStream::connect(addr).expect("connect");
    let mut encoder = WireEncoder::new();
    let mut buf = Vec::new();
    for alert in window {
        encoder.encode_alert_into(alert, &mut buf);
    }
    // Flip a payload bit of the LAST frame: everything before it is
    // intact, the flipped frame fails its CRC.
    let last = buf.len() - 1;
    buf[last] ^= 0x01;
    writer.write_all(&buf).expect("write corrupted stream");
    writer.flush().expect("flush socket");
    // The daemon closes the poisoned connection; wait for it.
    let mut rest = Vec::new();
    let _ = std::io::Read::read_to_end(&mut writer, &mut rest);

    // A fresh connection still works — poisoning is per-stream. Its
    // ack comes back as a binary frame, like everything else on a
    // binary connection.
    let stream = TcpStream::connect(addr).expect("reconnect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone socket"));
    let mut writer = stream;
    let mut flush = Vec::new();
    WireEncoder::new().encode_into(&Frame::Flush, &mut flush);
    writer.write_all(&flush).expect("write flush");
    writer.flush().expect("flush socket");
    let mut decoder = WireDecoder::new();
    assert!(
        matches!(
            read_binary_frame(&mut reader, &mut decoder),
            Frame::Ack(AckFrame::Flush { .. })
        ),
        "binary connection acks with a binary flush frame"
    );

    let counters = handle.counters();
    assert_eq!(
        counters.quarantined_corrupt_frame, 1,
        "exactly the flipped frame: {counters:?}"
    );
    // Quarantine counts toward `ingested` (conservation law), so the
    // whole window entered the pipeline but one frame short delivered.
    assert_eq!(counters.ingested, window.len() as u64, "{counters:?}");
    assert_eq!(
        counters.delivered,
        window.len() as u64 - 1,
        "every frame before the corruption was decoded: {counters:?}"
    );
    assert!(counters.is_conserved(), "{counters:?}");
    drop(reader);
    drop(writer);
    handle.shutdown();
}

/// A WAL written in the pre-binary v1 text format and one written in
/// the v2 binary format from the same appends replay to the same
/// history — recovery is format-blind.
#[test]
fn v1_and_v2_wals_replay_identically() {
    let (_, windows) = windowed_trace(11, 150);
    let base = std::env::temp_dir().join(format!("alertops-wire-wal-{}", std::process::id()));
    let mut replays = Vec::new();
    for format in [WalFormat::V1Json, WalFormat::V2Binary] {
        let dir = base.join(format.label());
        let _ = std::fs::remove_dir_all(&dir);
        let wal = Wal::open_with_format(&dir, 16, format).expect("wal opens");
        for (window, seq) in windows.iter().zip(0u64..) {
            for alert in window {
                wal.append(alert).expect("append");
            }
            wal.boundary(seq).expect("boundary");
        }
        drop(wal);
        replays.push(replay(&dir).expect("replay"));
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert_eq!(replays[0], replays[1], "replay must be format-blind");
    assert_eq!(replays[0].torn_records, 0);
    assert_eq!(
        replays[0].recovered_alerts,
        windows.iter().map(Vec::len).sum::<usize>() as u64
    );
}
