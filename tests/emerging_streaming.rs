//! Differential tests for the streaming emerging-alert (R4) channel:
//! the fit-free streaming path against the fixed offline run, the
//! 1-shard-equals-N-shards guarantee under the ingestd coordinator
//! merge, and byte-identical emerging output with metrics on and off —
//! including under an injected worker crash.

use std::io::Read;
use std::net::TcpStream;

use alertops::chaos::silence_panics_containing;
use alertops::core::prelude::*;
use alertops::ingestd::{
    shard_catalog, shard_of, Ingestd, IngestdConfig, StatusReport, CHAOS_PANIC_MSG,
};
use alertops::model::LogRule;

const THEMES: [&str; 3] = [
    "disk usage of storage node over threshold",
    "cpu utilization high on compute worker",
    "network packet retransmission rate abnormal",
];
const NOVEL: &str = "certificate rotation deadlock renewal stuck handshake expired";

/// One chunk per wall-clock hour 0..=4. Hours 0–2 carry routine themes,
/// hour 3 is silent (the gap a streaming deployment actually sees), and
/// hour 4 mixes the routine load with a brand-new theme. Ids are
/// assigned in generation order, so id order is the canonical document
/// order the ingestd coordinator reconstructs after merging shards.
fn hourly_chunks() -> Vec<Vec<Alert>> {
    let mut chunks = Vec::new();
    let mut id = 0u64;
    for hour in 0..5u64 {
        let mut chunk = Vec::new();
        if hour == 3 {
            chunks.push(chunk);
            continue;
        }
        for i in 0..12u64 {
            chunk.push(
                Alert::builder(AlertId(id), StrategyId(i % 6))
                    .title(THEMES[(i % 3) as usize])
                    .service("Storage")
                    .raised_at(SimTime::from_secs(hour * 3_600 + i * 240))
                    .build(),
            );
            id += 1;
        }
        if hour == 4 {
            for i in 0..10u64 {
                chunk.push(
                    Alert::builder(AlertId(id), StrategyId(i % 6))
                        .title(NOVEL)
                        .service("Security")
                        .raised_at(SimTime::from_secs(hour * 3_600 + 100 + i * 300))
                        .build(),
                );
                id += 1;
            }
        }
        chunks.push(chunk);
    }
    chunks
}

fn emerging_config() -> EmergingConfig {
    EmergingConfig {
        num_topics: 3,
        ..EmergingConfig::default()
    }
}

/// The streaming config a sharded deployment runs: shards forward
/// documents; the coordinator owns the AO-LDA pass.
fn forward_streaming() -> StreamingConfig {
    StreamingConfig {
        emerging: EmergingChannel {
            mode: EmergingMode::Forward,
            config: emerging_config(),
        },
        ..StreamingConfig::default()
    }
}

/// Six dense-id strategies so a 4-shard daemon actually spreads the
/// trace across workers.
fn catalog() -> Vec<AlertStrategy> {
    (0..6)
        .map(|id| {
            AlertStrategy::builder(StrategyId(id))
                .title_template("service metric is abnormal")
                .kind(StrategyKind::Log(LogRule {
                    keyword: "ERROR".into(),
                    min_count: 1,
                    window: SimDuration::from_mins(5),
                }))
                .build()
                .expect("catalog strategy is well-formed")
        })
        .collect()
}

fn shard_governor(strategies: &[AlertStrategy], shards: usize, shard: usize) -> StreamingGovernor {
    StreamingGovernor::new(
        AlertGovernor::new(
            shard_catalog(strategies, shards, shard),
            GovernorConfig::default(),
        ),
        forward_streaming(),
    )
}

/// The streaming path reproduces the fixed offline run byte-for-byte
/// once both agree on the vocabulary: a fit-free detector seeded with
/// the offline fit's vocabulary, fed the same wall-clock windows (gap
/// included) as id-sorted document batches — the exact form the ingestd
/// coordinator feeds it — emits the same reports as
/// [`EmergingAlertDetector::run`] over the whole stream.
#[test]
fn streaming_with_preagreed_vocab_reproduces_the_offline_run() {
    let chunks = hourly_chunks();
    let trace: Vec<Alert> = chunks.iter().flatten().cloned().collect();

    let mut offline = EmergingAlertDetector::new(emerging_config());
    let offline_reports = offline.run(&trace);
    assert_eq!(offline_reports.len(), 5, "one report per wall-clock hour");

    let mut fitted = EmergingAlertDetector::new(emerging_config());
    fitted.fit(&trace);
    let mut streaming =
        EmergingAlertDetector::with_vocabulary(emerging_config(), fitted.vocabulary().clone());
    let streaming_reports: Vec<EmergingReport> = chunks
        .iter()
        .map(|chunk| {
            let mut docs: Vec<EmergingDoc> = chunk.iter().map(EmergingDoc::from_alert).collect();
            docs.sort_by_key(|d| d.alert);
            streaming.observe_docs(&docs)
        })
        .collect();

    assert_eq!(offline_reports, streaming_reports);
    assert_eq!(
        serde_json::to_string(&offline_reports).expect("offline reports serialize"),
        serde_json::to_string(&streaming_reports).expect("streaming reports serialize"),
        "reports must be byte-identical on the wire too"
    );

    // The silent hour is an explicit empty window, on the wall clock.
    let gap = &streaming_reports[3];
    assert_eq!(gap.alert_count, 0);
    assert_eq!(gap.window_start, SimTime::from_secs(3 * 3_600));
    assert!(gap.emerging_alerts.is_empty());
    // And the novel post-gap theme is flagged.
    assert!(
        !streaming_reports[4].emerging_alerts.is_empty(),
        "novel certificate theme not flagged after the gap"
    );
}

/// The opt-in [`EmergingBudget`] regression wall, end to end through the
/// public detector and governor paths:
///
/// 1. a cap the trace never reaches leaves the whole run byte-identical
///    to a budget-free run (the adaptive fast path is exact);
/// 2. an engaged cap is seed-replayable — two runs with the same cap and
///    seed emit byte-identical reports;
/// 3. a different seed samples differently, so replays genuinely depend
///    on the recorded seed;
/// 4. the cap trims tokens, never documents: per-window alert counts are
///    unchanged;
/// 5. the budget survives the governor plumbing: a Local-mode streaming
///    governor with the same budgeted config matches the standalone
///    detector window for window.
#[test]
fn emerging_budget_is_seed_replayable_and_exact_under_the_cap() {
    let chunks = hourly_chunks();
    let run = |budget: Option<EmergingBudget>| -> Vec<EmergingReport> {
        let mut detector = EmergingAlertDetector::new(EmergingConfig {
            budget,
            ..emerging_config()
        });
        chunks
            .iter()
            .map(|chunk| {
                let mut docs: Vec<EmergingDoc> =
                    chunk.iter().map(EmergingDoc::from_alert).collect();
                docs.sort_by_key(|d| d.alert);
                detector.observe_docs(&docs)
            })
            .collect()
    };
    let wire = |reports: &Vec<EmergingReport>| -> String {
        serde_json::to_string(reports).expect("reports serialize")
    };

    let free = run(None);
    let slack = run(Some(EmergingBudget::new(1_000_000, 7)));
    assert_eq!(
        wire(&free),
        wire(&slack),
        "a cap the trace never reaches must leave the run byte-identical"
    );

    let tight = Some(EmergingBudget::new(40, 7));
    let tight_a = run(tight);
    let tight_b = run(tight);
    assert_eq!(
        wire(&tight_a),
        wire(&tight_b),
        "the same cap and seed must replay byte-identically"
    );
    assert_ne!(
        wire(&tight_a),
        wire(&free),
        "a 40-token cap on ~70-token windows must actually engage"
    );
    assert_ne!(
        wire(&tight_a),
        wire(&run(Some(EmergingBudget::new(40, 8)))),
        "a different seed must sample (and report) differently"
    );
    for (budgeted, full) in tight_a.iter().zip(&free) {
        assert_eq!(
            budgeted.alert_count, full.alert_count,
            "the budget drops tokens, never documents"
        );
    }

    // Same budgeted config through the streaming governor's local pass.
    let mut governor = StreamingGovernor::new(
        AlertGovernor::new(catalog(), GovernorConfig::default()),
        StreamingConfig {
            emerging: EmergingChannel {
                mode: EmergingMode::Local,
                config: EmergingConfig {
                    budget: tight,
                    ..emerging_config()
                },
            },
            ..StreamingConfig::default()
        },
    );
    for (chunk, expected) in chunks.iter().zip(&tight_a) {
        let delta = governor.ingest(chunk, &[]);
        assert_eq!(
            serde_json::to_string(&delta.emerging).expect("delta serializes"),
            serde_json::to_string(&Some(expected)).expect("report serializes"),
            "governor's budgeted local pass diverged from the standalone detector"
        );
    }
}

/// Drives one in-process daemon over the hourly chunks (the silent hour
/// is a flush with nothing routed) and returns each window's emerging
/// report and degraded-shard list. With `panic_shard` set, that worker
/// is crashed halfway through hour 1, losing the half-window it had
/// already absorbed.
fn windows_with_shards(
    shards: usize,
    metrics: bool,
    panic_shard: Option<usize>,
) -> Vec<(Option<EmergingReport>, Vec<usize>)> {
    let strategies = catalog();
    let config = IngestdConfig {
        shards,
        metrics,
        streaming: forward_streaming(),
        ..IngestdConfig::default()
    };
    let handle = Ingestd::spawn(&config, |shard, shards| {
        shard_governor(&strategies, shards, shard)
    })
    .expect("daemon starts");
    let mut windows = Vec::new();
    for (hour, chunk) in hourly_chunks().into_iter().enumerate() {
        let half = chunk.len() / 2;
        for (i, alert) in chunk.into_iter().enumerate() {
            if hour == 1 && i == half {
                if let Some(shard) = panic_shard {
                    handle.sync();
                    handle.inject_panic(shard, false);
                }
            }
            handle.route(alert);
        }
        let snapshot = handle.flush().expect("flush yields a snapshot");
        windows.push((snapshot.emerging, snapshot.degraded));
    }
    handle.shutdown();
    windows
}

/// The tentpole guarantee, end to end: with the emerging channel on,
/// an N-shard daemon's per-window reports are byte-identical to the
/// 1-shard daemon's, because shards only forward documents and the
/// coordinator runs the single sequential AO-LDA pass over their
/// id-sorted union.
#[test]
fn one_shard_equals_many_shards_under_the_ingestd_merge() {
    let baseline = windows_with_shards(1, true, None);
    for (hour, (report, degraded)) in baseline.iter().enumerate() {
        assert!(degraded.is_empty());
        let report = report.as_ref().expect("emerging channel is on");
        assert_eq!(report.window_index, hour, "indices count every window");
    }
    let gap = baseline[3].0.as_ref().expect("gap window still reports");
    assert_eq!(gap.alert_count, 0, "the silent hour is an explicit window");
    assert_eq!(gap.window_start, SimTime::from_secs(3 * 3_600));
    assert!(
        !baseline[4]
            .0
            .as_ref()
            .expect("report")
            .emerging_alerts
            .is_empty(),
        "novel theme must surface through the daemon too"
    );

    for shards in [2usize, 4] {
        let sharded = windows_with_shards(shards, true, None);
        assert_eq!(
            serde_json::to_string(&sharded.iter().map(|w| &w.0).collect::<Vec<_>>())
                .expect("sharded reports serialize"),
            serde_json::to_string(&baseline.iter().map(|w| &w.0).collect::<Vec<_>>())
                .expect("baseline reports serialize"),
            "{shards}-shard emerging output diverged from the 1-shard baseline"
        );
    }
}

/// Metrics are observer-only on the emerging channel as well: the same
/// chaos run — a worker crash halfway through a window — produces
/// byte-identical emerging reports and degraded lists whether metrics
/// are on or off.
#[test]
fn chaos_run_emerging_output_is_identical_with_metrics_on_and_off() {
    silence_panics_containing(CHAOS_PANIC_MSG);
    let shards = 4;
    let target = shard_of(StrategyId(0), shards);
    let with_metrics = windows_with_shards(shards, true, Some(target));
    let without_metrics = windows_with_shards(shards, false, Some(target));
    assert_eq!(
        serde_json::to_string(&with_metrics).expect("runs serialize"),
        serde_json::to_string(&without_metrics).expect("runs serialize"),
        "metrics flipped the emerging output"
    );
    assert_eq!(
        with_metrics[1].1,
        vec![target],
        "the crashed shard must be reported degraded in its window"
    );
    // The crash cost the crashed shard's half-window of documents.
    let clean = windows_with_shards(shards, true, None);
    let crashed_count = with_metrics[1].0.as_ref().expect("report").alert_count;
    let clean_count = clean[1].0.as_ref().expect("report").alert_count;
    assert!(
        crashed_count < clean_count,
        "crash should have cost window 1 documents ({crashed_count} vs {clean_count})"
    );
}

/// The status socket publishes the emerging report with the snapshot:
/// scraping after a window close yields a parseable document whose
/// snapshot carries the channel's verdict.
#[test]
fn status_socket_exposes_the_emerging_report() {
    let strategies = catalog();
    let config = IngestdConfig {
        shards: 2,
        streaming: forward_streaming(),
        status: Some("127.0.0.1:0".to_owned()),
        ..IngestdConfig::default()
    };
    let handle = Ingestd::spawn(&config, |shard, shards| {
        shard_governor(&strategies, shards, shard)
    })
    .expect("daemon starts");
    for alert in hourly_chunks().remove(0) {
        handle.route(alert);
    }
    handle.flush().expect("flush yields a snapshot");

    let mut body = String::new();
    TcpStream::connect(handle.status_addr().expect("status listener bound"))
        .expect("connect to status")
        .read_to_string(&mut body)
        .expect("read status document");
    let report: StatusReport = serde_json::from_str(body.trim()).expect("status parses");
    let snapshot = report.snapshot.expect("flush published a snapshot");
    let emerging = snapshot.emerging.expect("emerging report published");
    assert_eq!(emerging.window_index, 0);
    assert_eq!(emerging.alert_count, 12);
    handle.shutdown();
}
