//! The `alertops-cluster` scenario matrix: differential proofs that a
//! topology is an execution strategy, not a semantics change, and that
//! the write-ahead log makes every fault accountable.
//!
//! - N-node clusters (1, 2, 4) publish snapshots equal to the single
//!   full-catalog streaming governor over the same windowed trace.
//! - A mid-window node kill + rejoin is byte-invisible: the WAL replay
//!   rebuilds exactly the state `kill -9` destroyed.
//! - A live range handoff mid-window neither drops nor double-counts.
//! - WAL truncation while a node is dead surfaces as `dropped`, never
//!   as a silent leak — the conservation law holds from the scrape.
//! - Chaos-scheduled node faults (kill/rejoin/truncate) are replayable
//!   from `CHAOS_SEED`.
//! - A whole-cluster restart from the logs resumes byte-identically.
//! - The real binary survives `kill -9` mid-window via `--wal` (in
//!   `ingestd_wal_replay_survives_kill_dash_nine`).

use std::path::{Path, PathBuf};
use std::sync::Arc;

use alertops::chaos::{seed_from_env, ChaosConfig, ChaosKind, ChaosSchedule};
use alertops::cluster::{AlertCluster, ClusterConfig, GovernorFactory, WalFormat};
use alertops::core::prelude::*;
use alertops::detect::StormConfig;
use alertops::ingestd::IngestdConfig;
use alertops::sim::scenarios;

/// Rolling history depth for every governor in this suite — small, so
/// the differentials cross eviction boundaries and WAL pruning.
const HISTORY: usize = 3;

fn streaming_config() -> StreamingConfig {
    StreamingConfig {
        history_windows: HISTORY,
        storm: StormConfig::default(),
        ..StreamingConfig::default()
    }
}

/// The per-shard governor factory every cluster in this suite uses.
fn factory() -> GovernorFactory {
    Arc::new(|catalog: &[AlertStrategy]| {
        StreamingGovernor::new(
            AlertGovernor::new(catalog.to_vec(), GovernorConfig::default()),
            streaming_config(),
        )
    })
}

/// A unique, per-process WAL root so parallel test binaries never
/// collide.
fn wal_root(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "alertops-cluster-test-{tag}-{}",
        std::process::id()
    ))
}

fn cluster_config(nodes: usize, shards: usize, wal_root: PathBuf) -> ClusterConfig {
    ClusterConfig {
        nodes,
        node: IngestdConfig {
            shards,
            queue_capacity: 8192,
            streaming: streaming_config(),
            ..IngestdConfig::default()
        },
        wal_root,
        wal_format: WalFormat::default(),
    }
}

fn spawn(nodes: usize, shards: usize, root: &Path, catalog: &[AlertStrategy]) -> AlertCluster {
    AlertCluster::spawn(
        cluster_config(nodes, shards, root.to_path_buf()),
        catalog.to_vec(),
        factory(),
    )
    .expect("cluster spawns")
}

/// The quickstart trace chopped into fixed-size, time-sorted windows,
/// with a trailing empty window so the differentials also cover
/// detection over a draining history.
fn windowed_trace(seed: u64, window_len: usize) -> (Vec<AlertStrategy>, Vec<Vec<Alert>>) {
    let out = scenarios::quickstart(seed).run();
    let mut trace = out.alerts.clone();
    trace.sort_by_key(|a| (a.raised_at(), a.id()));
    let mut windows: Vec<Vec<Alert>> = trace.chunks(window_len).map(<[Alert]>::to_vec).collect();
    windows.push(Vec::new());
    (out.catalog.strategies().to_vec(), windows)
}

fn json(snapshot: &GovernanceSnapshot) -> String {
    serde_json::to_string(snapshot).expect("snapshot serializes")
}

/// Strips the fields different partitions are *not* exact for: triage
/// (cross-strategy correlation runs within each shard only, and node
/// count changes the sharding) and the degraded list (asserted
/// separately where a test injects faults). Same-topology comparisons
/// skip this and demand full byte equality.
fn comparable(snapshot: &GovernanceSnapshot) -> GovernanceSnapshot {
    GovernanceSnapshot {
        triage: Vec::new(),
        degraded: Vec::new(),
        ..snapshot.clone()
    }
}

/// Runs `windows` through a fresh fault-free cluster and returns every
/// published snapshot, asserting conservation on the way out.
fn run_cluster(
    nodes: usize,
    shards: usize,
    tag: &str,
    catalog: &[AlertStrategy],
    windows: &[Vec<Alert>],
) -> Vec<GovernanceSnapshot> {
    let root = wal_root(tag);
    let _ = std::fs::remove_dir_all(&root);
    let mut cluster = spawn(nodes, shards, &root, catalog);
    let mut snapshots = Vec::with_capacity(windows.len());
    for window in windows {
        for alert in window {
            cluster.route(alert.clone()).expect("route succeeds");
        }
        snapshots.push(cluster.close_window().expect("window closes"));
    }
    let counters = cluster.counters();
    assert!(counters.is_conserved(), "{counters:?}");
    assert_eq!(counters.dropped, 0, "fault-free run must drop nothing");
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&root);
    snapshots
}

/// Every value of the named family in a Prometheus text exposition.
fn exposition_values(text: &str, name: &str) -> Vec<u64> {
    text.lines()
        .filter(|line| !line.starts_with('#'))
        .filter_map(|line| {
            let (series, value) = line.rsplit_once(' ')?;
            let base = series.split('{').next()?;
            (base == name).then(|| value.parse().expect("metric values are integers"))
        })
        .collect()
}

/// The single value of an unlabelled family.
fn exposition_value(text: &str, name: &str) -> u64 {
    let values = exposition_values(text, name);
    assert_eq!(values.len(), 1, "{name} should be a single series");
    values[0]
}

/// Re-asserts the cluster conservation law from the *scrape* — the
/// text a real monitoring system would see must carry the same
/// accounting the in-process counters do.
fn assert_scrape_conserved(cluster: &AlertCluster) {
    let text = cluster.render_metrics();
    alertops::obs::lint_exposition(&text).expect("cluster exposition lints");
    assert_eq!(
        exposition_value(&text, "alertops_cluster_ingested_total"),
        exposition_value(&text, "alertops_cluster_delivered_total")
            + exposition_value(&text, "alertops_cluster_dropped_total")
            + exposition_value(&text, "alertops_cluster_quarantined_total")
            + exposition_value(&text, "alertops_cluster_in_flight"),
        "scraped exposition violates the conservation law:\n{text}"
    );
}

/// The tentpole differential: a 4-node cluster, a 2-node cluster, a
/// 1-node cluster, and the single full-catalog streaming governor (the
/// batch-equivalent oracle pinned in `incremental_equivalence.rs`) all
/// publish the same governance stream. The 1-node × 1-shard cluster is
/// compared *unstripped* — triage included, byte for byte.
#[test]
fn cluster_sizes_agree_with_each_other_and_the_batch_oracle() {
    let (catalog, windows) = windowed_trace(7, 48);

    let mut oracle = StreamingGovernor::new(
        AlertGovernor::new(catalog.clone(), GovernorConfig::default()),
        streaming_config(),
    );
    let storm = streaming_config().storm;
    let oracle_snapshots: Vec<GovernanceSnapshot> = windows
        .iter()
        .map(|window| GovernanceSnapshot::from_delta(&oracle.ingest(window, &[]), &storm))
        .collect();

    let single = run_cluster(1, 1, "diff-1", &catalog, &windows);
    for (index, (got, want)) in single.iter().zip(&oracle_snapshots).enumerate() {
        assert_eq!(
            json(got),
            json(want),
            "1-node cluster diverged from the batch oracle at window {index}"
        );
    }

    for nodes in [2usize, 4] {
        let sharded = run_cluster(nodes, 2, &format!("diff-{nodes}"), &catalog, &windows);
        assert_eq!(sharded.len(), oracle_snapshots.len());
        for (index, (got, want)) in sharded.iter().zip(&oracle_snapshots).enumerate() {
            assert_eq!(
                json(&comparable(got)),
                json(&comparable(want)),
                "{nodes}-node cluster diverged from the oracle at window {index}"
            );
        }
    }
}

/// Mid-window `kill -9` + rejoin: the killed node's daemon memory is
/// gone, but its WAL holds the sealed history and the in-flight tail,
/// so after replay the faulted run is **byte-identical** to a run that
/// never faulted — same topology, so nothing is stripped, and the
/// fault window itself must close clean (the node is back before the
/// close, so not even `degraded` may differ).
#[test]
fn mid_window_kill_and_rejoin_is_byte_invisible() {
    let (catalog, windows) = windowed_trace(7, 48);
    let reference = run_cluster(3, 2, "kill-ref", &catalog, &windows);

    let root = wal_root("kill-live");
    let _ = std::fs::remove_dir_all(&root);
    let mut cluster = spawn(3, 2, &root, &catalog);
    let fault_window = windows.len() / 2;
    let mut snapshots = Vec::with_capacity(windows.len());
    for (index, window) in windows.iter().enumerate() {
        if index == fault_window {
            let (routed, rest) = window.split_at(window.len() / 2);
            for alert in routed {
                cluster.route(alert.clone()).expect("route succeeds");
            }
            cluster.kill(1);
            assert_eq!(cluster.alive_nodes(), 2);
            cluster.rejoin(1).expect("rejoin replays the WAL");
            assert_eq!(cluster.alive_nodes(), 3);
            for alert in rest {
                cluster.route(alert.clone()).expect("route succeeds");
            }
        } else {
            for alert in window {
                cluster.route(alert.clone()).expect("route succeeds");
            }
        }
        snapshots.push(cluster.close_window().expect("window closes"));
    }
    let counters = cluster.counters();
    assert!(counters.is_conserved(), "{counters:?}");
    assert_eq!(counters.dropped, 0, "an intact log must lose nothing");
    assert!(
        cluster.metrics().wal_replayed_alerts.get() > 0,
        "the rejoin must actually have replayed the log"
    );
    assert_scrape_conserved(&cluster);
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&root);

    for (index, (got, want)) in snapshots.iter().zip(&reference).enumerate() {
        assert_eq!(
            json(got),
            json(want),
            "kill+rejoin run diverged from the fault-free run at window {index}"
        );
    }
}

/// A live range handoff in the middle of a window: the moved range's
/// sealed history and in-flight alerts travel with it (through the
/// JSON wire format), ownership changes, and the stream — including
/// the handoff window itself — matches a run that never rebalanced.
/// Triage is stripped (the partition changed); nothing else may move.
#[test]
fn live_range_handoff_neither_drops_nor_double_counts() {
    let (catalog, windows) = windowed_trace(7, 48);
    let reference = run_cluster(3, 2, "handoff-ref", &catalog, &windows);

    let root = wal_root("handoff-live");
    let _ = std::fs::remove_dir_all(&root);
    let mut cluster = spawn(3, 2, &root, &catalog);
    let fault_window = windows.len() / 2;
    let mut snapshots = Vec::with_capacity(windows.len());
    let mut report = None;
    for (index, window) in windows.iter().enumerate() {
        if index == fault_window {
            let (routed, rest) = window.split_at(window.len() / 2);
            for alert in routed {
                cluster.route(alert.clone()).expect("route succeeds");
            }
            let range = cluster.range_map().ranges_of(0)[0];
            let moved = cluster.handoff(range, 2).expect("handoff completes");
            assert_eq!((moved.from, moved.to), (0, 2));
            assert!(
                moved.moved_alerts > 0,
                "node 0's history for the range must ship: {moved:?}"
            );
            assert_eq!(cluster.range_map().node_of(StrategyId(range.start)), 2);
            assert_eq!(cluster.range_map().node_of(StrategyId(range.end)), 2);
            report = Some(moved);
            for alert in rest {
                cluster.route(alert.clone()).expect("route succeeds");
            }
        } else {
            for alert in window {
                cluster.route(alert.clone()).expect("route succeeds");
            }
        }
        snapshots.push(cluster.close_window().expect("window closes"));
    }
    let counters = cluster.counters();
    assert!(counters.is_conserved(), "{counters:?}");
    assert_eq!(counters.dropped, 0, "a handoff must lose nothing");
    assert_eq!(cluster.metrics().handoffs.get(), 1);
    assert_scrape_conserved(&cluster);
    let text = cluster.render_metrics();
    assert_eq!(
        exposition_value(&text, "alertops_cluster_handoff_micros_count"),
        1,
        "handoff latency must be observed:\n{text}"
    );
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&root);

    let report = report.expect("handoff ran");
    assert!(report.micros < 60_000_000, "handoff latency is sane");
    for (index, (got, want)) in snapshots.iter().zip(&reference).enumerate() {
        assert_eq!(
            json(&comparable(got)),
            json(&comparable(want)),
            "handoff run diverged from the never-rebalanced run at window {index}"
        );
    }
}

/// WAL truncation while a node is dead: the chopped tail records are
/// unrecoverable, so the rejoin counts them `dropped` — the loss is
/// visible, attributed, and the conservation law still balances, both
/// in-process and from the scraped exposition.
#[test]
fn wal_truncation_is_counted_dropped_never_leaked() {
    let (catalog, windows) = windowed_trace(7, 48);
    let root = wal_root("truncate");
    let _ = std::fs::remove_dir_all(&root);
    let mut cluster = spawn(2, 2, &root, &catalog);

    for alert in &windows[0] {
        cluster.route(alert.clone()).expect("route succeeds");
    }
    cluster.close_window().expect("window closes");

    for alert in &windows[1] {
        cluster.route(alert.clone()).expect("route succeeds");
    }
    let in_flight_before = cluster.counters().in_flight;
    assert!(in_flight_before > 0);
    cluster.kill(0);
    cluster
        .truncate_wal_tail(0, 64)
        .expect("truncation applies");
    cluster.rejoin(0).expect("rejoin replays what survives");

    let counters = cluster.counters();
    assert!(
        counters.dropped >= 1,
        "the chopped record must surface as a drop: {counters:?}"
    );
    assert!(
        cluster.metrics().wal_torn_records.get() >= 1,
        "replay must report the torn record"
    );
    assert!(counters.is_conserved(), "{counters:?}");

    for window in &windows[2..] {
        for alert in window {
            cluster.route(alert.clone()).expect("route succeeds");
        }
        cluster.close_window().expect("window closes");
    }
    let counters = cluster.counters();
    assert!(counters.is_conserved(), "{counters:?}");
    assert_eq!(counters.in_flight, 0);
    assert!(counters.delivered < counters.ingested);
    assert_scrape_conserved(&cluster);
    let text = cluster.render_metrics();
    assert!(exposition_value(&text, "alertops_cluster_wal_torn_records_total") >= 1);
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

/// One chaos-scheduled cluster run: node kills, rejoins, and a WAL
/// truncation placed by the seed. Returns every published snapshot
/// plus the final accounting, so equality across runs is equality of
/// the entire observable history.
fn chaos_cluster_run(seed: u64, tag: &str) -> Vec<String> {
    let out = scenarios::quickstart(7).run();
    let catalog = out.catalog.strategies().to_vec();
    let mut trace = out.alerts.clone();
    trace.sort_by_key(|a| (a.raised_at(), a.id()));

    let schedule = ChaosSchedule::generate(
        seed,
        &ChaosConfig {
            trace_len: trace.len(),
            shards: 2,
            // Node faults only: the single-daemon fault kinds target a
            // daemon handle this driver does not expose.
            resets: 0,
            truncations: 0,
            corruptions: 0,
            stalls: 0,
            panics: 0,
            close_panics: 0,
            overflows: 0,
            nodes: 3,
            node_kills: 2,
            node_rejoins: 3,
            wal_truncates: 1,
            truncate_bytes: 48,
            ..ChaosConfig::default()
        },
    );

    let root = wal_root(tag);
    let _ = std::fs::remove_dir_all(&root);
    let mut cluster = spawn(3, 2, &root, &catalog);
    let mut outputs = Vec::new();
    for (index, alert) in trace.iter().enumerate() {
        for event in schedule.events_at(index) {
            match event.kind {
                ChaosKind::NodeKill { node } => cluster.kill(node),
                ChaosKind::NodeRejoin { node } => {
                    cluster.rejoin(node).expect("rejoin replays the WAL");
                }
                ChaosKind::WalTruncate { node, bytes } => {
                    // Disk damage is modelled on a dead node (a live
                    // writer owns its open segment).
                    cluster.kill(node);
                    cluster
                        .truncate_wal_tail(node, bytes)
                        .expect("truncation applies");
                }
                ref other => panic!("unscheduled chaos kind {other:?}"),
            }
        }
        cluster.route(alert.clone()).expect("route succeeds");
        if (index + 1) % 60 == 0 {
            outputs.push(json(&cluster.close_window().expect("window closes")));
        }
    }
    // Settle: bring every node back (dead ones replay their logs) and
    // close a final window so nothing stays in flight.
    for node in 0..3 {
        cluster.rejoin(node).expect("rejoin replays the WAL");
    }
    outputs.push(json(&cluster.close_window().expect("window closes")));

    let counters = cluster.counters();
    assert!(counters.is_conserved(), "seed {seed}: {counters:?}");
    assert_eq!(counters.in_flight, 0, "seed {seed}: {counters:?}");
    assert_scrape_conserved(&cluster);
    outputs.push(format!("{counters:?}"));
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&root);
    outputs
}

/// A chaos-supervised cluster run is a pure function of its seed —
/// node kills, WAL replays, and truncation losses included. Override
/// the seed with `CHAOS_SEED` to replay a failure printed by CI.
#[test]
fn chaos_node_faults_are_replayable_from_the_seed() {
    let seed = seed_from_env(0xC105_7E12);
    let first = chaos_cluster_run(seed, "chaos-a");
    let second = chaos_cluster_run(seed, "chaos-b");
    assert_eq!(
        first, second,
        "chaos cluster run is not seed-pure (CHAOS_SEED={seed})"
    );
}

/// Pulling the plug on the *whole* cluster mid-window and respawning
/// over the same WAL root resumes byte-identically: sealed windows are
/// re-published at their original sequence numbers, the in-flight tail
/// comes back as pending, and the continuation matches a run that
/// never restarted.
#[test]
fn whole_cluster_restart_from_wal_is_lossless() {
    let (catalog, windows) = windowed_trace(7, 48);
    let reference = run_cluster(3, 2, "restart-ref", &catalog, &windows);

    let root = wal_root("restart-live");
    let _ = std::fs::remove_dir_all(&root);
    let split = windows.len() / 2;
    let mut cluster = spawn(3, 2, &root, &catalog);
    let mut snapshots = Vec::with_capacity(windows.len());
    for window in &windows[..split] {
        for alert in window {
            cluster.route(alert.clone()).expect("route succeeds");
        }
        snapshots.push(cluster.close_window().expect("window closes"));
    }
    let (routed, rest) = windows[split].split_at(windows[split].len() / 2);
    for alert in routed {
        cluster.route(alert.clone()).expect("route succeeds");
    }
    cluster.shutdown(); // every daemon's memory is gone; the logs remain

    let mut cluster = spawn(3, 2, &root, &catalog);
    assert_eq!(
        json(&cluster.latest_snapshot().expect("replay re-publishes")),
        json(&snapshots[split - 1]),
        "restart must restore the last published snapshot"
    );
    assert_eq!(
        cluster.counters().in_flight,
        routed.len() as u64,
        "the in-flight tail must come back as pending work"
    );
    for alert in rest {
        cluster.route(alert.clone()).expect("route succeeds");
    }
    snapshots.push(cluster.close_window().expect("window closes"));
    for window in &windows[split + 1..] {
        for alert in window {
            cluster.route(alert.clone()).expect("route succeeds");
        }
        snapshots.push(cluster.close_window().expect("window closes"));
    }
    let counters = cluster.counters();
    assert!(counters.is_conserved(), "{counters:?}");
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&root);

    assert_eq!(snapshots.len(), reference.len());
    for (index, (got, want)) in snapshots.iter().zip(&reference).enumerate() {
        assert_eq!(
            json(got),
            json(want),
            "restarted cluster diverged from the uninterrupted run at window {index}"
        );
    }
}

/// Alerts outside the catalog are quarantined at the cluster edge and
/// still accounted by the conservation law.
#[test]
fn unknown_strategies_quarantine_at_the_edge() {
    let (catalog, windows) = windowed_trace(7, 64);
    let root = wal_root("quarantine");
    let _ = std::fs::remove_dir_all(&root);
    let mut cluster = spawn(2, 2, &root, &catalog);
    for alert in &windows[0] {
        cluster.route(alert.clone()).expect("route succeeds");
    }
    let stray = Alert::builder(AlertId(999_999), StrategyId(u64::MAX - 1))
        .title("stray alert from an unregistered strategy")
        .raised_at(SimTime::from_secs(60))
        .build();
    cluster.route(stray).expect("quarantine is not an error");
    let snapshot = cluster.close_window().expect("window closes");
    assert_eq!(snapshot.alert_count, windows[0].len());
    let counters = cluster.counters();
    assert_eq!(counters.quarantined, 1);
    assert!(counters.is_conserved(), "{counters:?}");
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

/// The real binary, really killed: `alertops ingestd --wal DIR` is
/// SIGKILLed mid-window after journaling a streamed trace; a respawn
/// over the same directory replays the log and delivers every alert
/// the dead process accepted — zero loss, re-asserted from the status
/// scrape.
mod subprocess {
    use std::io::{BufRead, BufReader, Read, Write};
    use std::net::TcpStream;
    use std::process::{Child, Command, Stdio};
    use std::time::{Duration, Instant};

    use alertops::ingestd::codec::encode_alert;
    use alertops::ingestd::StatusReport;
    use alertops::sim::scenarios;

    struct Daemon {
        child: Child,
        lines: std::io::Lines<BufReader<std::process::ChildStdout>>,
        ingest: std::net::SocketAddr,
        status: std::net::SocketAddr,
    }

    fn spawn_daemon(wal: &std::path::Path) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_alertops"))
            .args([
                "ingestd",
                "--scenario",
                "quickstart",
                "--seed",
                "7",
                "--shards",
                "2",
                "--listen",
                "127.0.0.1:0",
                "--status",
                "127.0.0.1:0",
                "--wal",
                wal.to_str().expect("utf-8 temp path"),
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("binary spawns");
        let mut lines = BufReader::new(child.stdout.take().expect("stdout piped")).lines();
        let up = loop {
            let line = lines
                .next()
                .expect("daemon prints its banner")
                .expect("stdout is utf-8");
            if line.starts_with("ingestd up:") {
                break line;
            }
        };
        // "ingestd up: 2 shard(s), ingest 127.0.0.1:P, status 127.0.0.1:Q"
        let addr_after = |marker: &str| -> std::net::SocketAddr {
            up.split(marker)
                .nth(1)
                .and_then(|rest| rest.split([',', ' ']).next())
                .and_then(|addr| addr.parse().ok())
                .unwrap_or_else(|| panic!("cannot parse {marker:?} address from {up:?}"))
        };
        Daemon {
            child,
            lines,
            ingest: addr_after("ingest "),
            status: addr_after("status "),
        }
    }

    fn scrape_status(addr: std::net::SocketAddr) -> StatusReport {
        let mut stream = TcpStream::connect(addr).expect("connect to status");
        stream.write_all(b"status\n").expect("send status verb");
        let mut body = String::new();
        stream.read_to_string(&mut body).expect("read document");
        serde_json::from_str(body.trim()).expect("status parses")
    }

    /// Polls the status socket until the daemon has routed (and
    /// therefore journaled — the WAL write happens first) `sent`
    /// alerts.
    fn wait_until_journaled(addr: std::net::SocketAddr, sent: u64) {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            if scrape_status(addr).counters.ingested >= sent {
                return;
            }
            assert!(
                Instant::now() < deadline,
                "daemon never ingested {sent} alerts"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    #[test]
    fn ingestd_wal_replay_survives_kill_dash_nine() {
        let wal =
            std::env::temp_dir().join(format!("alertops-ingestd-kill9-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&wal);

        let trace = {
            let out = scenarios::quickstart(7).run();
            let mut trace = out.alerts;
            trace.sort_by_key(|a| (a.raised_at(), a.id()));
            trace.truncate(120);
            trace
        };

        // First incarnation: stream the trace, never close a window,
        // and die without ceremony.
        let mut daemon = spawn_daemon(&wal);
        {
            let mut stream = TcpStream::connect(daemon.ingest).expect("connect to ingress");
            for alert in &trace {
                writeln!(stream, "{}", encode_alert(alert)).expect("write alert");
            }
            stream.flush().expect("flush socket");
            wait_until_journaled(daemon.status, trace.len() as u64);
        }
        daemon.child.kill().expect("SIGKILL lands");
        daemon.child.wait().expect("child reaped");

        // Second incarnation over the same log: the banner reports the
        // replay, and a flush delivers every accepted alert.
        let mut daemon = spawn_daemon(&wal);
        let counters_before = scrape_status(daemon.status).counters;
        assert_eq!(
            counters_before.ingested,
            trace.len() as u64,
            "replay must re-ingest the whole journaled tail"
        );
        assert_eq!(counters_before.dropped, 0);

        let stream = TcpStream::connect(daemon.ingest).expect("connect to ingress");
        let mut reader = BufReader::new(stream.try_clone().expect("clone socket"));
        let mut writer = stream;
        writeln!(writer, "{}", alertops::ingestd::FLUSH_FRAME).expect("write flush");
        let mut ack = String::new();
        reader.read_line(&mut ack).expect("read flush ack");
        assert!(
            ack.contains(&format!(r#""alerts":{}"#, trace.len())),
            "flush must deliver every recovered alert: {ack:?}"
        );

        let report = scrape_status(daemon.status);
        assert_eq!(report.counters.delivered, trace.len() as u64);
        assert_eq!(report.counters.windows_closed, 1);
        assert!(report.counters.is_conserved(), "{:?}", report.counters);
        assert_eq!(
            report.snapshot.expect("flush published").alert_count,
            trace.len()
        );

        writeln!(writer, "{}", alertops::ingestd::SHUTDOWN_FRAME).expect("write shutdown");
        let mut ack = String::new();
        reader.read_line(&mut ack).expect("read shutdown ack");
        daemon.child.wait().expect("clean exit");
        // Drain the rest of the banner reader so the pipe closes tidily.
        for _ in daemon.lines.by_ref() {}
        let _ = std::fs::remove_dir_all(&wal);
    }
}
