//! End-to-end tests for the `alertops-ingestd` daemon: a real TCP
//! round-trip over the NDJSON protocol, and the sharding-equivalence
//! guarantee (N shards merged == 1 shard) both on a fixed trace and as
//! a property over random traces.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

use alertops::core::prelude::*;
use alertops::detect::StormConfig;
use alertops::ingestd::codec::encode_alert;
use alertops::ingestd::{
    shard_catalog, Ingestd, IngestdConfig, StatusReport, FLUSH_FRAME, SHUTDOWN_FRAME,
};
use alertops::model::LogRule;
use alertops::sim::scenarios;
use alertops::sim::SimOutput;

/// The injected A5 strategy: not part of any scenario catalog.
const REPEATER: StrategyId = StrategyId(9001);

fn repeater_strategy() -> AlertStrategy {
    AlertStrategy::builder(REPEATER)
        .title_template("haproxy process number warning")
        .kind(StrategyKind::Log(LogRule {
            keyword: "WARN".into(),
            min_count: 1,
            window: SimDuration::from_mins(5),
        }))
        .build()
        .expect("repeater strategy is well-formed")
}

/// 22 alerts/hour for three consecutive hours: trips the A5 burst rule
/// (`hourly_threshold` 18 in ≥ 2 hours) deterministically.
fn repeater_alerts() -> Vec<Alert> {
    let mut alerts = Vec::new();
    for hour in 0..3u64 {
        for i in 0..22u64 {
            alerts.push(
                Alert::builder(AlertId(1_000_000 + hour * 100 + i), REPEATER)
                    .title("haproxy process number warning")
                    .raised_at(SimTime::from_secs(hour * 3_600 + i * 163))
                    .build(),
            );
        }
    }
    alerts
}

/// Per-shard governor factory over `strategies`, mirroring what the
/// CLI builds (minus scenario-specific context, which the A5 check
/// does not need).
fn shard_governor(strategies: &[AlertStrategy], shards: usize, shard: usize) -> StreamingGovernor {
    let catalog = shard_catalog(strategies, shards, shard);
    StreamingGovernor::new(
        AlertGovernor::new(catalog, GovernorConfig::default()),
        StreamingConfig::default(),
    )
}

fn full_catalog(out: &SimOutput) -> Vec<AlertStrategy> {
    let mut strategies = out.catalog.strategies().to_vec();
    strategies.push(repeater_strategy());
    strategies
}

#[test]
fn daemon_flags_injected_repeater_through_the_sockets() {
    let out = scenarios::quickstart(7).run();
    let strategies = full_catalog(&out);

    let config = IngestdConfig {
        shards: 4,
        queue_capacity: 4096,
        listen: Some("127.0.0.1:0".to_owned()),
        status: Some("127.0.0.1:0".to_owned()),
        ..IngestdConfig::default()
    };
    let handle = Ingestd::spawn(&config, |shard, shards| {
        shard_governor(&strategies, shards, shard)
    })
    .expect("daemon starts");

    // Stream the scenario trace plus the injected repeater over TCP.
    let ingest_addr = handle.ingest_addr().expect("ingress listener bound");
    let stream = TcpStream::connect(ingest_addr).expect("connect to ingress");
    let mut reader = BufReader::new(stream.try_clone().expect("clone socket"));
    let mut writer = stream;
    let mut sent = 0usize;
    for alert in out.alerts.iter().chain(repeater_alerts().iter()) {
        writeln!(writer, "{}", encode_alert(alert)).expect("write alert");
        sent += 1;
    }
    writeln!(writer, "{FLUSH_FRAME}").expect("write flush");
    let mut ack = String::new();
    reader.read_line(&mut ack).expect("read flush ack");
    assert!(
        ack.contains(&format!(r#""alerts":{sent}"#)),
        "flush ack should count every alert sent: {ack:?}"
    );

    // Scrape the status socket and parse the published document.
    let status_addr = handle.status_addr().expect("status listener bound");
    let mut status = String::new();
    TcpStream::connect(status_addr)
        .expect("connect to status")
        .read_to_string(&mut status)
        .expect("read status document");
    let report: StatusReport = serde_json::from_str(status.trim()).expect("status parses");

    assert_eq!(report.counters.ingested, sent as u64);
    assert_eq!(report.counters.dropped, 0, "nothing may be dropped");
    assert_eq!(report.counters.decode_errors, 0);
    assert_eq!(report.counters.windows_closed, 1);
    let snapshot = report.snapshot.expect("flush published a snapshot");
    assert_eq!(snapshot.alert_count, sent);
    assert!(
        snapshot
            .new_findings
            .iter()
            .any(|f| f.pattern == AntiPattern::Repeating && f.strategy == REPEATER),
        "merged snapshot must flag the injected repeating strategy; got {:?}",
        snapshot.new_findings
    );

    // Shutdown over the wire is acked, then the daemon joins cleanly.
    writeln!(writer, "{SHUTDOWN_FRAME}").expect("write shutdown");
    let mut ack = String::new();
    reader.read_line(&mut ack).expect("read shutdown ack");
    assert_eq!(ack.trim(), r#"{"ack":"shutdown"}"#);
    drop((reader, writer));
    handle.wait_for_shutdown_request();
    handle.shutdown();
}

/// Routes `trace` through an in-process daemon with `shards` workers,
/// closing a window after each chunk; returns the merged snapshots.
fn snapshots_with_shards(
    strategies: &[AlertStrategy],
    chunks: &[&[Alert]],
    shards: usize,
) -> Vec<GovernanceSnapshot> {
    let config = IngestdConfig {
        shards,
        queue_capacity: 8192,
        ..IngestdConfig::default()
    };
    let handle = Ingestd::spawn(&config, |shard, shards| {
        shard_governor(strategies, shards, shard)
    })
    .expect("daemon starts");
    let mut snapshots = Vec::new();
    for chunk in chunks {
        for alert in *chunk {
            handle.route(alert.clone());
        }
        snapshots.push(handle.flush().expect("flush yields a snapshot"));
    }
    assert_eq!(handle.counters().dropped, 0);
    handle.shutdown();
    snapshots
}

/// Strips the field sharding is *not* exact for: triage (cross-strategy
/// correlation runs within each shard only).
fn comparable(snapshot: &GovernanceSnapshot) -> GovernanceSnapshot {
    GovernanceSnapshot {
        triage: Vec::new(),
        ..snapshot.clone()
    }
}

#[test]
fn sharded_snapshots_match_single_shard_on_a_scenario_trace() {
    let out = scenarios::quickstart(7).run();
    let strategies = full_catalog(&out);
    let mut trace = out.alerts.clone();
    trace.extend(repeater_alerts());
    trace.sort_by_key(|a| (a.raised_at(), a.id()));
    // Three windows, uneven on purpose.
    let (a, rest) = trace.split_at(trace.len() / 3);
    let (b, c) = rest.split_at(rest.len() / 2);
    let chunks = [a, b, c];

    let baseline = snapshots_with_shards(&strategies, &chunks, 1);
    for shards in [2usize, 4, 8] {
        let sharded = snapshots_with_shards(&strategies, &chunks, shards);
        assert_eq!(sharded.len(), baseline.len());
        for (window, (got, want)) in sharded.iter().zip(baseline.iter()).enumerate() {
            assert_eq!(
                comparable(got),
                comparable(want),
                "{shards}-shard window {window} diverged from the 1-shard baseline"
            );
        }
    }
}

/// Scrapes one document from the status socket, optionally sending a
/// request line first (None = the legacy bare connection).
fn scrape(addr: std::net::SocketAddr, request: Option<&str>) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to status");
    if let Some(verb) = request {
        stream
            .write_all(format!("{verb}\n").as_bytes())
            .expect("send request line");
    }
    let mut body = String::new();
    stream.read_to_string(&mut body).expect("read document");
    body
}

/// The full observability contract over the wire: after a real TCP
/// ingest (including a malformed frame) and a window close, the
/// `metrics` request must return a lintable Prometheus exposition
/// carrying every instrumented stage — frame codec, shard close,
/// barrier, merge, per-detector timing, reaction stages, streaming
/// ingest — plus the conservation counters.
#[test]
fn metrics_exposition_covers_every_instrumented_stage() {
    let out = scenarios::quickstart(7).run();
    let strategies = full_catalog(&out);
    let config = IngestdConfig {
        shards: 4,
        queue_capacity: 4096,
        listen: Some("127.0.0.1:0".to_owned()),
        status: Some("127.0.0.1:0".to_owned()),
        ..IngestdConfig::default()
    };
    let handle = Ingestd::spawn(&config, |shard, shards| {
        shard_governor(&strategies, shards, shard)
    })
    .expect("daemon starts");

    let ingest_addr = handle.ingest_addr().expect("ingress listener bound");
    let stream = TcpStream::connect(ingest_addr).expect("connect to ingress");
    let mut reader = BufReader::new(stream.try_clone().expect("clone socket"));
    let mut writer = stream;
    for alert in out.alerts.iter().chain(repeater_alerts().iter()) {
        writeln!(writer, "{}", encode_alert(alert)).expect("write alert");
    }
    writeln!(writer, "this is not json").expect("write malformed frame");
    writeln!(writer, "{FLUSH_FRAME}").expect("write flush");
    let mut ack = String::new();
    reader.read_line(&mut ack).expect("read flush ack");
    // Release the connection so its handler thread (and with it the
    // worker queues) can wind down at shutdown.
    drop((reader, writer));

    let status_addr = handle.status_addr().expect("status listener bound");
    let text = scrape(status_addr, Some("metrics"));
    alertops::obs::lint_exposition(&text).expect("exposition lints");

    for family in [
        // Conservation counters, always present.
        "alertops_ingested_total",
        "alertops_delivered_total",
        "alertops_dropped_total",
        "alertops_backpressure_waits_total",
        "alertops_quarantined_total",
        "alertops_windows_closed_total",
        "alertops_degraded_windows_total",
        "alertops_shard_restarts_total",
        "alertops_last_window_micros",
        "alertops_queue_depth",
        // Frame codec.
        "alertops_frames_decoded_total",
        "alertops_frames_rejected_total",
        // Coordinator and shard close path.
        "alertops_window_close_micros",
        "alertops_barrier_wait_micros",
        "alertops_merge_micros",
        "alertops_shard_close_micros",
        // Detection pipeline.
        "alertops_detector_micros",
        "alertops_detector_findings_total",
        "alertops_detect_runs_total",
        "alertops_detect_alerts_scanned_total",
        // Reaction pipeline.
        "alertops_react_stage_micros",
        "alertops_react_input_total",
        "alertops_react_blocked_total",
        "alertops_react_groups_total",
        "alertops_react_clusters_total",
        // Streaming governor.
        "alertops_streaming_ingest_micros",
    ] {
        assert!(
            text.contains(&format!("# TYPE {family} ")),
            "exposition is missing the {family} family:\n{text}"
        );
    }
    // The instrumented hot paths actually fired.
    let sent = out.alerts.len() + repeater_alerts().len();
    assert!(text.contains(&format!("alertops_frames_decoded_total {}", sent + 1)));
    assert!(text.contains("alertops_frames_rejected_total 1"));
    assert!(text.contains("alertops_detect_runs_total 4"), "{text}");
    assert!(text.contains("alertops_windows_closed_total 1"));
    assert!(
        text.contains("alertops_window_close_micros_count 1"),
        "{text}"
    );
    assert!(
        text.contains(r#"alertops_quarantined_total{reason="invalid_json"} 1"#),
        "{text}"
    );

    // And the handle-side render is the same machinery.
    alertops::obs::lint_exposition(&handle.render_metrics()).expect("handle render lints");
    handle.shutdown();
}

/// Status-socket versioning: `status` and the legacy bare connection
/// both return the JSON document, `metrics` switches to the
/// exposition, and an unknown verb gets a one-line error — old
/// scrapers keep working unchanged.
#[test]
fn metrics_status_socket_versioning_keeps_legacy_clients() {
    let out = scenarios::quickstart(7).run();
    let strategies = full_catalog(&out);
    let config = IngestdConfig {
        shards: 2,
        status: Some("127.0.0.1:0".to_owned()),
        ..IngestdConfig::default()
    };
    let handle = Ingestd::spawn(&config, |shard, shards| {
        shard_governor(&strategies, shards, shard)
    })
    .expect("daemon starts");
    for alert in out.alerts.iter().take(50) {
        handle.route(alert.clone());
    }
    handle.flush().expect("flush yields a snapshot");
    let addr = handle.status_addr().expect("status listener bound");

    // Legacy: connect and read, send nothing.
    let bare: StatusReport =
        serde_json::from_str(scrape(addr, None).trim()).expect("bare connection still gets JSON");
    assert_eq!(bare.counters.ingested, 50);

    // Versioned: explicit verbs, case-insensitive.
    let status: StatusReport = serde_json::from_str(scrape(addr, Some("STATUS")).trim())
        .expect("status verb gets the same JSON");
    assert_eq!(status.counters.ingested, bare.counters.ingested);

    let exposition = scrape(addr, Some("metrics"));
    assert!(exposition.starts_with("# HELP"), "{exposition}");
    alertops::obs::lint_exposition(&exposition).expect("exposition lints");

    let error = scrape(addr, Some("gimme"));
    assert!(
        error.starts_with("error: unknown request \"gimme\""),
        "{error}"
    );
    handle.shutdown();
}

/// The `healthz` verb: one cheap liveness line, no JSON, carrying the
/// two counters a cluster load balancer probes for — monotone windows
/// and ingest progress. Case-insensitive like the other verbs.
#[test]
fn healthz_answers_one_cheap_liveness_line() {
    let out = scenarios::quickstart(7).run();
    let strategies = full_catalog(&out);
    let config = IngestdConfig {
        shards: 2,
        status: Some("127.0.0.1:0".to_owned()),
        ..IngestdConfig::default()
    };
    let handle = Ingestd::spawn(&config, |shard, shards| {
        shard_governor(&strategies, shards, shard)
    })
    .expect("daemon starts");
    let addr = handle.status_addr().expect("status listener bound");

    assert_eq!(scrape(addr, Some("healthz")), "ok windows=0 ingested=0\n");

    for alert in out.alerts.iter().take(25) {
        handle.route(alert.clone());
    }
    handle.flush().expect("flush yields a snapshot");
    assert_eq!(scrape(addr, Some("healthz")), "ok windows=1 ingested=25\n");
    assert_eq!(
        scrape(addr, Some("HEALTHZ")),
        "ok windows=1 ingested=25\n",
        "verbs are case-insensitive"
    );
    handle.shutdown();
}

mod properties {
    use super::*;
    use alertops::ingestd::shard_of;
    use proptest::prelude::*;

    /// A small catalog of dense-id strategies for random traces.
    fn catalog(strategies: u64) -> Vec<AlertStrategy> {
        (0..strategies)
            .map(|id| {
                AlertStrategy::builder(StrategyId(id))
                    .title_template("service latency is abnormal")
                    .kind(StrategyKind::Log(LogRule {
                        keyword: "ERROR".into(),
                        min_count: 1,
                        window: SimDuration::from_mins(5),
                    }))
                    .build()
                    .expect("catalog strategy is well-formed")
            })
            .collect()
    }

    /// Builds a time-sorted trace from `(strategy, hour, offset)` triples.
    fn trace_from(picks: &[(u64, u64, u64)]) -> Vec<Alert> {
        let mut alerts: Vec<Alert> = picks
            .iter()
            .enumerate()
            .map(|(i, &(strategy, hour, offset))| {
                Alert::builder(AlertId(i as u64), StrategyId(strategy))
                    .title("service latency is abnormal")
                    .raised_at(SimTime::from_secs(hour * 3_600 + offset % 3_600))
                    .build()
            })
            .collect();
        alerts.sort_by_key(|a| (a.raised_at(), a.id()));
        alerts
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn sharding_is_stable_and_in_range(id in 0u64..10_000, shards in 1usize..16) {
            let shard = shard_of(StrategyId(id), shards);
            prop_assert!(shard < shards);
            prop_assert_eq!(shard, shard_of(StrategyId(id), shards));
        }

        #[test]
        fn merged_sharded_deltas_equal_the_single_shard_snapshot(
            picks in proptest::collection::vec((0u64..6, 0u64..48, 0u64..3_600), 1..250),
            shards in 2usize..6,
        ) {
            let strategies = catalog(6);
            let trace = trace_from(&picks);

            // Single governor over the full catalog: the baseline.
            let mut single = shard_governor(&strategies, 1, 0);
            let baseline =
                GovernanceSnapshot::merge(&[single.ingest(&trace, &[])], &StormConfig::default());

            // One governor per shard, fed exactly its own strategies'
            // alerts, merged — must reproduce the baseline exactly.
            let deltas: Vec<WindowDelta> = (0..shards)
                .map(|shard| {
                    let window: Vec<Alert> = trace
                        .iter()
                        .filter(|a| shard_of(a.strategy(), shards) == shard)
                        .cloned()
                        .collect();
                    shard_governor(&strategies, shards, shard).ingest(&window, &[])
                })
                .collect();
            let merged = GovernanceSnapshot::merge(&deltas, &StormConfig::default());

            prop_assert_eq!(comparable(&merged), comparable(&baseline));
        }
    }
}
