//! Whole-stack determinism: the same seed must reproduce byte-identical
//! results through every layer — the property that makes the paper's
//! figures regenerable.

use alertops::core::prelude::*;
use alertops::react::{EmergingAlertDetector, EmergingConfig};
use alertops::sim::scenarios;

#[test]
fn identical_seeds_identical_governance() {
    let run = |seed| {
        let out = scenarios::quickstart(seed).run();
        let governor =
            AlertGovernor::new(out.catalog.strategies().to_vec(), GovernorConfig::default())
                .with_dependency_graph(out.topology.dependency_graph());
        let report = governor.govern(&out.alerts, &out.incidents);
        (
            out.alerts.len(),
            report.anti_patterns.finding_count(),
            report.pipeline.triage.clone(),
            report
                .qoa_worst_first
                .iter()
                .map(|q| (q.strategy, q.scores.overall()))
                .collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(7), run(7));
}

#[test]
fn different_seeds_differ() {
    let alerts = |seed| scenarios::quickstart(seed).run().alerts;
    let a = alerts(7);
    let b = alerts(8);
    assert_ne!(a, b, "different seeds should produce different worlds");
}

#[test]
fn emerging_detection_is_replayable() {
    let out = scenarios::quickstart(7).run();
    let run = || {
        let mut detector = EmergingAlertDetector::new(EmergingConfig {
            num_topics: 4,
            passes_per_window: 6,
            ..EmergingConfig::default()
        });
        detector.run(&out.alerts)
    };
    assert_eq!(run(), run());
}

#[test]
fn statistical_engine_is_replayable_at_scale() {
    let a = scenarios::mini_study(5).run();
    let b = scenarios::mini_study(5).run();
    assert_eq!(a.alerts, b.alerts);
    assert_eq!(a.incidents.len(), b.incidents.len());
    assert_eq!(a.faults.events().len(), b.faults.events().len());
}
