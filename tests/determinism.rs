//! Whole-stack determinism: the same seed must reproduce byte-identical
//! results through every layer — the property that makes the paper's
//! figures regenerable.

use alertops::chaos::{silence_panics_containing, ChaosConfig, ChaosKind, ChaosSchedule};
use alertops::core::prelude::*;
use alertops::ingestd::{
    shard_catalog, shard_of, Ingestd, IngestdConfig, OverflowPolicy, CHAOS_PANIC_MSG,
};
use alertops::model::LogRule;
use alertops::react::{EmergingAlertDetector, EmergingConfig};
use alertops::sim::scenarios;

#[test]
fn identical_seeds_identical_governance() {
    let run = |seed| {
        let out = scenarios::quickstart(seed).run();
        let governor =
            AlertGovernor::new(out.catalog.strategies().to_vec(), GovernorConfig::default())
                .with_dependency_graph(out.topology.dependency_graph());
        let report = governor.govern(&out.alerts, &out.incidents);
        (
            out.alerts.len(),
            report.anti_patterns.finding_count(),
            report.pipeline.triage.clone(),
            report
                .qoa_worst_first
                .iter()
                .map(|q| (q.strategy, q.scores.overall()))
                .collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(7), run(7));
}

#[test]
fn different_seeds_differ() {
    let alerts = |seed| scenarios::quickstart(seed).run().alerts;
    let a = alerts(7);
    let b = alerts(8);
    assert_ne!(a, b, "different seeds should produce different worlds");
}

#[test]
fn emerging_detection_is_replayable() {
    let out = scenarios::quickstart(7).run();
    let run = || {
        let mut detector = EmergingAlertDetector::new(EmergingConfig {
            num_topics: 4,
            passes_per_window: 6,
            ..EmergingConfig::default()
        });
        detector.run(&out.alerts)
    };
    assert_eq!(run(), run());
}

#[test]
fn statistical_engine_is_replayable_at_scale() {
    let a = scenarios::mini_study(5).run();
    let b = scenarios::mini_study(5).run();
    assert_eq!(a.alerts, b.alerts);
    assert_eq!(a.incidents.len(), b.incidents.len());
    assert_eq!(a.faults.events().len(), b.faults.events().len());
}

/// Differential: the same trace governed three ways — the pure-batch
/// [`AlertGovernor`], a 1-shard daemon, and N-shard daemons — must
/// agree exactly. This is the streaming layer's correctness contract:
/// sharding and windowing are an execution strategy, not a semantics
/// change.
#[test]
fn batch_one_shard_and_n_shard_governance_agree() {
    let out = scenarios::quickstart(7).run();
    let strategies = out.catalog.strategies().to_vec();
    let mut trace = out.alerts.clone();
    trace.sort_by_key(|a| (a.raised_at(), a.id()));

    // Pure batch baseline: one governor, one pass over everything.
    let governor = AlertGovernor::new(strategies.clone(), GovernorConfig::default());
    let report = governor.detect(&trace, &[]);
    let blocker = governor.derive_blocker(&report);
    let pipeline = governor.react(&trace, blocker);
    let mut batch_findings: Vec<StrategyFinding> =
        report.findings.values().flatten().cloned().collect();
    batch_findings
        .sort_by(|a, b| (a.pattern.code(), a.strategy).cmp(&(b.pattern.code(), b.strategy)));
    let mut batch_triage = pipeline.triage.clone();
    batch_triage.sort_unstable();

    // Daemon runs: the whole trace as one window.
    let run = |shards: usize| {
        let config = IngestdConfig {
            shards,
            queue_capacity: 8192,
            ..IngestdConfig::default()
        };
        let handle = Ingestd::spawn(&config, |shard, shards| {
            StreamingGovernor::new(
                AlertGovernor::new(
                    shard_catalog(&strategies, shards, shard),
                    GovernorConfig::default(),
                ),
                StreamingConfig::default(),
            )
        })
        .expect("daemon starts");
        for alert in &trace {
            handle.route(alert.clone());
        }
        let snapshot = handle.flush().expect("flush yields a snapshot");
        assert!(handle.counters().is_conserved());
        handle.shutdown();
        snapshot
    };

    let single = run(1);
    assert_eq!(single.alert_count, trace.len());
    assert_eq!(
        single.new_findings, batch_findings,
        "1-shard daemon diverged from batch detection"
    );
    let mut single_triage = single.triage.clone();
    single_triage.sort_unstable();
    assert_eq!(
        single_triage, batch_triage,
        "1-shard daemon triage diverged from the batch pipeline"
    );

    for shards in [2usize, 4] {
        let sharded = run(shards);
        // Triage correlates within shards only; everything else —
        // findings, resolutions, storms, counts — must be exact.
        let strip = |s: &GovernanceSnapshot| GovernanceSnapshot {
            triage: Vec::new(),
            ..s.clone()
        };
        assert_eq!(
            strip(&sharded),
            strip(&single),
            "{shards}-shard snapshot diverged from the 1-shard baseline"
        );
    }
}

const CHAOS_SHARDS: usize = 4;
const CHAOS_QUEUE: usize = 8;
const CHAOS_TRACE: usize = 240;

fn chaos_catalog() -> Vec<AlertStrategy> {
    (0..8u64)
        .map(|id| {
            AlertStrategy::builder(StrategyId(id))
                .title_template("service latency is abnormal")
                .kind(StrategyKind::Log(LogRule {
                    keyword: "ERROR".into(),
                    min_count: 1,
                    window: SimDuration::from_mins(5),
                }))
                .build()
                .expect("catalog strategy is well-formed")
        })
        .collect()
}

fn chaos_alert_trace() -> Vec<Alert> {
    let mut alerts: Vec<Alert> = (0..CHAOS_TRACE as u64)
        .map(|i| {
            Alert::builder(AlertId(i), StrategyId(i * 7 % 8))
                .title("service latency is abnormal")
                .raised_at(SimTime::from_secs((i / 40) * 3_600 + (i * 97) % 3_600))
                .build()
        })
        .collect();
    alerts.sort_by_key(|a| (a.raised_at(), a.id()));
    alerts
}

fn chaos_fault_config() -> ChaosConfig {
    ChaosConfig {
        trace_len: CHAOS_TRACE,
        shards: CHAOS_SHARDS,
        resets: 0,
        truncations: 0,
        corruptions: 0,
        stalls: 0,
        panics: 2,
        close_panics: 1,
        overflows: 1,
        burst_len: 20,
        ..ChaosConfig::default()
    }
}

/// One fault-injected daemon run: worker panics, a poisoned window
/// close, and a queue-overflow storm, all placed by the seed's
/// schedule. Returns the serialized snapshot of every window plus the
/// final counters (with the one wall-clock field zeroed). `metrics`
/// toggles the observability layer — the returned outputs must not
/// depend on it.
fn chaos_run(seed: u64, metrics: bool) -> Vec<String> {
    let strategies = chaos_catalog();
    let trace = chaos_alert_trace();
    let schedule = ChaosSchedule::generate(seed, &chaos_fault_config());
    let config = IngestdConfig {
        shards: CHAOS_SHARDS,
        queue_capacity: CHAOS_QUEUE,
        overflow: OverflowPolicy::Drop,
        metrics,
        ..IngestdConfig::default()
    };
    let handle = Ingestd::spawn(&config, |shard, shards| {
        StreamingGovernor::new(
            AlertGovernor::new(
                shard_catalog(&strategies, shards, shard),
                GovernorConfig::default(),
            ),
            StreamingConfig::default(),
        )
    })
    .expect("daemon starts");

    let mut outputs = Vec::new();
    for (i, alert) in trace.iter().enumerate() {
        for event in schedule.events_at(i) {
            match event.kind {
                ChaosKind::WorkerPanic { shard } => handle.inject_panic(shard, false),
                ChaosKind::WorkerPanicOnClose { shard } => handle.inject_panic(shard, true),
                ChaosKind::QueueOverflow { shard: _, burst } => {
                    // Park a shard that owns catalog traffic, slam its
                    // tiny queue, resume, drain: under the drop policy
                    // exactly the first CHAOS_QUEUE alerts survive.
                    let target = shard_of(alert.strategy(), CHAOS_SHARDS);
                    handle.stall_shard(target);
                    for k in 0..burst as u64 {
                        handle.route(
                            Alert::builder(
                                AlertId(7_000_000 + i as u64 * 1_000 + k),
                                alert.strategy(),
                            )
                            .title("determinism burst probe")
                            .raised_at(alert.raised_at())
                            .build(),
                        );
                    }
                    handle.resume_shard(target);
                    handle.sync();
                }
                other => panic!("unscheduled chaos kind {other:?}"),
            }
        }
        handle.route(alert.clone());
        // Tiny queues: pace so only the injected burst ever overflows.
        if i % 4 == 3 {
            handle.sync();
        }
        if (i + 1) % (CHAOS_TRACE / 3) == 0 {
            handle.sync();
            let snapshot = handle.flush().expect("flush yields a snapshot");
            outputs.push(serde_json::to_string(&snapshot).expect("snapshot serializes"));
        }
    }
    let mut counters = handle.counters();
    assert_eq!(
        counters.shard_restarts, 3,
        "two panics + one poisoned close"
    );
    assert!(counters.dropped >= 12, "the burst overflowed: {counters:?}");
    assert!(counters.is_conserved(), "{counters:?}");
    if metrics {
        // Re-assert the conservation law from the *exposition* — the
        // scrape a real monitoring system would see must carry the
        // same accounting the in-process counters do.
        let text = handle.render_metrics();
        alertops::obs::lint_exposition(&text).expect("chaos-run exposition lints");
        let quarantined: u64 = exposition_values(&text, "alertops_quarantined_total")
            .iter()
            .sum();
        assert_eq!(
            exposition_value(&text, "alertops_ingested_total"),
            exposition_value(&text, "alertops_delivered_total")
                + exposition_value(&text, "alertops_dropped_total")
                + quarantined,
            "exposition violates ingested == delivered + dropped + quarantined:\n{text}"
        );
    }
    counters.last_window_micros = 0; // the one wall-clock field
    outputs.push(serde_json::to_string(&counters).expect("counters serialize"));
    handle.shutdown();
    outputs
}

/// Every value of the named family in a Prometheus text exposition
/// (one entry per labelled series).
fn exposition_values(text: &str, name: &str) -> Vec<u64> {
    text.lines()
        .filter(|line| !line.starts_with('#'))
        .filter_map(|line| {
            let (series, value) = line.rsplit_once(' ')?;
            let base = series.split('{').next()?;
            (base == name).then(|| value.parse().expect("metric values are integers"))
        })
        .collect()
}

/// The single value of an unlabelled family.
fn exposition_value(text: &str, name: &str) -> u64 {
    let values = exposition_values(text, name);
    assert_eq!(values.len(), 1, "{name} should be a single series");
    values[0]
}

/// The window-merge algebra the whole topology stands on: cluster and
/// daemon both combine per-shard [`WindowDelta`]s with
/// [`WindowDelta::merge_all`], so merging must be a commutative monoid
/// — order-free (shard/node completion order cannot matter),
/// grouping-free (a node merging its shards before the cluster merges
/// nodes equals one flat merge), with [`WindowDelta::identity`] as the
/// unit (an empty shard contributes nothing). Checked as properties
/// over governor-produced deltas from random disjoint-catalog traces —
/// the actual domain the merge runs on.
mod merge_monoid {
    use super::*;
    use proptest::prelude::*;

    fn catalog(strategies: u64) -> Vec<AlertStrategy> {
        (0..strategies)
            .map(|id| {
                AlertStrategy::builder(StrategyId(id))
                    .title_template("service latency is abnormal")
                    .kind(StrategyKind::Log(LogRule {
                        keyword: "ERROR".into(),
                        min_count: 1,
                        window: SimDuration::from_mins(5),
                    }))
                    .build()
                    .expect("catalog strategy is well-formed")
            })
            .collect()
    }

    /// One same-window delta per shard: each shard's governor over its
    /// own slice of the catalog, fed its own slice of the trace.
    fn shard_deltas(picks: &[(u64, u64, u64)], shards: usize) -> Vec<WindowDelta> {
        let strategies = catalog(6);
        let mut trace: Vec<Alert> = picks
            .iter()
            .enumerate()
            .map(|(i, &(strategy, hour, offset))| {
                Alert::builder(AlertId(i as u64), StrategyId(strategy))
                    .title("service latency is abnormal")
                    .raised_at(SimTime::from_secs(hour * 3_600 + offset % 3_600))
                    .build()
            })
            .collect();
        trace.sort_by_key(|a| (a.raised_at(), a.id()));
        (0..shards)
            .map(|shard| {
                let window: Vec<Alert> = trace
                    .iter()
                    .filter(|a| shard_of(a.strategy(), shards) == shard)
                    .cloned()
                    .collect();
                StreamingGovernor::new(
                    AlertGovernor::new(
                        shard_catalog(&strategies, shards, shard),
                        GovernorConfig::default(),
                    ),
                    StreamingConfig::default(),
                )
                .ingest(&window, &[])
            })
            .collect()
    }

    fn json(delta: &WindowDelta) -> String {
        serde_json::to_string(delta).expect("delta serializes")
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn merge_is_commutative(
            picks in proptest::collection::vec((0u64..6, 0u64..48, 0u64..3_600), 1..120),
        ) {
            let d = shard_deltas(&picks, 3);
            prop_assert_eq!(json(&d[0].merged(&d[1])), json(&d[1].merged(&d[0])));
            prop_assert_eq!(
                json(&WindowDelta::merge_all(&[d[0].clone(), d[1].clone(), d[2].clone()])),
                json(&WindowDelta::merge_all(&[d[2].clone(), d[0].clone(), d[1].clone()]))
            );
        }

        #[test]
        fn merge_is_associative(
            picks in proptest::collection::vec((0u64..6, 0u64..48, 0u64..3_600), 1..120),
        ) {
            let d = shard_deltas(&picks, 3);
            prop_assert_eq!(
                json(&d[0].merged(&d[1]).merged(&d[2])),
                json(&d[0].merged(&d[1].merged(&d[2])))
            );
            // Grouping-free against the flat n-ary form too: the shape
            // the daemon (shards) and the cluster (nodes) compose in.
            prop_assert_eq!(
                json(&d[0].merged(&d[1]).merged(&d[2])),
                json(&WindowDelta::merge_all(&d))
            );
        }

        #[test]
        fn identity_is_the_unit(
            picks in proptest::collection::vec((0u64..6, 0u64..48, 0u64..3_600), 1..120),
        ) {
            let d = shard_deltas(&picks, 3);
            // merge_all canonicalizes ordering, so compare against the
            // delta's canonical form (merge of the singleton).
            let canonical = WindowDelta::merge_all(&d[..1]);
            prop_assert_eq!(json(&d[0].merged(&WindowDelta::identity())), json(&canonical));
            prop_assert_eq!(json(&WindowDelta::identity().merged(&d[0])), json(&canonical));
            prop_assert_eq!(
                json(&WindowDelta::merge_all(&[])),
                json(&WindowDelta::identity())
            );
        }
    }
}

/// A chaos-supervised daemon run is a pure function of its seed: the
/// same seed reproduces byte-identical snapshot JSON and counters even
/// though workers crash, a window close is poisoned, and a queue
/// overflows along the way.
#[test]
fn chaos_runs_with_identical_seeds_are_identical() {
    silence_panics_containing(CHAOS_PANIC_MSG);
    const SEED: u64 = 0x0DD5_EED5;
    assert_eq!(chaos_run(SEED, true), chaos_run(SEED, true));
    // And the schedule itself is seed-sensitive pure data.
    let config = chaos_fault_config();
    assert_ne!(
        ChaosSchedule::generate(SEED, &config),
        ChaosSchedule::generate(SEED + 1, &config)
    );
}

/// The observability layer is provably inert: the same chaos-supervised
/// run produces byte-identical snapshots and counters with the metrics
/// registry wired in and with it absent — instrumentation observes the
/// pipeline, it never steers it.
#[test]
fn metrics_are_observer_only_under_chaos() {
    silence_panics_containing(CHAOS_PANIC_MSG);
    const SEED: u64 = 0x0DD5_EED5;
    assert_eq!(chaos_run(SEED, true), chaos_run(SEED, false));
}

/// Static determinism audit: no source file outside `vendor/` may reach
/// for wall-clock time or an unseeded RNG. Every schedule, workload,
/// and shuffle in this repo takes an injected seed or clock — the
/// property that makes every figure and every soak replayable. The
/// banned tokens are assembled at runtime so this file does not trip
/// its own tripwire.
#[test]
fn no_wall_clocks_or_unseeded_rngs_outside_vendor() {
    let banned = [
        format!("{}::now", "SystemTime"),
        format!("{}_rng()", "thread"),
        format!("{}_entropy()", "from"),
    ];
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut stack = vec![root.join("crates"), root.join("src"), root.join("tests")];
    let mut offenders = Vec::new();
    let mut audited = Vec::new();
    while let Some(dir) = stack.pop() {
        audited.push(dir.clone());
        for entry in std::fs::read_dir(&dir).expect("readable source tree") {
            let path = entry.expect("dir entry").path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                let text = std::fs::read_to_string(&path).expect("readable source file");
                for token in &banned {
                    if text.contains(token.as_str()) {
                        offenders.push(format!("{}: {token}", path.display()));
                    }
                }
            }
        }
    }
    assert!(
        offenders.is_empty(),
        "nondeterminism leaked into the source tree:\n{}",
        offenders.join("\n")
    );
    // The audit is only as good as its coverage: the crates whose
    // determinism the differential suites lean on hardest — the online
    // QoA model and the load driver — must provably have been walked,
    // so a future layout change cannot silently exempt them.
    for crate_dir in ["qoa", "load", "sim", "cluster"] {
        let dir = root.join("crates").join(crate_dir);
        assert!(
            audited.contains(&dir),
            "determinism audit never visited {}",
            dir.display()
        );
    }
}

/// Static wire audit: the cluster's WAL/handoff path is binary-framed;
/// the only module allowed to build a JSON record is the v1
/// compatibility shim (`wal_v1.rs`), which exists solely so
/// pre-binary logs replay. A `serde_json::to_string` anywhere else in
/// `crates/cluster/src` means a JSON copy crept back onto the hot
/// path. The banned token is assembled at runtime so this file does
/// not trip its own tripwire.
#[test]
fn cluster_wal_path_stays_binary_outside_the_v1_shim() {
    let banned = format!("serde_json::{}", "to_string");
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let src = root.join("crates/cluster/src");
    let mut offenders = Vec::new();
    for entry in std::fs::read_dir(&src).expect("readable cluster src") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_none_or(|e| e != "rs") {
            continue;
        }
        if path.file_name().is_some_and(|n| n == "wal_v1.rs") {
            continue; // the one sanctioned JSON framer
        }
        let text = std::fs::read_to_string(&path).expect("readable source file");
        if text.contains(banned.as_str()) {
            offenders.push(path.display().to_string());
        }
    }
    assert!(
        offenders.is_empty(),
        "JSON serialization crept back onto the cluster WAL/handoff path:\n{}",
        offenders.join("\n")
    );
}
