//! Integration coverage for the governance extensions: blocking-rule
//! audits and incident escalation, driven through the umbrella API over
//! simulated data.

use alertops::core::prelude::*;
use alertops::react::{
    audit_blocker_with, propose_incidents, review_queue, AuditConfig, EscalationConfig,
};
use alertops::sim::scenarios;

#[test]
fn derived_rules_are_auditable_and_reviewable() {
    let out = scenarios::mini_study(13).run();
    let governor = AlertGovernor::new(out.catalog.strategies().to_vec(), GovernorConfig::default())
        .with_dependency_graph(out.topology.dependency_graph());
    let findings = governor.detect(&out.alerts, &out.incidents);
    let blocker = governor.derive_blocker(&findings);
    assert!(!blocker.rules().is_empty());

    let config = AuditConfig::default();
    let audits = audit_blocker_with(&blocker, &out.alerts, &config, |alert| {
        out.catalog.strategy(alert.strategy()).is_some_and(|s| {
            out.incidents.iter().any(|inc| {
                inc.service() == s.service()
                    && inc.covers_or_follows(alert.raised_at(), config.incident_lookahead)
            })
        })
    });
    assert_eq!(audits.len(), blocker.rules().len());
    // Derived rules target live noise: total hits must match what the
    // blocker actually suppresses.
    let suppressed = blocker.apply(&out.alerts).blocked.len();
    let audited: usize = audits.iter().map(|a| a.total_hits).sum();
    assert_eq!(audited, suppressed);
    // The review queue is a subset, ordered harmful-first.
    let queue = review_queue(&audits);
    for pair in queue.windows(2) {
        assert!(pair[0].suppressed_indicative >= pair[1].suppressed_indicative);
    }
}

#[test]
fn escalation_proposes_incidents_from_storm_clusters() {
    let out = scenarios::mini_study(13).run();
    let correlator = AlertCorrelator::new().with_topology(out.topology.dependency_graph());
    let clusters = correlator.correlate(&out.alerts);
    let proposals = propose_incidents(&clusters, &out.alerts, &EscalationConfig::default());
    assert!(
        !proposals.is_empty(),
        "a study with storms should yield escalation proposals"
    );
    for proposal in &proposals {
        // Every proposal references real alerts and a real source.
        assert!(out.alerts.iter().any(|a| a.id() == proposal.source));
        assert!(proposal.alerts.contains(&proposal.source));
        assert!(!proposal.services.is_empty());
        // The severity is attained by some member.
        let max = proposal
            .alerts
            .iter()
            .filter_map(|id| out.alerts.iter().find(|a| a.id() == *id))
            .map(|a| a.severity())
            .max()
            .unwrap();
        assert_eq!(max, proposal.severity);
    }
    // Proposals must overlap the derived (ground-truth) incidents in
    // time: at least one proposal per real incident window.
    let mut matched = 0;
    for incident in &out.incidents {
        if proposals.iter().any(|p| {
            incident.covers_or_follows(p.started_at, alertops::model::SimDuration::from_mins(30))
        }) {
            matched += 1;
        }
    }
    assert!(
        matched * 2 >= out.incidents.len(),
        "only {matched}/{} incidents matched by proposals",
        out.incidents.len()
    );
}
