//! The chaos scenario matrix for `alertops-ingestd`: every fault kind
//! in `alertops-chaos`, crossed with both overflow policies and both
//! shard counts, driven over real TCP against a live daemon.
//!
//! The oracle is exact accounting, not survival vibes. The driver
//! keeps a model of what each injected fault is allowed to cost: which
//! alerts the daemon must still acknowledge, which are lost at the
//! transport (quarantined) or to a crashed worker (dropped), and which
//! shards must appear in `GovernanceSnapshot::degraded`. After every
//! window the merged snapshot must equal a fault-free single-shard
//! governor fed exactly the modeled survivors, and at the end of every
//! cell `ingested == delivered + dropped + quarantined` must hold to
//! the unit. Every assertion names the seed that replays it; export
//! `CHAOS_SEED=<seed>` to pin a run.

use std::collections::BTreeSet;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use alertops::chaos::{
    garble_frame, seed_from_env, silence_panics_containing, truncate_frame, ChaosConfig, ChaosKind,
    ChaosRng, ChaosSchedule,
};
use alertops::core::prelude::*;
use alertops::detect::StormConfig;
use alertops::ingestd::codec::{encode_alert, encode_stall_ack, encode_sync_ack};
use alertops::ingestd::{
    shard_catalog, shard_of, Ingestd, IngestdConfig, IngestdHandle, OverflowPolicy,
    CHAOS_PANIC_MSG, SYNC_FRAME,
};
use alertops::model::LogRule;
use alertops::sim::scenarios;
use alertops::sim::SimOutput;

/// Default base seed; `CHAOS_SEED` overrides it (see `seed_from_env`).
const BASE_SEED: u64 = 0xA1E7_0005_C4A0_05ED;
/// Shard queue capacity in queue-overflow cells (tiny on purpose).
const OVERFLOW_QUEUE: usize = 8;
/// Alerts per queue-overflow burst; must exceed [`OVERFLOW_QUEUE`].
const BURST_LEN: usize = 24;
/// Trace length per cell: three windows of 120.
const TRACE_LEN: usize = 360;

/// The injected A5 strategy: not part of any scenario catalog.
const REPEATER: StrategyId = StrategyId(9001);

fn repeater_strategy() -> AlertStrategy {
    AlertStrategy::builder(REPEATER)
        .title_template("haproxy process number warning")
        .kind(StrategyKind::Log(LogRule {
            keyword: "WARN".into(),
            min_count: 1,
            window: SimDuration::from_mins(5),
        }))
        .build()
        .expect("repeater strategy is well-formed")
}

/// 22 alerts/hour for three consecutive hours: trips the A5 burst rule
/// deterministically, so chaos windows carry real findings.
fn repeater_alerts() -> Vec<Alert> {
    let mut alerts = Vec::new();
    for hour in 0..3u64 {
        for i in 0..22u64 {
            alerts.push(
                Alert::builder(AlertId(1_000_000 + hour * 100 + i), REPEATER)
                    .title("haproxy process number warning")
                    .raised_at(SimTime::from_secs(hour * 3_600 + i * 163))
                    .build(),
            );
        }
    }
    alerts
}

fn shard_governor(strategies: &[AlertStrategy], shards: usize, shard: usize) -> StreamingGovernor {
    let catalog = shard_catalog(strategies, shards, shard);
    StreamingGovernor::new(
        AlertGovernor::new(catalog, GovernorConfig::default()),
        StreamingConfig::default(),
    )
}

fn full_catalog(out: &SimOutput) -> Vec<AlertStrategy> {
    let mut strategies = out.catalog.strategies().to_vec();
    strategies.push(repeater_strategy());
    strategies
}

/// The scenario trace every cell replays: the quickstart simulation
/// plus the injected repeater, time-sorted, capped at [`TRACE_LEN`].
fn chaos_trace() -> (Vec<AlertStrategy>, Vec<Alert>) {
    let out = scenarios::quickstart(7).run();
    let strategies = full_catalog(&out);
    let mut trace = out.alerts.clone();
    trace.extend(repeater_alerts());
    trace.sort_by_key(|a| (a.raised_at(), a.id()));
    trace.truncate(TRACE_LEN);
    assert_eq!(
        trace.len(),
        TRACE_LEN,
        "quickstart trace shorter than expected"
    );
    (strategies, trace)
}

/// Strips the fields sharding and chaos are *not* exact for: triage
/// (cross-strategy correlation runs within each shard only) and the
/// degraded list (the fault-free oracle never degrades — the driver
/// asserts `degraded` separately against the model).
fn comparable(snapshot: &GovernanceSnapshot) -> GovernanceSnapshot {
    GovernanceSnapshot {
        triage: Vec::new(),
        degraded: Vec::new(),
        ..snapshot.clone()
    }
}

/// One NDJSON producer connection (write frames, read acks).
struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Conn {
    fn open(addr: SocketAddr) -> Self {
        let writer = TcpStream::connect(addr).expect("connect to ingress");
        let reader = BufReader::new(writer.try_clone().expect("clone socket"));
        Conn { reader, writer }
    }

    fn send(&mut self, frame: &[u8]) {
        self.writer.write_all(frame).expect("write frame");
        self.writer.write_all(b"\n").expect("write newline");
    }

    fn read_ack(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read ack line");
        line.trim().to_owned()
    }

    /// Drain barrier over the wire: everything sent on this connection
    /// before the call has been consumed by its shard worker after it.
    fn sync(&mut self) {
        self.send(SYNC_FRAME.as_bytes());
        assert_eq!(self.read_ack(), encode_sync_ack());
    }
}

/// What the daemon is allowed to cost so far, updated fault by fault.
struct Model {
    shards: usize,
    /// Complete alert frames handed to the router (wire or burst).
    routed: u64,
    q_invalid_json: u64,
    q_invalid_utf8: u64,
    dropped: u64,
    restarts: u64,
    delivered: u64,
    degraded_windows: u64,
    backpressure_events: u64,
    /// Alerts routed this window that should survive to its close.
    pending: Vec<Alert>,
    /// Shards whose next window close must panic (armed poison).
    poisoned: BTreeSet<usize>,
    /// Shards that must be listed degraded at this window's close.
    degraded: BTreeSet<usize>,
}

impl Model {
    fn new(shards: usize) -> Self {
        Model {
            shards,
            routed: 0,
            q_invalid_json: 0,
            q_invalid_utf8: 0,
            dropped: 0,
            restarts: 0,
            delivered: 0,
            degraded_windows: 0,
            backpressure_events: 0,
            pending: Vec::new(),
            poisoned: BTreeSet::new(),
            degraded: BTreeSet::new(),
        }
    }

    fn quarantined(&self) -> u64 {
        self.q_invalid_json + self.q_invalid_utf8
    }

    /// Removes this window's pending alerts belonging to `shard` (they
    /// died with its worker) and returns how many were lost.
    fn drop_pending_for(&mut self, shard: usize) -> u64 {
        let before = self.pending.len();
        self.pending
            .retain(|a| shard_of(a.strategy(), self.shards) != shard);
        (before - self.pending.len()) as u64
    }
}

fn poll_until(what: &str, ctx: &str, mut ok: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !ok() {
        assert!(
            Instant::now() < deadline,
            "{ctx}: timed out waiting for {what}"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// One matrix cell: a live daemon, a producer connection, the model,
/// and the fault-free oracle it is compared against.
struct CellDriver {
    ctx: String,
    addr: SocketAddr,
    conn: Conn,
    handle: IngestdHandle,
    model: Model,
    oracle: StreamingGovernor,
    rng: ChaosRng,
    overflow: OverflowPolicy,
}

impl CellDriver {
    /// Applies one scheduled fault just before trace position
    /// `position`; returns whether the alert at that position should
    /// still be delivered normally afterwards.
    fn apply_event(&mut self, kind: ChaosKind, position: usize, alert: &Alert) -> bool {
        match kind {
            ChaosKind::ConnectionReset => {
                // Half a frame, then a dead socket: the daemon must
                // quarantine the partial line (FrameDecoder::finish)
                // and keep every complete frame sent before it.
                let partial = truncate_frame(&encode_alert(alert), &mut self.rng);
                self.conn
                    .writer
                    .write_all(&partial)
                    .expect("write partial frame");
                self.conn = Conn::open(self.addr);
                self.model.q_invalid_json += 1;
                let want_ingested = self.model.routed + self.model.quarantined();
                let want_quarantined = self.model.quarantined();
                let handle = &self.handle;
                poll_until("reset quarantine", &self.ctx, || {
                    let c = handle.counters();
                    c.ingested == want_ingested && c.decode_errors == want_quarantined
                });
                true // the producer resends the alert whole
            }
            ChaosKind::TruncatedFrame => {
                self.conn
                    .send(&truncate_frame(&encode_alert(alert), &mut self.rng));
                self.model.q_invalid_json += 1;
                false // lost at the transport
            }
            ChaosKind::CorruptFrame => {
                self.conn
                    .send(&garble_frame(&encode_alert(alert), &mut self.rng));
                self.model.q_invalid_utf8 += 1;
                false // lost at the transport
            }
            ChaosKind::SlowConsumer { millis } => {
                std::thread::sleep(Duration::from_millis(millis));
                self.conn.sync(); // liveness probe: the daemon still answers
                true
            }
            ChaosKind::WorkerPanic { shard } => {
                self.conn
                    .send(format!(r#"{{"ctrl":"panic","shard":{shard}}}"#).as_bytes());
                self.model.restarts += 1;
                let lost = self.model.drop_pending_for(shard);
                self.model.dropped += lost;
                self.model.degraded.insert(shard);
                true
            }
            ChaosKind::WorkerPanicOnClose { shard } => {
                self.conn.send(
                    format!(r#"{{"ctrl":"panic","shard":{shard},"on_close":true}}"#).as_bytes(),
                );
                self.model.poisoned.insert(shard);
                true
            }
            ChaosKind::QueueOverflow { shard: _, burst } => {
                self.overflow_storm(position, alert, burst);
                true
            }
            // Node-level kinds target a cluster, not a single daemon;
            // this matrix never schedules them (node-fault counts are
            // zero in its ChaosConfig). See tests/cluster.rs.
            ChaosKind::NodeKill { .. }
            | ChaosKind::NodeRejoin { .. }
            | ChaosKind::WalTruncate { .. } => true,
        }
    }

    /// Parks a worker, slams a burst at its full queue, and models the
    /// outcome per overflow policy. The storm targets the shard of the
    /// alert at this position — a shard that demonstrably owns catalog
    /// strategies — rather than the schedule's blind draw.
    fn overflow_storm(&mut self, position: usize, alert: &Alert, burst: usize) {
        let target = shard_of(alert.strategy(), self.model.shards);
        self.conn
            .send(format!(r#"{{"ctrl":"stall","shard":{target}}}"#).as_bytes());
        assert_eq!(
            self.conn.read_ack(),
            encode_stall_ack(target),
            "{}: stall ack",
            self.ctx
        );
        // Stall acked: the worker is parked and its queue is empty.
        let burst_alerts: Vec<Alert> = (0..burst)
            .map(|k| {
                Alert::builder(
                    AlertId(5_000_000 + (position as u64) * 1_000 + k as u64),
                    alert.strategy(),
                )
                .title("chaos overflow burst probe")
                .raised_at(alert.raised_at())
                .build()
            })
            .collect();
        for b in &burst_alerts {
            self.conn.send(encode_alert(b).as_bytes());
        }
        self.model.routed += burst as u64;
        match self.overflow {
            OverflowPolicy::Drop => {
                // In-band resume: the connection handler routes the
                // whole burst (worker parked, queue at capacity
                // OVERFLOW_QUEUE) before it reaches the resume frame,
                // so exactly the first `capacity` alerts survive.
                self.conn
                    .send(format!(r#"{{"ctrl":"resume","shard":{target}}}"#).as_bytes());
                self.conn.sync();
                let kept = OVERFLOW_QUEUE.min(burst);
                self.model
                    .pending
                    .extend(burst_alerts[..kept].iter().cloned());
                self.model.dropped += (burst - kept) as u64;
            }
            OverflowPolicy::Block => {
                // The handler blocks inside route() once the queue
                // fills, so resume must come out of band — but only
                // after backpressure demonstrably engaged.
                let waits_before = self.handle.counters().backpressure_waits;
                let handle = &self.handle;
                poll_until("backpressure to engage", &self.ctx, || {
                    handle.counters().backpressure_waits > waits_before
                });
                self.handle.resume_shard(target);
                self.conn.sync();
                self.model.pending.extend(burst_alerts.iter().cloned());
                self.model.backpressure_events += 1;
            }
        }
    }

    /// Closes the window on the daemon and checks it against the
    /// fault-free oracle fed the modeled survivors.
    fn close_window(&mut self) {
        self.conn.sync();
        // Armed close-poisons fire inside this close: the poisoned
        // shard loses its whole window and restarts.
        for shard in std::mem::take(&mut self.model.poisoned) {
            self.model.restarts += 1;
            let lost = self.model.drop_pending_for(shard);
            self.model.dropped += lost;
            self.model.degraded.insert(shard);
        }
        // Settle quarantines from connections the driver abandoned.
        let want_ingested = self.model.routed + self.model.quarantined();
        let want_quarantined = self.model.quarantined();
        let handle = &self.handle;
        poll_until("ingress settlement", &self.ctx, || {
            let c = handle.counters();
            c.ingested == want_ingested && c.decode_errors == want_quarantined
        });

        let snapshot = self.handle.flush().expect("flush yields a snapshot");
        let mut window = std::mem::take(&mut self.model.pending);
        window.sort_by_key(|a| (a.raised_at(), a.id()));
        let delta = self.oracle.ingest(&window, &[]);
        let want = GovernanceSnapshot::merge(&[delta], &StormConfig::default());

        let degraded: Vec<usize> = self.model.degraded.iter().copied().collect();
        assert_eq!(snapshot.degraded, degraded, "{}: degraded shards", self.ctx);
        assert_eq!(
            snapshot.alert_count,
            window.len(),
            "{}: window alert count",
            self.ctx
        );
        assert_eq!(
            comparable(&snapshot),
            comparable(&want),
            "{}: merged snapshot diverged from the fault-free oracle",
            self.ctx
        );

        self.model.delivered += window.len() as u64;
        if !degraded.is_empty() {
            self.model.degraded_windows += 1;
        }
        self.model.degraded.clear();
    }

    /// Final exact accounting, then clean shutdown.
    fn finish(self) {
        let CellDriver {
            ctx,
            conn,
            handle,
            model,
            overflow,
            ..
        } = self;
        // The daemon joins its workers on shutdown, and workers only
        // exit once every routing handle is gone — close ours first.
        drop(conn);
        let ctx = &ctx;
        let model = &model;
        let counters = handle.counters();
        assert!(
            counters.is_conserved(),
            "{ctx}: conservation law violated: {counters:?}"
        );
        assert_eq!(
            counters.ingested,
            model.routed + model.quarantined(),
            "{ctx}: ingested"
        );
        assert_eq!(counters.delivered, model.delivered, "{ctx}: delivered");
        assert_eq!(counters.dropped, model.dropped, "{ctx}: dropped");
        assert_eq!(
            counters.decode_errors,
            model.quarantined(),
            "{ctx}: quarantined"
        );
        assert_eq!(
            counters.quarantined_invalid_json, model.q_invalid_json,
            "{ctx}: invalid-json quarantine"
        );
        assert_eq!(
            counters.quarantined_invalid_utf8, model.q_invalid_utf8,
            "{ctx}: invalid-utf8 quarantine"
        );
        assert_eq!(counters.quarantined_unknown_control, 0, "{ctx}");
        assert_eq!(counters.windows_closed, 3, "{ctx}: windows closed");
        assert_eq!(counters.shard_restarts, model.restarts, "{ctx}: restarts");
        assert_eq!(
            counters.degraded_windows, model.degraded_windows,
            "{ctx}: degraded windows"
        );
        match overflow {
            OverflowPolicy::Block => assert!(
                counters.backpressure_waits >= model.backpressure_events,
                "{ctx}: backpressure never engaged: {counters:?}"
            ),
            OverflowPolicy::Drop => assert_eq!(
                counters.backpressure_waits, 0,
                "{ctx}: drop policy must never block"
            ),
        }
        handle.shutdown();
    }
}

/// Schedule exactly two events of the cell's kind over the trace.
fn cell_chaos_config(label: &str, trace_len: usize, shards: usize) -> ChaosConfig {
    let mut config = ChaosConfig {
        trace_len,
        shards,
        resets: 0,
        truncations: 0,
        corruptions: 0,
        stalls: 0,
        panics: 0,
        close_panics: 0,
        overflows: 0,
        burst_len: BURST_LEN,
        ..ChaosConfig::default()
    };
    match label {
        "connection_reset" => config.resets = 2,
        "truncated_frame" => config.truncations = 2,
        "corrupt_frame" => config.corruptions = 2,
        "slow_consumer" => config.stalls = 2,
        "worker_panic" => config.panics = 2,
        "worker_panic_on_close" => config.close_panics = 2,
        "queue_overflow" => config.overflows = 2,
        other => panic!("unknown chaos cell kind {other}"),
    }
    config
}

/// Derives the cell's seed from the base seed, the fault kind, and the
/// cell's position in the matrix — stable across runs, distinct across
/// cells.
fn cell_seed(base: u64, label: &str, cell: usize) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325_u64;
    for byte in label.bytes() {
        h = (h ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    ChaosRng::new(base ^ h ^ (cell as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)).next_u64()
}

fn run_cell(
    strategies: &[AlertStrategy],
    trace: &[Alert],
    label: &'static str,
    overflow: OverflowPolicy,
    shards: usize,
    seed: u64,
) {
    silence_panics_containing(CHAOS_PANIC_MSG);
    let ctx = format!("cell {label}/{overflow:?}/{shards}-shard (seed {seed})");
    let schedule = ChaosSchedule::generate(seed, &cell_chaos_config(label, trace.len(), shards));
    assert_eq!(schedule.len(), 2, "{ctx}: two events per cell");
    let is_overflow = label == "queue_overflow";

    let config = IngestdConfig {
        shards,
        queue_capacity: if is_overflow { OVERFLOW_QUEUE } else { 4096 },
        overflow,
        chaos: true,
        listen: Some("127.0.0.1:0".to_owned()),
        ..IngestdConfig::default()
    };
    let handle = Ingestd::spawn(&config, |shard, shards| {
        shard_governor(strategies, shards, shard)
    })
    .expect("daemon starts");
    let addr = handle.ingest_addr().expect("ingress bound");
    let mut driver = CellDriver {
        ctx,
        addr,
        conn: Conn::open(addr),
        handle,
        model: Model::new(shards),
        oracle: shard_governor(strategies, 1, 0),
        rng: ChaosRng::new(seed ^ 0xC0FF_EE00_D15E_A5ED),
        overflow,
    };

    let bounds = [trace.len() / 3, 2 * trace.len() / 3, trace.len()];
    for (i, alert) in trace.iter().enumerate() {
        let mut deliver = true;
        for event in schedule.events_at(i) {
            deliver &= driver.apply_event(event.kind, i, alert);
        }
        if deliver {
            driver.conn.send(encode_alert(alert).as_bytes());
            driver.model.routed += 1;
            driver.model.pending.push(alert.clone());
        }
        // Tiny queues need pacing so only the injected storm overflows.
        if is_overflow && i % 4 == 3 {
            driver.conn.sync();
        }
        if bounds.contains(&(i + 1)) {
            driver.close_window();
        }
    }
    driver.finish();
}

/// Runs one fault kind across {Block, Drop} x {1, 4 shards}.
fn run_matrix(label: &'static str) {
    let (strategies, trace) = chaos_trace();
    let base = seed_from_env(BASE_SEED);
    let cells = [
        (OverflowPolicy::Block, 1),
        (OverflowPolicy::Block, 4),
        (OverflowPolicy::Drop, 1),
        (OverflowPolicy::Drop, 4),
    ];
    for (cell, (overflow, shards)) in cells.into_iter().enumerate() {
        let seed = cell_seed(base, label, cell);
        run_cell(&strategies, &trace, label, overflow, shards, seed);
    }
}

#[test]
fn chaos_matrix_connection_reset() {
    run_matrix("connection_reset");
}

#[test]
fn chaos_matrix_truncated_frame() {
    run_matrix("truncated_frame");
}

#[test]
fn chaos_matrix_corrupt_frame() {
    run_matrix("corrupt_frame");
}

#[test]
fn chaos_matrix_slow_consumer() {
    run_matrix("slow_consumer");
}

#[test]
fn chaos_matrix_worker_panic() {
    run_matrix("worker_panic");
}

#[test]
fn chaos_matrix_worker_panic_on_close() {
    run_matrix("worker_panic_on_close");
}

#[test]
fn chaos_matrix_queue_overflow() {
    run_matrix("queue_overflow");
}

/// The ISSUE's end-to-end acceptance check, stated explicitly: a panic
/// mid-window restarts the shard, degrades exactly that window's
/// snapshot, and the next window is clean again.
#[test]
fn mid_window_panic_degrades_one_window_then_recovers() {
    silence_panics_containing(CHAOS_PANIC_MSG);
    let strategies = vec![repeater_strategy()];
    let shards = 4;
    let target = shard_of(REPEATER, shards);
    let config = IngestdConfig {
        shards,
        chaos: true,
        listen: Some("127.0.0.1:0".to_owned()),
        ..IngestdConfig::default()
    };
    let handle = Ingestd::spawn(&config, |shard, shards| {
        shard_governor(&strategies, shards, shard)
    })
    .expect("daemon starts");
    let mut conn = Conn::open(handle.ingest_addr().expect("ingress bound"));
    let alerts = repeater_alerts();

    // Window 0: clean.
    for alert in &alerts[..20] {
        conn.send(encode_alert(alert).as_bytes());
    }
    conn.sync();
    let snap0 = handle.flush().expect("window 0 closes");
    assert!(snap0.degraded.is_empty(), "window 0 must be clean");
    assert_eq!(snap0.alert_count, 20);

    // Window 1: ten alerts, a panic, ten more. The first ten die with
    // the worker; the supervisor restarts it in time for the rest.
    for alert in &alerts[20..30] {
        conn.send(encode_alert(alert).as_bytes());
    }
    conn.send(format!(r#"{{"ctrl":"panic","shard":{target}}}"#).as_bytes());
    for alert in &alerts[30..40] {
        conn.send(encode_alert(alert).as_bytes());
    }
    conn.sync();
    let snap1 = handle.flush().expect("window 1 closes");
    assert_eq!(
        snap1.degraded,
        vec![target],
        "the crashed shard must be reported degraded"
    );
    assert_eq!(
        snap1.alert_count, 10,
        "only post-restart alerts survive the window"
    );

    // Window 2: clean again — degradation must not persist.
    for alert in &alerts[40..60] {
        conn.send(encode_alert(alert).as_bytes());
    }
    conn.sync();
    let snap2 = handle.flush().expect("window 2 closes");
    assert!(snap2.degraded.is_empty(), "degradation must not persist");
    assert_eq!(snap2.alert_count, 20);

    let counters = handle.counters();
    assert_eq!(counters.shard_restarts, 1);
    assert_eq!(counters.dropped, 10);
    assert_eq!(counters.delivered, 50);
    assert_eq!(counters.degraded_windows, 1);
    assert!(counters.is_conserved(), "{counters:?}");
    drop(conn);
    handle.shutdown();
}

/// Without `chaos: true`, fault-injection frames are inert: they are
/// quarantined as unknown controls and the daemon keeps serving.
#[test]
fn chaos_frames_are_quarantined_when_chaos_mode_is_off() {
    let strategies = vec![repeater_strategy()];
    let config = IngestdConfig {
        shards: 2,
        listen: Some("127.0.0.1:0".to_owned()),
        ..IngestdConfig::default()
    };
    let handle = Ingestd::spawn(&config, |shard, shards| {
        shard_governor(&strategies, shards, shard)
    })
    .expect("daemon starts");
    let mut conn = Conn::open(handle.ingest_addr().expect("ingress bound"));

    conn.send(br#"{"ctrl":"panic","shard":0}"#);
    conn.send(br#"{"ctrl":"stall","shard":0}"#);
    conn.send(br#"{"ctrl":"resume","shard":0}"#);
    conn.send(br#"{"ctrl":"warp","shard":1}"#);
    conn.sync();
    let counters = handle.counters();
    assert_eq!(counters.quarantined_unknown_control, 4);
    assert_eq!(counters.ingested, 4, "quarantines count as ingested");
    assert_eq!(counters.shard_restarts, 0, "no worker may have crashed");

    // And the daemon still serves real traffic afterwards.
    conn.send(encode_alert(&repeater_alerts()[0]).as_bytes());
    conn.sync();
    assert_eq!(handle.counters().ingested, 5);
    let snapshot = handle.flush().expect("window closes");
    assert_eq!(snapshot.alert_count, 1, "the real alert got through");
    assert!(handle.counters().is_conserved());
    drop(conn);
    handle.shutdown();
}
