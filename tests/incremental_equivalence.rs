//! Differential proof of the incremental detection engine.
//!
//! The streaming governor no longer flattens its rolling history and
//! re-detects from scratch on every window — it folds each window into
//! per-strategy counters, region-hour histograms, and cascade edges,
//! and subtracts them again on eviction. This suite pins the refactor's
//! correctness contract: the emitted [`WindowDelta`] /
//! [`GovernanceSnapshot`] streams must be **byte-identical** (compared
//! as serialized JSON) to a batch oracle that recomputes detection over
//! the flattened surviving history every window — across eviction
//! boundaries, incident arrival and pruning, dependency graphs,
//! N-shard merges, checkpoint rehydration, and worker crashes.

use std::collections::{BTreeSet, VecDeque};

use alertops::chaos::silence_panics_containing;
use alertops::core::prelude::*;
use alertops::detect::storm::{region_hour_histogram, storms_from_histogram};
use alertops::detect::StormConfig;
use alertops::ingestd::{shard_catalog, shard_of, Ingestd, IngestdConfig, CHAOS_PANIC_MSG};
use alertops::model::IncidentStatus;
use alertops::sim::scenarios;

/// The pre-refactor streaming governor, kept as the test oracle: owned
/// windows, flatten + sort + full batch re-detection per ingest. Only
/// the incident-pruning rule matches the *fixed* semantics (with no
/// alerts in scope, closed incidents are pruned rather than retained
/// forever — they cannot influence detection without alert evidence).
struct BatchOracle {
    governor: AlertGovernor,
    config: StreamingConfig,
    history: VecDeque<Vec<Alert>>,
    incidents: Vec<Incident>,
    previous_flags: BTreeSet<(AntiPattern, StrategyId)>,
    windows_ingested: u64,
}

impl BatchOracle {
    fn new(governor: AlertGovernor, config: StreamingConfig) -> Self {
        Self {
            governor,
            config,
            history: VecDeque::new(),
            incidents: Vec::new(),
            previous_flags: BTreeSet::new(),
            windows_ingested: 0,
        }
    }

    fn history_len(&self) -> usize {
        self.history.iter().map(Vec::len).sum()
    }

    fn ingest(&mut self, window: &[Alert], incidents: &[Incident]) -> WindowDelta {
        self.history.push_back(window.to_vec());
        while self.history.len() > self.config.history_windows {
            self.history.pop_front();
        }
        self.incidents.extend(incidents.iter().cloned());

        let mut scope: Vec<Alert> = self.history.iter().flatten().cloned().collect();
        scope.sort_by_key(|a| (a.raised_at(), a.id()));

        match scope.first().map(Alert::raised_at) {
            Some(oldest) => self.incidents.retain(|inc| {
                inc.is_open()
                    || match inc.status() {
                        IncidentStatus::Mitigated { at } => at >= oldest,
                        IncidentStatus::Open => true,
                    }
            }),
            None => self.incidents.retain(Incident::is_open),
        }

        let report = self.governor.detect(&scope, &self.incidents);
        let current_flags: BTreeSet<(AntiPattern, StrategyId)> = report
            .findings
            .iter()
            .flat_map(|(&pattern, findings)| findings.iter().map(move |f| (pattern, f.strategy)))
            .collect();
        let new_findings: Vec<StrategyFinding> = report
            .findings
            .values()
            .flatten()
            .filter(|f| !self.previous_flags.contains(&(f.pattern, f.strategy)))
            .cloned()
            .collect();
        let resolved: Vec<(AntiPattern, StrategyId)> = self
            .previous_flags
            .difference(&current_flags)
            .copied()
            .collect();

        let histogram = region_hour_histogram(&scope);
        let region_hours: Vec<(RegionId, u64, usize)> = histogram
            .iter()
            .map(|(key, count)| (key.0.clone(), key.1, *count))
            .collect();
        let window_hours: Vec<u64> = window
            .iter()
            .map(Alert::hour_bucket)
            .collect::<BTreeSet<u64>>()
            .into_iter()
            .collect();
        let storm_active = storms_from_histogram(histogram, &self.config.storm)
            .iter()
            .any(|s| {
                s.hours
                    .iter()
                    .any(|h| window_hours.binary_search(h).is_ok())
            });

        let blocker = self.governor.derive_blocker(&report);
        let pipeline = self.governor.react(window, blocker);

        self.previous_flags = current_flags;
        let delta = WindowDelta {
            window_index: self.windows_ingested,
            alert_count: window.len(),
            new_findings,
            resolved,
            storm_active,
            region_hours,
            window_hours,
            triage: pipeline.triage,
            emerging_docs: Vec::new(),
            emerging: None,
            qoa_samples: Vec::new(),
            escalated: Vec::new(),
            qoa: None,
        };
        self.windows_ingested += 1;
        delta
    }
}

/// A seeded simulated trace chopped into fixed-size, time-sorted
/// windows, with each derived incident delivered alongside the first
/// window whose alerts reach its start time.
type WindowedTrace = Vec<(Vec<Alert>, Vec<Incident>)>;

fn windowed_trace(
    seed: u64,
    window_len: usize,
) -> (Vec<AlertStrategy>, DependencyGraph, WindowedTrace) {
    let out = scenarios::quickstart(seed).run();
    let mut trace = out.alerts.clone();
    trace.sort_by_key(|a| (a.raised_at(), a.id()));
    let mut incidents = out.incidents.clone();
    incidents.sort_by_key(|i| (i.started_at(), i.id()));

    let mut windows = Vec::new();
    let mut pending = incidents.into_iter().peekable();
    for chunk in trace.chunks(window_len) {
        let horizon = chunk.last().map(Alert::raised_at);
        let mut arrived = Vec::new();
        while let Some(inc) = pending.peek() {
            if horizon.is_some_and(|h| inc.started_at() <= h) {
                arrived.push(pending.next().unwrap());
            } else {
                break;
            }
        }
        windows.push((chunk.to_vec(), arrived));
    }
    // A tail of empty windows slides everything out of scope, so the
    // differential also covers detection over an emptied history and
    // the prune-on-empty incident rule.
    for _ in 0..4 {
        windows.push((Vec::new(), pending.next().into_iter().collect()));
    }
    (
        out.catalog.strategies().to_vec(),
        out.topology.dependency_graph(),
        windows,
    )
}

fn json_delta(value: &WindowDelta) -> String {
    serde_json::to_string(value).expect("window delta serializes")
}

fn json_snapshot(value: &GovernanceSnapshot) -> String {
    serde_json::to_string(value).expect("snapshot serializes")
}

/// Window by window, the incremental streaming governor's deltas are
/// byte-identical to full batch recomputation — with and without a
/// dependency graph, across eviction boundaries and short histories.
#[test]
fn incremental_streaming_matches_batch_recompute() {
    for (history_windows, with_graph) in [(4, true), (4, false), (1, true), (24, true)] {
        let (strategies, graph, windows) = windowed_trace(7, 40);
        let config = StreamingConfig {
            history_windows,
            storm: StormConfig::default(),
            ..StreamingConfig::default()
        };
        let build = |strategies: &[AlertStrategy]| {
            let mut governor = AlertGovernor::new(strategies.to_vec(), GovernorConfig::default());
            if with_graph {
                governor = governor.with_dependency_graph(graph.clone());
            }
            governor
        };
        let mut incremental = StreamingGovernor::new(build(&strategies), config.clone());
        let mut oracle = BatchOracle::new(build(&strategies), config.clone());

        for (index, (window, incidents)) in windows.iter().enumerate() {
            let fast = incremental.ingest(window, incidents);
            let slow = oracle.ingest(window, incidents);
            assert_eq!(
                json_delta(&fast),
                json_delta(&slow),
                "delta diverged at window {index} (history_windows={history_windows}, graph={with_graph})"
            );
            assert_eq!(
                incremental.history_len(),
                oracle.history_len(),
                "scope size diverged at window {index}"
            );
        }
    }
}

/// The owned-window ingest path is the same computation as the
/// borrowed one.
#[test]
fn owned_and_borrowed_ingest_agree() {
    let (strategies, _, windows) = windowed_trace(11, 32);
    let governor = || AlertGovernor::new(strategies.clone(), GovernorConfig::default());
    let mut borrowed = StreamingGovernor::new(governor(), StreamingConfig::default());
    let mut owned = StreamingGovernor::new(governor(), StreamingConfig::default());
    for (window, incidents) in &windows {
        let a = borrowed.ingest(window, incidents);
        let b = owned.ingest_owned(window.clone(), incidents);
        assert_eq!(json_delta(&a), json_delta(&b));
    }
    assert_eq!(borrowed.history_len(), owned.history_len());
}

/// Sharded differential: route every window across N per-shard
/// streaming governors (catalog sharded by `StrategyId`, exactly like
/// the daemon) and merge the per-shard deltas. Incremental and batch
/// oracle shards must merge to byte-identical [`GovernanceSnapshot`]s
/// — triage included, since both sides shard identically.
#[test]
fn n_shard_merges_are_byte_identical_to_the_batch_oracle() {
    const SHARDS: usize = 3;
    let (strategies, graph, windows) = windowed_trace(7, 48);
    let config = StreamingConfig {
        history_windows: 3,
        storm: StormConfig::default(),
        ..StreamingConfig::default()
    };
    let shard_governor = |shard: usize| {
        AlertGovernor::new(
            shard_catalog(&strategies, SHARDS, shard),
            GovernorConfig::default(),
        )
        .with_dependency_graph(graph.clone())
    };
    let mut incremental: Vec<StreamingGovernor> = (0..SHARDS)
        .map(|s| StreamingGovernor::new(shard_governor(s), config.clone()))
        .collect();
    let mut oracle: Vec<BatchOracle> = (0..SHARDS)
        .map(|s| BatchOracle::new(shard_governor(s), config.clone()))
        .collect();

    for (window, incidents) in &windows {
        let mut per_shard: Vec<Vec<Alert>> = vec![Vec::new(); SHARDS];
        for alert in window {
            per_shard[shard_of(alert.strategy(), SHARDS)].push(alert.clone());
        }
        let fast: Vec<WindowDelta> = incremental
            .iter_mut()
            .zip(&per_shard)
            .map(|(s, w)| s.ingest(w, incidents))
            .collect();
        let slow: Vec<WindowDelta> = oracle
            .iter_mut()
            .zip(&per_shard)
            .map(|(s, w)| s.ingest(w, incidents))
            .collect();
        let merged_fast = GovernanceSnapshot::merge(&fast, &config.storm);
        let merged_slow = GovernanceSnapshot::merge(&slow, &config.storm);
        assert_eq!(json_snapshot(&merged_fast), json_snapshot(&merged_slow));
    }
}

/// Checkpoint rehydration: cloning a streaming governor at any window
/// boundary and continuing from the clone yields byte-identical deltas
/// — the property the ingestd worker's crash recovery relies on.
#[test]
fn checkpoint_clone_resumes_byte_identically() {
    let (strategies, graph, windows) = windowed_trace(7, 40);
    let governor =
        AlertGovernor::new(strategies, GovernorConfig::default()).with_dependency_graph(graph);
    let config = StreamingConfig {
        history_windows: 4,
        storm: StormConfig::default(),
        ..StreamingConfig::default()
    };
    let mut live = StreamingGovernor::new(governor, config);
    for (index, (window, incidents)) in windows.iter().enumerate() {
        let mut checkpoint = live.clone();
        let from_live = live.ingest(window, incidents);
        let from_checkpoint = checkpoint.ingest(window, incidents);
        assert_eq!(
            json_delta(&from_live),
            json_delta(&from_checkpoint),
            "checkpoint diverged when resumed at window {index}"
        );
    }
}

/// Chaos differential: a worker panic with an empty buffer loses no
/// alerts, so after the checkpoint-rehydrated restart the daemon's
/// snapshots must match a crash-free run exactly — the engine state
/// restored from the checkpoint is the engine state that was lost.
/// Only the `degraded` marker may differ, and must name the shard.
#[test]
fn worker_restart_without_loss_is_governance_invisible() {
    silence_panics_containing(CHAOS_PANIC_MSG);
    let (strategies, _, windows) = windowed_trace(7, 60);
    let spawn = || {
        let config = IngestdConfig {
            shards: 2,
            queue_capacity: 8192,
            ..IngestdConfig::default()
        };
        Ingestd::spawn(&config, |shard, shards| {
            StreamingGovernor::new(
                AlertGovernor::new(
                    shard_catalog(&strategies, shards, shard),
                    GovernorConfig::default(),
                ),
                StreamingConfig {
                    history_windows: 3,
                    storm: StormConfig::default(),
                    ..StreamingConfig::default()
                },
            )
        })
        .expect("daemon starts")
    };
    let clean = spawn();
    let crashy = spawn();
    let crash_after = windows.len() / 2;
    let mut clean_snaps = Vec::new();
    let mut crashy_snaps = Vec::new();
    for (index, (window, _)) in windows.iter().enumerate() {
        for handle in [&clean, &crashy] {
            for alert in window {
                handle.route(alert.clone());
            }
        }
        clean_snaps.push(clean.flush().expect("clean daemon flushes"));
        crashy_snaps.push(crashy.flush().expect("crashy daemon flushes"));
        if index == crash_after {
            // Between closes the buffer is empty: the restart drops
            // nothing and rehydrates shard 0 from its checkpoint.
            crashy.inject_panic(0, false);
            crashy.sync();
        }
    }
    clean.shutdown();
    let counters = crashy.counters();
    crashy.shutdown();
    assert_eq!(counters.dropped, 0, "empty-buffer panic must drop nothing");
    assert!(counters.shard_restarts >= 1, "panic must restart the shard");
    for (index, (c, k)) in clean_snaps.iter().zip(&crashy_snaps).enumerate() {
        let strip = |s: &GovernanceSnapshot| GovernanceSnapshot {
            degraded: Vec::new(),
            ..s.clone()
        };
        assert_eq!(
            json_snapshot(&strip(c)),
            json_snapshot(&strip(k)),
            "snapshot diverged at window {index} after lossless restart"
        );
        if index == crash_after + 1 {
            assert_eq!(k.degraded, vec![0], "restart must mark shard 0 degraded");
        } else {
            assert!(k.degraded.is_empty(), "window {index} wrongly degraded");
        }
    }
}
