//! The full Fig. 6 loop, closed: detect anti-patterns on a simulated
//! world, auto-remediate the mechanically fixable strategies, re-run the
//! *same* world against the corrected catalog, and measure that the
//! noise is gone while real fault coverage survives.

use std::collections::BTreeSet;

use alertops::core::prelude::*;
use alertops::core::{apply_fixes, suggest_fixes, RemediationConfig};
use alertops::model::StrategyKind;
use alertops::sim::telemetry::Telemetry;
use alertops::sim::{scenarios, MonitorConfig, MonitoringSystem, StrategyCatalog};

#[test]
fn remediation_cuts_noise_without_blinding_the_monitor() {
    // 1. Simulate and detect.
    let scenario = scenarios::quickstart(7);
    let out = scenario.run();
    let governor = AlertGovernor::new(out.catalog.strategies().to_vec(), GovernorConfig::default())
        .with_dependency_graph(out.topology.dependency_graph());
    let report = governor.detect(&out.alerts, &out.incidents);

    // 2. Suggest and apply fixes.
    let graph = out.topology.dependency_graph();
    let input = DetectionInput::new(out.catalog.strategies())
        .with_alerts(&out.alerts)
        .with_incidents(&out.incidents)
        .with_graph(&graph);
    let fixes = suggest_fixes(
        out.catalog.strategies(),
        &report,
        &input,
        &RemediationConfig::default(),
    );
    assert!(!fixes.is_empty(), "a noisy world should yield fixes");
    let mechanical: BTreeSet<StrategyId> = fixes
        .iter()
        .filter(|f| f.revised.is_some())
        .map(|f| f.strategy)
        .collect();
    assert!(!mechanical.is_empty());
    let fixed_strategies = apply_fixes(out.catalog.strategies(), &fixes);
    assert_eq!(fixed_strategies.len(), out.catalog.strategies().len());

    // 3. Re-run the IDENTICAL world (same topology, faults, seeds)
    //    against the corrected catalog.
    let fixed_catalog = StrategyCatalog::from_strategies(fixed_strategies);
    let telemetry = Telemetry::new(&out.topology, &out.faults, scenario.seed ^ 0x7E1E);
    let rerun = MonitoringSystem::new(
        telemetry,
        &fixed_catalog,
        MonitorConfig {
            tick: scenario.tick,
            range: scenario.range,
            seed: scenario.seed ^ 0x0CE,
        },
    )
    .run();

    // 4. Alerts from the fixed strategies must drop sharply.
    let count_from = |alerts: &[Alert], ids: &BTreeSet<StrategyId>| {
        alerts
            .iter()
            .filter(|a| ids.contains(&a.strategy()))
            .count()
    };
    let before = count_from(&out.alerts, &mechanical);
    let after = count_from(&rerun, &mechanical);
    assert!(
        after * 2 < before,
        "remediation did not halve the noise: {before} -> {after}"
    );

    // 5. ...while the rest of the catalog keeps firing comparably (the
    //    monitor is not blinded).
    let others: BTreeSet<StrategyId> = out
        .catalog
        .strategies()
        .iter()
        .map(|s| s.id())
        .filter(|id| !mechanical.contains(id))
        .collect();
    let before_others = count_from(&out.alerts, &others);
    let after_others = count_from(&rerun, &others);
    assert!(
        after_others * 3 >= before_others,
        "remediation broke unrelated strategies: {before_others} -> {after_others}"
    );

    // 6. Re-detection on the remediated world finds fewer A4/A5 flags.
    let input = DetectionInput::new(fixed_catalog.strategies()).with_alerts(&rerun);
    let re_report = AntiPatternReport::run_default(&input);
    let noisy_before = report.flagged(AntiPattern::TransientToggling).len()
        + report.flagged(AntiPattern::Repeating).len();
    let noisy_after = re_report.flagged(AntiPattern::TransientToggling).len()
        + re_report.flagged(AntiPattern::Repeating).len();
    assert!(
        noisy_after < noisy_before,
        "A4/A5 flags did not shrink: {noisy_before} -> {noisy_after}"
    );
}

#[test]
fn severity_fixes_move_toward_evidence() {
    let out = scenarios::mini_study(7).run();
    let graph = out.topology.dependency_graph();
    let input = DetectionInput::new(out.catalog.strategies())
        .with_alerts(&out.alerts)
        .with_incidents(&out.incidents)
        .with_graph(&graph);
    let report = AntiPatternReport::run_default(&input);
    let fixes = suggest_fixes(
        out.catalog.strategies(),
        &report,
        &input,
        &RemediationConfig::default(),
    );
    let severity_fixes: Vec<_> = fixes
        .iter()
        .filter_map(|f| match f.action {
            alertops::core::FixAction::AdjustSeverity { from, to } => Some((f.strategy, from, to)),
            _ => None,
        })
        .collect();
    if severity_fixes.is_empty() {
        return; // nothing misleading had enough evidence this seed
    }
    for (strategy, from, to) in severity_fixes {
        assert_ne!(from, to);
        // The revised strategy actually carries the new severity.
        let fix = fixes
            .iter()
            .find(|f| {
                f.strategy == strategy
                    && matches!(f.action, alertops::core::FixAction::AdjustSeverity { .. })
            })
            .unwrap();
        assert_eq!(fix.revised.as_ref().unwrap().severity(), to);
    }
}

#[test]
fn debounce_fixes_only_touch_metric_rules() {
    let out = scenarios::quickstart(9).run();
    let graph = out.topology.dependency_graph();
    let input = DetectionInput::new(out.catalog.strategies())
        .with_alerts(&out.alerts)
        .with_incidents(&out.incidents)
        .with_graph(&graph);
    let report = AntiPatternReport::run_default(&input);
    let fixes = suggest_fixes(
        out.catalog.strategies(),
        &report,
        &input,
        &RemediationConfig::default(),
    );
    for fix in &fixes {
        if matches!(fix.action, alertops::core::FixAction::RaiseDebounce { .. }) {
            let revised = fix.revised.as_ref().unwrap();
            assert!(matches!(revised.kind(), StrategyKind::Metric(_)));
        }
    }
}
