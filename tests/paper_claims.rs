//! The paper's headline claims, asserted as executable checks against
//! the reproduction (shapes, not absolute numbers — see EXPERIMENTS.md).

use alertops::detect::storm::detect_storms;
use alertops::detect::{candidates, StormConfig};
use alertops::model::ExperienceBand;
use alertops::sim::scenarios;
use alertops::survey::{fig2a, fig2b, fig2c, fig4, Helpfulness, Question, SurveyDataset};

#[test]
fn study_scale_matches_paper_ratios() {
    // Full-scale catalog/topology (cheap — no alert generation).
    let topo = alertops::sim::Topology::generate(&alertops::sim::TopologyConfig::default());
    let catalog = alertops::sim::StrategyCatalog::generate(
        &topo,
        &alertops::sim::StrategyCatalogConfig::default(),
    );
    assert_eq!(topo.services().len(), 11);
    assert_eq!(topo.microservices().len(), 192);
    assert_eq!(catalog.len(), 2010);
}

#[test]
fn storms_occur_daily_ish_and_candidates_nest() {
    // "alert storms occur weekly or even daily" — the mini study injects
    // storms roughly daily; detection must find them.
    let out = scenarios::mini_study(3).run();
    let storms = detect_storms(&out.alerts, &StormConfig::default());
    let days = 4.0;
    let per_day = storms.len() as f64 / days;
    assert!(
        (0.4..=3.0).contains(&per_day),
        "storm rate {per_day}/day out of the daily-ish band"
    );
    // Collective candidates (>200/hr/region) are storm hours (>100).
    let collective = candidates::collective_candidates(&out.alerts, 200);
    for c in &collective {
        assert!(storms
            .iter()
            .any(|s| s.region == c.region && s.hours.contains(&c.hour)));
    }
}

#[test]
fn top_30_percent_mining_selects_ceil_30_percent() {
    let out = scenarios::mini_study(3).run();
    let with_evidence: std::collections::BTreeSet<_> = out
        .alerts
        .iter()
        .filter(|a| a.processing_time().is_some())
        .map(alertops::model::Alert::strategy)
        .collect();
    let top30 = candidates::individual_candidates(&out.alerts, 0.3);
    let expected = ((with_evidence.len() as f64) * 0.3).ceil() as usize;
    assert_eq!(top30.len(), expected);
}

#[test]
fn survey_reproduces_every_reported_percentage() {
    let survey = SurveyDataset::paper();
    let n = survey.respondents().len() as f64;
    assert_eq!(n as usize, 18);

    // Demographics (§III): 55.6% / 16.7% / 11.1% / 16.7%.
    let share = |band| {
        survey
            .respondents()
            .iter()
            .filter(|r| r.experience == band)
            .count() as f64
            / n
    };
    assert!((share(ExperienceBand::OverThreeYears) - 0.556).abs() < 0.001);
    assert!((share(ExperienceBand::TwoToThreeYears) - 0.167).abs() < 0.001);
    assert!((share(ExperienceBand::OneToTwoYears) - 0.111).abs() < 0.001);
    assert!((share(ExperienceBand::UnderOneYear) - 0.167).abs() < 0.001);

    // Q1: 22.2% helpful / 77.8% limited.
    let q1 = survey.helpfulness_distribution(Question::SopOverall);
    assert!((q1.share(Helpfulness::Helpful) - 0.222).abs() < 0.001);
    assert!((q1.share(Helpfulness::Limited) - 0.778).abs() < 0.001);

    // Storm fatigue: 17 of 18.
    assert_eq!(survey.storm_fatigued(), 17);

    // All four figures render complete rows.
    assert_eq!(fig2a(&survey).len(), 6);
    assert_eq!(fig2b(&survey).len(), 3);
    assert_eq!(fig2c(&survey).len(), 4);
    assert_eq!(fig4(&survey).len(), 4);
}

#[test]
fn anti_pattern_processing_time_premise_holds() {
    // The candidate-mining premise: strategies with injected
    // anti-patterns average longer processing than clean ones.
    let out = scenarios::mini_study(3).run();
    let mut dirty = (0.0, 0usize);
    let mut clean = (0.0, 0usize);
    for alert in &out.alerts {
        let Some(pt) = alert.processing_time() else {
            continue;
        };
        let profile = out.catalog.profile(alert.strategy());
        // Exclude noise strategies: their alerts are individually quick;
        // the premise concerns diagnosis-hindering patterns (A1–A3).
        let slot = if profile.vague_title || profile.misleading_severity || profile.improper_rule {
            &mut dirty
        } else if profile.is_clean() {
            &mut clean
        } else {
            continue;
        };
        slot.0 += pt.as_mins_f64();
        slot.1 += 1;
    }
    let dirty_avg = dirty.0 / dirty.1.max(1) as f64;
    let clean_avg = clean.0 / clean.1.max(1) as f64;
    assert!(
        dirty_avg > clean_avg * 1.2,
        "anti-pattern alerts not slower: {dirty_avg:.1}m vs {clean_avg:.1}m"
    );
}
