//! Cross-crate integration: simulator → governor → report, exercising
//! every layer of the workspace through the public umbrella API.

use alertops::core::prelude::*;
use alertops::sim::scenarios;

fn governed(seed: u64) -> (alertops::sim::SimOutput, GovernanceReport) {
    let out = scenarios::quickstart(seed).run();
    let governor = AlertGovernor::new(out.catalog.strategies().to_vec(), GovernorConfig::default())
        .with_sops(
            out.catalog
                .strategies()
                .iter()
                .filter_map(|s| out.catalog.sop(s.id()).cloned()),
        )
        .with_dependency_graph(out.topology.dependency_graph());
    let report = governor.govern(&out.alerts, &out.incidents);
    (out, report)
}

#[test]
fn full_loop_produces_consistent_report() {
    let (out, report) = governed(7);

    // Detection found something (the catalog injects anti-patterns).
    assert!(report.anti_patterns.finding_count() > 0);

    // Blocking rules derive only from A4/A5 findings.
    let a4 = report
        .anti_patterns
        .flagged(AntiPattern::TransientToggling)
        .len();
    let a5 = report.anti_patterns.flagged(AntiPattern::Repeating).len();
    assert!(report.derived_blocking_rules <= a4 + a5);

    // Pipeline: stage volumes shrink monotonically and triage items are
    // real alerts.
    let volumes: Vec<usize> = report.pipeline.stages.iter().map(|s| s.remaining).collect();
    assert_eq!(volumes[0], out.alerts.len());
    for w in volumes.windows(2) {
        assert!(w[1] <= w[0]);
    }
    for id in &report.pipeline.triage {
        assert!(out.alerts.iter().any(|a| a.id() == *id));
    }

    // QoA covers every strategy exactly once, worst-first.
    assert_eq!(report.qoa_worst_first.len(), out.catalog.strategies().len());
    for w in report.qoa_worst_first.windows(2) {
        assert!(w[0].scores.overall() <= w[1].scores.overall() + 1e-12);
    }

    // Guideline violations reference real strategies.
    for violation in &report.guideline_violations {
        assert!(out.catalog.strategy(violation.strategy).is_some());
    }
}

#[test]
fn governance_report_renders() {
    let (_, report) = governed(9);
    let text = report.to_string();
    assert!(text.contains("Governance report"));
    assert!(text.contains("A1"));
    assert!(text.contains("pipeline"));
}

#[test]
fn qoa_shortlist_overlaps_injected_ground_truth() {
    let (out, report) = governed(7);
    // Of the 24 worst-QoA strategies, a clear majority should carry an
    // injected anti-pattern — QoA is the paper's proposed automatic
    // anti-pattern detector.
    let shortlist = report.review_shortlist(24);
    let flagged = shortlist
        .iter()
        .filter(|q| out.catalog.profile(q.strategy).any())
        .count();
    assert!(
        flagged * 2 > shortlist.len(),
        "only {flagged}/{} of the QoA shortlist are injected offenders",
        shortlist.len()
    );
}

#[test]
fn derived_blocking_is_idempotent_across_governance_passes() {
    let out = scenarios::quickstart(11).run();
    let governor = AlertGovernor::new(out.catalog.strategies().to_vec(), GovernorConfig::default())
        .with_dependency_graph(out.topology.dependency_graph());
    let first = governor.detect(&out.alerts, &out.incidents);
    let blocker = governor.derive_blocker(&first);
    let outcome = blocker.apply(&out.alerts);
    // Re-detecting on the passed (post-blocking) stream must not find
    // MORE transient/toggling strategies than before.
    let passed: Vec<Alert> = outcome.passed.iter().map(|&a| a.clone()).collect();
    let second = governor.detect(&passed, &out.incidents);
    assert!(
        second.flagged(AntiPattern::TransientToggling).len()
            <= first.flagged(AntiPattern::TransientToggling).len()
    );
    assert!(
        second.flagged(AntiPattern::Repeating).len() <= first.flagged(AntiPattern::Repeating).len()
    );
}
