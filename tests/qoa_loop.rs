//! Differential tests for the streaming QoA feedback loop: the seeded
//! oracle's label stream drives one online model to the same bits no
//! matter how the pipeline is partitioned.
//!
//! - A Local-mode streaming governor, a 1-shard daemon, and a 4-shard
//!   daemon fed the same windows and labels publish byte-identical QoA
//!   reports (weights, scores, EMAs, verdicts via `model_digest`).
//! - The verdicts actually govern: low-quality strategies demote into
//!   the blocker, high-quality strategies' alerts ride the escalation
//!   lane, and escalated alerts stay a subset of the delivered window
//!   (the conservation law is untouched).
//! - A cluster restart from the WALs restores the model bit-for-bit
//!   (checkpoint replay, not relearning) and the post-restart stream
//!   matches an uninterrupted run.

use std::path::PathBuf;
use std::sync::Arc;

use alertops::cluster::{AlertCluster, ClusterConfig, GovernorFactory, WalFormat};
use alertops::core::prelude::*;
use alertops::ingestd::{shard_catalog, Ingestd, IngestdConfig};
use alertops::sim::{scenarios, FeedbackOracle, SimOutput};

const ORACLE_SEED: u64 = 7;
const WINDOW_LEN: usize = 300;

/// An aggressive config — fast learning, heavy EMA weight, tight
/// thresholds — so the short quickstart trace pushes strategies
/// through both governance lanes (demotion and escalation) within a
/// handful of windows. Production defaults move far more slowly; the
/// differentials only need the lanes to *engage*.
fn qoa_feedback_config() -> QoaFeedbackConfig {
    QoaFeedbackConfig {
        learning_rate: 0.5,
        ema_alpha: 0.5,
        demote_below: 0.45,
        escalate_above: 0.55,
        ..QoaFeedbackConfig::default()
    }
}

fn streaming(mode: QoaMode) -> StreamingConfig {
    StreamingConfig {
        qoa: QoaChannel {
            mode,
            config: qoa_feedback_config(),
        },
        ..StreamingConfig::default()
    }
}

/// The mini-study trace chopped into fixed, time-sorted windows, plus
/// a trailing empty window (a close with no samples must not move the
/// model). Mini-study (not quickstart) because its anti-pattern mix
/// spans enough windows for bad strategies' EMAs to actually sink.
fn windowed_trace(seed: u64) -> (SimOutput, Vec<Vec<Alert>>) {
    let out = scenarios::mini_study(seed).run();
    let mut trace = out.alerts.clone();
    trace.sort_by_key(|a| (a.raised_at(), a.id()));
    let mut windows: Vec<Vec<Alert>> = trace.chunks(WINDOW_LEN).map(<[Alert]>::to_vec).collect();
    windows.push(Vec::new());
    (out, windows)
}

/// The label stream every topology in a test replays: one sorted
/// `QoaLabel` batch per window, a pure function of the oracle seed.
fn label_stream(out: &SimOutput, windows: &[Vec<Alert>], noise: f64) -> Vec<Vec<QoaLabel>> {
    let oracle = FeedbackOracle::new(ORACLE_SEED, noise);
    windows
        .iter()
        .enumerate()
        .map(|(seq, window)| oracle.label_window(seq as u64, &out.catalog, window, &out.incidents))
        .collect()
}

/// What the differentials compare per window: the published QoA report
/// (its `model_digest` pins every weight bit) and the escalation lane.
type QoaWindow = (Option<QoaWindowReport>, Vec<AlertId>);

fn wire(windows: &[QoaWindow]) -> String {
    serde_json::to_string(&windows).expect("qoa windows serialize")
}

/// The batch baseline: one full-catalog governor running the model
/// locally, fed the same windows and labels the daemons get.
fn local_windows(
    out: &SimOutput,
    windows: &[Vec<Alert>],
    labels: &[Vec<QoaLabel>],
) -> Vec<QoaWindow> {
    let mut governor = StreamingGovernor::new(
        AlertGovernor::new(out.catalog.strategies().to_vec(), GovernorConfig::default()),
        streaming(QoaMode::Local),
    );
    windows
        .iter()
        .zip(labels)
        .map(|(window, labels)| {
            let delta = governor.ingest_labeled(window, &[], labels);
            (delta.qoa, delta.escalated)
        })
        .collect()
}

/// An N-shard daemon in the standalone role: shards forward samples,
/// the coordinator joins them with the labels handed to each flush and
/// runs the one sequential model update.
fn daemon_windows(
    out: &SimOutput,
    windows: &[Vec<Alert>],
    labels: &[Vec<QoaLabel>],
    shards: usize,
) -> Vec<QoaWindow> {
    let strategies = out.catalog.strategies().to_vec();
    let config = IngestdConfig {
        shards,
        streaming: streaming(QoaMode::Forward),
        ..IngestdConfig::default()
    };
    let handle = Ingestd::spawn(&config, |shard, shards| {
        StreamingGovernor::new(
            AlertGovernor::new(
                shard_catalog(&strategies, shards, shard),
                GovernorConfig::default(),
            ),
            streaming(QoaMode::Forward),
        )
    })
    .expect("daemon starts");
    let mut published = Vec::with_capacity(windows.len());
    for (window, labels) in windows.iter().zip(labels) {
        for alert in window {
            handle.route(alert.clone());
        }
        let snapshot = handle
            .flush_labeled(labels.clone())
            .expect("flush yields a snapshot");
        published.push((snapshot.qoa, snapshot.escalated));
    }
    handle.shutdown();
    published
}

/// The tentpole differential: batch == 1 shard == 4 shards, byte for
/// byte, on every published QoA report and every escalation lane —
/// and the loop is *live*, not decorative: the model moves, strategies
/// demote, and alerts escalate within the trace.
#[test]
fn batch_one_shard_and_many_shards_publish_identical_qoa_streams() {
    let (out, windows) = windowed_trace(7);
    let labels = label_stream(&out, &windows, 0.0);

    let local = local_windows(&out, &windows, &labels);
    let single = daemon_windows(&out, &windows, &labels, 1);
    let sharded = daemon_windows(&out, &windows, &labels, 4);

    assert_eq!(
        wire(&local),
        wire(&single),
        "1-shard daemon diverged from the local-mode baseline"
    );
    assert_eq!(
        wire(&single),
        wire(&sharded),
        "4-shard daemon diverged from the 1-shard daemon"
    );

    // The loop actually closed: labels were absorbed, the model left
    // its initial state, and both governance lanes engaged somewhere.
    let reports: Vec<&QoaWindowReport> = local
        .iter()
        .filter_map(|(report, _)| report.as_ref())
        .collect();
    assert_eq!(
        reports.len(),
        windows.len(),
        "every close publishes a report"
    );
    assert!(
        reports.iter().any(|r| r.absorbed > 0),
        "the oracle's labels never matched a sample"
    );
    let fresh = OnlineQoaModel::new(qoa_feedback_config());
    assert_ne!(
        reports.last().expect("nonempty").model_digest,
        fresh.digest(),
        "the model never learned anything"
    );
    assert!(
        reports.iter().any(|r| !r.demoted.is_empty()),
        "no strategy ever demoted — the loop is decorative"
    );
    assert!(
        local.iter().any(|(_, escalated)| !escalated.is_empty()),
        "no alert ever escalated — the loop is decorative"
    );

    // The trailing empty window absorbs nothing and leaves the
    // verdicts exactly where the previous close put them (the digest
    // itself moves — it pins the absorbed-window counter too).
    let last = reports.last().expect("nonempty");
    let prior = reports[reports.len() - 2];
    assert_eq!(last.absorbed, 0);
    assert!(last.scored.is_empty(), "an empty window scored strategies");
    assert_eq!(last.demoted, prior.demoted, "an empty close moved verdicts");
    assert_eq!(
        last.promoted, prior.promoted,
        "an empty close moved verdicts"
    );
}

/// Label noise is seeded per `(oracle seed, window index)`: the same
/// noisy stream replays to identical bits, a different seed diverges.
#[test]
fn noisy_label_streams_are_seed_replayable() {
    let (out, windows) = windowed_trace(7);
    let noisy = label_stream(&out, &windows, 0.25);
    let replay = label_stream(&out, &windows, 0.25);
    assert_eq!(noisy, replay, "same (seed, noise) must replay identically");

    let a = local_windows(&out, &windows, &noisy);
    let b = local_windows(&out, &windows, &replay);
    assert_eq!(wire(&a), wire(&b), "noisy runs with one seed must agree");

    let clean = local_windows(&out, &windows, &label_stream(&out, &windows, 0.0));
    assert_ne!(
        wire(&a),
        wire(&clean),
        "25% label noise must actually perturb the model"
    );
}

/// Escalation is a lane, not a source: escalated alerts are drawn from
/// the window that was already delivered, never overlap triage, and
/// only carry strategies the previous window's verdicts promoted.
#[test]
fn escalated_alerts_are_a_subset_of_the_delivered_window() {
    let (out, windows) = windowed_trace(7);
    let labels = label_stream(&out, &windows, 0.0);

    let mut governor = StreamingGovernor::new(
        AlertGovernor::new(out.catalog.strategies().to_vec(), GovernorConfig::default()),
        streaming(QoaMode::Local),
    );
    let mut escalated_total = 0usize;
    for (window, labels) in windows.iter().zip(&labels) {
        let delta = governor.ingest_labeled(window, &[], labels);
        let window_ids: std::collections::BTreeSet<AlertId> =
            window.iter().map(Alert::id).collect();
        for id in &delta.escalated {
            assert!(
                window_ids.contains(id),
                "escalated alert {id:?} is not in this window"
            );
            assert!(
                !delta.triage.contains(id),
                "escalated alert {id:?} was already triaged"
            );
        }
        escalated_total += delta.escalated.len();
    }
    assert!(escalated_total > 0, "the escalation lane never engaged");
}

// ---------------------------------------------------------------------
// Cluster: the model is journaled state, not relearned state.
// ---------------------------------------------------------------------

fn wal_root(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("alertops-qoa-test-{tag}-{}", std::process::id()))
}

fn spawn_cluster(nodes: usize, root: PathBuf, out: &SimOutput) -> AlertCluster {
    let config = ClusterConfig {
        nodes,
        node: IngestdConfig {
            shards: 2,
            queue_capacity: 8192,
            streaming: streaming(QoaMode::Forward),
            ..IngestdConfig::default()
        },
        wal_root: root,
        wal_format: WalFormat::default(),
    };
    let factory: GovernorFactory = Arc::new(|catalog: &[AlertStrategy]| {
        StreamingGovernor::new(
            AlertGovernor::new(catalog.to_vec(), GovernorConfig::default()),
            streaming(QoaMode::Forward),
        )
    });
    AlertCluster::spawn(config, out.catalog.strategies().to_vec(), factory).expect("cluster spawns")
}

fn close_labeled(
    cluster: &mut AlertCluster,
    out: &SimOutput,
    window: &[Alert],
    noise: f64,
) -> GovernanceSnapshot {
    for alert in window {
        cluster.route(alert.clone()).expect("route succeeds");
    }
    let labels = FeedbackOracle::new(ORACLE_SEED, noise).label_window(
        cluster.next_window_seq(),
        &out.catalog,
        window,
        &out.incidents,
    );
    cluster.close_window_labeled(labels).expect("window closes")
}

/// `kill -9` the whole cluster, respawn from the WALs: the model comes
/// back bit-identical (from its journaled checkpoint — labels are not
/// journaled, so relearning is impossible by construction) and the
/// windows closed *after* the restart match an uninterrupted run byte
/// for byte.
#[test]
fn cluster_restart_restores_the_model_from_its_checkpoint() {
    let (out, windows) = windowed_trace(7);
    let split = windows.len() / 2;

    // The uninterrupted control run.
    let control_root = wal_root("qoa-control");
    let _ = std::fs::remove_dir_all(&control_root);
    let mut control = spawn_cluster(2, control_root.clone(), &out);
    let control_snapshots: Vec<GovernanceSnapshot> = windows
        .iter()
        .map(|window| close_labeled(&mut control, &out, window, 0.0))
        .collect();
    let control_digest = control.qoa_model_digest().expect("qoa loop is on");
    assert!(control.counters().is_conserved());
    control.shutdown();
    let _ = std::fs::remove_dir_all(&control_root);

    // The faulted run: same stream, torn down mid-way.
    let root = wal_root("qoa-restart");
    let _ = std::fs::remove_dir_all(&root);
    let mut cluster = spawn_cluster(2, root.clone(), &out);
    for window in &windows[..split] {
        close_labeled(&mut cluster, &out, window, 0.0);
    }
    let pre_restart = cluster.qoa_model_digest().expect("qoa loop is on");
    cluster.shutdown();

    let mut cluster = spawn_cluster(2, root.clone(), &out);
    assert_eq!(
        cluster.qoa_model_digest(),
        Some(pre_restart),
        "restart must restore the journaled model bit-for-bit"
    );
    assert_eq!(
        cluster.next_window_seq(),
        split as u64,
        "replay must resume the window sequence where the crash left it"
    );
    let resumed: Vec<GovernanceSnapshot> = windows[split..]
        .iter()
        .map(|window| close_labeled(&mut cluster, &out, window, 0.0))
        .collect();
    for (snapshot, want) in resumed.iter().zip(&control_snapshots[split..]) {
        assert_eq!(
            serde_json::to_string(snapshot).expect("snapshot serializes"),
            serde_json::to_string(want).expect("snapshot serializes"),
            "post-restart window diverged from the uninterrupted run"
        );
    }
    assert_eq!(
        cluster.qoa_model_digest(),
        Some(control_digest),
        "the restarted run must land on the control run's final model"
    );
    assert!(cluster.counters().is_conserved());
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}
