//! Integration tests for the `alertops` CLI binary, driven as a real
//! subprocess (the same surface a shell user sees).

use std::process::Command;

fn alertops(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_alertops"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn simulate_writes_valid_json() {
    let dir = std::env::temp_dir().join("alertops-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("alerts.json");
    let out = alertops(&[
        "simulate",
        "--scenario",
        "quickstart",
        "--seed",
        "7",
        "--top",
        "2",
        "--json",
        path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("alerts,"), "{stdout}");
    let json = std::fs::read_to_string(&path).unwrap();
    // Minimal structural check without a JSON parser dependency in tests:
    // serde_json is available to the package.
    let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
    let array = parsed.as_array().expect("top-level array");
    assert!(!array.is_empty());
    assert!(array[0].get("strategy").is_some());
    assert!(array[0].get("raised_at").is_some());
}

#[test]
fn unknown_command_fails_fast_without_running_a_scenario() {
    let start = std::time::Instant::now();
    let out = alertops(&["frobnicate", "--scenario", "study"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown command"), "{stderr}");
    // The (minutes-long) study scenario must NOT have run.
    assert!(
        start.elapsed() < std::time::Duration::from_secs(30),
        "error path ran the scenario"
    );
    assert!(!stderr.contains("running scenario"));
}

#[test]
fn unknown_scenario_and_bad_flags_exit_nonzero() {
    for args in [
        vec!["govern", "--scenario", "nope"],
        vec!["govern", "--seed", "banana"],
        vec!["simulate", "--json"],
        vec![],
    ] {
        let out = alertops(&args);
        assert!(
            !out.status.success(),
            "args {args:?} unexpectedly succeeded"
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("usage:"), "args {args:?}: {stderr}");
    }
}

#[test]
fn storms_respects_threshold_flag() {
    let loose = alertops(&[
        "storms",
        "--scenario",
        "quickstart",
        "--seed",
        "7",
        "--threshold",
        "1",
    ]);
    let strict = alertops(&[
        "storms",
        "--scenario",
        "quickstart",
        "--seed",
        "7",
        "--threshold",
        "100000",
    ]);
    assert!(loose.status.success() && strict.status.success());
    let count = |out: &std::process::Output| {
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .next()
            .and_then(|l| l.split(' ').next())
            .and_then(|n| n.parse::<usize>().ok())
            .expect("leading storm count")
    };
    assert!(count(&loose) > 0);
    assert_eq!(count(&strict), 0);
}

#[test]
fn govern_prints_report_and_shortlist() {
    let out = alertops(&[
        "govern",
        "--scenario",
        "quickstart",
        "--seed",
        "7",
        "--top",
        "3",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Governance report"));
    assert!(stdout.contains("review shortlist:"));
    assert!(stdout.contains("QoA"));
}
