#!/usr/bin/env bash
# Regenerates every table and figure of the paper and captures the output.
# Usage: scripts/run_experiments.sh [output-file]
set -euo pipefail
out="${1:-experiments_output.txt}"
cd "$(dirname "$0")/.."
: > "$out"
for bin in table1 table2 fig2 fig3 fig4 fig5 fig6 study qoa_eval ablations; do
    echo "### $bin" | tee -a "$out"
    cargo run --release -q -p alertops-bench --bin "$bin" 2>>/dev/null | tee -a "$out"
    echo | tee -a "$out"
done
echo "wrote $out"
