#!/usr/bin/env bash
# The repo's CI gate, runnable locally: formatting, lints, and the
# tier-1 build+test pass (plus the full workspace test suite).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> full workspace tests"
cargo test --workspace -q

# The fault-injection matrix is part of the workspace run above; this
# labeled pass exists so a failure seed can be replayed in isolation:
#   CHAOS_SEED=<seed from the failure message> scripts/ci.sh
echo "==> chaos suite (CHAOS_SEED=${CHAOS_SEED:-default})"
cargo test -q --test chaos_ingestd

# Observability gate: the metrics-specific end-to-end tests (exposition
# coverage + status-socket versioning) and the lint over every rendered
# exposition document they scrape. A regression that drops a family
# from the scrape, breaks legacy bare-connection status clients, or
# emits structurally invalid Prometheus text fails here by name.
echo "==> metrics: exposition coverage + status protocol"
cargo test -q --test ingestd_e2e metrics_
cargo test -q --test determinism metrics_
cargo test -q -p alertops-obs

# Incremental-engine gate: the differential suite (streaming deltas
# byte-identical to batch recomputation, sharded merges, checkpoint
# rehydration, lossless worker restarts) plus the eviction-algebra
# property tests. A detector change that breaks exact batch/streaming
# equivalence fails here by name.
echo "==> incremental engine: differential + eviction properties"
cargo test -q --test incremental_equivalence
cargo test -q -p alertops-detect --test incremental

# Emerging-channel gate: the streaming R4 differential suite (fit-free
# streaming vs the fixed offline run, 1-shard == N-shard under the
# ingestd coordinator merge, metrics-on/off byte-identity under chaos)
# plus the react-crate windowing regressions (explicit empty windows,
# refit == fresh). A change that breaks the single-sequential-pass
# determinism contract fails here by name.
echo "==> emerging channel: streaming differential + windowing regressions"
cargo test -q --test emerging_streaming
cargo test -q -p alertops-react emerging
cargo test -q -p alertops-topics grow_vocab

# Emerging-perf gate: the sparse/dense differential properties (sparse
# fit_window bit-identical to the dense oracle, cached digamma exact,
# grow-vocab-then-update equivalence), the criterion group over the
# observe path, and a fresh BENCH_streaming.json. The bench binary
# asserts its own differentials (governor local pass == standalone
# detector, budget seed-replayability) before timing anything, and the
# grep makes a silent `outputs_identical: false` regression impossible
# to commit.
echo "==> emerging perf: sparse differentials + bench regeneration"
cargo test -q -p alertops-topics --test properties
cargo bench -q -p alertops-bench --bench emerging
cargo run --release -q -p alertops-bench --bin streaming_bench
if grep -q '"outputs_identical": false' BENCH_streaming.json; then
    echo "BENCH_streaming.json reports non-identical outputs" >&2
    exit 1
fi
if grep -q '"budget_replayable": false' BENCH_streaming.json; then
    echo "BENCH_streaming.json reports a non-replayable budget run" >&2
    exit 1
fi

# Cluster gate: the topology differential (4-node == 2-node == 1-node
# == batch oracle), WAL crash-replay (in-process kill/rejoin plus the
# real binary under SIGKILL), live range handoff, node-fault chaos
# (seed-replayable via CHAOS_SEED), and the WindowDelta merge-monoid
# property tests. A change that breaks cluster == single-node
# equivalence or loses a journaled alert fails here by name.
echo "==> cluster: topology differential + WAL crash-replay + handoff"
cargo test -q --test cluster
cargo test -q -p alertops-cluster
cargo test -q --test determinism merge_monoid

# Soak gate: a short deterministic slice of the million-alert soak —
# seeded production-shaped traffic (diurnal curve, deploy waves, gray
# cascades, multi-tenant catalogs) streamed over real TCP into a live
# 4-shard ingestd while the harness scrapes the metrics socket for
# latency quantiles, queue depths, and RSS. The bench binary asserts
# its own gates (sampled-prefix byte-identity vs 1- and 4-shard batch
# oracles, conservation, zero drops, RSS ceiling, >= 1M alerts/hour)
# before exiting, and the greps make a silent regression in the
# emitted JSON impossible to commit. The hours-long production soak is
# opt-in: ALERTOPS_SOAK_FULL=1 scripts/ci.sh (or run soak_bench
# directly). Deep property-test sweeps are likewise opt-in via
# ALERTOPS_TEST_FULL=1.
echo "==> soak smoke: TCP load harness + BENCH_soak.json regeneration"
cargo test -q -p alertops-load
cargo run --release -q -p alertops-bench --bin soak_bench
if grep -q '"outputs_identical": false' BENCH_soak.json; then
    echo "BENCH_soak.json reports soak outputs diverging from the batch oracle" >&2
    exit 1
fi
if grep -q '"ceiling_ok": false' BENCH_soak.json; then
    echo "BENCH_soak.json reports a memory-ceiling breach" >&2
    exit 1
fi
if grep -q '"conservation_ok": false' BENCH_soak.json; then
    echo "BENCH_soak.json reports a conservation-law violation" >&2
    exit 1
fi

# Wire gate: the binary codec's adversarial property tests (round-trip,
# truncation at every offset, bit flips, byte soup — the decoder never
# fabricates a frame), the mixed-version WAL replay suite (v1 text and
# v2 binary segments stitched into one history, corrupt/unknown-version
# segments quarantined whole), the end-to-end wire differential
# (NDJSON == binary byte-for-byte across 1-shard, 4-shard, and 4-node
# topologies), and the cluster bench's per-WAL-format journaling-tax
# rows — regenerated, differential-gated, and grepped so a silent
# "binary changed the answer" regression is impossible to commit.
echo "==> wire: codec properties + mixed-version replay + format differential"
cargo test -q -p alertops-wire
cargo test -q -p alertops-cluster --test wal_negative
cargo test -q --test wire
cargo run --release -q -p alertops-bench --bin cluster_bench
if grep -q '"outputs_identical": false' BENCH_cluster.json; then
    echo "BENCH_cluster.json reports a WAL format changing cluster outputs" >&2
    exit 1
fi

# QoA-loop gate: the streaming feedback differential suite (batch ==
# 1-shard == 4-shard byte-identity on every published QoA report and
# escalation lane, seed-replayable label noise, escalated ⊆ delivered,
# cluster restart restoring the journaled model bit-for-bit), the
# qoa-crate property tests (partial_fit order/stream invariance,
# bit-exact checkpoint round-trips), and the bench's qoa rows — the
# bench asserts local-loop == standalone-model identity before timing,
# and the outputs_identical grep above already covers its row in
# BENCH_streaming.json. A change that makes the feedback loop depend
# on topology, or relearn instead of replay after a crash, fails here
# by name.
echo "==> qoa loop: feedback differential + model properties"
cargo test -q --test qoa_loop
cargo test -q -p alertops-qoa
if grep -q '"outputs_identical": false' BENCH_streaming.json; then
    echo "BENCH_streaming.json reports a QoA/emerging differential failure" >&2
    exit 1
fi

echo "CI green."
