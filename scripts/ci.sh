#!/usr/bin/env bash
# The repo's CI gate, runnable locally: formatting, lints, and the
# tier-1 build+test pass (plus the full workspace test suite).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> full workspace tests"
cargo test --workspace -q

# The fault-injection matrix is part of the workspace run above; this
# labeled pass exists so a failure seed can be replayed in isolation:
#   CHAOS_SEED=<seed from the failure message> scripts/ci.sh
echo "==> chaos suite (CHAOS_SEED=${CHAOS_SEED:-default})"
cargo test -q --test chaos_ingestd

echo "CI green."
