//! Alert-storm triage: the workload the paper's intro motivates — a
//! flood of hundreds of alerts per hour that no OCE team can read
//! one by one.
//!
//! Detects storms (>100 alerts/region/hour, consecutive hours merged),
//! then walks the worst storm through the reaction pipeline: block the
//! strategies flagged as transient/toggling/repeating, aggregate
//! duplicates, correlate by topology, and hand the OCE a triage list.
//!
//! Run with: `cargo run --example alert_storm_triage`

use alertops::core::prelude::*;
use alertops::detect::storm::detect_storms;
use alertops::detect::StormConfig;
use alertops::sim::scenarios;

fn main() {
    // Four simulated days with a storm roughly every day.
    let out = scenarios::mini_study(3).run();
    println!("alert history: {} alerts over 4 days", out.alerts.len());

    // 1. Find the storms.
    let storms = detect_storms(&out.alerts, &StormConfig::default());
    println!("\ndetected {} alert storms:", storms.len());
    for storm in &storms {
        println!(
            "  {} in {}: {} alerts over {} hour(s), peak {}/hour",
            storm.window,
            storm.region,
            storm.total_alerts,
            storm.duration_hours(),
            storm.peak_hourly
        );
    }
    let Some(worst) = storms.iter().max_by_key(|s| s.total_alerts) else {
        println!("no storms this seed — nothing to triage");
        return;
    };

    // 2. Slice the storm's alerts.
    let storm_alerts: Vec<Alert> = out
        .alerts
        .iter()
        .filter(|a| worst.window.contains(a.raised_at()) && a.location().region() == &worst.region)
        .cloned()
        .collect();
    println!(
        "\ntriaging the worst storm: {} alerts in {}",
        storm_alerts.len(),
        worst.region
    );

    // 3. Govern: detection derives the blocking rules, then the pipeline
    //    collapses the flood.
    let governor = AlertGovernor::new(out.catalog.strategies().to_vec(), GovernorConfig::default())
        .with_dependency_graph(out.topology.dependency_graph());
    let anti_patterns = governor.detect(&out.alerts, &out.incidents);
    let blocker = governor.derive_blocker(&anti_patterns);
    println!(
        "derived {} blocking rules from A4/A5 findings",
        blocker.rules().len()
    );
    let pipeline = governor.react(&storm_alerts, blocker);
    for stage in &pipeline.stages {
        println!("  after {:<12} {:>6} items", stage.stage, stage.remaining);
    }
    println!(
        "volume reduction: {:.1}% — {} triage items for the OCE",
        pipeline.reduction * 100.0,
        pipeline.triage.len()
    );

    // 4. What the OCE actually reads.
    println!("\ntriage list (first 10):");
    for id in pipeline.triage.iter().take(10) {
        if let Some(alert) = storm_alerts.iter().find(|a| a.id() == *id) {
            println!("  {alert}");
        }
    }
}
