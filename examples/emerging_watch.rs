//! Emerging-alert detection (R4) on a gray failure: "a few alerts
//! corresponding to a root cause appear first … when the root cause
//! escalates its influence, numerous cascading alerts will be
//! generated. This usually happens on gray failures like memory leak
//! and CPU overloading" (§III-C).
//!
//! Builds an alert stream where hours 0–2 carry routine noise and hour 3
//! sees the first few memory-leak alerts of an unfamiliar shape; the
//! adaptive-online-LDA watcher flags them while they are still few.
//!
//! Run with: `cargo run --example emerging_watch`

use alertops::core::prelude::*;
use alertops::react::EmergingReport;

fn routine_alert(id: u64, t: u64) -> Alert {
    let titles = [
        "disk usage of block storage node over threshold",
        "cpu utilization high on computing worker",
        "request latency of api gateway above limit",
    ];
    Alert::builder(AlertId(id), StrategyId(id % 3))
        .title(titles[(id % 3) as usize])
        .service("Block Storage")
        .raised_at(SimTime::from_secs(t))
        .build()
}

fn leak_alert(id: u64, t: u64) -> Alert {
    Alert::builder(AlertId(id), StrategyId(77))
        .title("memory consumption of cache agent growing steadily, swap pressure rising")
        .service("Container Platform")
        .raised_at(SimTime::from_secs(t))
        .build()
}

fn main() {
    let mut alerts = Vec::new();
    let mut id = 0;
    for hour in 0..4u64 {
        for i in 0..15 {
            alerts.push(routine_alert(id, hour * 3_600 + i * 230));
            id += 1;
        }
        if hour == 3 {
            // The gray failure's first whispers: only six alerts.
            for i in 0..6 {
                alerts.push(leak_alert(id, hour * 3_600 + 200 + i * 550));
                id += 1;
            }
        }
    }
    alerts.sort_by_key(Alert::raised_at);
    println!("stream: {} alerts over 4 hours", alerts.len());

    let mut detector = EmergingAlertDetector::new(EmergingConfig {
        num_topics: 4,
        ..EmergingConfig::default()
    });
    let reports: Vec<EmergingReport> = detector.run(&alerts);

    for report in &reports {
        println!(
            "window {}: {} alerts, {} emerging topic(s), {} emerging alert(s)",
            report.window_index,
            report.alert_count,
            report.emerging_topics,
            report.emerging_alerts.len()
        );
        for alert_id in &report.emerging_alerts {
            let alert = alerts
                .iter()
                .find(|a| a.id() == *alert_id)
                .expect("report ids come from the stream");
            println!("    ⚠ {alert}");
        }
    }

    let flagged_leaks = reports
        .iter()
        .flat_map(|r| &r.emerging_alerts)
        .filter(|id| {
            alerts
                .iter()
                .find(|a| a.id() == **id)
                .is_some_and(|a| a.strategy() == StrategyId(77))
        })
        .count();
    println!("\nleak alerts flagged early: {flagged_leaks}/6");
}
