//! Quickstart: simulate a small cloud, govern its alert stream, print
//! the governance report — the Fig. 1 loop (monitor → alerts → OCE →
//! fix) plus the Fig. 6 governance loop, end to end.
//!
//! Run with: `cargo run --example quickstart`

use alertops::core::prelude::*;
use alertops::sim::scenarios;

fn main() {
    // 1. Simulate: 4 services / 24 microservices, 240 strategies, six
    //    hours with one injected cascade and background transients.
    let out = scenarios::quickstart(7).run();
    println!(
        "simulated {} alerts from {} strategies over {} microservices",
        out.alerts.len(),
        out.catalog.strategies().len(),
        out.topology.microservices().len()
    );
    println!(
        "incidents derived from injected faults: {}",
        out.incidents.len()
    );

    // 2. Peek at the stream the way an OCE would (the paper's Table II
    //    rendering).
    println!("\nfirst five alerts:");
    for alert in out.alerts.iter().take(5) {
        println!("  {alert}");
    }

    // 3. Govern: lint strategies, detect anti-patterns, derive blocking
    //    rules, run the reaction pipeline, rank by QoA.
    let governor = AlertGovernor::new(out.catalog.strategies().to_vec(), GovernorConfig::default())
        .with_sops(
            out.catalog
                .strategies()
                .iter()
                .filter_map(|s| out.catalog.sop(s.id()).cloned()),
        )
        .with_dependency_graph(out.topology.dependency_graph());

    let report = governor.govern(&out.alerts, &out.incidents);
    println!("\n{report}");

    // 4. The review shortlist: which strategies to fix first.
    println!("lowest-QoA strategies:");
    for qoa in report.review_shortlist(5) {
        let strategy = out
            .catalog
            .strategy(qoa.strategy)
            .expect("report references catalog strategies");
        println!(
            "  {} overall {:.2} (ind {:.2} / prec {:.2} / hand {:.2})  {:?}",
            qoa.strategy,
            qoa.scores.overall(),
            qoa.scores.indicativeness,
            qoa.scores.precision,
            qoa.scores.handleability,
            strategy.title_template(),
        );
    }
}
